// Codec/sieve ablation — the PR 7 acceptance bench.
//
// Fig. 5 showed the update stream dominating everything both engines
// write; this ablation prices the two levers this PR aims at it, on the
// FastBFS engine over per-role modelled HDDs: the on-disk update-stream
// codec (updates.codec = raw vs auto, stays following suit) and the
// scatter staging-buffer sieve, separately and combined. The headline —
// CHECKed, not just reported — is that codec+sieve cut the update bytes
// written on the R-MAT BFS by at least 30% versus raw.
//
// Every configuration is verified bit-identical against the in-memory
// reference inside run_bfs. Results land in BENCH_pr7.json (--out=FILE);
// --quick shrinks the graphs for CI.
#include <array>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "json_writer.hpp"

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/temp_dir.hpp"
#include "metrics/table.hpp"

namespace {

using namespace fbfs;  // NOLINT(build/namespaces)
using bench::Json;
using io::codec::Policy;

struct AblationConfig {
  const char* tag;
  Policy codec;
  bool sieve;
};

constexpr AblationConfig kConfigs[] = {
    {"raw", Policy::kRaw, false},
    {"raw+sieve", Policy::kRaw, true},
    {"auto", Policy::kAuto, false},
    {"auto+sieve", Policy::kAuto, true},
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_pr7.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::cerr << "usage: ablation_codec [--quick] [--out=FILE]\n";
      return 2;
    }
  }
  init_log_level_from_env();
  metrics::print_experiment_header(
      "Codec/sieve ablation — update-stream write traffic",
      "updates.codec raw vs auto x sieve off/on through the FastBFS "
      "engine; codec+sieve must cut R-MAT BFS update bytes >= 30%");

  TempDir workspace("ablation_codec");
  const std::vector<bench::Dataset> datasets =
      bench::evaluation_datasets(workspace.str(), quick);

  Json json;
  json.text("bench", "ablation_codec");
  json.text("mode", quick ? "quick" : "full");
  json.text("program", "bfs");
  json.text("system", "fastbfs");

  metrics::Table table({"dataset", "config", "upd wr", "upd cut", "u raw",
                        "u bmp", "u vint", "sieved", "stay wr",
                        "total wr"});
  double rmat_combined_cut = 0.0;
  for (const bench::Dataset& ds : datasets) {
    json.open(ds.name);
    json.integer("vertices", ds.meta.num_vertices);
    json.integer("edges", ds.meta.num_edges);
    json.integer("partitions", ds.partitions);
    std::uint64_t raw_update_bytes = 0;
    for (const AblationConfig& cfg : kConfigs) {
      bench::SystemOptions options;
      options.fastbfs = true;
      options.update_codec = cfg.codec;
      options.sieve_updates = cfg.sieve;
      const metrics::RunStats run = bench::run_bfs(ds, options);

      const std::uint64_t update_bytes =
          run.bytes_written(io::Role::kUpdates);
      if (std::strcmp(cfg.tag, "raw") == 0) raw_update_bytes = update_bytes;
      const double update_cut =
          1.0 - static_cast<double>(update_bytes) /
                    static_cast<double>(raw_update_bytes);
      if (ds.name == "rmat" && std::strcmp(cfg.tag, "auto+sieve") == 0) {
        rmat_combined_cut = update_cut;
      }
      const std::array<std::uint64_t, 3> codec_bytes =
          run.update_codec_bytes();

      table.add_row({ds.name, cfg.tag, metrics::Table::bytes(update_bytes),
                     metrics::Table::percent(update_cut),
                     metrics::Table::bytes(codec_bytes[0]),
                     metrics::Table::bytes(codec_bytes[1]),
                     metrics::Table::bytes(codec_bytes[2]),
                     metrics::Table::count(run.updates_sieved()),
                     metrics::Table::bytes(
                         run.bytes_written(io::Role::kStay)),
                     metrics::Table::bytes(run.device_bytes_written())});

      json.open(cfg.tag);
      json.text("codec", io::codec::to_string(cfg.codec));
      json.integer("sieve", cfg.sieve ? 1 : 0);
      json.integer("iterations", run.iterations.size());
      json.integer("update_bytes_written", update_bytes);
      json.integer("update_bytes_raw", codec_bytes[0]);
      json.integer("update_bytes_bitmap", codec_bytes[1]);
      json.integer("update_bytes_varint", codec_bytes[2]);
      json.integer("updates_emitted", run.updates_emitted());
      json.integer("updates_sieved", run.updates_sieved());
      json.integer("stay_bytes_written",
                   run.bytes_written(io::Role::kStay));
      json.integer("bytes_written", run.device_bytes_written());
      json.integer("bytes_moved", run.device_bytes_moved());
      json.number("update_write_cut_vs_raw", update_cut);
      json.close();
    }
    json.close();
  }
  table.print();

  std::cout << "\nrmat auto+sieve update write cut vs raw: "
            << rmat_combined_cut * 100.0 << "%\n";
  json.open("headline");
  json.number("rmat_update_write_cut", rmat_combined_cut);
  json.close();

  // The PR's acceptance bar: the combined configuration must cut the
  // dominant write stream by nearly a third on the reference R-MAT.
  FB_CHECK_MSG(rmat_combined_cut >= 0.30,
               "codec+sieve cut rmat update bytes by only "
                   << rmat_combined_cut * 100.0 << "%, expected >= 30%");

  std::ofstream out(out_path);
  FB_CHECK_MSG(out.good(), "cannot write " << out_path);
  out << json.str();
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
