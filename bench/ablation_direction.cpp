// Direction ablation — the PR 8 acceptance bench.
//
// Prices the direction-optimizing strategy (core.direction = topdown vs
// bottomup vs auto) on the FastBFS engine over per-role modelled HDDs.
// On the low-diameter graphs the bulky middle rounds should flip to
// bottom-up and the claimed-vertex short-circuit should retire most of
// the edge probes and update records; on the high-diameter grid the
// frontier never clears the beta growth gate, so auto must stay
// top-down for the whole run. Both headlines are CHECKed, not just
// reported: auto must flip on R-MAT and cut its emitted update records,
// cut probed edges by a real margin versus pure top-down (R-MAT in
// quick mode — the CI bar; twitter_like at full scale, where gated
// trimming erodes the rmat probe margin — see the CHECK comments), and
// auto on the grid must run zero bottom-up rounds while staying within
// noise of top-down's probe count (trim-stream timing is the only
// nondeterminism).
//
// Every configuration is verified bit-identical against the in-memory
// reference inside run_bfs. Results land in BENCH_pr8.json (--out=FILE);
// --quick shrinks the graphs for CI.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "json_writer.hpp"

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/temp_dir.hpp"
#include "metrics/table.hpp"

namespace {

using namespace fbfs;  // NOLINT(build/namespaces)
using bench::Json;
using engine::Direction;

constexpr struct {
  const char* tag;
  Direction direction;
} kConfigs[] = {
    {"topdown", Direction::kTopDown},
    {"bottomup", Direction::kBottomUp},
    {"auto", Direction::kAuto},
};

double cut_vs(std::uint64_t value, std::uint64_t baseline) {
  if (baseline == 0) return 0.0;
  return 1.0 - static_cast<double>(value) / static_cast<double>(baseline);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_pr8.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::cerr << "usage: ablation_direction [--quick] [--out=FILE]\n";
      return 2;
    }
  }
  init_log_level_from_env();
  metrics::print_experiment_header(
      "Direction ablation — bottom-up vs top-down scatter",
      "core.direction topdown/bottomup/auto through the FastBFS engine; "
      "auto must cut R-MAT BFS probes + update records, and must never "
      "flip on the high-diameter grid");

  TempDir workspace("ablation_direction");
  std::vector<bench::Dataset> datasets =
      bench::evaluation_datasets(workspace.str(), quick);
  // The adversarial dataset: a 2-D lattice's frontier is a diagonal
  // wavefront, a sliver of the vertices at every round — the case the
  // beta gate exists for.
  const std::uint32_t side = quick ? 128 : 512;
  datasets.push_back(bench::make_dataset(
      workspace.str() + "/grid", "grid",
      graph::Grid2dSource({.width = side, .height = side}),
      /*partitions=*/4));

  Json json;
  json.text("bench", "ablation_direction");
  json.text("mode", quick ? "quick" : "full");
  json.text("program", "bfs");
  json.text("system", "fastbfs");

  metrics::Table table({"dataset", "config", "iters", "bu", "scanned",
                        "probed", "probe cut", "updates", "upd cut",
                        "edges rd", "upd wr"});
  double rmat_probe_cut = 0.0;
  double rmat_update_cut = 0.0;
  double twitter_probe_cut = 0.0;
  double twitter_update_cut = 0.0;
  std::uint32_t rmat_auto_bottomup = 0;
  std::uint32_t grid_auto_bottomup = 0;
  std::uint64_t grid_topdown_probed = 0;
  std::uint64_t grid_auto_probed = 0;
  for (const bench::Dataset& ds : datasets) {
    json.open(ds.name);
    json.integer("vertices", ds.meta.num_vertices);
    json.integer("edges", ds.meta.num_edges);
    json.integer("partitions", ds.partitions);
    std::uint64_t topdown_probed = 0;
    std::uint64_t topdown_updates = 0;
    for (const auto& cfg : kConfigs) {
      bench::SystemOptions options;
      options.fastbfs = true;
      options.direction = cfg.direction;
      const metrics::RunStats run = bench::run_bfs(ds, options);

      const std::uint64_t probed = run.edges_probed();
      const std::uint64_t updates = run.updates_emitted();
      if (cfg.direction == Direction::kTopDown) {
        topdown_probed = probed;
        topdown_updates = updates;
      }
      const double probe_cut = cut_vs(probed, topdown_probed);
      const double update_cut = cut_vs(updates, topdown_updates);
      if (ds.name == "rmat" && cfg.direction == Direction::kAuto) {
        rmat_probe_cut = probe_cut;
        rmat_update_cut = update_cut;
        rmat_auto_bottomup = run.bottomup_rounds();
      }
      if (ds.name == "twitter_like" && cfg.direction == Direction::kAuto) {
        twitter_probe_cut = probe_cut;
        twitter_update_cut = update_cut;
      }
      if (ds.name == "grid") {
        if (cfg.direction == Direction::kTopDown) {
          grid_topdown_probed = probed;
        } else if (cfg.direction == Direction::kAuto) {
          grid_auto_bottomup = run.bottomup_rounds();
          grid_auto_probed = probed;
        }
      }

      table.add_row(
          {ds.name, cfg.tag, std::to_string(run.iterations.size()),
           std::to_string(run.bottomup_rounds()),
           metrics::Table::count(run.edges_scanned()),
           metrics::Table::count(probed), metrics::Table::percent(probe_cut),
           metrics::Table::count(updates),
           metrics::Table::percent(update_cut),
           metrics::Table::bytes(run.bytes_read(io::Role::kEdges)),
           metrics::Table::bytes(run.bytes_written(io::Role::kUpdates))});

      json.open(cfg.tag);
      json.integer("iterations", run.iterations.size());
      json.integer("bottomup_rounds", run.bottomup_rounds());
      json.integer("edges_scanned", run.edges_scanned());
      json.integer("edges_probed", probed);
      json.integer("updates_emitted", updates);
      json.integer("edge_bytes_read", run.bytes_read(io::Role::kEdges));
      json.integer("update_bytes_written",
                   run.bytes_written(io::Role::kUpdates));
      json.integer("bytes_moved", run.device_bytes_moved());
      json.number("probe_cut_vs_topdown", probe_cut);
      json.number("update_cut_vs_topdown", update_cut);
      json.close();
    }
    json.close();
  }
  table.print();

  std::cout << "\nrmat auto probe cut vs topdown: " << rmat_probe_cut * 100.0
            << "%, update cut: " << rmat_update_cut * 100.0
            << "% over " << rmat_auto_bottomup << " bottom-up rounds\n";
  json.open("headline");
  json.number("rmat_probe_cut", rmat_probe_cut);
  json.number("rmat_update_cut", rmat_update_cut);
  json.number("twitter_probe_cut", twitter_probe_cut);
  json.number("twitter_update_cut", twitter_update_cut);
  json.integer("rmat_bottomup_rounds", rmat_auto_bottomup);
  json.integer("grid_bottomup_rounds", grid_auto_bottomup);
  json.close();

  // The acceptance bars. R-MAT: the model must actually flip and the
  // flip must pay, by a conservative floor under the measured margins.
  // Grid: the beta gate must hold — zero bottom-up rounds, and probe
  // counts within trim-timing noise of forced top-down.
  FB_CHECK_MSG(rmat_auto_bottomup > 0,
               "auto never flipped to bottom-up on rmat");
  FB_CHECK_MSG(rmat_update_cut >= 0.25,
               "auto cut rmat update records by only "
                   << rmat_update_cut * 100.0 << "%, expected >= 25%");
  if (quick) {
    // The CI bar (quick mode is what perf-smoke runs).
    FB_CHECK_MSG(rmat_probe_cut >= 0.25,
                 "auto cut rmat probed edges by only "
                     << rmat_probe_cut * 100.0 << "%, expected >= 25%");
  } else {
    // At full scale the gated trim has many more rounds to shrink the
    // top-down scan, while bottom-up must price the full untrimmed
    // transposed view — on rmat the byte model then (correctly, by
    // total bytes moved) flips only the peak round, so the probe cut
    // collapses even though the update cut holds. The scale-stable
    // probe floor lives on twitter_like, whose longer dense middle
    // keeps the flip profitable at any size; trimming bottom-up's
    // inputs too is the ROADMAP follow-up that would restore the rmat
    // margin here.
    FB_CHECK_MSG(twitter_probe_cut >= 0.25,
                 "auto cut twitter_like probed edges by only "
                     << twitter_probe_cut * 100.0 << "%, expected >= 25%");
    FB_CHECK_MSG(twitter_update_cut >= 0.25,
                 "auto cut twitter_like update records by only "
                     << twitter_update_cut * 100.0 << "%, expected >= 25%");
  }
  FB_CHECK_MSG(grid_auto_bottomup == 0,
               "auto ran " << grid_auto_bottomup
                           << " bottom-up rounds on the high-diameter grid");
  const double grid_drift =
      grid_topdown_probed == 0
          ? 0.0
          : static_cast<double>(grid_auto_probed > grid_topdown_probed
                                    ? grid_auto_probed - grid_topdown_probed
                                    : grid_topdown_probed - grid_auto_probed) /
                static_cast<double>(grid_topdown_probed);
  FB_CHECK_MSG(grid_drift <= 0.05,
               "auto drifted " << grid_drift * 100.0
                               << "% from topdown probes on the grid");

  std::ofstream out(out_path);
  FB_CHECK_MSG(out.good(), "cannot write " << out_path);
  out << json.str();
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
