// Batching ablation — the PR 9 acceptance bench.
//
// Prices batched multi-source traversal (engine::run_batch over
// graph::MultiBfs) against the same queries run one at a time: 64 BFS
// sources, one shared edge scan versus 64 standalone scans. The batch
// pays ~2x per update record (a 16-byte masked update vs BFS's 8) and
// its saturation-keyed trims commit later than single-query trims, but
// it reads the edge list ONCE per round instead of 64 times — so the
// per-query edge traffic must collapse by well over an order of
// magnitude. That is the CHECKed headline: on R-MAT the sequential
// arm's edge bytes read must be >= 8x the batch arm's (measured margin
// is far higher; 8x is the conservative CI floor).
//
// The second table prices the update stream: the mask-OR sieve plus
// codec auto-selection versus raw unsieved updates, same batch — the
// subset-dominance sieve is what keeps 64-query update traffic from
// drowning the scan sharing.
//
// Devices are UNTHROTTLED here, unlike the figure benches: the
// sequential arm is 64 full traversals per dataset and config, and the
// modelled-HDD token bucket would stretch that past any CI budget. The
// headline is a byte ratio, which the device model does not change.
//
// Every batch run is spot-checked: query 0's unpacked states must be
// bit-identical to the dataset's in-memory BFS reference (batch_roots[0]
// == bfs_root by construction). Results land in BENCH_pr9.json
// (--out=FILE); --quick shrinks the graphs for CI.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <span>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "json_writer.hpp"

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/temp_dir.hpp"
#include "engine/batch.hpp"
#include "metrics/table.hpp"

namespace {

using namespace fbfs;  // NOLINT(build/namespaces)
using bench::Json;
using graph::BfsProgram;

struct ArmIo {
  std::uint64_t edge_bytes_read = 0;    // edge + stay input traffic
  std::uint64_t update_bytes_written = 0;
  std::uint64_t updates_emitted = 0;
  std::uint64_t updates_sieved = 0;
  std::uint32_t iterations = 0;
};

void add_rows(ArmIo& io, const std::vector<metrics::IterationStats>& rows) {
  for (const metrics::IterationStats& s : rows) {
    io.edge_bytes_read += s.role_io(io::Role::kEdges).bytes_read +
                          s.role_io(io::Role::kStay).bytes_read;
    io.update_bytes_written += s.role_io(io::Role::kUpdates).bytes_written;
    io.updates_emitted += s.updates_emitted;
    io.updates_sieved += s.updates_sieved;
  }
  io.iterations += static_cast<std::uint32_t>(rows.size());
}

engine::Options make_options(bool sieve) {
  engine::Options options;
  options.num_threads = 4;
  options.direction = engine::Direction::kTopDown;
  options.sieve_updates = sieve;
  options.update_codec =
      sieve ? io::codec::Policy::kAuto : io::codec::Policy::kRaw;
  options.stay_codec = options.update_codec;
  return options;
}

// One unthrottled device per role (see the header comment): per-role
// byte counters stay exact, only the time model is off.
struct RoleDevices {
  io::Device edges;
  io::Device state;
  io::Device updates;
  io::Device stay;

  explicit RoleDevices(const std::string& root)
      : edges(root + "/edges", io::DeviceModel::unthrottled()),
        state(root + "/state", io::DeviceModel::unthrottled()),
        updates(root + "/updates", io::DeviceModel::unthrottled()),
        stay(root + "/stay", io::DeviceModel::unthrottled()) {}

  io::StoragePlan plan() {
    return io::StoragePlan::single(edges)
        .assign(io::Role::kState, state)
        .assign(io::Role::kUpdates, updates)
        .assign(io::Role::kStay, stay);
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_pr9.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::cerr << "usage: ablation_msbfs [--quick] [--out=FILE]\n";
      return 2;
    }
  }
  init_log_level_from_env();
  metrics::print_experiment_header(
      "Batching ablation — 64 BFS queries for the I/O price of one scan",
      "engine::run_batch (MultiBfs masks) vs 64 sequential single-query "
      "runs; batched edge bytes read must collapse >= 8x per query");

  TempDir workspace("ablation_msbfs");
  const std::vector<bench::Dataset> datasets =
      bench::evaluation_datasets(workspace.str(), quick);

  Json json;
  json.text("bench", "ablation_msbfs");
  json.text("mode", quick ? "quick" : "full");
  json.text("program", "msbfs");
  json.text("system", "fastbfs");

  metrics::Table arms({"dataset", "arm", "queries", "iters", "edges rd",
                       "edges rd/query", "upd wr", "updates", "sieved"});
  metrics::Table codecs({"dataset", "sieve+codec", "upd wr", "updates",
                         "sieved"});
  double rmat_edge_ratio = 0.0;
  for (const bench::Dataset& ds : datasets) {
    const std::uint32_t queries = static_cast<std::uint32_t>(
        std::min<std::size_t>(graph::kMaxBatchQueries,
                              ds.batch_roots.size()));
    const std::span<const graph::VertexId> sources(ds.batch_roots.data(),
                                                   queries);
    json.open(ds.name);
    json.integer("vertices", ds.meta.num_vertices);
    json.integer("edges", ds.meta.num_edges);
    json.integer("queries", queries);

    // Batch arm: one MultiBfs traversal, sieve + codec on.
    ArmIo batch_io;
    {
      RoleDevices devices(ds.root);
      const io::StoragePlan plan = devices.plan();
      const engine::BatchRunResult batch = engine::run_batch(
          engine::Kind::kCore, ds.pg, plan, sources, make_options(true));
      for (const auto& t : batch.traversals) add_rows(batch_io, t.per_iteration);
      // Spot-check the batch against ground truth: query 0 is the
      // figure benches' bfs_root, whose inmem reference the dataset
      // carries.
      const auto& q0 = batch.per_query[0];
      FB_CHECK_MSG(q0.size() == ds.reference.size() &&
                       std::memcmp(q0.data(), ds.reference.data(),
                                   q0.size() * sizeof(BfsProgram::State)) == 0,
                   "batched query 0 on " << ds.name
                                         << " diverged from the reference");
    }

    // Sequential arm: the same sources, one standalone run each.
    ArmIo seq_io;
    {
      RoleDevices devices(ds.root);
      const io::StoragePlan plan = devices.plan();
      for (const graph::VertexId root : sources) {
        const engine::RunResult<BfsProgram> run = engine::run(
            engine::Kind::kCore, ds.pg, plan, BfsProgram{.root = root},
            make_options(true));
        add_rows(seq_io, run.per_iteration);
      }
    }

    const double edge_ratio =
        batch_io.edge_bytes_read == 0
            ? 0.0
            : static_cast<double>(seq_io.edge_bytes_read) /
                  static_cast<double>(batch_io.edge_bytes_read);
    if (ds.name == "rmat") rmat_edge_ratio = edge_ratio;

    for (const auto* arm : {&batch_io, &seq_io}) {
      const bool is_batch = arm == &batch_io;
      arms.add_row({ds.name, is_batch ? "batch-64" : "sequential",
                    std::to_string(queries), std::to_string(arm->iterations),
                    metrics::Table::bytes(arm->edge_bytes_read),
                    metrics::Table::bytes(arm->edge_bytes_read / queries),
                    metrics::Table::bytes(arm->update_bytes_written),
                    metrics::Table::count(arm->updates_emitted),
                    metrics::Table::count(arm->updates_sieved)});
    }

    // Update-stream ablation on the batch arm alone: raw + unsieved vs
    // the mask-OR sieve + codec auto.
    ArmIo raw_io;
    {
      RoleDevices devices(ds.root);
      const io::StoragePlan plan = devices.plan();
      const engine::BatchRunResult batch = engine::run_batch(
          engine::Kind::kCore, ds.pg, plan, sources, make_options(false));
      for (const auto& t : batch.traversals) add_rows(raw_io, t.per_iteration);
    }
    codecs.add_row({ds.name, "off/raw",
                    metrics::Table::bytes(raw_io.update_bytes_written),
                    metrics::Table::count(raw_io.updates_emitted),
                    metrics::Table::count(raw_io.updates_sieved)});
    codecs.add_row({ds.name, "on/auto",
                    metrics::Table::bytes(batch_io.update_bytes_written),
                    metrics::Table::count(batch_io.updates_emitted),
                    metrics::Table::count(batch_io.updates_sieved)});

    json.open("batch");
    json.integer("iterations", batch_io.iterations);
    json.integer("edge_bytes_read", batch_io.edge_bytes_read);
    json.integer("update_bytes_written", batch_io.update_bytes_written);
    json.integer("updates_emitted", batch_io.updates_emitted);
    json.integer("updates_sieved", batch_io.updates_sieved);
    json.close();
    json.open("sequential");
    json.integer("iterations", seq_io.iterations);
    json.integer("edge_bytes_read", seq_io.edge_bytes_read);
    json.integer("update_bytes_written", seq_io.update_bytes_written);
    json.integer("updates_emitted", seq_io.updates_emitted);
    json.close();
    json.open("batch_raw_unsieved");
    json.integer("update_bytes_written", raw_io.update_bytes_written);
    json.integer("updates_emitted", raw_io.updates_emitted);
    json.close();
    json.number("edge_read_ratio_seq_over_batch", edge_ratio);
    json.close();
  }
  arms.print();
  std::cout << "\n";
  codecs.print();

  std::cout << "\nrmat sequential/batch edge-bytes-read ratio: "
            << rmat_edge_ratio << "x\n";
  json.open("headline");
  json.number("rmat_edge_read_ratio", rmat_edge_ratio);
  json.close();

  // The acceptance bar: batching must cut per-query edge traffic by at
  // least 8x on rmat. The measured margin is far higher (the batch
  // scans once per round where sequential scans 64 times); 8x leaves
  // room for the batch's later-committing saturation trims.
  FB_CHECK_MSG(rmat_edge_ratio >= 8.0,
               "batched rmat edge reads only "
                   << rmat_edge_ratio << "x cheaper than sequential, "
                   << "expected >= 8x");

  std::ofstream out(out_path);
  FB_CHECK_MSG(out.good(), "cannot write " << out_path);
  out << json.str();
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
