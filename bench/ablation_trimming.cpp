// Ablation (DESIGN.md) — which FastBFS mechanism buys what, on a
// fast-converging scale-free graph vs a high-diameter grid where eager
// trimming is the §II-C3 failure mode.
#include "bench_common.hpp"
#include "common/log.hpp"

using namespace fbfs;

namespace {

struct AblationConfig {
  std::string label;
  bench::RunOptions options;
};

std::vector<AblationConfig> full_matrix() {
  std::vector<AblationConfig> configs;
  bench::RunOptions options;
  options.trim_min_dead_fraction = 0.0;  // eager baseline; re-enabled below

  options.trimming = false;
  options.selective = false;
  configs.push_back({"no trim, no selective (x-stream-like)", options});

  options.trimming = true;
  configs.push_back({"trim only", options});

  options.trimming = false;
  options.selective = true;
  configs.push_back({"selective only", options});

  options.trimming = true;
  configs.push_back({"trim + selective (default)", options});

  options.trim_start_round = 5;
  configs.push_back({"trim delayed to round 5", options});

  options.trim_start_round = 1;
  options.trim_min_frontier_fraction = 0.05;
  configs.push_back({"trim gated on 5% frontier", options});

  options.trim_min_frontier_fraction = 0.0;
  options.trim_min_dead_fraction = 0.25;
  configs.push_back({"trim once 25% dead (bench default)", options});

  options.trim_min_dead_fraction = 0.0;
  options.stay_grace_seconds = 0.0;
  configs.push_back({"zero grace (cancel-prone)", options});

  options.stay_grace_seconds = 0.1;
  options.compress_stay = true;
  configs.push_back({"eager trim + packed stay files", options});

  options.compress_stay = false;
  options.dedup_updates = true;
  configs.push_back({"eager trim + update dedup", options});

  options.dedup_updates = false;
  options.checkpoint_every = 2;
  configs.push_back({"eager trim + checkpoint every 2 rounds", options});
  return configs;
}

/// High-diameter runs take ~250 rounds each; keep selective scheduling on
/// everywhere and focus on the trim-trigger question, with 2 partitions so
/// per-round seek overhead stays sane.
std::vector<AblationConfig> grid_matrix() {
  std::vector<AblationConfig> configs;
  bench::RunOptions options;
  options.partitions = 2;
  options.trim_min_dead_fraction = 0.0;

  options.trimming = false;
  configs.push_back({"no trim (+selective)", options});

  options.trimming = true;
  configs.push_back({"eager trim (every round)", options});

  options.trim_start_round = 64;
  configs.push_back({"trim delayed to round 64", options});

  options.trim_start_round = 1;
  options.trim_min_frontier_fraction = 0.02;
  configs.push_back({"trim gated on 2% frontier", options});
  return configs;
}

void run_dataset(bench::BenchEnv& env, const std::string& name,
                 const std::vector<AblationConfig>& configs) {
  const bench::Dataset& ds = env.dataset(name);
  std::cout << "\n--- " << name << " ---\n";
  metrics::Table table({"config", "time (s)", "bytes read", "bytes written",
                        "stay edges", "cancels", "skips"});
  for (const AblationConfig& c : configs) {
    const auto stats = bench::run_fastbfs(env, ds, c.options);
    table.add_row({c.label, metrics::Table::num(stats.wall_seconds),
                   metrics::Table::bytes(stats.bytes_read),
                   metrics::Table::bytes(stats.bytes_written),
                   metrics::Table::num(stats.stay_edges_written),
                   metrics::Table::num(std::uint64_t{stats.trims_cancelled}),
                   metrics::Table::num(
                       std::uint64_t{stats.partitions_skipped})});
  }
  table.print();
}

}  // namespace

int main() {
  init_log_level_from_env();
  metrics::print_experiment_header(
      "Ablation — trimming / selective scheduling / trim triggers",
      "trimming dominates on fast-converging graphs; on high-diameter "
      "graphs eager trimming rewrites nearly the whole graph per level, "
      "so the delayed/gated variants avoid that waste (§II-C3)");

  bench::BenchEnv& env = bench::BenchEnv::instance();
  run_dataset(env, "rmat18", full_matrix());
  run_dataset(env, "grid128", grid_matrix());
  return 0;
}
