// Trimming ablation (paper §II-C): which trim mechanism buys what, and
// where eager trimming backfires.
//
// BFS runs on four modelled HDDs — one per storage role, so every
// per-role byte counter is exact — over two graph families:
//
//   * R-MAT: fast-converging scale-free graph. Most vertices settle in
//     a round or two, so most edges go dead early and trimming should
//     slash the per-round edge-input volume (the paper's headline win).
//   * 2-D grid: high-diameter lattice. Frontiers are thin (~one wave of
//     the lattice per round), so eager trimming rewrites nearly the
//     whole partition every round for a sliver of savings — the §II-C3
//     failure mode the trim triggers exist to gate off.
//
// Every configuration is checked bit-identical against the in-memory
// reference before its numbers are reported: a config that changes a
// result is a bug, not a data point.
//
// Wall-clock numbers follow the device models (scaled by
// FASTBFS_TIME_SCALE, which CI sets to keep quick mode cheap); the byte
// counters — where the ≥30% edge-input cut must show — are exact and
// scale-independent. Results land in BENCH_pr4.json (--out=FILE);
// --quick shrinks both graphs for CI.
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "json_writer.hpp"

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "common/temp_dir.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/partitioner.hpp"
#include "inmem/engine.hpp"
#include "xstream/engine.hpp"

namespace {

using namespace fbfs;  // NOLINT(build/namespaces)
using bench::Json;
using graph::BfsProgram;

struct Config {
  std::string key;    // json section name
  std::string label;  // table row
  bool use_core = true;  // false: the untrimmed xstream baseline
  core::EngineOptions options;
};

struct RunStats {
  double wall_seconds = 0.0;
  std::uint32_t iterations = 0;
  std::uint64_t edge_input_read = 0;  // edges + stay roles, bytes read
  std::uint64_t total_read = 0;
  std::uint64_t total_written = 0;
  std::uint64_t stay_edges_written = 0;
  std::uint32_t trims_started = 0;
  std::uint32_t trims_committed = 0;
  std::uint32_t trims_cancelled = 0;
  std::uint32_t partitions_skipped = 0;
};

struct Dataset {
  std::string name;
  graph::GraphMeta meta;
  std::uint32_t partitions = 0;
  std::string root;                          // per-role device roots
  std::vector<BfsProgram::State> reference;  // inmem ground truth
  graph::PartitionedGraph pg;
};

/// Generates and partitions on unthrottled devices (setup is free);
/// each measured run then opens fresh modelled devices on the same
/// roots, so counters and the modelled timeline start at zero.
Dataset make_dataset(const std::string& root, const std::string& name,
                     const graph::ChunkedEdgeSource& source,
                     std::uint32_t partitions) {
  Dataset ds;
  ds.name = name;
  ds.partitions = partitions;
  ds.root = root;
  io::Device edges(root + "/edges", io::DeviceModel::unthrottled());
  ds.meta = graph::write_generated(
      edges, name, source.num_vertices(), source.seed(), source.undirected(),
      [&](const graph::EdgeSink& sink) { source.generate(sink); });
  ds.pg = graph::partition_edge_list(edges, ds.meta, partitions);
  ds.reference = inmem::run_graph(edges, ds.meta, BfsProgram{.root = 0}).states;
  return ds;
}

RunStats run_config(const Dataset& ds, const Config& cfg) {
  // One modelled HDD per role: edge_input_read is exactly the bytes the
  // scatter phase pulled from the partition/stay inputs.
  const io::DeviceModel hdd = io::DeviceModel::hdd();
  io::Device edges(ds.root + "/edges", hdd);
  io::Device state(ds.root + "/state", hdd);
  io::Device updates(ds.root + "/updates", hdd);
  io::Device stay(ds.root + "/stay", hdd);
  io::StoragePlan plan = io::StoragePlan::single(edges)
                             .assign(io::Role::kState, state)
                             .assign(io::Role::kUpdates, updates)
                             .assign(io::Role::kStay, stay);
  // ds.pg is pure metadata; the partition files it names were laid down
  // once (uncharged) at setup and are re-read here through the model.
  const graph::PartitionedGraph& pg = ds.pg;

  RunStats stats;
  Stopwatch sw;
  std::vector<BfsProgram::State> states;
  if (cfg.use_core) {
    const auto result = core::run(pg, plan, BfsProgram{.root = 0}, cfg.options);
    stats.wall_seconds = sw.seconds();
    stats.iterations = result.iterations;
    stats.stay_edges_written = result.stay_edges_written;
    stats.trims_started = result.trims_started;
    stats.trims_committed = result.trims_committed;
    stats.trims_cancelled = result.trims_cancelled;
    for (const auto& it : result.per_iteration) {
      stats.partitions_skipped += it.partitions_skipped;
    }
    states = result.states;
  } else {
    xstream::EngineOptions options;
    options.reader = cfg.options.reader;
    options.write_buffer_bytes = cfg.options.write_buffer_bytes;
    const auto result = xstream::run(pg, plan, BfsProgram{.root = 0}, options);
    stats.wall_seconds = sw.seconds();
    stats.iterations = result.iterations;
    for (const auto& it : result.per_iteration) {
      stats.partitions_skipped += it.partitions_skipped;
    }
    states = result.states;
  }

  FB_CHECK_MSG(states.size() == ds.reference.size() &&
                   std::memcmp(states.data(), ds.reference.data(),
                               states.size() * sizeof(BfsProgram::State)) == 0,
               cfg.label << " on " << ds.name
                         << " diverged from the in-memory reference");

  stats.edge_input_read =
      edges.stats().bytes_read() + stay.stats().bytes_read();
  for (const io::Device* dev : {&edges, &state, &updates, &stay}) {
    stats.total_read += dev->stats().bytes_read();
    stats.total_written += dev->stats().bytes_written();
  }
  return stats;
}

std::vector<Config> rmat_matrix() {
  std::vector<Config> configs;
  configs.push_back({"xstream", "x-stream baseline (no trim)", false, {}});

  Config c;
  c.options.trim = false;
  configs.push_back({"core_no_trim", "core, trimming off", true, c.options});

  c = Config{};  // eager: the engine default, trims every scan
  configs.push_back({"core_eager", "core, eager trim", true, c.options});

  c = Config{};
  c.options.trim_start_round = 2;
  configs.push_back(
      {"core_delayed", "core, trim from round 2", true, c.options});

  c = Config{};
  c.options.trim_min_frontier_fraction = 0.05;
  configs.push_back(
      {"core_frontier_gate", "core, trim at >=5% frontier", true, c.options});

  c = Config{};
  c.options.trim_min_dead_fraction = 0.25;
  configs.push_back(
      {"core_dead_gate", "core, trim at >=25% dead", true, c.options});

  c = Config{};
  c.options.grace_timeout_seconds = 0.0;
  configs.push_back(
      {"core_zero_grace", "core, eager + zero grace", true, c.options});
  return configs;
}

std::vector<Config> grid_matrix() {
  std::vector<Config> configs;
  configs.push_back({"xstream", "x-stream baseline (no trim)", false, {}});

  Config c;
  c.options.trim = false;
  configs.push_back({"core_no_trim", "core, trimming off", true, c.options});

  c = Config{};
  configs.push_back({"core_eager", "core, eager trim", true, c.options});

  // The §II-C3 guard: thin frontiers + little death per round must keep
  // the trimmer quiet, so the gated config tracks the no-trim numbers.
  c = Config{};
  c.options.trim_min_dead_fraction = 0.25;
  c.options.trim_min_frontier_fraction = 0.02;
  configs.push_back({"core_gated", "core, gated (25% dead & 2% frontier)",
                     true, c.options});
  return configs;
}

void report(Json& json, const Dataset& ds, const std::vector<Config>& configs,
            std::vector<RunStats>& out) {
  std::cout << "\n--- " << ds.name << ": " << ds.meta.num_vertices
            << " vertices, " << ds.meta.num_edges << " edges, P="
            << ds.partitions << " ---\n";
  std::printf("  %-38s %9s %5s %12s %12s %11s %7s %7s %6s\n", "config",
              "time(s)", "iters", "edge-read", "total-write", "stay-edges",
              "commit", "cancel", "skips");
  json.open(ds.name);
  json.integer("vertices", ds.meta.num_vertices);
  json.integer("edges", ds.meta.num_edges);
  json.integer("partitions", ds.partitions);
  for (const Config& cfg : configs) {
    const RunStats s = run_config(ds, cfg);
    out.push_back(s);
    std::printf("  %-38s %9.3f %5u %12llu %12llu %11llu %7u %7u %6u\n",
                cfg.label.c_str(), s.wall_seconds, s.iterations,
                static_cast<unsigned long long>(s.edge_input_read),
                static_cast<unsigned long long>(s.total_written),
                static_cast<unsigned long long>(s.stay_edges_written),
                s.trims_committed, s.trims_cancelled, s.partitions_skipped);
    json.open(cfg.key);
    json.number("wall_seconds", s.wall_seconds);
    json.integer("iterations", s.iterations);
    json.integer("edge_input_bytes_read", s.edge_input_read);
    json.integer("total_bytes_read", s.total_read);
    json.integer("total_bytes_written", s.total_written);
    json.integer("stay_edges_written", s.stay_edges_written);
    json.integer("trims_started", s.trims_started);
    json.integer("trims_committed", s.trims_committed);
    json.integer("trims_cancelled", s.trims_cancelled);
    json.integer("partitions_skipped", s.partitions_skipped);
    json.close();
  }
  json.close();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_pr4.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::cerr << "usage: ablation_trimming [--quick] [--out=FILE]\n";
      return 2;
    }
  }
  init_log_level_from_env();

  TempDir workspace("ablation_trimming");
  const Dataset rmat = make_dataset(
      workspace.str() + "/rmat", "rmat",
      graph::RmatSource({.scale = quick ? 14u : 18u, .edge_factor = 16,
                         .seed = 20160523}),
      /*partitions=*/4);
  const std::uint32_t side = quick ? 64 : 128;
  const Dataset grid = make_dataset(
      workspace.str() + "/grid", "grid",
      graph::Grid2dSource({.width = side, .height = side}),
      /*partitions=*/2);

  Json json;
  json.text("bench", "ablation_trimming");
  json.text("mode", quick ? "quick" : "full");
  json.text("program", "bfs");

  std::vector<RunStats> rmat_stats;
  report(json, rmat, rmat_matrix(), rmat_stats);
  std::vector<RunStats> grid_stats;
  report(json, grid, grid_matrix(), grid_stats);

  // Headline ratios: eager trim vs the untrimmed x-stream baseline on
  // R-MAT (index 2 vs 0), and the gated config vs no-trim on the grid
  // (index 3 vs 1, both core so the comparison isolates the trigger).
  const double rmat_cut =
      1.0 - static_cast<double>(rmat_stats[2].edge_input_read) /
                static_cast<double>(rmat_stats[0].edge_input_read);
  const double grid_gated_ratio =
      static_cast<double>(grid_stats[3].edge_input_read) /
      static_cast<double>(grid_stats[1].edge_input_read);
  std::cout << "\nrmat: eager trimming cuts edge-input bytes read by "
            << rmat_cut * 100.0 << "% vs the x-stream baseline\n"
            << "grid: gated trimming reads "
            << grid_gated_ratio * 100.0
            << "% of the no-trim edge-input bytes (100% = no regression)\n";
  json.open("headline");
  json.number("rmat_eager_edge_read_cut_vs_xstream", rmat_cut);
  json.number("grid_gated_edge_read_ratio_vs_no_trim", grid_gated_ratio);
  json.close();

  std::ofstream out(out_path);
  FB_CHECK_MSG(out.good(), "cannot write " << out_path);
  out << json.str();
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
