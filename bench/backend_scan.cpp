// backend_scan — the PR 10 acceptance microbench (BENCH_pr10.json).
//
// Two workloads across the backend matrix:
//
// 1. Streaming scan (informative table): stream a big file through the
//    storage layer's readers on
//      * modelled-unthrottled — the accounting-only token bucket, i.e.
//        the cost of the storage layer itself (page-cache memcpy speed),
//      * real-buffered        — real backend, O_DIRECT off, at qd 1
//        (plain synchronous reads) and qd 8 (prefetch ring),
//      * real-io_uring        — real backend, O_DIRECT + io_uring, same
//        two depths; qd 8 streams through the N-deep PrefetchReader
//        ring, whose fetcher submits every free slot as ONE ring batch.
//    Sequential streams saturate most devices at qd=1 — this table says
//    what the storage stack costs, not what depth buys.
//
// 2. Scattered block reads (the CHECKed headline): random 64 KB
//    positional reads — the shape the block-coalesced bottom-up reader
//    and the chunked scatter readers actually submit — one at a time
//    synchronously (qd=1) vs batched through Device::read_batch as one
//    ring submission (qd=8). With io_uring available, the qd=8 batch
//    must beat qd=1 synchronous by >= 1.2x — keeping the queue full
//    has to buy real device parallelism, or the ring plumbing is dead
//    weight. Where io_uring is unavailable the check is SKIPPED and
//    the skip is recorded in the JSON (CI stays green, the gap stays
//    visible).
//
// Results land in BENCH_pr10.json (--out=FILE); --quick shrinks the
// file for CI.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "common/temp_dir.hpp"
#include "json_writer.hpp"
#include "metrics/table.hpp"
#include "storage/device.hpp"
#include "storage/reader_factory.hpp"

namespace {

using namespace fbfs;  // NOLINT(build/namespaces)
using bench::Json;

constexpr std::size_t kReaderBuffer = 1 << 20;
// The scattered workload reads 64 KB blocks — the block-coalesced
// reader's op size, and small enough that per-op latency is a real
// cost at qd=1 (the regime where a full queue actually pays).
constexpr std::size_t kScatterOpBytes = 64 << 10;

std::vector<std::byte> pattern(std::size_t n) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((i * 2654435761u) >> 24);
  }
  return out;
}

void fill_file(io::Device& dev, const std::string& name,
               std::uint64_t bytes) {
  const auto chunk = pattern(4 << 20);
  auto f = dev.open(name, /*truncate=*/true);
  for (std::uint64_t off = 0; off < bytes; off += chunk.size()) {
    f->append(chunk.data(), chunk.size());
  }
  f->sync();
}

struct Arm {
  const char* tag;
  io::BackendOptions backend;
  bool prefetch = false;  // false: plain synchronous reads
};

/// Streams `name` start to finish through the arm's reader; best-of-2
/// MB/s.
double measure_scan(io::Device& dev, const std::string& name,
                    std::uint64_t bytes, bool prefetch) {
  double best = 0.0;
  std::vector<std::byte> sink(kReaderBuffer);
  for (int pass = 0; pass < 2; ++pass) {
    io::ReaderOptions opts = prefetch
                                 ? io::ReaderOptions::prefetch(kReaderBuffer)
                                 : io::ReaderOptions::plain(kReaderBuffer);
    opts.match_device(dev);  // ring depth follows the device queue depth
    Stopwatch sw;
    auto reader = io::open_stream_reader(dev, name, opts);
    std::uint64_t total = 0;
    for (std::size_t got = reader->read(sink.data(), sink.size()); got > 0;
         got = reader->read(sink.data(), sink.size())) {
      total += got;
    }
    FB_CHECK_MSG(total == bytes,
                 "scan returned " << total << " of " << bytes << " bytes");
    best = std::max(best,
                    static_cast<double>(bytes) / 1e6 / sw.seconds());
  }
  return best;
}

/// Random 64 KB positional reads over the whole file, either one
/// synchronous read_at at a time (qd=1) or in read_batch groups of
/// `qd` (one ring submission each). Best-of-2 MB/s.
double measure_scatter(io::Device& dev, io::File& file, std::uint64_t bytes,
                       unsigned qd) {
  const std::uint64_t num_ops = bytes / kScatterOpBytes;
  std::vector<std::uint64_t> order(num_ops);
  for (std::uint64_t i = 0; i < num_ops; ++i) order[i] = i * kScatterOpBytes;
  std::mt19937_64 rng(19);
  std::shuffle(order.begin(), order.end(), rng);

  std::vector<std::vector<std::byte>> bufs(qd);
  for (auto& b : bufs) b.resize(kScatterOpBytes);
  double best = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    Stopwatch sw;
    if (qd == 1) {
      for (std::uint64_t i = 0; i < num_ops; ++i) {
        FB_CHECK_MSG(file.read_at(order[i], bufs[0].data(),
                                  kScatterOpBytes) == kScatterOpBytes,
                     "scattered read short at offset " << order[i]);
      }
    } else {
      for (std::uint64_t i = 0; i < num_ops; i += qd) {
        const unsigned n =
            static_cast<unsigned>(std::min<std::uint64_t>(qd, num_ops - i));
        std::vector<io::ReadRequest> reqs;
        reqs.reserve(n);
        for (unsigned k = 0; k < n; ++k) {
          reqs.push_back(
              {&file, order[i + k], bufs[k].data(), kScatterOpBytes, 0});
        }
        dev.read_batch(reqs);
        for (unsigned k = 0; k < n; ++k) {
          FB_CHECK_MSG(reqs[k].got == kScatterOpBytes,
                       "scattered read short at offset " << reqs[k].offset);
        }
      }
    }
    best = std::max(
        best, static_cast<double>(num_ops * kScatterOpBytes) / 1e6 /
                  sw.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_pr10.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::cerr << "usage: backend_scan [--quick] [--out=FILE]\n";
      return 2;
    }
  }
  init_log_level_from_env();
  const std::uint64_t bytes = (quick ? 128ull : 1024ull) << 20;

  metrics::print_experiment_header(
      "Backend scan — modelled vs real, synchronous vs ring-batched",
      "one streaming scan per backend arm, then scattered 64 KB block "
      "reads; the qd=8 ring batch must beat qd=1 synchronous reads >= "
      "1.2x when io_uring is available");

  TempDir workspace("backend_scan");

  const Arm arms[] = {
      {"modelled-unthrottled", {.kind = io::BackendKind::kModelled}, false},
      {"real-buffered-qd1",
       {.kind = io::BackendKind::kReal, .direct_io = false,
        .use_uring = false, .queue_depth = 1},
       false},
      {"real-buffered-qd8",
       {.kind = io::BackendKind::kReal, .direct_io = false,
        .queue_depth = 8},
       true},
      {"real-uring-qd1",
       {.kind = io::BackendKind::kReal, .queue_depth = 1}, false},
      {"real-uring-qd8",
       {.kind = io::BackendKind::kReal, .queue_depth = 8}, true},
  };

  Json json;
  json.text("bench", "backend_scan");
  json.text("mode", quick ? "quick" : "full");
  json.integer("file_mb", bytes >> 20);

  metrics::Table table({"arm", "backend", "reader", "scan MB/s"});
  bool uring_available = false;
  json.open("arms");
  for (const Arm& arm : arms) {
    io::Device dev(workspace.str() + "/" + arm.tag,
                   io::DeviceModel::unthrottled(), arm.backend);
    fill_file(dev, "scan", bytes);
    const double mbs = measure_scan(dev, "scan", bytes, arm.prefetch);
    const std::string mode = dev.backend_description();
    table.add_row({arm.tag, mode,
                   arm.prefetch ? "prefetch-ring" : "plain-sync",
                   std::to_string(static_cast<std::uint64_t>(mbs))});
    json.open(arm.tag);
    json.text("backend", mode);
    json.text("reader", arm.prefetch ? "prefetch-ring" : "plain-sync");
    json.number("scan_mb_s", mbs);
    json.close();
    if (std::strcmp(arm.tag, "real-uring-qd1") == 0) {
      uring_available = mode.find("uring") != std::string::npos;
    }
  }
  json.close();
  table.print();

  // The CHECKed workload: scattered 64 KB block reads (the coalesced
  // readers' shape), one-at-a-time synchronous vs one ring batch per 8.
  double qd1_sync = 0.0;
  double qd8_ring = 0.0;
  {
    io::Device dev(workspace.str() + "/scatter",
                   io::DeviceModel::unthrottled(),
                   {.kind = io::BackendKind::kReal, .queue_depth = 8});
    fill_file(dev, "blocks", bytes);
    auto f = dev.open("blocks");
    qd1_sync = measure_scatter(dev, *f, bytes, 1);
    qd8_ring = measure_scatter(dev, *f, bytes, 8);
    metrics::Table scatter_table(
        {"scattered 64 KB reads", "MB/s", "vs qd=1"});
    char speedup_str[32];
    std::snprintf(speedup_str, sizeof(speedup_str), "%.2fx",
                  qd1_sync > 0.0 ? qd8_ring / qd1_sync : 0.0);
    scatter_table.add_row(
        {"qd=1 synchronous",
         std::to_string(static_cast<std::uint64_t>(qd1_sync)), "1.00x"});
    scatter_table.add_row(
        {"qd=8 ring batch",
         std::to_string(static_cast<std::uint64_t>(qd8_ring)), speedup_str});
    scatter_table.print();
  }
  json.open("scattered");
  json.integer("op_kb", kScatterOpBytes >> 10);
  json.number("qd1_sync_mb_s", qd1_sync);
  json.number("qd8_ring_mb_s", qd8_ring);
  json.close();

  json.open("headline");
  if (uring_available) {
    const double speedup = qd1_sync > 0.0 ? qd8_ring / qd1_sync : 0.0;
    std::cout << "\nqd=8 ring batch vs qd=1 synchronous (scattered): "
              << speedup << "x\n";
    json.number("qd8_over_qd1", speedup);
    json.text("qd_scaling_check", "checked");
    json.close();
    std::ofstream out(out_path);
    FB_CHECK_MSG(out.good(), "cannot write " << out_path);
    out << json.str();
    out.close();
    std::cout << "wrote " << out_path << "\n";
    // The acceptance bar: a full queue must buy real device
    // parallelism over one-at-a-time synchronous reads.
    FB_CHECK_MSG(speedup >= 1.2,
                 "qd=8 ring batch only " << speedup
                     << "x over qd=1 synchronous reads, expected >= 1.2x");
  } else {
    std::cout << "\nqd scaling check SKIPPED: io_uring unavailable\n";
    json.number("qd8_over_qd1", 0.0);
    json.text("qd_scaling_check", "skipped: io_uring unavailable");
    json.close();
    std::ofstream out(out_path);
    FB_CHECK_MSG(out.good(), "cannot write " << out_path);
    out << json.str();
    out.close();
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
