#include "bench_common.hpp"

#include <atomic>
#include <cstdlib>
#include <filesystem>

#include "common/check.hpp"
#include "common/log.hpp"

namespace fbfs::bench {

namespace {

std::string unique_tag(const char* prefix) {
  static std::atomic<std::uint64_t> counter{0};
  return std::string(prefix) + std::to_string(counter.fetch_add(1));
}

/// Highest-out-degree vertex: the canonical BFS root, reaching most of
/// the graph on every generator we use.
graph::VertexId pick_root(const std::vector<std::uint32_t>& out_degree) {
  graph::VertexId best = 0;
  for (graph::VertexId v = 1; v < out_degree.size(); ++v) {
    if (out_degree[v] > out_degree[best]) best = v;
  }
  return best;
}

}  // namespace

const std::vector<std::string>& evaluation_datasets() {
  static const std::vector<std::string> names = [] {
    // FASTBFS_BENCH_DATASETS=a,b,c restricts the evaluation set (useful
    // for quick shape checks); default matches the paper's four graphs.
    std::vector<std::string> out;
    if (const char* env = std::getenv("FASTBFS_BENCH_DATASETS")) {
      std::string item;
      for (const char* p = env;; ++p) {
        if (*p == ',' || *p == '\0') {
          if (!item.empty()) out.push_back(item);
          item.clear();
          if (*p == '\0') break;
        } else {
          item.push_back(*p);
        }
      }
    }
    if (out.empty()) {
      out = {"rmat18", "rmat20", "twitter_like", "friendster_like"};
    }
    return out;
  }();
  return names;
}

BenchEnv& BenchEnv::instance() {
  static BenchEnv env;
  return env;
}

BenchEnv::BenchEnv() {
  const char* env_dir = std::getenv("FASTBFS_BENCH_DIR");
  root_ = env_dir != nullptr
              ? std::string(env_dir)
              : (std::filesystem::current_path() / "bench_data").string();
  std::filesystem::create_directories(root_);
}

std::string BenchEnv::second_disk_dir(const std::string& tag) {
  const std::string dir = root_ + "/disk2-" + tag;
  std::filesystem::create_directories(dir);
  return dir;
}

const Dataset& BenchEnv::dataset(const std::string& name) {
  for (const Dataset& ds : datasets_) {
    if (ds.name == name) return ds;
  }
  datasets_.push_back(generate(name));
  return datasets_.back();
}

Dataset BenchEnv::generate(const std::string& name) {
  Dataset ds;
  ds.name = name;
  ds.dir = root_;
  io::Device device(root_, io::DeviceModel::unthrottled());

  // Bump when any generator's output changes, so stale datasets (and
  // their partitioned views) are rebuilt.
  constexpr std::uint64_t kGenVersion = 4;

  const std::string bench_meta = root_ + "/" + name + ".bench";
  if (device.exists(name + ".meta") &&
      std::filesystem::exists(bench_meta)) {
    const Config cfg = Config::parse_file(bench_meta);
    if (cfg.get_u64_or("gen_version", 0) == kGenVersion) {
      ds.meta = graph::load_meta(device, name);
      ds.bfs_root = static_cast<graph::VertexId>(cfg.get_u64("bfs_root"));
      return ds;
    }
    // Stale: drop derived files (partitions, markers) of this dataset.
    for (const std::string& file : device.list_files()) {
      if (file.rfind(name + ".", 0) == 0) device.remove(file);
    }
  }

  FB_LOG_INFO << "bench: generating dataset " << name;
  std::uint64_t num_vertices = 0;
  std::function<void(const graph::EdgeSink&)> gen;
  std::uint64_t seed = 1;
  bool undirected = false;

  const auto rmat = [&](std::uint32_t scale) {
    num_vertices = 1ull << scale;
    seed = scale;
    gen = [scale](const graph::EdgeSink& sink) {
      graph::RmatParams params;
      params.scale = scale;
      params.edge_factor = 16;
      params.seed = scale;
      graph::generate_rmat(params, sink);
    };
  };

  if (name == "rmat14") rmat(14);
  else if (name == "rmat16") rmat(16);
  else if (name == "rmat18") rmat(18);
  else if (name == "rmat20") rmat(20);
  else if (name == "twitter_like") {
    graph::TwitterLikeParams params;
    params.num_vertices = 512ull << 10;
    params.num_edges = 8ull << 20;
    params.seed = seed = 1002;
    num_vertices = params.num_vertices;
    gen = [params](const graph::EdgeSink& sink) {
      graph::generate_twitter_like(params, sink);
    };
  } else if (name == "friendster_like") {
    graph::FriendsterLikeParams params;
    params.num_vertices = 1ull << 20;
    params.num_undirected_edges = 6ull << 20;
    params.seed = seed = 1003;
    num_vertices = params.num_vertices;
    undirected = true;
    gen = [params](const graph::EdgeSink& sink) {
      graph::generate_friendster_like(params, sink);
    };
  } else if (name.rfind("grid", 0) == 0) {
    const auto side = static_cast<std::uint32_t>(
        std::strtoul(name.c_str() + 4, nullptr, 10));
    FB_CHECK_MSG(side >= 2, "grid dataset needs a side length: " << name);
    graph::Grid2dParams params;
    params.width = side;
    params.height = side;
    num_vertices = std::uint64_t{side} * side;
    gen = [params](const graph::EdgeSink& sink) {
      graph::generate_grid2d(params, sink);
    };
  } else {
    FB_CHECK_MSG(false, "unknown bench dataset: " << name);
  }

  std::vector<std::uint32_t> out_degree(num_vertices, 0);
  ds.meta = graph::write_generated(
      device, name, num_vertices, seed, undirected,
      [&](const graph::EdgeSink& sink) {
        gen([&](const graph::Edge& e) {
          ++out_degree[e.src];
          sink(e);
        });
      });
  ds.bfs_root = pick_root(out_degree);

  Config bench_cfg;
  bench_cfg.set_u64("bfs_root", ds.bfs_root);
  bench_cfg.set_u64("gen_version", kGenVersion);
  bench_cfg.write_file(bench_meta);
  return ds;
}

graph::PartitionedGraph BenchEnv::partitioned(const Dataset& ds,
                                              std::uint32_t partitions) {
  io::Device device(ds.dir, io::DeviceModel::unthrottled());
  const std::string marker = ds.dir + "/" + ds.name + ".P" +
                             std::to_string(partitions) + ".partmeta";
  graph::PartitionedGraph pg;
  pg.meta = ds.meta;
  pg.layout = graph::PartitionLayout(ds.meta.num_vertices, partitions);
  if (std::filesystem::exists(marker)) {
    const Config cfg = Config::parse_file(marker);
    pg.edges_per_partition.resize(partitions);
    for (std::uint32_t p = 0; p < partitions; ++p) {
      pg.edges_per_partition[p] = cfg.get_u64("p" + std::to_string(p));
    }
    return pg;
  }
  FB_LOG_INFO << "bench: partitioning " << ds.name << " into " << partitions;
  pg = graph::partition_edge_list(device, ds.meta, partitions, 4 << 20);
  Config cfg;
  for (std::uint32_t p = 0; p < partitions; ++p) {
    cfg.set_u64("p" + std::to_string(p), pg.edges_per_partition[p]);
  }
  cfg.write_file(marker);
  return pg;
}

std::optional<Config> BenchEnv::load_cache(const std::string& cache_name) {
  const std::string path = root_ + "/" + cache_name + ".cache";
  if (!std::filesystem::exists(path)) return std::nullopt;
  return Config::parse_file(path);
}

void BenchEnv::store_cache(const std::string& cache_name,
                           const Config& cfg) {
  cfg.write_file(root_ + "/" + cache_name + ".cache");
}

metrics::RunStats run_xstream_bfs(BenchEnv& env, const Dataset& ds,
                                  const RunOptions& options) {
  io::Device device(ds.dir, options.model);
  const auto pg = env.partitioned(ds, options.partitions);
  const auto plan =
      xs::plan_memory(options.memory_budget, ds.meta.num_vertices,
                      ds.meta.num_edges, sizeof(std::uint32_t),
                      options.partitions);

  xs::EngineConfig cfg;
  cfg.vertex_device = &device;
  cfg.edge_device = &device;
  cfg.edge_buffer_bytes = plan.edge_buffer_bytes;
  cfg.update_read_buffer_bytes = plan.update_read_buffer_bytes;
  cfg.update_write_buffer_bytes = plan.update_write_buffer_bytes;
  cfg.threads = options.threads;
  cfg.in_memory_edges = options.allow_in_memory && plan.in_memory_edges;
  cfg.run_tag = unique_tag("xsb");

  xs::BfsProgram program(ds.bfs_root);
  xs::Engine<xs::BfsProgram> engine(cfg, pg);
  auto stats = engine.run(program);
  stats.algorithm = "bfs";
  return stats;
}

metrics::RunStats run_fastbfs(BenchEnv& env, const Dataset& ds,
                              const RunOptions& options) {
  io::Device primary(ds.dir, options.model);
  std::unique_ptr<io::Device> secondary;
  if (options.second_disk) {
    secondary = std::make_unique<io::Device>(
        env.second_disk_dir(ds.name), options.model);
  }
  const auto pg = env.partitioned(ds, options.partitions);
  const auto plan =
      xs::plan_memory(options.memory_budget, ds.meta.num_vertices,
                      ds.meta.num_edges, sizeof(std::uint32_t),
                      options.partitions);

  core::FastBfsConfig cfg;
  cfg.primary = &primary;
  cfg.secondary = secondary.get();
  cfg.apply(plan);
  cfg.in_memory_edges = options.allow_in_memory && plan.in_memory_edges;
  cfg.trimming = options.trimming;
  cfg.selective_scheduling = options.selective;
  cfg.trim_start_round = options.trim_start_round;
  cfg.trim_min_frontier_fraction = options.trim_min_frontier_fraction;
  cfg.trim_min_dead_fraction = options.trim_min_dead_fraction;
  cfg.compress_stay = options.compress_stay;
  cfg.dedup_updates = options.dedup_updates;
  cfg.checkpoint_every = options.checkpoint_every;
  cfg.stay_grace_seconds = options.stay_grace_seconds;
  cfg.threads = options.threads;
  cfg.run_tag = unique_tag("fbb");

  core::BfsLevels program(ds.bfs_root);
  core::FastBfsEngine<core::BfsLevels> engine(cfg, pg);
  auto stats = engine.run(program);
  stats.algorithm = "bfs";
  return stats;
}

metrics::RunStats run_graphchi_bfs(BenchEnv& env, const Dataset& ds,
                                   const RunOptions& options,
                                   metrics::RunStats* preprocess) {
  (void)env;
  // Sharding = GraphChi preprocessing, excluded from execution time as in
  // the paper; it runs unthrottled so the benchmark suite stays fast, and
  // its byte counts are reported separately.
  io::Device build_device(ds.dir, io::DeviceModel::unthrottled());
  gc::ShardingOptions sharding;
  sharding.num_shards = options.partitions;
  sharding.buffer_bytes = 4 << 20;
  sharding.tag = unique_tag("gcs");
  const gc::ShardedGraph sg =
      gc::build_shards(build_device, ds.meta, sharding, preprocess);

  io::Device device(ds.dir, options.model);
  const auto plan =
      xs::plan_memory(options.memory_budget, ds.meta.num_vertices,
                      ds.meta.num_edges, sizeof(std::uint32_t),
                      options.partitions);
  gc::PswConfig cfg;
  cfg.device = &device;
  cfg.buffer_bytes = plan.edge_buffer_bytes;
  cfg.run_tag = unique_tag("gcr");

  gc::GcBfsProgram program(ds.bfs_root);
  gc::PswEngine<gc::GcBfsProgram> engine(cfg, sg);
  auto stats = engine.run(program);
  stats.algorithm = "bfs";

  // Shards are single-use (edge values mutated); drop them.
  for (std::uint32_t s = 0; s < sg.num_shards; ++s) {
    build_device.remove(sg.shard_file(s));
  }
  return stats;
}

Config measure_all_systems(BenchEnv& env, const io::DeviceModel& model,
                           const std::string& cache_name) {
  if (auto cached = env.load_cache(cache_name)) {
    // Only valid if it covers every dataset of this invocation.
    bool complete = true;
    for (const std::string& name : evaluation_datasets()) {
      complete &= cached->has(name + ".fastbfs.seconds");
    }
    if (complete) {
      FB_LOG_INFO << "bench: reusing cached measurements " << cache_name;
      return *cached;
    }
  }
  Config out;
  RunOptions options;
  options.model = model;
  for (const std::string& name : evaluation_datasets()) {
    const Dataset& ds = env.dataset(name);
    const auto record = [&](const std::string& system,
                            const metrics::RunStats& stats) {
      const std::string key = name + "." + system + ".";
      out.set_f64(key + "seconds", stats.wall_seconds);
      out.set_u64(key + "bytes_read", stats.bytes_read);
      out.set_u64(key + "bytes_written", stats.bytes_written);
      out.set_f64(key + "iowait", stats.iowait_ratio());
      out.set_u64(key + "rounds", stats.rounds);
    };
    FB_LOG_INFO << "bench: " << name << " on " << model.name;
    metrics::RunStats prep;
    record("graphchi", run_graphchi_bfs(env, ds, options, &prep));
    out.set_u64(name + ".graphchi.prep_bytes",
                prep.bytes_read + prep.bytes_written);
    record("xstream", run_xstream_bfs(env, ds, options));
    record("fastbfs", run_fastbfs(env, ds, options));
  }
  env.store_cache(cache_name, out);
  return out;
}

}  // namespace fbfs::bench
