#include "bench_common.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/check.hpp"
#include "core/engine.hpp"
#include "graph/multi_bfs.hpp"
#include "inmem/engine.hpp"
#include "storage/storage_plan.hpp"
#include "xstream/engine.hpp"

namespace fbfs::bench {

using graph::BfsProgram;

Dataset make_dataset(const std::string& root, const std::string& name,
                     const graph::ChunkedEdgeSource& source,
                     std::uint32_t partitions) {
  Dataset ds;
  ds.name = name;
  ds.partitions = partitions;
  ds.root = root;
  io::Device edges(root + "/edges", io::DeviceModel::unthrottled());
  std::vector<std::uint32_t> out_degree(source.num_vertices(), 0);
  ds.meta = graph::write_generated(
      edges, name, source.num_vertices(), source.seed(), source.undirected(),
      [&](const graph::EdgeSink& sink) {
        source.generate([&](const graph::Edge& e) {
          ++out_degree[e.src];
          sink(e);
        });
      });
  for (graph::VertexId v = 0; v < out_degree.size(); ++v) {
    if (out_degree[v] > out_degree[ds.bfs_root]) ds.bfs_root = v;
  }
  // Batch roots: top 64 distinct vertices by (out-degree desc, id asc),
  // degree-0 vertices excluded (a rootless query converges in round 0
  // and measures nothing). The first entry reproduces bfs_root's
  // max-degree/smallest-id pick exactly.
  {
    std::vector<graph::VertexId> order(out_degree.size());
    for (graph::VertexId v = 0; v < order.size(); ++v) order[v] = v;
    std::sort(order.begin(), order.end(),
              [&](graph::VertexId a, graph::VertexId b) {
                if (out_degree[a] != out_degree[b]) {
                  return out_degree[a] > out_degree[b];
                }
                return a < b;
              });
    for (const graph::VertexId v : order) {
      if (out_degree[v] == 0) break;
      ds.batch_roots.push_back(v);
      if (ds.batch_roots.size() == graph::kMaxBatchQueries) break;
    }
    FB_CHECK_MSG(!ds.batch_roots.empty() && ds.batch_roots[0] == ds.bfs_root,
                 "batch root order diverged from the bfs_root pick");
  }
  ds.pg = graph::partition_edge_list(edges, ds.meta, partitions);
  // Prebuild the transposed (in-edge) view here, unthrottled: building
  // it is preprocessing, like partitioning; measured bottom-up runs
  // cache-hit the sidecar and pay only for the scans.
  graph::build_transposed_view(io::StoragePlan::single(edges), ds.pg);
  ds.reference =
      inmem::run_graph(edges, ds.meta, BfsProgram{.root = ds.bfs_root}).states;
  return ds;
}

std::vector<Dataset> evaluation_datasets(const std::string& workspace,
                                         bool quick) {
  std::vector<Dataset> sets;
  sets.push_back(make_dataset(
      workspace + "/rmat", "rmat",
      graph::RmatSource(
          {.scale = quick ? 14u : 18u, .edge_factor = 16, .seed = 20160523}),
      /*partitions=*/4));
  sets.push_back(make_dataset(
      workspace + "/twitter_like", "twitter_like",
      graph::TwitterLikeSource(
          {.num_vertices = quick ? (16ull << 10) : (512ull << 10),
           .num_edges = quick ? (256ull << 10) : (8ull << 20),
           .seed = 7}),
      /*partitions=*/4));
  if (!quick) {
    sets.push_back(
        make_dataset(workspace + "/friendster_like", "friendster_like",
                     graph::FriendsterLikeSource({.num_vertices = 1ull << 20,
                                                  .num_undirected_edges =
                                                      6ull << 20,
                                                  .seed = 9}),
                     /*partitions=*/8));
  }
  return sets;
}

metrics::RunStats run_bfs(const Dataset& ds, const SystemOptions& options) {
  // One modelled device per role: the RunStats per-role rows are then
  // exactly this run's traffic, with nothing shared or carried over.
  io::Device edges(ds.root + "/edges", options.model);
  io::Device state(ds.root + "/state", options.model);
  io::Device updates(ds.root + "/updates", options.model);
  io::Device stay(ds.root + "/stay", options.model);
  io::StoragePlan plan = io::StoragePlan::single(edges)
                             .assign(io::Role::kState, state)
                             .assign(io::Role::kUpdates, updates)
                             .assign(io::Role::kStay, stay);

  metrics::Collector collector(options.collector);
  const BfsProgram program{.root = ds.bfs_root};
  std::vector<BfsProgram::State> states;
  if (options.fastbfs) {
    core::EngineOptions engine;
    engine.num_threads = options.num_threads;
    engine.trim_min_dead_fraction = options.trim_min_dead_fraction;
    engine.update_codec = options.update_codec;
    engine.stay_codec = options.update_codec;
    engine.sieve_updates = options.sieve_updates;
    engine.direction = options.direction;
    engine.collector = &collector;
    states = core::run(ds.pg, plan, program, engine).states;
  } else {
    xstream::EngineOptions engine;
    engine.num_threads = options.num_threads;
    engine.update_codec = options.update_codec;
    engine.sieve_updates = options.sieve_updates;
    engine.collector = &collector;
    states = xstream::run(ds.pg, plan, program, engine).states;
  }

  FB_CHECK_MSG(states.size() == ds.reference.size() &&
                   std::memcmp(states.data(), ds.reference.data(),
                               states.size() * sizeof(BfsProgram::State)) == 0,
               (options.fastbfs ? "fastbfs" : "xstream")
                   << " on " << ds.name
                   << " diverged from the in-memory reference");

  metrics::RunStats stats = std::move(collector.run_stats());
  stats.label = ds.name + "/" + (options.fastbfs ? "fastbfs" : "xstream");
  return stats;
}

}  // namespace fbfs::bench
