// Shared benchmark environment for the figure/table reproductions.
//
// Datasets (Table II, scaled ~1/32 — see DESIGN.md substitutions) are
// generated once into a workspace directory and reused by every bench
// binary. Generation, partitioning, and GraphChi sharding run through an
// *unthrottled* view of the workspace (preprocessing is excluded from the
// paper's execution times); measured runs construct throttled HDD/SSD
// Device views over the same directory, so the bytes are identical and
// only the timing model differs.
//
// Figures 4/5/6 share one set of runs; the first binary to execute caches
// the measurements in the workspace and the others reuse them.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/fastbfs_engine.hpp"
#include "core/traversal.hpp"
#include "graph/generators.hpp"
#include "graph/partitioner.hpp"
#include "graphchi/psw_engine.hpp"
#include "metrics/report.hpp"
#include "metrics/run_stats.hpp"
#include "xstream/engine.hpp"

namespace fbfs::bench {

/// One benchmark dataset: generated graph + canonical BFS root (the
/// highest-out-degree vertex, so traversals cover most of the graph).
struct Dataset {
  std::string name;
  graph::GraphMeta meta;
  graph::VertexId bfs_root = 0;
  std::string dir;  // host directory holding the files
};

/// Default scaled working-memory budget (the paper fixed 4 GB against
/// 6–24 GB graphs; we fix 32 MiB against 8–160 MiB graphs).
inline constexpr std::uint64_t kDefaultBudget = 32ull << 20;
inline constexpr std::uint32_t kDefaultPartitions = 8;

/// The four evaluation datasets of Figs. 4–7/10 (paper: rmat25, rmat27,
/// twitter_rv, friendster).
const std::vector<std::string>& evaluation_datasets();

class BenchEnv {
 public:
  /// Workspace under FASTBFS_BENCH_DIR (default: <repo>/build/bench_data).
  static BenchEnv& instance();

  /// Generates (or reuses) a dataset by name: rmat14/16/18/20,
  /// twitter_like, friendster_like, grid512.
  const Dataset& dataset(const std::string& name);

  /// Per-(dataset, partitions) partitioned view, built once.
  graph::PartitionedGraph partitioned(const Dataset& ds,
                                      std::uint32_t partitions);

  const std::string& root_dir() const { return root_; }
  /// Directory for a second disk, separate from the dataset directory.
  std::string second_disk_dir(const std::string& tag);

  /// Results cache shared by figure binaries (Config key-value file).
  std::optional<Config> load_cache(const std::string& cache_name);
  void store_cache(const std::string& cache_name, const Config& cfg);

 private:
  BenchEnv();
  Dataset generate(const std::string& name);

  std::string root_;
  std::vector<Dataset> datasets_;
};

/// Options common to the measured runs.
struct RunOptions {
  io::DeviceModel model = io::DeviceModel::hdd();
  std::uint64_t memory_budget = kDefaultBudget;
  std::uint32_t partitions = kDefaultPartitions;
  unsigned threads = 1;
  bool second_disk = false;       // FastBFS dual-disk placement
  bool trimming = true;           // FastBFS
  bool selective = true;          // FastBFS
  std::uint32_t trim_start_round = 1;
  double trim_min_frontier_fraction = 0.0;
  // The paper's dynamic trim threshold (§II-C3): wait until 25% of all
  // edges are dead before paying for stay rewrites.
  double trim_min_dead_fraction = 0.25;
  bool compress_stay = false;  // §IV-B compression extension
  bool dedup_updates = false;  // same-round update dedup extension
  std::uint32_t checkpoint_every = 0;  // crash-recovery snapshots
  double stay_grace_seconds = 0.1;
  bool allow_in_memory = false;   // honour plan.in_memory_edges (Fig. 9)
};

metrics::RunStats run_xstream_bfs(BenchEnv& env, const Dataset& ds,
                                  const RunOptions& options);
metrics::RunStats run_fastbfs(BenchEnv& env, const Dataset& ds,
                              const RunOptions& options);
/// `preprocess`, when non-null, receives the sharding cost (excluded from
/// the returned execution stats, as in the paper).
metrics::RunStats run_graphchi_bfs(BenchEnv& env, const Dataset& ds,
                                   const RunOptions& options,
                                   metrics::RunStats* preprocess = nullptr);

/// Runs all three systems over the evaluation datasets with the given
/// device model, caching under `cache_name` so sibling figures reuse the
/// measurements. Returns rows keyed "<dataset>.<system>.<field>".
Config measure_all_systems(BenchEnv& env, const io::DeviceModel& model,
                           const std::string& cache_name);

}  // namespace fbfs::bench
