// Shared environment for the figure benches (Figs. 5/6 today).
//
// A Dataset is generated and partitioned once through *unthrottled*
// devices — preprocessing is excluded from the paper's execution
// numbers — and every measured run then opens fresh modelled devices
// (one per storage role, so per-role byte counters are exact) over the
// same file roots. The BFS root is the highest-out-degree vertex, so
// the traversal covers most of the graph instead of a lucky corner.
//
// Measured runs go through a fresh metrics::Collector and return its
// RunStats: per-iteration rows with per-role bytes, modelled device
// busy time (the Fig. 6 iowait input), and per-phase latency
// histograms. Every run is checked bit-identical against the in-memory
// reference before its numbers are reported — a config that changes a
// result is a bug, not a data point.
#pragma once

#include <string>
#include <vector>

#include "engine/types.hpp"
#include "graph/generators.hpp"
#include "graph/partitioner.hpp"
#include "graph/program.hpp"
#include "metrics/collector.hpp"
#include "metrics/run_stats.hpp"
#include "storage/codec.hpp"
#include "storage/device.hpp"

namespace fbfs::bench {

struct Dataset {
  std::string name;
  graph::GraphMeta meta;
  std::uint32_t partitions = 0;
  graph::VertexId bfs_root = 0;  // highest out-degree vertex
  /// Deterministic multi-source batch roots: the top (up to) 64
  /// DISTINCT vertices by out-degree, ties broken by smaller id, only
  /// vertices with at least one out-edge. batch_roots[0] == bfs_root,
  /// so single-query and batch benches traverse from the same anchor.
  std::vector<graph::VertexId> batch_roots;
  std::string root;              // per-role device roots live under here
  std::vector<graph::BfsProgram::State> reference;  // inmem ground truth
  graph::PartitionedGraph pg;
};

/// Generates, partitions, picks the BFS root, and runs the in-memory
/// reference — all on unthrottled devices (setup is free).
Dataset make_dataset(const std::string& root, const std::string& name,
                     const graph::ChunkedEdgeSource& source,
                     std::uint32_t partitions);

/// The evaluation set for Figs. 5/6: r-mat plus the twitter-like
/// power-law graph in quick mode; the full set adds a larger r-mat and
/// the friendster-like symmetric graph (Table II, scaled — the real
/// twitter_rv/friendster crawls are out of scope for a test box).
std::vector<Dataset> evaluation_datasets(const std::string& workspace,
                                         bool quick);

struct SystemOptions {
  io::DeviceModel model = io::DeviceModel::hdd();  // per-role device model
  bool fastbfs = true;           // false: the untrimmed x-stream baseline
  std::uint32_t num_threads = 1;
  /// FastBFS runs the paper's §II-C3 dynamic trim threshold (wait
  /// until 25% of a partition's input is dead before paying for a
  /// rewrite), as Figs. 4-7 do; 0 restores eager trimming.
  double trim_min_dead_fraction = 0.25;
  /// Update-stream codec policy (storage/codec.hpp), threaded into
  /// either engine; fastbfs runs its stay streams under the same
  /// policy, matching the `updates.codec` config default.
  io::codec::Policy update_codec = io::codec::Policy::kRaw;
  /// Staging-buffer sieve (exact for BFS's min-fold gather).
  bool sieve_updates = false;
  /// Traversal-direction strategy (core.direction), FastBFS only — the
  /// x-stream baseline is always top-down. The transposed view is
  /// prebuilt at dataset setup, so measured runs only pay the bottom-up
  /// scans themselves.
  engine::Direction direction = engine::Direction::kTopDown;
  metrics::CollectorOptions collector;
};

/// One measured BFS run through a fresh Collector. The returned
/// RunStats is labelled "<dataset>/<system>" and its rows carry the
/// exact per-role byte deltas from the run's own devices.
metrics::RunStats run_bfs(const Dataset& ds, const SystemOptions& options);

}  // namespace fbfs::bench
