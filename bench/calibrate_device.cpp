// calibrate_device — fits a DeviceModel to a real directory.
//
// The modelled backend's token bucket needs three numbers per disk:
// sequential read/write bandwidth and the per-operation seek cost.
// This tool measures all three on an actual filesystem through the
// real IoBackend (O_DIRECT + io_uring where available, with the same
// fallbacks the engines use), plus random-read bandwidth at several
// queue depths — the curve that says how much a deeper ring actually
// buys on this hardware.
//
//   calibrate_device [--dir=PATH] [--size-mb=N] [--quick] [--out=FILE]
//
// --dir defaults to a scoped temp directory (measuring the filesystem
// /tmp lives on); point it at a mount to calibrate that disk. The tool
// prints the fitted model as a ready-to-paste config snippet and emits
// the raw measurements as JSON (default BENCH_calibrate.json).
//
// Method:
//   * seq read/write: stream `--size-mb` in 4 MB ops, best-of-2 MB/s.
//   * seek: mean latency of 4 KB random direct reads minus the 4 KB
//     transfer time at the measured sequential bandwidth. Buffered
//     fallbacks (tmpfs) measure cache hits — the printed model says so.
//   * qd sweep: random 64 KB reads submitted through Device::read_batch
//     in groups of qd in {1, 2, 4, 8, 16}.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "common/temp_dir.hpp"
#include "json_writer.hpp"
#include "metrics/table.hpp"
#include "storage/device.hpp"

namespace {

using namespace fbfs;  // NOLINT(build/namespaces)
using bench::Json;

constexpr std::size_t kSeqOpBytes = 4 << 20;
constexpr std::size_t kRandOpBytes = 64 << 10;
constexpr std::size_t kSeekOpBytes = 4 << 10;

double mb(std::uint64_t bytes) {
  return static_cast<double>(bytes) / 1e6;
}

io::BackendOptions real_backend() {
  return {.kind = io::BackendKind::kReal};
}

std::vector<std::byte> pattern(std::size_t n) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((i * 2654435761u) >> 24);
  }
  return out;
}

/// Best-of-2 sequential write then read bandwidth over a fresh file.
struct SeqResult {
  double write_mb_s = 0.0;
  double read_mb_s = 0.0;
};

SeqResult measure_sequential(const std::string& dir, std::uint64_t bytes) {
  SeqResult r;
  const auto chunk = pattern(kSeqOpBytes);
  for (int pass = 0; pass < 2; ++pass) {
    io::Device dev(dir, io::DeviceModel::unthrottled(), real_backend());
    Stopwatch sw;
    auto f = dev.open("seq", /*truncate=*/true);
    for (std::uint64_t off = 0; off < bytes; off += chunk.size()) {
      f->append(chunk.data(), chunk.size());
    }
    f->sync();
    r.write_mb_s = std::max(r.write_mb_s, mb(bytes) / sw.seconds());

    std::vector<std::byte> buf(kSeqOpBytes);
    Stopwatch rw;
    for (std::uint64_t off = 0; off < bytes; off += buf.size()) {
      FB_CHECK_MSG(f->read_at(off, buf.data(), buf.size()) == buf.size(),
                   "sequential read came up short at offset " << off);
    }
    r.read_mb_s = std::max(r.read_mb_s, mb(bytes) / rw.seconds());
    dev.remove("seq");
  }
  return r;
}

/// Mean + p50 latency of small random reads (the seek estimate input).
struct SeekResult {
  double mean_ns = 0.0;
  std::uint64_t p50_ns = 0;
  std::uint64_t ops = 0;
};

SeekResult measure_seek(const std::string& dir, std::uint64_t bytes,
                        std::uint64_t ops) {
  io::Device dev(dir, io::DeviceModel::unthrottled(), real_backend());
  const auto chunk = pattern(kSeqOpBytes);
  auto f = dev.open("seek", /*truncate=*/true);
  for (std::uint64_t off = 0; off < bytes; off += chunk.size()) {
    f->append(chunk.data(), chunk.size());
  }
  f->sync();

  std::mt19937_64 rng(42);
  std::uniform_int_distribution<std::uint64_t> dist(
      0, (bytes - kSeekOpBytes) / kSeekOpBytes);
  std::vector<std::byte> buf(kSeekOpBytes);
  const std::uint64_t before = dev.read_latency().count();
  for (std::uint64_t i = 0; i < ops; ++i) {
    f->read_at(dist(rng) * kSeekOpBytes, buf.data(), buf.size());
  }
  const metrics::LatencyHistogram lat = dev.read_latency();
  SeekResult r;
  r.ops = lat.count() - before;
  r.mean_ns = lat.mean();
  r.p50_ns = lat.percentile(0.5);
  dev.remove("seek");
  return r;
}

/// Random 64 KB reads at one queue depth, whole file once, via
/// Device::read_batch in groups of `qd`.
double measure_random_qd(io::Device& dev, io::File& file, std::uint64_t bytes,
                         unsigned qd) {
  const std::uint64_t num_ops = bytes / kRandOpBytes;
  std::vector<std::uint64_t> order(num_ops);
  for (std::uint64_t i = 0; i < num_ops; ++i) order[i] = i * kRandOpBytes;
  std::mt19937_64 rng(7);
  std::shuffle(order.begin(), order.end(), rng);

  std::vector<std::vector<std::byte>> bufs(qd);
  for (auto& b : bufs) b.resize(kRandOpBytes);
  Stopwatch sw;
  for (std::uint64_t i = 0; i < num_ops; i += qd) {
    const unsigned n =
        static_cast<unsigned>(std::min<std::uint64_t>(qd, num_ops - i));
    std::vector<io::ReadRequest> reqs;
    reqs.reserve(n);
    for (unsigned k = 0; k < n; ++k) {
      reqs.push_back({&file, order[i + k], bufs[k].data(), kRandOpBytes, 0});
    }
    dev.read_batch(reqs);
    for (unsigned k = 0; k < n; ++k) {
      FB_CHECK_MSG(reqs[k].got == kRandOpBytes,
                   "random read short at offset " << reqs[k].offset);
    }
  }
  return mb(num_ops * kRandOpBytes) / sw.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_calibrate.json";
  std::string dir;
  std::uint64_t size_mb = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--dir=", 6) == 0) {
      dir = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--size-mb=", 10) == 0) {
      size_mb = std::strtoull(argv[i] + 10, nullptr, 10);
    } else {
      std::cerr << "usage: calibrate_device [--dir=PATH] [--size-mb=N] "
                   "[--quick] [--out=FILE]\n";
      return 2;
    }
  }
  init_log_level_from_env();
  if (size_mb == 0) size_mb = quick ? 64 : 512;
  const std::uint64_t bytes = size_mb << 20;

  std::unique_ptr<TempDir> scratch;
  if (dir.empty()) {
    scratch = std::make_unique<TempDir>("calibrate");
    dir = scratch->str() + "/disk";
  }

  metrics::print_experiment_header(
      "Device calibration — fit a DeviceModel to real hardware",
      "sequential/random bandwidth, seek cost, and the queue-depth curve "
      "measured through the real IoBackend");

  // What the backend actually negotiated on this filesystem.
  std::string backend_mode;
  {
    io::Device probe(dir, io::DeviceModel::unthrottled(), real_backend());
    backend_mode = probe.backend_description();
  }
  std::cout << "directory: " << dir << "\n";
  std::cout << "backend:   " << backend_mode << "\n";
  std::cout << "file size: " << size_mb << " MB\n\n";

  const SeqResult seq = measure_sequential(dir, bytes);
  const std::uint64_t seek_ops = quick ? 2000 : 8000;
  const SeekResult seek = measure_seek(dir, bytes, seek_ops);
  // Transfer component of one small read at the sequential bandwidth;
  // what is left of the mean latency is positioning cost.
  const double transfer_ns = seq.read_mb_s > 0.0
                                 ? mb(kSeekOpBytes) / seq.read_mb_s * 1e9
                                 : 0.0;
  const double seek_ns = std::max(0.0, seek.mean_ns - transfer_ns);

  metrics::Table qd_table({"queue depth", "random read MB/s", "vs qd=1"});
  std::vector<std::pair<unsigned, double>> qd_curve;
  {
    io::Device dev(dir, io::DeviceModel::unthrottled(), real_backend());
    const auto chunk = pattern(kSeqOpBytes);
    auto f = dev.open("rand", /*truncate=*/true);
    for (std::uint64_t off = 0; off < bytes; off += chunk.size()) {
      f->append(chunk.data(), chunk.size());
    }
    f->sync();
    double qd1 = 0.0;
    for (const unsigned qd : {1u, 2u, 4u, 8u, 16u}) {
      const double mbs = measure_random_qd(dev, *f, bytes, qd);
      if (qd == 1) qd1 = mbs;
      qd_curve.emplace_back(qd, mbs);
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    qd1 > 0.0 ? mbs / qd1 : 0.0);
      qd_table.add_row({std::to_string(qd),
                        metrics::Table::bytes(
                            static_cast<std::uint64_t>(mbs * 1e6)) + "/s",
                        speedup});
    }
    dev.remove("rand");
  }
  qd_table.print();

  std::cout << "\nfitted DeviceModel (config snippet):\n"
            << "  # measured by calibrate_device on " << dir << "\n"
            << "  # backend: " << backend_mode << "\n"
            << "  device.read_mb_s = " << static_cast<std::uint64_t>(
                   seq.read_mb_s)
            << "\n"
            << "  device.write_mb_s = " << static_cast<std::uint64_t>(
                   seq.write_mb_s)
            << "\n"
            << "  device.seek_ns = " << static_cast<std::uint64_t>(seek_ns)
            << "\n";
  if (backend_mode.find("buffered") != std::string::npos) {
    std::cout << "  # NOTE: O_DIRECT refused here — numbers include page "
                 "cache effects\n";
  }

  Json json;
  json.text("bench", "calibrate_device");
  json.text("mode", quick ? "quick" : "full");
  json.text("directory", dir);
  json.text("backend", backend_mode);
  json.integer("file_mb", size_mb);
  json.open("sequential");
  json.number("read_mb_s", seq.read_mb_s);
  json.number("write_mb_s", seq.write_mb_s);
  json.close();
  json.open("seek");
  json.integer("ops", seek.ops);
  json.number("mean_ns", seek.mean_ns);
  json.integer("p50_ns", seek.p50_ns);
  json.number("transfer_ns_at_seq_bw", transfer_ns);
  json.close();
  json.open("random_by_queue_depth");
  for (const auto& [qd, mbs] : qd_curve) {
    json.number("qd" + std::to_string(qd) + "_mb_s", mbs);
  }
  json.close();
  json.open("fitted_model");
  json.number("read_mb_s", seq.read_mb_s);
  json.number("write_mb_s", seq.write_mb_s);
  json.number("seek_ns", seek_ns);
  json.close();

  std::ofstream out(out_path);
  FB_CHECK_MSG(out.good(), "cannot write " << out_path);
  out << json.str();
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
