// Fig. 10 — parallel I/O with an additional disk: X-Stream vs FastBFS-1
// vs FastBFS-2. Paper: the second disk gives FastBFS another 1.6–1.7x
// (2.5–3.6x over X-Stream) by separating the stay-out/update writes from
// the big read stream.
#include "bench_common.hpp"
#include "common/log.hpp"

using namespace fbfs;

int main() {
  init_log_level_from_env();
  metrics::print_experiment_header(
      "Fig. 10 — performance with parallel I/O (2 HDDs)",
      "FastBFS-2disks 1.6x–1.7x over FastBFS-1disk and 2.5x–3.6x over "
      "X-Stream");

  bench::BenchEnv& env = bench::BenchEnv::instance();
  // X-Stream comes from the shared Fig. 4 runs; the FastBFS rows run with
  // *eager* trimming (no dead-fraction gate), the paper's base mechanism —
  // the dual-disk win is precisely the overlap of the large early stay
  // writes with the read stream, which the gate would otherwise avoid.
  const Config base = bench::measure_all_systems(
      env, io::DeviceModel::hdd(), "fig456_hdd");

  metrics::Table table({"dataset", "xstream (s)", "fastbfs-1disk (s)",
                        "fastbfs-2disks (s)", "vs 1 disk", "vs xstream"});
  for (const std::string& name : bench::evaluation_datasets()) {
    const bench::Dataset& ds = env.dataset(name);
    bench::RunOptions options;
    options.trim_min_dead_fraction = 0.0;  // eager
    const auto fb1 = bench::run_fastbfs(env, ds, options);
    options.second_disk = true;
    const auto fb2 = bench::run_fastbfs(env, ds, options);
    const double xs = base.get_f64(name + ".xstream.seconds");
    table.add_row({name, metrics::Table::num(xs),
                   metrics::Table::num(fb1.wall_seconds),
                   metrics::Table::num(fb2.wall_seconds),
                   metrics::Table::speedup(fb1.wall_seconds /
                                           fb2.wall_seconds),
                   metrics::Table::speedup(xs / fb2.wall_seconds)});
  }
  table.print();
  table.write_csv_file(env.root_dir() + "/fig10.csv");
  std::cout << "(csv: " << env.root_dir() << "/fig10.csv)\n";
  return 0;
}
