// Fig. 1 — BFS convergence: the fraction of edges still useful shrinks
// rapidly level by level (the observation motivating trimming).
#include "bench_common.hpp"
#include "common/log.hpp"
#include "graph/edge_list.hpp"
#include "inmem/csr.hpp"

using namespace fbfs;

int main() {
  init_log_level_from_env();
  metrics::print_experiment_header(
      "Fig. 1 — BFS convergence profile",
      "useful edges drop from 100% to <88% to <55% within a few levels on "
      "a scale-free graph");

  bench::BenchEnv& env = bench::BenchEnv::instance();
  const bench::Dataset& ds = env.dataset("rmat18");
  io::Device device(ds.dir, io::DeviceModel::unthrottled());
  const auto edges = graph::read_all_edges(device, ds.meta);
  const inmem::Csr g(ds.meta.num_vertices, edges);
  const auto profile = inmem::bfs_level_profile(g, ds.bfs_root);

  metrics::Table table({"level", "frontier vertices", "frontier out-edges",
                        "edges still useful", "useful share"});
  std::uint64_t fired = 0;
  for (std::size_t level = 0; level < profile.size(); ++level) {
    const std::uint64_t useful = ds.meta.num_edges - fired;
    table.add_row(
        {metrics::Table::num(std::uint64_t{level}),
         metrics::Table::num(profile[level].frontier_vertices),
         metrics::Table::num(profile[level].frontier_out_edges),
         metrics::Table::num(useful),
         metrics::Table::percent(
             static_cast<double>(useful) /
             static_cast<double>(ds.meta.num_edges))});
    fired += profile[level].frontier_out_edges;
  }
  table.print();
  table.write_csv_file(env.root_dir() + "/fig1.csv");
  std::cout << "(csv: " << env.root_dir() << "/fig1.csv)\n";
  std::cout << "(edges from never-visited sources stay 'useful' forever: "
            << ds.meta.num_edges - fired << " of " << ds.meta.num_edges
            << ")\n";
  return 0;
}
