// Fig. 4 — execution time on HDD: GraphChi vs X-Stream vs FastBFS.
// Paper: FastBFS 1.6–2.1x faster than X-Stream, 2.4–3.9x than GraphChi.
#include "bench_common.hpp"
#include "common/log.hpp"

using namespace fbfs;

int main() {
  init_log_level_from_env();
  metrics::print_experiment_header(
      "Fig. 4 — execution time over hard disk",
      "FastBFS beats X-Stream by 1.6x–2.1x and GraphChi by 2.4x–3.9x "
      "(GraphChi preprocessing excluded)");

  bench::BenchEnv& env = bench::BenchEnv::instance();
  const Config results = bench::measure_all_systems(
      env, io::DeviceModel::hdd(), "fig456_hdd");

  metrics::Table table({"dataset", "graphchi (s)", "xstream (s)",
                        "fastbfs (s)", "vs xstream", "vs graphchi"});
  for (const std::string& name : bench::evaluation_datasets()) {
    const double gc = results.get_f64(name + ".graphchi.seconds");
    const double xs = results.get_f64(name + ".xstream.seconds");
    const double fb = results.get_f64(name + ".fastbfs.seconds");
    table.add_row({name, metrics::Table::num(gc), metrics::Table::num(xs),
                   metrics::Table::num(fb), metrics::Table::speedup(xs / fb),
                   metrics::Table::speedup(gc / fb)});
  }
  table.print();
  table.write_csv_file(env.root_dir() + "/fig4.csv");
  std::cout << "(csv: " << env.root_dir() << "/fig4.csv)\n";
  return 0;
}
