// Fig. 5 — input data amount, plus the §IV-B overall-data-amount claim.
// Paper: FastBFS reads 65.2%–78.1% less than X-Stream, and even with the
// introduced stay writes reduces overall data moved by 47.7%–60.4%.
#include "bench_common.hpp"
#include "common/log.hpp"

using namespace fbfs;

int main() {
  init_log_level_from_env();
  metrics::print_experiment_header(
      "Fig. 5 — input data amount (HDD runs)",
      "FastBFS input reduced 65.2%–78.1% vs X-Stream; overall data amount "
      "(reads + introduced writes) reduced 47.7%–60.4%");

  bench::BenchEnv& env = bench::BenchEnv::instance();
  const Config results = bench::measure_all_systems(
      env, io::DeviceModel::hdd(), "fig456_hdd");

  metrics::Table table({"dataset", "graphchi read", "xstream read",
                        "fastbfs read", "input cut", "xs total", "fb total",
                        "overall cut"});
  for (const std::string& name : bench::evaluation_datasets()) {
    const auto gc_r = results.get_u64(name + ".graphchi.bytes_read");
    const auto xs_r = results.get_u64(name + ".xstream.bytes_read");
    const auto fb_r = results.get_u64(name + ".fastbfs.bytes_read");
    const auto xs_total = xs_r + results.get_u64(name + ".xstream.bytes_written");
    const auto fb_total = fb_r + results.get_u64(name + ".fastbfs.bytes_written");
    table.add_row(
        {name, metrics::Table::bytes(gc_r), metrics::Table::bytes(xs_r),
         metrics::Table::bytes(fb_r),
         metrics::Table::percent(1.0 - static_cast<double>(fb_r) /
                                           static_cast<double>(xs_r)),
         metrics::Table::bytes(xs_total), metrics::Table::bytes(fb_total),
         metrics::Table::percent(1.0 - static_cast<double>(fb_total) /
                                           static_cast<double>(xs_total))});
  }
  table.print();
  table.write_csv_file(env.root_dir() + "/fig5.csv");
  std::cout << "(csv: " << env.root_dir() << "/fig5.csv)\n";
  return 0;
}
