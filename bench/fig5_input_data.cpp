// Fig. 5 — input data amount, plus the §IV-B overall-data-amount claim.
//
// Paper: FastBFS reads 65.2%–78.1% less input than X-Stream, and even
// counting the stay writes it introduces, moves 47.7%–60.4% less data
// overall. Here both systems run BFS over per-role modelled HDDs, so
// the byte counters — where the cut must show — are exact and
// independent of FASTBFS_TIME_SCALE. The companion shape check: on the
// x-stream baseline, update bytes dominate everything else written
// (BFS state is tiny; the update stream IS the write traffic), which
// is why trimming the read side is where FastBFS wins.
//
// Both systems are verified bit-identical against the in-memory
// reference inside run_bfs. Results land in BENCH_pr6_fig5.json
// (--out=FILE); --quick shrinks the graphs for CI.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "json_writer.hpp"

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/temp_dir.hpp"
#include "metrics/table.hpp"

namespace {

using namespace fbfs;  // NOLINT(build/namespaces)
using bench::Json;

std::uint64_t edge_input_read(const metrics::RunStats& run) {
  // What the scatter phase pulled from its inputs: original partition
  // files plus (FastBFS only) the trimmed stay streams replacing them.
  return run.bytes_read(io::Role::kEdges) + run.bytes_read(io::Role::kStay);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_pr6_fig5.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::cerr << "usage: fig5_input_data [--quick] [--out=FILE]\n";
      return 2;
    }
  }
  init_log_level_from_env();
  metrics::print_experiment_header(
      "Fig. 5 — input data amount (per-role HDD models)",
      "FastBFS reads 65.2%-78.1% less input than X-Stream and moves "
      "47.7%-60.4% less data overall, stay writes included");

  TempDir workspace("fig5_input_data");
  const std::vector<bench::Dataset> datasets =
      bench::evaluation_datasets(workspace.str(), quick);

  Json json;
  json.text("bench", "fig5_input_data");
  json.text("mode", quick ? "quick" : "full");
  json.text("program", "bfs");

  metrics::Table table({"dataset", "xstream read", "fastbfs read",
                        "input cut", "xs moved", "fb moved", "overall cut",
                        "xs update write share", "fb+codec upd wr",
                        "upd write cut"});
  double sum_input_cut = 0.0;
  double sum_overall_cut = 0.0;
  double rmat_update_share = 0.0;
  double rmat_update_write_cut = 0.0;
  for (const bench::Dataset& ds : datasets) {
    bench::SystemOptions options;
    options.fastbfs = false;
    const metrics::RunStats xs = bench::run_bfs(ds, options);
    options.fastbfs = true;
    const metrics::RunStats fb = bench::run_bfs(ds, options);
    // The PR 7 configuration: same trimming engine, update and stay
    // streams under the auto codec with the staging sieve on.
    options.update_codec = io::codec::Policy::kAuto;
    options.sieve_updates = true;
    const metrics::RunStats fbc = bench::run_bfs(ds, options);

    const std::uint64_t xs_read = edge_input_read(xs);
    const std::uint64_t fb_read = edge_input_read(fb);
    const std::uint64_t xs_moved = xs.device_bytes_moved();
    const std::uint64_t fb_moved = fb.device_bytes_moved();
    const double input_cut =
        1.0 - static_cast<double>(fb_read) / static_cast<double>(xs_read);
    const double overall_cut =
        1.0 - static_cast<double>(fb_moved) / static_cast<double>(xs_moved);
    // The Fig. 5 write-side shape: updates dominate what x-stream
    // writes (state write-back is the only other write traffic).
    const double update_share =
        static_cast<double>(xs.bytes_written(io::Role::kUpdates)) /
        static_cast<double>(xs.device_bytes_written());
    // And the PR 7 lever against that shape: codec + sieve vs the raw
    // fastbfs run's update-stream writes.
    const double update_write_cut =
        1.0 - static_cast<double>(fbc.bytes_written(io::Role::kUpdates)) /
                  static_cast<double>(fb.bytes_written(io::Role::kUpdates));
    sum_input_cut += input_cut;
    sum_overall_cut += overall_cut;
    if (ds.name == "rmat") {
      rmat_update_share = update_share;
      rmat_update_write_cut = update_write_cut;
    }

    table.add_row({ds.name, metrics::Table::bytes(xs_read),
                   metrics::Table::bytes(fb_read),
                   metrics::Table::percent(input_cut),
                   metrics::Table::bytes(xs_moved),
                   metrics::Table::bytes(fb_moved),
                   metrics::Table::percent(overall_cut),
                   metrics::Table::percent(update_share),
                   metrics::Table::bytes(
                       fbc.bytes_written(io::Role::kUpdates)),
                   metrics::Table::percent(update_write_cut)});

    json.open(ds.name);
    json.integer("vertices", ds.meta.num_vertices);
    json.integer("edges", ds.meta.num_edges);
    json.integer("partitions", ds.partitions);
    for (const auto* run : {&xs, &fb, &fbc}) {
      json.open(run == &xs ? "xstream"
                           : (run == &fb ? "fastbfs" : "fastbfs_codec"));
      json.integer("iterations", run->iterations.size());
      json.integer("edge_input_bytes_read", edge_input_read(*run));
      json.integer("bytes_read", run->device_bytes_read());
      json.integer("bytes_written", run->device_bytes_written());
      json.integer("bytes_moved", run->device_bytes_moved());
      json.integer("update_bytes_written",
                   run->bytes_written(io::Role::kUpdates));
      json.integer("stay_bytes_written",
                   run->bytes_written(io::Role::kStay));
      json.integer("updates_sieved", run->updates_sieved());
      json.close();
    }
    json.number("input_cut", input_cut);
    json.number("overall_cut", overall_cut);
    json.number("xstream_update_write_share", update_share);
    json.number("codec_update_write_cut", update_write_cut);
    json.close();
  }
  table.print();

  const double n = static_cast<double>(datasets.size());
  std::cout << "\nmean input cut " << (sum_input_cut / n) * 100.0
            << "%, mean overall cut " << (sum_overall_cut / n) * 100.0
            << "%; rmat update write share "
            << rmat_update_share * 100.0 << "%; rmat codec update write cut "
            << rmat_update_write_cut * 100.0 << "%\n";
  json.open("headline");
  json.number("mean_input_cut", sum_input_cut / n);
  json.number("mean_overall_cut", sum_overall_cut / n);
  json.number("rmat_update_write_share", rmat_update_share);
  json.number("rmat_codec_update_write_cut", rmat_update_write_cut);
  json.close();

  std::ofstream out(out_path);
  FB_CHECK_MSG(out.good(), "cannot write " << out_path);
  out << json.str();
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
