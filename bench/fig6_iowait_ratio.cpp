// Fig. 6 — iowait time ratio: share of execution spent blocked on I/O.
// Paper: GraphChi lowest (compute-heavy), FastBFS slightly above X-Stream
// (it removed proportionally more computation than I/O).
#include "bench_common.hpp"
#include "common/log.hpp"

using namespace fbfs;

int main() {
  init_log_level_from_env();
  metrics::print_experiment_header(
      "Fig. 6 — iowait time ratio (HDD runs)",
      "BFS is I/O-bound: X-Stream/FastBFS iowait ratios are high; "
      "GraphChi's is lower because it burns more CPU per byte");

  bench::BenchEnv& env = bench::BenchEnv::instance();
  const Config results = bench::measure_all_systems(
      env, io::DeviceModel::hdd(), "fig456_hdd");

  metrics::Table table(
      {"dataset", "graphchi iowait", "xstream iowait", "fastbfs iowait"});
  for (const std::string& name : bench::evaluation_datasets()) {
    table.add_row(
        {name,
         metrics::Table::percent(results.get_f64(name + ".graphchi.iowait")),
         metrics::Table::percent(results.get_f64(name + ".xstream.iowait")),
         metrics::Table::percent(results.get_f64(name + ".fastbfs.iowait"))});
  }
  table.print();
  table.write_csv_file(env.root_dir() + "/fig6.csv");
  std::cout << "(csv: " << env.root_dir() << "/fig6.csv)\n";
  return 0;
}
