// Fig. 6 — iowait time ratio: the share of execution spent blocked on
// I/O, per iteration and per run.
//
// Paper: BFS is I/O-bound, so both streaming systems sit at high
// iowait; FastBFS lands slightly ABOVE X-Stream because trimming
// removes proportionally more computation (dead-edge scans) than I/O.
//
// The figure's quantity here is the MODELLED iowait: per iteration,
// the bottleneck device's modelled busy time over the round's wall
// time, clamped to [0, 1] (metrics::IterationStats::modelled_iowait).
// NOTE on FASTBFS_TIME_SCALE: compute time does not scale with the
// device model, so shrinking the scale deflates the ratio (wall time
// becomes compute-dominated). Run at FASTBFS_TIME_SCALE=1 for
// paper-comparable absolute ratios; smaller scales keep CI cheap and
// still show both systems' iowait moving together. A host /proc/stat
// sample brackets the runs too, but only as context: on a shared or
// containerised box the host's iowait mixes in every other tenant, so
// the modelled ratio is the number the figure reads.
//
// The full per-run RunStats (per-iteration rows, per-phase histogram
// digests, per-role bytes) is emitted into BENCH_pr6.json — this one
// artifact carries both the Fig. 5 byte shape and the Fig. 6 iowait
// shape. Both systems are verified bit-identical against the
// in-memory reference inside run_bfs. --quick shrinks the graphs for
// CI; --out=FILE overrides the artifact path.
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "json_writer.hpp"

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/temp_dir.hpp"
#include "metrics/cpu_util.hpp"
#include "metrics/table.hpp"

namespace {

using namespace fbfs;  // NOLINT(build/namespaces)
using bench::Json;

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_pr6.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::cerr << "usage: fig6_iowait_ratio [--quick] [--out=FILE]\n";
      return 2;
    }
  }
  init_log_level_from_env();
  metrics::print_experiment_header(
      "Fig. 6 — iowait time ratio (per-role HDD models)",
      "BFS is I/O-bound: both systems run at high iowait, FastBFS "
      "slightly above X-Stream (it removed more compute than I/O)");

  TempDir workspace("fig6_iowait_ratio");
  const std::vector<bench::Dataset> datasets =
      bench::evaluation_datasets(workspace.str(), quick);

  Json json;
  json.text("bench", "fig6_iowait_ratio");
  json.text("mode", quick ? "quick" : "full");
  json.text("program", "bfs");

  const std::optional<metrics::CpuTimes> host_before =
      metrics::sample_cpu_times();

  metrics::Table table({"dataset", "xstream iowait", "fastbfs iowait",
                        "fb - xs", "fb iters"});
  for (const bench::Dataset& ds : datasets) {
    bench::SystemOptions options;
    options.fastbfs = false;
    const metrics::RunStats xs = bench::run_bfs(ds, options);
    options.fastbfs = true;
    const metrics::RunStats fb = bench::run_bfs(ds, options);

    const double xs_iowait = xs.modelled_iowait();
    const double fb_iowait = fb.modelled_iowait();
    table.add_row({ds.name, metrics::Table::percent(xs_iowait),
                   metrics::Table::percent(fb_iowait),
                   metrics::Table::percent(fb_iowait - xs_iowait),
                   metrics::Table::count(fb.iterations.size())});

    // The whole RunStats per system: per-iteration modelled iowait
    // (the Fig. 6 curve), per-role bytes (the Fig. 5 shape), and the
    // per-phase latency digests, in one artifact.
    json.open(ds.name);
    json.integer("vertices", ds.meta.num_vertices);
    json.integer("edges", ds.meta.num_edges);
    json.open("xstream");
    xs.write_json(json);
    json.close();
    json.open("fastbfs");
    fb.write_json(json);
    json.close();
    json.close();
  }
  table.print();

  // Host CPU context only — see the header comment for the caveat.
  if (host_before.has_value()) {
    const std::optional<metrics::CpuTimes> host_after =
        metrics::sample_cpu_times();
    if (host_after.has_value()) {
      const metrics::CpuUsage usage =
          metrics::cpu_usage_between(*host_before, *host_after);
      if (usage.valid) {
        std::cout << "\nhost /proc/stat over the runs: busy "
                  << usage.busy * 100.0 << "%, iowait "
                  << usage.iowait * 100.0
                  << "% (context only: shared/containerised hosts mix "
                     "in other tenants; the modelled ratio above is "
                     "the figure's quantity)\n";
        json.open("host_cpu");
        json.number("busy", usage.busy);
        json.number("iowait", usage.iowait);
        json.close();
      }
    }
  }

  std::ofstream out(out_path);
  FB_CHECK_MSG(out.good(), "cannot write " << out_path);
  out << json.str();
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
