// Fig. 7 — execution time on SSD. Paper: same ranking as HDD; FastBFS
// 1.6–2.3x vs X-Stream, 3.7–5.2x vs GraphChi; each system gains 1.2–2.1x
// from the SSD, FastBFS the most.
#include "bench_common.hpp"
#include "common/log.hpp"

using namespace fbfs;

int main() {
  init_log_level_from_env();
  metrics::print_experiment_header(
      "Fig. 7 — execution time over SSD",
      "trend and ranking match the HDD runs; FastBFS benefits most from "
      "the faster device thanks to its reduced data amount");

  bench::BenchEnv& env = bench::BenchEnv::instance();
  const Config ssd = bench::measure_all_systems(
      env, io::DeviceModel::ssd(), "fig456_ssd");
  const Config hdd = bench::measure_all_systems(
      env, io::DeviceModel::hdd(), "fig456_hdd");

  metrics::Table table({"dataset", "graphchi (s)", "xstream (s)",
                        "fastbfs (s)", "fb vs xs", "fb vs gc",
                        "gc ssd gain", "xs ssd gain", "fb ssd gain"});
  for (const std::string& name : bench::evaluation_datasets()) {
    const double gc = ssd.get_f64(name + ".graphchi.seconds");
    const double xs = ssd.get_f64(name + ".xstream.seconds");
    const double fb = ssd.get_f64(name + ".fastbfs.seconds");
    table.add_row(
        {name, metrics::Table::num(gc), metrics::Table::num(xs),
         metrics::Table::num(fb), metrics::Table::speedup(xs / fb),
         metrics::Table::speedup(gc / fb),
         metrics::Table::speedup(hdd.get_f64(name + ".graphchi.seconds") / gc),
         metrics::Table::speedup(hdd.get_f64(name + ".xstream.seconds") / xs),
         metrics::Table::speedup(hdd.get_f64(name + ".fastbfs.seconds") /
                                 fb)});
  }
  table.print();
  table.write_csv_file(env.root_dir() + "/fig7.csv");
  std::cout << "(csv: " << env.root_dir() << "/fig7.csv)\n";
  return 0;
}
