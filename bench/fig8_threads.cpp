// Fig. 8 — performance vs number of threads (1/2/4/8) on the tuning
// graph. Paper: flat — disk-bound BFS gains nothing from extra compute
// threads, and oversubscription beyond the core count costs a little.
#include "bench_common.hpp"
#include "common/log.hpp"

using namespace fbfs;

int main() {
  init_log_level_from_env();
  metrics::print_experiment_header(
      "Fig. 8 — execution time vs thread count (rmat16, HDD)",
      "both systems are I/O-bound: extra threads do not help, and "
      "oversubscription adds scheduling overhead");

  bench::BenchEnv& env = bench::BenchEnv::instance();
  const bench::Dataset& ds = env.dataset("rmat16");

  metrics::Table table({"threads", "xstream (s)", "fastbfs (s)"});
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    bench::RunOptions options;
    options.threads = threads;
    const auto xs = bench::run_xstream_bfs(env, ds, options);
    const auto fb = bench::run_fastbfs(env, ds, options);
    table.add_row({metrics::Table::num(std::uint64_t{threads}),
                   metrics::Table::num(xs.wall_seconds),
                   metrics::Table::num(fb.wall_seconds)});
  }
  table.print();
  table.write_csv_file(env.root_dir() + "/fig8.csv");
  std::cout << "(csv: " << env.root_dir() << "/fig8.csv)\n";
  return 0;
}
