// Fig. 8 — execution time vs thread count (paper §IV, Fig. 8), plus
// the PR 5 scatter-scaling headline.
//
// Part A reproduces the paper's shape: BFS on R-MAT with every storage
// role on ONE modelled HDD. The device timeline serialises, so the run
// is transfer-bound and the curve over T ∈ {1,2,4,8} is flat — extra
// threads cannot make one disk spin faster. This is the paper's point:
// FastBFS does not need a thread army to saturate a single server.
//
// Part B is the configuration where threads DO pay: a compute-weighted
// regime where the edge-input devices stream at a rate calibrated to
// this machine's scatter compute speed (sleep ~= compute per chunk).
// With T=1 the engine alternates read-wait and compute; with T>1 the
// chunked scatter overlaps one worker's modelled read latency with
// another worker's compute, so the scatter phase approaches
// max(transfer, compute) instead of their sum — ideally ~2x. The
// calibrated model uses a fixed time_scale of 1.0 (FASTBFS_TIME_SCALE
// is deliberately NOT applied) so the compute/transfer ratio — the
// variable under study — is identical locally and in CI.
//
// Every run is checked bit-identical against the in-memory reference
// before its numbers are reported. Results land in BENCH_pr5.json
// (--out=FILE); --quick shrinks the graphs for CI.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "json_writer.hpp"

#include "common/bitmap.hpp"
#include "common/check.hpp"
#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "common/temp_dir.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/partitioner.hpp"
#include "inmem/engine.hpp"
#include "xstream/engine.hpp"

namespace {

using namespace fbfs;  // NOLINT(build/namespaces)
using bench::Json;
using graph::BfsProgram;

struct Dataset {
  std::string name;
  graph::GraphMeta meta;
  std::uint32_t partitions = 0;
  std::string root;
  std::vector<BfsProgram::State> reference;
  graph::PartitionedGraph pg;
};

/// Generates and partitions on unthrottled devices (setup is free);
/// each measured run then opens fresh modelled devices on the same
/// roots, so counters and the modelled timeline start at zero.
Dataset make_dataset(const std::string& root, const std::string& name,
                     const graph::ChunkedEdgeSource& source,
                     std::uint32_t partitions) {
  Dataset ds;
  ds.name = name;
  ds.partitions = partitions;
  ds.root = root;
  io::Device edges(root + "/edges", io::DeviceModel::unthrottled());
  ds.meta = graph::write_generated(
      edges, name, source.num_vertices(), source.seed(), source.undirected(),
      [&](const graph::EdgeSink& sink) { source.generate(sink); });
  ds.pg = graph::partition_edge_list(edges, ds.meta, partitions);
  ds.reference = inmem::run_graph(edges, ds.meta, BfsProgram{.root = 0}).states;
  return ds;
}

struct RunStats {
  double wall_seconds = 0.0;
  double scatter_seconds = 0.0;  // summed over iterations
  double gather_seconds = 0.0;
  std::uint32_t iterations = 0;
};

void check_states(const Dataset& ds, const std::string& label,
                  const std::vector<BfsProgram::State>& states) {
  FB_CHECK_MSG(states.size() == ds.reference.size() &&
                   std::memcmp(states.data(), ds.reference.data(),
                               states.size() * sizeof(BfsProgram::State)) == 0,
               label << " on " << ds.name
                     << " diverged from the in-memory reference");
}

RunStats run_xstream(const Dataset& ds, const io::StoragePlan& plan,
                     const io::ReaderOptions& reader, std::uint32_t threads) {
  xstream::EngineOptions options;
  options.reader = reader;
  options.num_threads = threads;
  Stopwatch sw;
  const auto result = xstream::run(ds.pg, plan, BfsProgram{.root = 0}, options);
  RunStats stats;
  stats.wall_seconds = sw.seconds();
  stats.iterations = result.iterations;
  for (const auto& it : result.per_iteration) {
    stats.scatter_seconds += it.scatter_seconds;
    stats.gather_seconds += it.gather_seconds;
  }
  check_states(ds, "xstream T=" + std::to_string(threads), result.states);
  return stats;
}

RunStats run_core(const Dataset& ds, const io::StoragePlan& plan,
                  const core::EngineOptions& options) {
  Stopwatch sw;
  const auto result = core::run(ds.pg, plan, BfsProgram{.root = 0}, options);
  RunStats stats;
  stats.wall_seconds = sw.seconds();
  stats.iterations = result.iterations;
  for (const auto& it : result.per_iteration) {
    stats.scatter_seconds += it.scatter_seconds;
    stats.gather_seconds += it.gather_seconds;
  }
  check_states(ds, "core T=" + std::to_string(options.num_threads),
               result.states);
  return stats;
}

/// Part A: one modelled HDD carries every role (FASTBFS_TIME_SCALE
/// applies, so CI keeps quick mode cheap). The paper's flat curve.
void part_a(Json& json, const Dataset& ds) {
  std::cout << "\n--- Part A: single modelled HDD, all roles ("
            << ds.meta.num_edges << " edges, P=" << ds.partitions << ") ---\n";
  std::printf("  %7s %12s %12s\n", "threads", "xstream (s)", "fastbfs (s)");
  json.open("part_a");
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    io::Device disk(ds.root + "/edges", io::DeviceModel::hdd());
    const io::StoragePlan plan = io::StoragePlan::single(disk);
    const RunStats xs = run_xstream(ds, plan, io::ReaderOptions::plain(),
                                    threads);
    core::EngineOptions fb_options;
    fb_options.num_threads = threads;
    const RunStats fb = run_core(ds, plan, fb_options);
    std::printf("  %7u %12.3f %12.3f\n", threads, xs.wall_seconds,
                fb.wall_seconds);
    json.open("t" + std::to_string(threads));
    json.number("xstream_wall_seconds", xs.wall_seconds);
    json.number("fastbfs_wall_seconds", fb.wall_seconds);
    json.close();
  }
  json.close();
}

/// Measures how fast THIS machine's scatter loop chews edges (bitmap
/// test + owner bucketing, the parallel worker's inner loop), so Part
/// B's device model can be pinned at sleep ~= compute per chunk.
double calibrate_compute_mb_s(std::uint32_t partitions) {
  constexpr std::uint64_t kEdges = 1u << 20;
  constexpr graph::VertexId kVertices = 1u << 16;
  std::vector<graph::Edge> edges(kEdges);
  std::uint64_t x = 0x2545F4914F6CDD1Dull;  // splitmix-ish synth stream
  for (graph::Edge& e : edges) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    e.src = static_cast<graph::VertexId>((x >> 20) % kVertices);
    e.dst = static_cast<graph::VertexId>((x >> 36) % kVertices);
  }
  AtomicBitmap active(kVertices);
  for (graph::VertexId v = 0; v < kVertices; v += 3) active.set(v);
  const graph::VertexId per_part =
      (kVertices + partitions - 1) / partitions;

  double best_rate = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    std::vector<std::vector<graph::Edge>> buckets(partitions);
    Stopwatch sw;
    for (const graph::Edge& e : edges) {
      if (!active.test(e.src)) continue;
      buckets[e.dst / per_part].push_back({e.dst, e.src});
    }
    const double secs = sw.seconds();
    std::uint64_t sink = 0;
    for (const auto& b : buckets) sink += b.size();
    FB_CHECK(sink > 0);
    const double rate =
        static_cast<double>(kEdges * sizeof(graph::Edge)) / secs / 1.0e6;
    if (rate > best_rate) best_rate = rate;
  }
  return best_rate;
}

struct PartBConfig {
  std::string key;    // json section
  bool use_core = false;
  bool trim = false;  // core only
};

/// Part B: the PR 5 headline. Edge-input roles (edges + stay) on a
/// calibrated fixed-rate streaming model, state/updates unthrottled,
/// plain chunk-sized reads at every T so the only variable is how many
/// workers overlap read latency with compute. The scaling rows are
/// xstream and core-with-trim-off (identical edge input every round);
/// core-with-trim-on is reported too: trimming deletes most of the
/// edge input after round 1, so later rounds are compute-only and its
/// aggregate speedup is structurally lower — trimming and threading
/// compete for the same wasted I/O.
void part_b(Json& json, const Dataset& ds, std::size_t chunk_bytes,
            double& xstream_speedup, double& core_speedup) {
  const double compute_mb_s = calibrate_compute_mb_s(ds.partitions);
  // The calibration loop is leaner than the real scatter worker (no
  // batch bookkeeping, no locked flush), so the engine chews bytes
  // slower than the calibrated rate; scale the model down so the
  // modelled transfer still lands near the engine's true compute
  // speed. Clamp so a pathological calibration cannot produce sleeps
  // too tiny to time or so long the bench crawls.
  const double rate =
      std::min(2000.0, std::max(50.0, 0.5 * compute_mb_s));
  io::DeviceModel model;
  model.name = "calibrated-stream";
  model.read_mb_s = rate;
  model.write_mb_s = rate;
  model.seek_ns = 0;        // pure streaming: ratio is the variable
  model.time_scale = 1.0;   // fixed on purpose; see file comment

  std::cout << "\n--- Part B: compute-weighted (calibrated " << rate
            << " MB/s edge stream, chunk " << chunk_bytes << " B, "
            << ds.meta.num_edges << " edges) ---\n";
  std::printf("  %-16s %7s %12s %12s %10s\n", "engine", "threads",
              "scatter (s)", "wall (s)", "iters");

  json.open("part_b");
  json.number("calibrated_compute_mb_s", compute_mb_s);
  json.number("model_read_mb_s", rate);
  json.integer("chunk_bytes", chunk_bytes);
  json.integer("edges", ds.meta.num_edges);

  const io::ReaderOptions reader = io::ReaderOptions::plain(chunk_bytes);
  const std::vector<PartBConfig> configs = {
      {"xstream", false, false},
      {"fastbfs_no_trim", true, false},
      {"fastbfs_trim", true, true},
  };
  std::vector<double> scatter_t1(configs.size(), 0.0);
  std::vector<double> scatter_t4(configs.size(), 0.0);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const PartBConfig& cfg = configs[i];
    json.open(cfg.key);
    for (const std::uint32_t threads : {1u, 2u, 4u}) {
      io::Device edges(ds.root + "/edges", model);
      io::Device state(ds.root + "/state", io::DeviceModel::unthrottled());
      io::Device updates(ds.root + "/updates", io::DeviceModel::unthrottled());
      io::Device stay(ds.root + "/stay", model);
      const io::StoragePlan plan = io::StoragePlan::single(edges)
                                       .assign(io::Role::kState, state)
                                       .assign(io::Role::kUpdates, updates)
                                       .assign(io::Role::kStay, stay);
      RunStats s;
      if (cfg.use_core) {
        core::EngineOptions options;
        options.reader = reader;
        options.num_threads = threads;
        options.trim = cfg.trim;
        s = run_core(ds, plan, options);
      } else {
        s = run_xstream(ds, plan, reader, threads);
      }
      std::printf("  %-16s %7u %12.3f %12.3f %10u\n", cfg.key.c_str(),
                  threads, s.scatter_seconds, s.wall_seconds, s.iterations);
      if (threads == 1) scatter_t1[i] = s.scatter_seconds;
      if (threads == 4) scatter_t4[i] = s.scatter_seconds;
      json.open("t" + std::to_string(threads));
      json.number("scatter_seconds", s.scatter_seconds);
      json.number("gather_seconds", s.gather_seconds);
      json.number("wall_seconds", s.wall_seconds);
      json.integer("iterations", s.iterations);
      json.close();
    }
    json.close();
  }
  json.number("fastbfs_trim_scatter_speedup_4t",
              scatter_t1[2] / scatter_t4[2]);
  json.close();

  xstream_speedup = scatter_t1[0] / scatter_t4[0];
  core_speedup = scatter_t1[1] / scatter_t4[1];
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_pr5.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::cerr << "usage: fig8_threads [--quick] [--out=FILE]\n";
      return 2;
    }
  }
  init_log_level_from_env();

  TempDir workspace("fig8_threads");
  const Dataset rmat = make_dataset(
      workspace.str() + "/rmat", "rmat",
      graph::RmatSource({.scale = quick ? 14u : 16u, .edge_factor = 16,
                         .seed = 20160523}),
      /*partitions=*/4);
  // Part B's device model ignores FASTBFS_TIME_SCALE, so a bigger graph
  // is what keeps the measured phases long enough to dwarf per-chunk
  // scheduling overheads (quick mode stays under a few seconds).
  const Dataset rmat_b = make_dataset(
      workspace.str() + "/rmat_b", "rmat_b",
      graph::RmatSource({.scale = quick ? 16u : 17u, .edge_factor = 16,
                         .seed = 20160523}),
      /*partitions=*/4);

  Json json;
  json.text("bench", "fig8_threads");
  json.text("mode", quick ? "quick" : "full");
  json.text("program", "bfs");
  json.open("graph");
  json.integer("vertices", rmat.meta.num_vertices);
  json.integer("edges", rmat.meta.num_edges);
  json.integer("partitions", rmat.partitions);
  json.close();

  part_a(json, rmat);

  double xstream_speedup = 0.0;
  double core_speedup = 0.0;
  part_b(json, rmat_b, /*chunk_bytes=*/128u << 10, xstream_speedup,
         core_speedup);

  std::cout << "\nscatter speedup at 4 threads vs 1 (compute-weighted): "
            << "xstream " << xstream_speedup << "x, fastbfs " << core_speedup
            << "x (target >= 1.5x)\n";
  json.open("headline");
  json.number("xstream_scatter_speedup_4t", xstream_speedup);
  json.number("fastbfs_scatter_speedup_4t", core_speedup);
  json.close();

  std::ofstream out(out_path);
  FB_CHECK_MSG(out.good(), "cannot write " << out_path);
  out << json.str();
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
