// Fig. 9 — performance vs working-memory budget on the tuning graph.
// Paper: flat from 256 MB to 2 GB, then a cliff at 4 GB when the whole
// graph fits and X-Stream's in-memory streaming kicks in. Budgets here
// are scaled to the 8 MiB rmat16: 2–32 MiB.
#include "bench_common.hpp"
#include "common/log.hpp"
#include "common/units.hpp"

using namespace fbfs;

int main() {
  init_log_level_from_env();
  metrics::print_experiment_header(
      "Fig. 9 — execution time vs memory budget (rmat16, HDD)",
      "flat while disk-bound; sharp drop once the graph fits in memory "
      "(the paper's 4 GB point)");

  bench::BenchEnv& env = bench::BenchEnv::instance();
  const bench::Dataset& ds = env.dataset("rmat16");

  metrics::Table table(
      {"budget", "xstream (s)", "fastbfs (s)", "in-memory?"});
  for (const std::uint64_t budget_mib : {2ull, 4ull, 8ull, 16ull, 32ull}) {
    bench::RunOptions options;
    options.memory_budget = budget_mib * kMiB;
    options.allow_in_memory = true;
    const auto plan = xs::plan_memory(options.memory_budget,
                                      ds.meta.num_vertices,
                                      ds.meta.num_edges, 4,
                                      options.partitions);
    const auto xs = bench::run_xstream_bfs(env, ds, options);
    const auto fb = bench::run_fastbfs(env, ds, options);
    table.add_row({metrics::Table::bytes(options.memory_budget),
                   metrics::Table::num(xs.wall_seconds),
                   metrics::Table::num(fb.wall_seconds),
                   plan.in_memory_edges ? "yes" : "no"});
  }
  table.print();
  table.write_csv_file(env.root_dir() + "/fig9.csv");
  std::cout << "(csv: " << env.root_dir() << "/fig9.csv)\n";
  return 0;
}
