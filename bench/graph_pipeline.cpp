// Perf smoke for the graph-build pipeline (ROADMAP item 1 / ISSUE 2):
//
//   1. parallel R-MAT generation at 1/2/4 threads, shards spread over
//      four modelled HDDs — the multi-disk build box; reports the
//      thread-scaling of the shard fan-out phase;
//   2. the range partitioner's one-pass fan-out throughput;
//   3. a full edge scan through the plain reader vs the prefetching
//      reader on one modelled HDD.
//
// The host has no slow disk, so the device models provide the I/O cost:
// each section first measures its pure-compute rate, then picks the
// model's time_scale so modelled I/O time is a fixed multiple of the
// compute time (3x for generation, 1x for the scan — the regime each
// optimisation targets). That keeps the compute/I/O ratio — and so the
// overlap headroom — stable across host speeds, instead of baking in a
// wall-clock budget that a faster host would quietly degrade.
//
// Results land in BENCH_pr2.json (override with --out=...); --quick
// shrinks the graph for CI.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "json_writer.hpp"

#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "common/temp_dir.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "graph/partitioner.hpp"
#include "storage/reader_factory.hpp"

namespace {

using namespace fbfs;       // NOLINT(build/namespaces)
using namespace fbfs::graph;  // NOLINT(build/namespaces)

constexpr double kMb = 1e6;  // decimal MB, matching DeviceModel

double mb_per_s(std::uint64_t bytes, double seconds) {
  return seconds > 0 ? static_cast<double>(bytes) / kMb / seconds : 0.0;
}

/// Copies `name` between device roots without charging either model
/// (an unthrottled Device view onto each root).
void copy_uncharged(io::Device& from, io::Device& to,
                    const std::string& name) {
  io::Device src(from.root_dir(), io::DeviceModel::unthrottled());
  io::Device dst(to.root_dir(), io::DeviceModel::unthrottled());
  auto out = dst.open(name, /*truncate=*/true);
  std::vector<std::byte> buf(1 << 20);
  auto reader =
      io::open_stream_reader(src, name, io::ReaderOptions::plain(buf.size()));
  for (std::size_t got = reader->read(buf.data(), buf.size()); got > 0;
       got = reader->read(buf.data(), buf.size())) {
    out->append(buf.data(), got);
  }
}

struct GenRun {
  unsigned threads = 0;
  ParallelBuildReport report;
};

using bench::Json;

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_pr2.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::cerr << "usage: graph_pipeline [--quick] [--out=FILE]\n";
      return 2;
    }
  }

  RmatParams rmat;
  rmat.scale = quick ? 18 : 20;
  rmat.edge_factor = 16;
  rmat.seed = 20160523;  // the paper's conference date
  const RmatSource source(rmat);
  const std::uint64_t edge_bytes = source.num_edges() * sizeof(Edge);

  TempDir workspace("graph_pipeline");
  io::Device target(workspace.str() + "/target",
                    io::DeviceModel::unthrottled());

  Json json;
  json.text("bench", "graph_pipeline");
  json.text("mode", quick ? "quick" : "full");
  json.open("rmat");
  json.integer("scale", rmat.scale);
  json.integer("edge_factor", rmat.edge_factor);
  json.integer("edges", source.num_edges());
  json.integer("bytes", edge_bytes);
  json.close();

  // ---- 1. generation: compute-only rate, then modelled multi-disk runs.
  Stopwatch sw;
  std::uint64_t sunk = 0;
  source.generate([&](const Edge& e) { sunk += e.src ^ e.dst; });
  const double cpu_gen_s = sw.seconds();
  FB_CHECK_MSG(sunk != 0, "generator produced all-zero edges");

  // Scale the HDD model so total modelled shard I/O (seeks + transfer)
  // costs 3x the compute: I/O-bound at one thread, compute-bound once
  // four shard disks run concurrently.
  const io::DeviceModel hdd = io::DeviceModel::hdd();
  const std::uint64_t num_chunks =
      (source.num_edges() + kChunkTargetEdges - 1) / kChunkTargetEdges;
  const double unscaled_io_s =
      static_cast<double>(edge_bytes) / (hdd.write_mb_s * kMb) +
      static_cast<double>(num_chunks) * static_cast<double>(hdd.seek_ns) * 1e-9;
  const double gen_scale = 3.0 * cpu_gen_s / unscaled_io_s;

  io::DeviceModel shard_model = hdd;
  shard_model.time_scale = gen_scale;
  std::vector<std::unique_ptr<io::Device>> shard_devices;
  std::vector<io::Device*> shard_ptrs;
  for (int d = 0; d < 4; ++d) {
    shard_devices.push_back(std::make_unique<io::Device>(
        workspace.str() + "/shard" + std::to_string(d), shard_model));
    shard_ptrs.push_back(shard_devices.back().get());
  }

  std::vector<GenRun> runs;
  for (const unsigned threads : {1u, 2u, 4u}) {
    ParallelBuildOptions options;
    options.threads = threads;
    options.shard_devices = shard_ptrs;
    GenRun run;
    run.threads = threads;
    run.report = build_edge_list_parallel(
        target, "rmat_t" + std::to_string(threads), source, options);
    FB_CHECK_EQ(run.report.meta.checksum, runs.empty()
                                              ? run.report.meta.checksum
                                              : runs[0].report.meta.checksum);
    runs.push_back(run);
    std::cout << "generate threads=" << threads << ": "
              << run.report.generate_seconds << " s fan-out + "
              << run.report.merge_seconds << " s merge ("
              << mb_per_s(edge_bytes, run.report.generate_seconds)
              << " MB/s fan-out)\n";
  }
  const double gen_speedup =
      runs[0].report.generate_seconds / runs[2].report.generate_seconds;
  std::cout << "generation speedup 1->4 threads: " << gen_speedup << "x\n";

  json.open("generation");
  json.number("time_scale", gen_scale);
  json.number("cpu_only_seconds", cpu_gen_s);
  json.integer("shard_devices", shard_ptrs.size());
  json.integer("chunks", runs[0].report.num_chunks);
  for (const GenRun& run : runs) {
    json.open("threads_" + std::to_string(run.threads));
    json.number("generate_seconds", run.report.generate_seconds);
    json.number("merge_seconds", run.report.merge_seconds);
    json.number("generate_mb_per_s",
                mb_per_s(edge_bytes, run.report.generate_seconds));
    json.close();
  }
  json.number("speedup_1_to_4", gen_speedup);
  json.close();

  const GraphMeta meta = runs[0].report.meta;

  // ---- 2. partition fan-out: one pass, read + P files written, on one
  // modelled HDD scaled the same way as the generation disks.
  io::DeviceModel part_model = hdd;
  part_model.time_scale = gen_scale;
  io::Device part_dev(workspace.str() + "/part", part_model);
  copy_uncharged(target, part_dev, meta.edge_file());

  const std::uint32_t P = 8;
  sw.restart();
  const PartitionedGraph pg = partition_edge_list(part_dev, meta, P);
  const double part_s = sw.seconds();
  const std::uint64_t moved =
      part_dev.stats().bytes_read() + part_dev.stats().bytes_written();
  std::cout << "partition P=" << P << ": " << part_s << " s, "
            << mb_per_s(moved, part_s) << " MB/s moved\n";

  json.open("partition");
  json.number("time_scale", gen_scale);
  json.integer("partitions", P);
  json.integer("bytes_moved", moved);
  json.number("seconds", part_s);
  json.number("mb_per_s", mb_per_s(moved, part_s));
  json.close();

  // ---- 3. scan: plain vs prefetch on a modelled HDD whose read time
  // matches the consumer's compute time (max overlap headroom = 2x).
  const std::vector<Edge> edges = read_all_edges(target, meta);
  std::vector<std::uint32_t> degrees(meta.num_vertices, 0);
  std::uint64_t checksum = 0;
  sw.restart();
  for (const Edge& e : edges) {
    ++degrees[e.src];
    checksum += edge_digest(e);
  }
  const double cpu_scan_s = sw.seconds();
  FB_CHECK_EQ(checksum, meta.checksum);

  const double unscaled_read_s =
      static_cast<double>(edge_bytes) / (hdd.read_mb_s * kMb);
  io::DeviceModel scan_model = hdd;
  scan_model.time_scale = cpu_scan_s / unscaled_read_s;
  io::Device scan_dev(workspace.str() + "/scan", scan_model);
  copy_uncharged(target, scan_dev, meta.edge_file());

  const int repeats = quick ? 5 : 3;
  const std::size_t scan_buffer = 1 << 20;
  auto scan_file = scan_dev.open(meta.edge_file());
  const auto consume = [&](auto& reader) {
    std::uint64_t sum = 0;
    for (auto batch = reader.next_batch(); !batch.empty();
         batch = reader.next_batch()) {
      for (const Edge& e : batch) {
        ++degrees[e.src];
        sum += edge_digest(e);
      }
    }
    FB_CHECK_EQ(sum, meta.checksum);
  };

  sw.restart();
  for (int r = 0; r < repeats; ++r) {
    auto reader = io::open_record_reader<Edge>(
        *scan_file, io::ReaderOptions::plain(scan_buffer));
    consume(*reader);
  }
  const double plain_s = sw.seconds() / repeats;

  sw.restart();
  for (int r = 0; r < repeats; ++r) {
    auto reader = io::open_record_reader<Edge>(
        *scan_file, io::ReaderOptions::prefetch(scan_buffer));
    consume(*reader);
  }
  const double prefetch_s = sw.seconds() / repeats;

  const double scan_speedup = plain_s / prefetch_s;
  std::cout << "scan plain: " << plain_s << " s ("
            << mb_per_s(edge_bytes, plain_s) << " MB/s), prefetch: "
            << prefetch_s << " s (" << mb_per_s(edge_bytes, prefetch_s)
            << " MB/s), speedup " << scan_speedup << "x\n";

  json.open("scan");
  json.number("time_scale", scan_model.time_scale);
  json.number("cpu_only_seconds", cpu_scan_s);
  json.integer("repeats", repeats);
  json.number("plain_seconds", plain_s);
  json.number("prefetch_seconds", prefetch_s);
  json.number("plain_mb_per_s", mb_per_s(edge_bytes, plain_s));
  json.number("prefetch_mb_per_s", mb_per_s(edge_bytes, prefetch_s));
  json.number("speedup", scan_speedup);
  json.close();

  std::ofstream out(out_path);
  FB_CHECK_MSG(out.good(), "cannot write " << out_path);
  out << json.str();
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
