// The bench JSON writer moved into src/metrics (metrics::RunStats
// emits the same reports the benches upload); this alias keeps the
// bench mains' `bench::Json` spelling working.
#pragma once

#include "metrics/json_writer.hpp"

namespace fbfs::bench {

using Json = metrics::Json;

}  // namespace fbfs::bench
