// Metrics smoke: the benchmark-mode proof of the observability layer's
// two contracts, runnable standalone in CI perf-smoke.
//
//   1. Zero-cost when disabled: a replacement counting operator new
//      shows the engines' exact hot-loop hook pattern performs ZERO
//      heap allocations when the collector is null — and none on the
//      recording path either once a collector exists.
//   2. Collection never perturbs results: BFS states produced with a
//      live collector are bit-identical to the collector-free
//      in-memory reference (checked inside run_bfs).
//
// It also drives both renderers (the per-iteration table and the JSON
// emitter) and the background sampler thread, so a CI log shows what a
// collected run actually reports.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <new>
#include <sstream>
#include <thread>

#include "bench_common.hpp"
#include "json_writer.hpp"

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/temp_dir.hpp"
#include "graph/generators.hpp"
#include "metrics/collector.hpp"

// ---- allocation counter: every path through the replaced operator new
// bumps the counter, so a zero delta proves a code region heap-allocated
// nothing on this thread or any other. The replacement pairs
// malloc-backed new with free-backed delete, which is well-formed for
// replaced global allocators; GCC's heuristic cannot see the pairing
// across inlining and misfires.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace fbfs;  // NOLINT(build/namespaces)

/// The engine hot-loop hook pattern, verbatim: phase timer, gated live
/// counters, per-batch flush. `collector` may be null.
void hot_loop(metrics::Collector* collector, int iterations) {
  for (int i = 0; i < iterations; ++i) {
    std::uint64_t scanned = 0;
    std::uint64_t emitted = 0;
    std::uint64_t sieved = 0;
    {
      const metrics::ScopedPhase phase(collector, metrics::Phase::kScatter);
      scanned += 16;
      emitted += 3;
      sieved += 13;
    }
    if (collector != nullptr) {
      collector->live().add_edges_scanned(scanned);
      collector->live().add_updates(emitted, sieved);
      collector->live().add_partition_scattered();
      collector->record_phase_ns(metrics::Phase::kShuffleFlush, 100 + i);
    }
  }
}

void check_zero_alloc_paths() {
  // Null collector: the whole pattern must cost one pointer test.
  std::uint64_t before = g_allocations.load();
  hot_loop(nullptr, 100'000);
  std::uint64_t delta = g_allocations.load() - before;
  FB_CHECK_MSG(delta == 0,
               "null-collector hot loop heap-allocated " << delta << " times");
  std::cout << "zero-alloc: null-collector hot loop .......... PASS\n";

  // Live collector: recording is sharded relaxed atomics, still no heap.
  metrics::Collector collector({.histogram_shards = 4});
  before = g_allocations.load();
  hot_loop(&collector, 100'000);
  delta = g_allocations.load() - before;
  FB_CHECK_MSG(delta == 0,
               "recording hot loop heap-allocated " << delta << " times");
  std::cout << "zero-alloc: live recording hot loop .......... PASS\n";
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") != 0) {
      std::cerr << "usage: metrics_smoke [--quick]\n";
      return 2;
    }
  }
  init_log_level_from_env();
  std::cout << "=== metrics_smoke ===\n";

  check_zero_alloc_paths();

  // A real collected run: tiny r-mat BFS through the trimming engine.
  // run_bfs aborts unless the states match the collector-free in-memory
  // reference bit for bit — the does-not-perturb contract.
  TempDir workspace("metrics_smoke");
  const bench::Dataset ds = bench::make_dataset(
      workspace.str() + "/rmat", "rmat",
      graph::RmatSource({.scale = 10, .edge_factor = 8, .seed = 5}),
      /*partitions=*/4);
  bench::SystemOptions options;
  options.fastbfs = true;
  options.num_threads = 2;
  const metrics::RunStats run = bench::run_bfs(ds, options);
  FB_CHECK_MSG(!run.iterations.empty(), "collector recorded no iterations");
  std::cout << "bit-identity: collected run == reference ..... PASS\n\n";

  // Renderers: the table CI logs, and the JSON shape CI uploads.
  run.print();
  metrics::Json json;
  json.open("smoke");
  run.write_json(json);
  json.close();
  FB_CHECK_MSG(json.str().find("modelled_iowait") != std::string::npos,
               "JSON emitter lost the iowait field");
  std::cout << "\nrenderers: table + JSON emitter ............. PASS\n";

  // Sampler thread: start it, feed it racing live ops for a few
  // intervals (FASTBFS_LOG=info shows the rate lines), join in ~Collector.
  {
    metrics::Collector sampled({.sampler_interval_seconds = 0.01});
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
    std::uint64_t i = 0;
    while (std::chrono::steady_clock::now() < until) {
      sampled.live().add_edges_scanned(1000);
      sampled.live().add_updates(10, 5);
      sampled.record_phase_ns(metrics::Phase::kScatter, ++i);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    metrics::IterationStats stats;
    stats.iteration = 0;
    sampled.end_iteration(stats);
  }
  std::cout << "sampler: background thread start/log/join .... PASS\n";

  std::cout << "\nmetrics_smoke: all checks passed\n";
  return 0;
}
