// Microbenchmarks for the update-stream primitives behind PR 7's write
// cut: varint encode/decode, whole-stream codec encode + decode
// throughput per format (with the exact compression ratios), and the
// staging-buffer sieve's hit rate / throughput on duplicate-heavy
// update streams.
//
// Standalone (no google-benchmark): wall-clocked loops over synthetic
// update streams shaped like the engines' real traffic — a dense
// BFS-style round (identical payloads, heavy duplicates), a power-law
// round (distinct payloads), and a sparse round. Results land in
// BENCH_pr7_micro.json (--out=FILE); --quick shrinks the streams.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "json_writer.hpp"

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/temp_dir.hpp"
#include "graph/partitioner.hpp"
#include "graph/program.hpp"
#include "metrics/table.hpp"
#include "storage/codec.hpp"
#include "xstream/detail.hpp"

namespace {

using namespace fbfs;  // NOLINT(build/namespaces)
using bench::Json;
using io::codec::EncodeOptions;
using io::codec::Format;
using io::codec::Policy;
using Update = graph::BfsProgram::Update;

double mib_per_sec(std::uint64_t bytes, double seconds) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0) / seconds;
}

/// A scatter round's update stream for one destination partition.
struct Shape {
  const char* name = "";
  std::vector<Update> updates;
  std::uint64_t range_begin = 0;
  std::uint64_t range_end = 0;
  bool identical_payloads = false;  // bitmap-eligible (BFS level-r rounds)
};

std::vector<Shape> make_shapes(std::uint64_t n) {
  std::vector<Shape> shapes;
  {
    // Dense BFS middle round: every update carries the same level and
    // most destinations repeat — the bitmap format's home turf.
    Shape s;
    s.name = "dense_bfs";
    s.range_end = n / 4;
    s.identical_payloads = true;
    Rng rng(11);
    s.updates.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      s.updates.push_back(
          {static_cast<graph::VertexId>(rng.next_below(s.range_end)), 7});
    }
    shapes.push_back(std::move(s));
  }
  {
    // Power-law round with distinct payloads: duplicates remain but the
    // payloads differ, so varint is the only compressive option.
    Shape s;
    s.name = "powerlaw";
    s.range_end = n / 4;
    Rng rng(13);
    ZipfSampler zipf(s.range_end, 1.05);
    s.updates.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      s.updates.push_back({static_cast<graph::VertexId>(zipf.sample(rng)),
                           static_cast<std::uint32_t>(rng.next_below(64))});
    }
    shapes.push_back(std::move(s));
  }
  {
    // Sparse tail round: few updates spread over a wide range — the
    // shape where raw should win and the cost model must not regress.
    Shape s;
    s.name = "sparse";
    s.range_end = n * 64;
    s.identical_payloads = true;
    Rng rng(17);
    s.updates.reserve(n / 16);
    for (std::uint64_t i = 0; i < n / 16; ++i) {
      s.updates.push_back(
          {static_cast<graph::VertexId>(rng.next_below(s.range_end)), 3});
    }
    shapes.push_back(std::move(s));
  }
  return shapes;
}

void bench_varint(Json& json, std::uint64_t n) {
  Rng rng(5);
  std::vector<std::uint64_t> values(n);
  for (auto& v : values) {
    // Mixed widths: the shift distributes sizes 1..8 bytes.
    v = rng.next_u64() >> (rng.next_below(57));
  }
  std::vector<std::byte> buf(n * 10);
  Stopwatch clock;
  std::size_t bytes = 0;
  for (const std::uint64_t v : values) {
    bytes += io::codec::put_varint(v, buf.data() + bytes);
  }
  const double enc_s = clock.seconds();
  clock.restart();
  std::size_t pos = 0;
  std::uint64_t sum = 0;
  const std::span<const std::byte> view(buf.data(), bytes);
  for (std::uint64_t i = 0; i < n; ++i) {
    sum += io::codec::get_varint(view, pos);
  }
  const double dec_s = clock.seconds();
  FB_CHECK_EQ(pos, bytes);
  FB_CHECK_GT(sum, 0u);

  metrics::Table table({"op", "values", "bytes", "sec", "Mops/s"});
  table.add_row({"put_varint", metrics::Table::count(n),
                 metrics::Table::bytes(bytes), metrics::Table::seconds(enc_s),
                 metrics::Table::count(static_cast<std::uint64_t>(
                     static_cast<double>(n) / 1e6 / enc_s))});
  table.add_row({"get_varint", metrics::Table::count(n),
                 metrics::Table::bytes(bytes), metrics::Table::seconds(dec_s),
                 metrics::Table::count(static_cast<std::uint64_t>(
                     static_cast<double>(n) / 1e6 / dec_s))});
  table.print();
  json.open("varint");
  json.integer("values", n);
  json.integer("encoded_bytes", bytes);
  json.number("encode_mops", static_cast<double>(n) / 1e6 / enc_s);
  json.number("decode_mops", static_cast<double>(n) / 1e6 / dec_s);
  json.close();
}

void bench_codec(Json& json, io::Device& dev, const std::vector<Shape>& shapes,
                 std::uint32_t rounds) {
  metrics::Table table({"stream", "codec", "format", "in", "out", "ratio",
                        "enc MiB/s", "dec MiB/s"});
  json.open("codec");
  for (const Shape& shape : shapes) {
    const std::uint64_t in_bytes = shape.updates.size() * sizeof(Update);
    json.open(shape.name);
    json.integer("updates", shape.updates.size());
    json.integer("raw_bytes", in_bytes);
    for (const Policy policy :
         {Policy::kRaw, Policy::kBitmap, Policy::kVarint, Policy::kAuto}) {
      const EncodeOptions opts{.policy = policy,
                               .allow_bitmap = shape.identical_payloads,
                               .range_begin = shape.range_begin,
                               .range_end = shape.range_end};
      // Encode throughput (in-memory, the scatter-close hot path).
      Stopwatch clock;
      io::codec::EncodedBlob blob;
      for (std::uint32_t r = 0; r < rounds; ++r) {
        blob = io::codec::encode_records<Update>(shape.updates, opts);
      }
      const double enc_s = clock.seconds() / rounds;

      // Decode throughput through the real reader stack.
      const std::string file = std::string(shape.name) + ".upd";
      {
        io::codec::CodecWriter<Update> writer(dev, file, 1 << 20, opts);
        writer.append_batch(shape.updates);
        writer.close();
      }
      clock.restart();
      std::uint64_t decoded = 0;
      for (std::uint32_t r = 0; r < rounds; ++r) {
        auto reader = io::codec::open_reader<Update>(
            dev, file, io::ReaderOptions::plain(1 << 20));
        for (auto batch = reader->next_batch(); !batch.empty();
             batch = reader->next_batch()) {
          decoded += batch.size();
        }
      }
      const double dec_s = clock.seconds() / rounds;
      const std::uint64_t out_records = decoded / rounds;
      const double ratio = static_cast<double>(blob.bytes.size()) /
                           static_cast<double>(in_bytes);

      table.add_row(
          {shape.name, io::codec::to_string(policy),
           io::codec::to_string(blob.format),
           metrics::Table::bytes(in_bytes),
           metrics::Table::bytes(blob.bytes.size()),
           metrics::Table::percent(ratio),
           metrics::Table::count(
               static_cast<std::uint64_t>(mib_per_sec(in_bytes, enc_s))),
           metrics::Table::count(static_cast<std::uint64_t>(
               mib_per_sec(out_records * sizeof(Update), dec_s)))});

      json.open(io::codec::to_string(policy));
      json.text("format", io::codec::to_string(blob.format));
      json.integer("encoded_bytes", blob.bytes.size());
      json.integer("decoded_records", out_records);
      json.number("bytes_ratio", ratio);
      json.number("encode_mib_s", mib_per_sec(in_bytes, enc_s));
      json.number("decode_mib_s",
                  mib_per_sec(out_records * sizeof(Update), dec_s));
      json.close();
    }
    json.close();
  }
  json.close();
  table.print();
}

void bench_sieve(Json& json, const std::vector<Shape>& shapes,
                 std::size_t window_records) {
  // The engines' exact staging path: ScatterStage with the sieve on,
  // windows retired every `window_records` staged updates (the
  // staging-buffer lifetime scatter uses).
  const graph::BfsProgram program{};
  metrics::Table table({"stream", "window", "updates", "sieved", "hit rate",
                        "Mupd/s"});
  json.open("sieve");
  for (const Shape& shape : shapes) {
    const graph::PartitionLayout layout(shape.range_end, 4);
    xstream::detail::ScatterStage<graph::BfsProgram> stage(program, layout,
                                                           /*sieve=*/true);
    Stopwatch clock;
    std::size_t in_window = 0;
    for (const Update& u : shape.updates) {
      stage.stage(u);
      if (++in_window == window_records) {
        for (auto& bucket : stage.buckets) bucket.clear();
        stage.window.clear();
        in_window = 0;
      }
    }
    const double s = clock.seconds();
    const double hit_rate = static_cast<double>(stage.sieved) /
                            static_cast<double>(stage.emitted);
    table.add_row({shape.name, metrics::Table::count(window_records),
                   metrics::Table::count(stage.emitted),
                   metrics::Table::count(stage.sieved),
                   metrics::Table::percent(hit_rate),
                   metrics::Table::count(static_cast<std::uint64_t>(
                       static_cast<double>(stage.emitted) / 1e6 / s))});
    json.open(shape.name);
    json.integer("window_records", window_records);
    json.integer("updates", stage.emitted);
    json.integer("sieved", stage.sieved);
    json.number("hit_rate", hit_rate);
    json.number("mupd_per_s", static_cast<double>(stage.emitted) / 1e6 / s);
    json.close();
  }
  json.close();
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_pr7_micro.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::cerr << "usage: micro_primitives [--quick] [--out=FILE]\n";
      return 2;
    }
  }
  init_log_level_from_env();
  metrics::print_experiment_header(
      "Update-stream primitive microbenches",
      "varint + codec encode/decode throughput and the staging-sieve "
      "hit rate on engine-shaped update streams");

  const std::uint64_t n = quick ? (1ull << 18) : (1ull << 22);
  const std::uint32_t rounds = quick ? 3 : 5;
  TempDir dir("micro_primitives");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const std::vector<Shape> shapes = make_shapes(n);

  Json json;
  json.text("bench", "micro_primitives");
  json.text("mode", quick ? "quick" : "full");
  bench_varint(json, n);
  bench_codec(json, dev, shapes, rounds);
  bench_sieve(json, shapes, /*window_records=*/1 << 17);

  std::ofstream out(out_path);
  FB_CHECK_MSG(out.good(), "cannot write " << out_path);
  out << json.str();
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
