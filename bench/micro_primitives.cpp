// Google-benchmark microbenchmarks for the substrate primitives the
// engines are built on: RNG, bitmap, streams, async writer, generators.
#include <benchmark/benchmark.h>

#include "common/bitmap.hpp"
#include "common/rng.hpp"
#include "common/temp_dir.hpp"
#include "graph/generators.hpp"
#include "storage/async_writer.hpp"
#include "storage/stream.hpp"
#include "xstream/programs.hpp"

namespace fbfs {
namespace {

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_RngNextBelow(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_below(1000003));
  }
}
BENCHMARK(BM_RngNextBelow);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(3);
  ZipfSampler zipf(1 << 20, 1.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_EdgeHashWeight(benchmark::State& state) {
  graph::VertexId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xs::edge_hash_weight({v, v + 1}));
    ++v;
  }
}
BENCHMARK(BM_EdgeHashWeight);

void BM_BitmapTestAndSet(benchmark::State& state) {
  AtomicBitmap bm(1 << 20);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bm.test_and_set(i++ & ((1 << 20) - 1)));
  }
}
BENCHMARK(BM_BitmapTestAndSet);

void BM_BitmapTest(benchmark::State& state) {
  AtomicBitmap bm(1 << 20);
  for (std::uint64_t i = 0; i < bm.size(); i += 3) bm.set(i);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bm.test(i++ & ((1 << 20) - 1)));
  }
}
BENCHMARK(BM_BitmapTest);

void BM_RmatGenerate(benchmark::State& state) {
  graph::RmatParams params;
  params.scale = 12;
  params.edge_factor = 8;
  for (auto _ : state) {
    std::uint64_t sum = 0;
    graph::generate_rmat(params, [&](const graph::Edge& e) {
      sum += e.src ^ e.dst;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * (1 << 12) * 8);
}
BENCHMARK(BM_RmatGenerate);

void BM_StreamWriteRead(benchmark::State& state) {
  TempDir dir{"bm"};
  io::Device device(dir.str(), io::DeviceModel::unthrottled());
  std::vector<graph::Edge> edges(1 << 16);
  for (std::uint32_t i = 0; i < edges.size(); ++i) edges[i] = {i, i + 1};
  for (auto _ : state) {
    auto f = device.open("x", true);
    io::RecordWriter<graph::Edge> writer(*f, 1 << 20);
    writer.append_batch(edges);
    writer.flush();
    io::RecordReader<graph::Edge> reader(*f, 1 << 20);
    std::uint64_t n = 0;
    for (auto batch = reader.next_batch(); !batch.empty();
         batch = reader.next_batch()) {
      n += batch.size();
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetBytesProcessed(state.iterations() * edges.size() *
                          sizeof(graph::Edge) * 2);
}
BENCHMARK(BM_StreamWriteRead);

void BM_AsyncWriterThroughput(benchmark::State& state) {
  TempDir dir{"bm"};
  io::Device device(dir.str(), io::DeviceModel::unthrottled());
  std::vector<std::byte> chunk(1 << 16);
  io::AsyncWriter writer(1 << 18, 4);
  int file_id = 0;
  for (auto _ : state) {
    auto f = device.open("x" + std::to_string(file_id++ & 7), true);
    const auto id = writer.begin(f.get());
    for (int i = 0; i < 16; ++i) writer.append(id, chunk);
    writer.finish(id);
    writer.wait_complete(id, 60.0);
    writer.release(id);
  }
  state.SetBytesProcessed(state.iterations() * 16 * chunk.size());
}
BENCHMARK(BM_AsyncWriterThroughput);

}  // namespace
}  // namespace fbfs

BENCHMARK_MAIN();
