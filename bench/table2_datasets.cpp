// Table II — experimental graphs (scaled stand-ins; DESIGN.md maps each
// to the paper's dataset).
#include "bench_common.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "graph/partitioner.hpp"

using namespace fbfs;

int main() {
  init_log_level_from_env();
  metrics::print_experiment_header(
      "Table II — experimental graphs",
      "rmat22/25/27 + twitter_rv (61.6M v, 1.5B e) + friendster (124.8M v, "
      "1.8B e); scaled ~1/32 here");

  bench::BenchEnv& env = bench::BenchEnv::instance();
  metrics::Table table({"graph", "stands for", "vertices", "edges",
                        "data size", "max out-deg", "mean deg", "bfs root"});
  const std::vector<std::pair<std::string, std::string>> rows = {
      {"rmat16", "rmat22"},
      {"rmat18", "rmat25"},
      {"rmat20", "rmat27"},
      {"twitter_like", "twitter_rv.net"},
      {"friendster_like", "friendster"},
      {"grid512", "(high-diameter control)"},
  };
  for (const auto& [name, paper_name] : rows) {
    const bench::Dataset& ds = env.dataset(name);
    io::Device device(ds.dir, io::DeviceModel::unthrottled());
    const auto stats = graph::compute_out_degree_stats(device, ds.meta);
    table.add_row({name, paper_name,
                   metrics::Table::num(ds.meta.num_vertices),
                   metrics::Table::num(ds.meta.num_edges),
                   metrics::Table::bytes(ds.meta.edge_bytes()),
                   metrics::Table::num(stats.max_degree),
                   metrics::Table::num(stats.mean_degree, 1),
                   metrics::Table::num(std::uint64_t{ds.bfs_root})});
  }
  table.print();
  table.write_csv_file(env.root_dir() + "/table2.csv");
  std::cout << "(csv: " << env.root_dir() << "/table2.csv)\n";
  return 0;
}
