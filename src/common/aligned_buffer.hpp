// Aligned I/O buffers for the real-device backend.
//
// O_DIRECT transfers require the buffer address, the file offset, and
// the transfer length to be multiples of the device's logical block
// size. Engine code hands the storage layer ordinary byte spans, so
// the real backend bounces unaligned requests through buffers from an
// AlignedBufferPool: a thread-safe freelist of page-aligned
// allocations, reused across operations so the hot scan path never
// calls the allocator per read. The pool caps how many buffers it
// keeps (peak-size buffers are retained preferentially); anything
// beyond the cap is freed on release.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace fbfs {

/// One aligned allocation. Movable, frees on destruction.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  /// `alignment` must be a power of two; the allocation size is rounded
  /// up to a multiple of it (std::aligned_alloc's contract).
  static AlignedBuffer allocate(std::size_t bytes, std::size_t alignment) {
    FB_CHECK_MSG(alignment != 0 && (alignment & (alignment - 1)) == 0,
                 "alignment must be a power of two, got " << alignment);
    const std::size_t size = (bytes + alignment - 1) / alignment * alignment;
    void* ptr = std::aligned_alloc(alignment, size == 0 ? alignment : size);
    FB_CHECK_MSG(ptr != nullptr,
                 "aligned_alloc of " << size << " bytes failed");
    AlignedBuffer out;
    out.data_ = static_cast<std::byte*>(ptr);
    out.size_ = size == 0 ? alignment : size;
    out.alignment_ = alignment;
    return out;
  }

  ~AlignedBuffer() { std::free(data_); }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        alignment_(std::exchange(other.alignment_, 0)) {}
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      std::free(data_);
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      alignment_ = std::exchange(other.alignment_, 0);
    }
    return *this;
  }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::size_t alignment() const { return alignment_; }
  bool empty() const { return data_ == nullptr; }

 private:
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t alignment_ = 0;
};

/// Thread-safe freelist of AlignedBuffers sharing one alignment.
/// acquire() returns a buffer of at least `min_bytes` (reusing the
/// largest cached one that fits, else allocating); release() returns a
/// buffer for reuse, keeping at most `max_cached` and preferring to
/// keep the larger ones (so the pool converges on the workload's peak
/// request size instead of churning).
class AlignedBufferPool {
 public:
  explicit AlignedBufferPool(std::size_t alignment, std::size_t max_cached = 16)
      : alignment_(alignment), max_cached_(max_cached) {
    FB_CHECK_MSG(alignment != 0 && (alignment & (alignment - 1)) == 0,
                 "alignment must be a power of two, got " << alignment);
  }

  std::size_t alignment() const { return alignment_; }

  AlignedBuffer acquire(std::size_t min_bytes) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // Smallest cached buffer that fits (the list is kept sorted by
      // size, so the first fit is the tightest fit).
      for (std::size_t i = 0; i < cache_.size(); ++i) {
        if (cache_[i].size() >= min_bytes) {
          AlignedBuffer out = std::move(cache_[i]);
          cache_.erase(cache_.begin() + static_cast<std::ptrdiff_t>(i));
          return out;
        }
      }
    }
    return AlignedBuffer::allocate(min_bytes, alignment_);
  }

  void release(AlignedBuffer buffer) {
    if (buffer.empty()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    // Insert sorted by size; evict the smallest when over the cap.
    auto it = cache_.begin();
    while (it != cache_.end() && it->size() < buffer.size()) ++it;
    cache_.insert(it, std::move(buffer));
    if (cache_.size() > max_cached_) cache_.erase(cache_.begin());
  }

  std::size_t cached() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return cache_.size();
  }

 private:
  const std::size_t alignment_;
  const std::size_t max_cached_;
  mutable std::mutex mutex_;
  std::vector<AlignedBuffer> cache_;  // sorted by size, ascending
};

}  // namespace fbfs
