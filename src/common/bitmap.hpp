// Fixed-size atomic bitmap: the frontier / visited-set representation
// shared by the engines. test_and_set is the BFS hot path ("claim this
// vertex"); plain set/test are relaxed reads used for frontier scans.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/check.hpp"

namespace fbfs {

class AtomicBitmap {
 public:
  explicit AtomicBitmap(std::uint64_t bits)
      : bits_(bits),
        words_((bits + 63) / 64),
        data_(std::make_unique<std::atomic<std::uint64_t>[]>(words_)) {
    reset();
  }

  std::uint64_t size() const { return bits_; }

  void set(std::uint64_t i) {
    check_index(i);
    data_[i >> 6].fetch_or(bit(i), std::memory_order_relaxed);
  }

  void clear(std::uint64_t i) {
    check_index(i);
    data_[i >> 6].fetch_and(~bit(i), std::memory_order_relaxed);
  }

  bool test(std::uint64_t i) const {
    check_index(i);
    return (data_[i >> 6].load(std::memory_order_relaxed) & bit(i)) != 0;
  }

  /// Sets bit i; returns its previous value. Exactly one of several
  /// concurrent callers on the same clear bit observes false.
  bool test_and_set(std::uint64_t i) {
    check_index(i);
    const std::uint64_t prev =
        data_[i >> 6].fetch_or(bit(i), std::memory_order_acq_rel);
    return (prev & bit(i)) != 0;
  }

  /// Clears every bit.
  void reset() {
    for (std::uint64_t w = 0; w < words_; ++w) {
      data_[w].store(0, std::memory_order_relaxed);
    }
  }

  std::uint64_t count_set() const {
    std::uint64_t total = 0;
    for (std::uint64_t w = 0; w < words_; ++w) {
      total += static_cast<std::uint64_t>(
          __builtin_popcountll(data_[w].load(std::memory_order_relaxed)));
    }
    return total;
  }

  bool any() const {
    for (std::uint64_t w = 0; w < words_; ++w) {
      if (data_[w].load(std::memory_order_relaxed) != 0) return true;
    }
    return false;
  }

  /// True iff any bit in [begin, end) is set — the engines' per-round
  /// "does partition p have an active source?" probe. Word-level: a
  /// masked load for each boundary word, whole-word loads in between,
  /// so the scan is O(range/64) instead of O(range) test() calls.
  bool any_in_range(std::uint64_t begin, std::uint64_t end) const {
    FB_CHECK_LE(begin, end);
    FB_CHECK_LE(end, bits_);
    if (begin == end) return false;
    const std::uint64_t first = begin >> 6;
    const std::uint64_t last = (end - 1) >> 6;
    const std::uint64_t head_mask = ~0ull << (begin & 63);
    const std::uint64_t tail_mask = ~0ull >> (63 - ((end - 1) & 63));
    if (first == last) {
      return (data_[first].load(std::memory_order_relaxed) & head_mask &
              tail_mask) != 0;
    }
    if ((data_[first].load(std::memory_order_relaxed) & head_mask) != 0) {
      return true;
    }
    for (std::uint64_t w = first + 1; w < last; ++w) {
      if (data_[w].load(std::memory_order_relaxed) != 0) return true;
    }
    return (data_[last].load(std::memory_order_relaxed) & tail_mask) != 0;
  }

  /// True iff every bit in [begin, end) is set — the bottom-up
  /// engine's "is partition q fully visited?" probe (skip its in-edge
  /// scan outright). Same word-level shape as any_in_range.
  bool all_in_range(std::uint64_t begin, std::uint64_t end) const {
    FB_CHECK_LE(begin, end);
    FB_CHECK_LE(end, bits_);
    if (begin == end) return true;
    const std::uint64_t first = begin >> 6;
    const std::uint64_t last = (end - 1) >> 6;
    const std::uint64_t head_mask = ~0ull << (begin & 63);
    const std::uint64_t tail_mask = ~0ull >> (63 - ((end - 1) & 63));
    if (first == last) {
      const std::uint64_t mask = head_mask & tail_mask;
      return (data_[first].load(std::memory_order_relaxed) & mask) == mask;
    }
    if ((data_[first].load(std::memory_order_relaxed) & head_mask) !=
        head_mask) {
      return false;
    }
    for (std::uint64_t w = first + 1; w < last; ++w) {
      if (data_[w].load(std::memory_order_relaxed) != ~0ull) return false;
    }
    return (data_[last].load(std::memory_order_relaxed) & tail_mask) ==
           tail_mask;
  }

  std::uint64_t num_words() const { return words_; }

  /// Word w's 64 bits (bit i lives in word i>>6 at position i&63) — the
  /// update codec's bitmap format serializes these verbatim.
  std::uint64_t word(std::uint64_t w) const {
    FB_CHECK_LT(w, words_);
    return data_[w].load(std::memory_order_relaxed);
  }

  /// Sets every bit that is set in `other` (same size required) — how
  /// the trimming engine folds a round's frontier into its retired set.
  void or_with(const AtomicBitmap& other) {
    FB_CHECK_EQ(bits_, other.bits_);
    for (std::uint64_t w = 0; w < words_; ++w) {
      const std::uint64_t bits = other.data_[w].load(std::memory_order_relaxed);
      if (bits != 0) data_[w].fetch_or(bits, std::memory_order_relaxed);
    }
  }

 private:
  static std::uint64_t bit(std::uint64_t i) { return 1ull << (i & 63); }
  void check_index(std::uint64_t i) const { FB_CHECK_LT(i, bits_); }

  std::uint64_t bits_;
  std::uint64_t words_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> data_;
};

}  // namespace fbfs
