// CHECK macros: invariants that abort the process with a message when
// violated. Used for programming errors and unrecoverable misuse, not
// for expected runtime failures (those throw, e.g. io::IoError).
//
//   FB_CHECK(ptr != nullptr);
//   FB_CHECK_MSG(side >= 2, "grid dataset needs a side length: " << name);
#pragma once

#include <sstream>

namespace fbfs::detail {

/// Collects the failure message; the destructor prints it and aborts.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition);
  [[noreturn]] ~CheckFailure();
  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace fbfs::detail

#define FB_CHECK(cond)                                               \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::fbfs::detail::CheckFailure(__FILE__, __LINE__, #cond).stream(); \
    }                                                                \
  } while (0)

#define FB_CHECK_MSG(cond, msg)                                      \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::fbfs::detail::CheckFailure(__FILE__, __LINE__, #cond).stream() \
          << msg;                                                    \
    }                                                                \
  } while (0)

#define FB_CHECK_OP(op, a, b)                                          \
  do {                                                                 \
    if (!((a)op(b))) {                                                 \
      ::fbfs::detail::CheckFailure(__FILE__, __LINE__, #a " " #op " " #b) \
              .stream()                                                \
          << "(" << (a) << " vs " << (b) << ")";                       \
    }                                                                  \
  } while (0)

#define FB_CHECK_EQ(a, b) FB_CHECK_OP(==, a, b)
#define FB_CHECK_NE(a, b) FB_CHECK_OP(!=, a, b)
#define FB_CHECK_LT(a, b) FB_CHECK_OP(<, a, b)
#define FB_CHECK_LE(a, b) FB_CHECK_OP(<=, a, b)
#define FB_CHECK_GT(a, b) FB_CHECK_OP(>, a, b)
#define FB_CHECK_GE(a, b) FB_CHECK_OP(>=, a, b)
