#include "common/config.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace fbfs {

namespace {

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

}  // namespace

Config Config::parse_file(const std::string& path) {
  std::ifstream in(path);
  FB_CHECK_MSG(in.good(), "cannot open config file: " << path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_string(buffer.str());
}

Config Config::parse_string(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // '#' starts a comment, whole-line or trailing.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string stripped = trim(line);
    if (stripped.empty()) continue;
    const std::size_t eq = stripped.find('=');
    FB_CHECK_MSG(eq != std::string::npos,
                 "config line " << line_no << " has no '=': " << stripped);
    const std::string key = trim(stripped.substr(0, eq));
    FB_CHECK_MSG(!key.empty(), "config line " << line_no << " has empty key");
    cfg.values_[key] = trim(stripped.substr(eq + 1));
  }
  return cfg;
}

std::string Config::to_string() const {
  std::ostringstream out;
  for (const auto& [key, value] : values_) {
    out << key << " = " << value << "\n";
  }
  return out.str();
}

void Config::write_file(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    FB_CHECK_MSG(out.good(), "cannot write config file: " << tmp);
    out << to_string();
    out.flush();
    FB_CHECK_MSG(out.good(), "short write to config file: " << tmp);
  }
  FB_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
               "rename " << tmp << " -> " << path << ": "
                         << std::strerror(errno));
}

bool Config::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

std::optional<std::string> Config::find(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_str(const std::string& key) const {
  const auto value = find(key);
  FB_CHECK_MSG(value.has_value(), "missing config key: " << key);
  return *value;
}

std::string Config::get_str_or(const std::string& key,
                               const std::string& fallback) const {
  return find(key).value_or(fallback);
}

std::uint64_t Config::get_u64(const std::string& key) const {
  const std::string value = get_str(key);
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 0);
  FB_CHECK_MSG(errno == 0 && end != value.c_str() && *end == '\0' &&
                   value[0] != '-',
               "config key " << key << " is not a u64: " << value);
  return parsed;
}

std::uint64_t Config::get_u64_or(const std::string& key,
                                 std::uint64_t fallback) const {
  return has(key) ? get_u64(key) : fallback;
}

double Config::get_f64(const std::string& key) const {
  const std::string value = get_str(key);
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  FB_CHECK_MSG(errno == 0 && end != value.c_str() && *end == '\0',
               "config key " << key << " is not a number: " << value);
  return parsed;
}

double Config::get_f64_or(const std::string& key, double fallback) const {
  return has(key) ? get_f64(key) : fallback;
}

bool Config::get_bool(const std::string& key) const {
  const std::string value = get_str(key);
  if (value == "true" || value == "1" || value == "on" || value == "yes") {
    return true;
  }
  if (value == "false" || value == "0" || value == "off" || value == "no") {
    return false;
  }
  FB_CHECK_MSG(false, "config key " << key << " is not a bool: " << value);
  return false;
}

bool Config::get_bool_or(const std::string& key, bool fallback) const {
  return has(key) ? get_bool(key) : fallback;
}

namespace {

std::string join(std::initializer_list<std::string_view> names) {
  std::string out;
  for (const std::string_view name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace

std::string Config::get_enum(
    const std::string& key,
    std::initializer_list<std::string_view> allowed) const {
  const std::string value = get_str(key);
  for (const std::string_view name : allowed) {
    if (value == name) return value;
  }
  FB_CHECK_MSG(false, "config key " << key << " has invalid value '" << value
                                    << "'; valid values: " << join(allowed));
  return value;
}

std::string Config::get_enum_or(std::string const& key,
                                std::initializer_list<std::string_view> allowed,
                                std::string_view fallback) const {
  if (has(key)) return get_enum(key, allowed);
  for (const std::string_view name : allowed) {
    if (fallback == name) return std::string(fallback);
  }
  FB_CHECK_MSG(false, "fallback for config key "
                          << key << " is invalid: '" << fallback
                          << "'; valid values: " << join(allowed));
  return std::string(fallback);
}

std::uint64_t Config::get_bytes(const std::string& key) const {
  const std::string value = get_str(key);
  errno = 0;
  char* end = nullptr;
  const unsigned long long count = std::strtoull(value.c_str(), &end, 10);
  const bool number_ok =
      errno == 0 && end != value.c_str() && value[0] != '-';
  std::string suffix(end == nullptr ? "" : end);
  suffix = trim(suffix);
  for (char& c : suffix) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  std::uint64_t multiplier = 0;
  if (suffix.empty() || suffix == "b") {
    multiplier = 1;
  } else if (suffix == "k" || suffix == "kb" || suffix == "kib") {
    multiplier = 1024ull;
  } else if (suffix == "m" || suffix == "mb" || suffix == "mib") {
    multiplier = 1024ull * 1024;
  } else if (suffix == "g" || suffix == "gb" || suffix == "gib") {
    multiplier = 1024ull * 1024 * 1024;
  }
  FB_CHECK_MSG(number_ok && multiplier != 0,
               "config key " << key << " is not a byte size: '" << value
                             << "'; expected <unsigned integer> with an "
                                "optional suffix B, K/KB/KiB, M/MB/MiB, "
                                "G/GB/GiB (1024-based, case-insensitive)");
  const std::uint64_t bytes = count * multiplier;
  FB_CHECK_MSG(count == 0 || bytes / multiplier == count,
               "config key " << key << " overflows a u64 byte size: '"
                             << value << "'");
  return bytes;
}

std::uint64_t Config::get_bytes_or(const std::string& key,
                                   std::uint64_t fallback) const {
  return has(key) ? get_bytes(key) : fallback;
}

std::uint32_t Config::get_threads(const std::string& key) const {
  const std::uint64_t requested = get_u64(key);
  FB_CHECK_MSG(requested <= kMaxEngineThreads,
               "config key " << key << " is not a sane thread count: "
                             << requested << " (max " << kMaxEngineThreads
                             << ", 0 = hardware concurrency)");
  return resolve_thread_count(static_cast<std::uint32_t>(requested));
}

std::uint32_t Config::get_threads_or(const std::string& key,
                                     std::uint32_t fallback) const {
  if (has(key)) return get_threads(key);
  return resolve_thread_count(fallback);
}

void Config::set_str(const std::string& key, const std::string& value) {
  values_[key] = value;
}

void Config::set_u64(const std::string& key, std::uint64_t value) {
  values_[key] = std::to_string(value);
}

void Config::set_f64(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  values_[key] = buf;
}

void Config::set_bool(const std::string& key, bool value) {
  values_[key] = value ? "true" : "false";
}

}  // namespace fbfs
