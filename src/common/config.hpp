// Key-value configuration files (the paper's §III workflow: engines and
// tools are driven by small text configs) and the bench result caches.
//
// File format: one `key = value` per line; blank lines and lines whose
// first non-space character is '#' are ignored; keys and values are
// whitespace-trimmed. Keys are unique; later assignments win.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fbfs {

class Config {
 public:
  Config() = default;

  /// Aborts (FB_CHECK) if the file cannot be read or a line is malformed.
  static Config parse_file(const std::string& path);
  static Config parse_string(const std::string& text);

  /// Writes keys sorted, atomically (tmp file + rename).
  void write_file(const std::string& path) const;
  std::string to_string() const;

  bool has(const std::string& key) const;
  std::vector<std::string> keys() const;
  std::size_t size() const { return values_.size(); }

  /// get_* abort on a missing key or an unparseable value; the *_or
  /// variants return `fallback` when the key is absent (but still abort
  /// on a present-but-malformed value).
  std::string get_str(const std::string& key) const;
  std::string get_str_or(const std::string& key,
                         const std::string& fallback) const;
  std::uint64_t get_u64(const std::string& key) const;
  std::uint64_t get_u64_or(const std::string& key,
                           std::uint64_t fallback) const;
  double get_f64(const std::string& key) const;
  double get_f64_or(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key) const;
  bool get_bool_or(const std::string& key, bool fallback) const;

  /// Value restricted to a closed set of names (engine mode keys like
  /// `io.reader = prefetch`). Aborts with a message listing the valid
  /// values when the value (or, for get_enum_or, the fallback) is not
  /// one of `allowed`.
  std::string get_enum(const std::string& key,
                       std::initializer_list<std::string_view> allowed) const;
  std::string get_enum_or(const std::string& key,
                          std::initializer_list<std::string_view> allowed,
                          std::string_view fallback) const;

  /// Byte size: an unsigned integer with an optional binary-multiple
  /// suffix — B, K/KB/KiB, M/MB/MiB, G/GB/GiB, all 1024-based,
  /// case-insensitive, optionally space-separated ("4M", "64 KiB",
  /// "1048576"). Aborts with a message listing the valid suffixes on
  /// anything else.
  std::uint64_t get_bytes(const std::string& key) const;
  std::uint64_t get_bytes_or(const std::string& key,
                             std::uint64_t fallback) const;

  /// Worker-thread count (engine keys like `engine.num_threads`): an
  /// unsigned integer where 0 means "one per hardware thread". The
  /// returned value is always resolved to a concrete count >= 1. Aborts
  /// on values above kMaxEngineThreads (512) — that is a typo, not a
  /// machine. get_threads_or resolves the fallback through the same
  /// rules.
  std::uint32_t get_threads(const std::string& key) const;
  std::uint32_t get_threads_or(const std::string& key,
                               std::uint32_t fallback) const;

  void set_str(const std::string& key, const std::string& value);
  void set_u64(const std::string& key, std::uint64_t value);
  void set_f64(const std::string& key, double value);
  void set_bool(const std::string& key, bool value);

  void erase(const std::string& key) { values_.erase(key); }

 private:
  std::optional<std::string> find(const std::string& key) const;

  std::map<std::string, std::string> values_;
};

}  // namespace fbfs
