#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace fbfs {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::info)};
std::mutex g_emit_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO ";
    case LogLevel::warn: return "WARN ";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF  ";
  }
  return "?????";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool parse_log_level(const std::string& name, LogLevel& out) {
  if (name == "debug") out = LogLevel::debug;
  else if (name == "info") out = LogLevel::info;
  else if (name == "warn" || name == "warning") out = LogLevel::warn;
  else if (name == "error") out = LogLevel::error;
  else if (name == "off" || name == "none") out = LogLevel::off;
  else return false;
  return true;
}

void init_log_level_from_env() {
  const char* env = std::getenv("FASTBFS_LOG");
  if (env == nullptr) return;
  LogLevel level = LogLevel::info;
  if (parse_log_level(env, level)) set_log_level(level);
}

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line) {
  using clock = std::chrono::system_clock;
  const auto now = clock::now().time_since_epoch();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  // Strip the directory: src/common/log.cpp -> log.cpp.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << ms / 1000 << "." << ms % 1000 << " "
          << level_tag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  const std::string line = stream_.str();
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace detail
}  // namespace fbfs
