// Minimal leveled stream logging.
//
//   FB_LOG_INFO << "partitioned " << name << " into " << n;
//
// The active level comes from set_log_level() or, conventionally at the
// top of main(), init_log_level_from_env() which reads FASTBFS_LOG
// (debug|info|warn|error|off; default info). Messages below the active
// level cost one branch and never evaluate their stream operands.
#pragma once

#include <sstream>
#include <string>

namespace fbfs {

enum class LogLevel : int {
  debug = 0,
  info = 1,
  warn = 2,
  error = 3,
  off = 4,
};

LogLevel log_level();
void set_log_level(LogLevel level);

/// Parses a level name; returns false (and leaves `out` untouched) on an
/// unknown name.
bool parse_log_level(const std::string& name, LogLevel& out);

/// Reads FASTBFS_LOG and applies it; unknown values keep the default.
void init_log_level_from_env();

inline bool log_enabled(LogLevel level) { return level >= log_level(); }

namespace detail {

/// One log line; the destructor emits it to stderr atomically.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace fbfs

#define FB_LOG(level)                  \
  if (!::fbfs::log_enabled(level)) {   \
  } else                               \
    ::fbfs::detail::LogMessage(level, __FILE__, __LINE__).stream()

#define FB_LOG_DEBUG FB_LOG(::fbfs::LogLevel::debug)
#define FB_LOG_INFO FB_LOG(::fbfs::LogLevel::info)
#define FB_LOG_WARN FB_LOG(::fbfs::LogLevel::warn)
#define FB_LOG_ERROR FB_LOG(::fbfs::LogLevel::error)
