// Work-batching helpers over ThreadPool — the engines' execution mode.
//
// An ExecContext either borrows a pool (parallel scatter/gather) or
// holds none (the serial path, byte-for-byte the single-threaded
// engine). parallel_for_ranges splits an index range into contiguous
// per-worker pieces; OrderedGate retires concurrently-produced chunk
// results strictly in submission order — PR 2's byte-identical in-order
// merge, extracted as a primitive so the scatter phase's update shuffle
// and stay streams stay deterministic at every thread count.
#pragma once

#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace fbfs {

/// Ceiling on any configured worker-thread count; anything above it is
/// a config typo, not a machine (CHECK-fatal in resolve_thread_count
/// and Config::get_threads).
inline constexpr std::uint32_t kMaxEngineThreads = 512;

/// 0 -> one worker per hardware thread (at least 1); otherwise the
/// requested count. CHECK-fatal above kMaxEngineThreads.
inline unsigned resolve_thread_count(std::uint32_t requested) {
  FB_CHECK_MSG(requested <= kMaxEngineThreads,
               "thread count " << requested << " exceeds the sanity cap of "
                               << kMaxEngineThreads);
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Execution mode handed through the engine internals: a borrowed pool
/// (parallel) or none (serial). The pool outlives every phase that uses
/// the context.
struct ExecContext {
  ThreadPool* pool = nullptr;

  unsigned threads() const { return pool != nullptr ? pool->size() : 1u; }
  bool parallel() const { return threads() > 1; }
};

struct IndexRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;  // exclusive

  std::uint64_t size() const { return end - begin; }
};

/// At most `pieces` contiguous, near-equal subranges of [0, n); the
/// first (n mod pieces) get one extra element. Empty subranges are not
/// returned, so the result may hold fewer than `pieces` entries.
inline std::vector<IndexRange> split_range(std::uint64_t n, unsigned pieces) {
  FB_CHECK_MSG(pieces > 0, "split_range needs at least one piece");
  std::vector<IndexRange> out;
  const std::uint64_t base = n / pieces;
  const std::uint64_t extra = n % pieces;
  std::uint64_t begin = 0;
  for (unsigned i = 0; i < pieces && begin < n; ++i) {
    const std::uint64_t size = base + (i < extra ? 1 : 0);
    if (size == 0) break;
    out.push_back({begin, begin + size});
    begin += size;
  }
  return out;
}

/// Waits for every future, then rethrows the first captured exception
/// (all tasks are always joined first, so no task outlives its
/// captures).
inline void join_all(std::vector<std::future<void>>& futures) {
  std::exception_ptr first;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

/// Runs fn(range) over [0, n) split into at most `pieces` subranges, on
/// the pool, and joins. The first task exception is rethrown after all
/// tasks finished.
template <typename Fn>
void parallel_for_ranges(ThreadPool& pool, std::uint64_t n, unsigned pieces,
                         Fn&& fn) {
  const std::vector<IndexRange> ranges = split_range(n, pieces);
  std::vector<std::future<void>> futures;
  futures.reserve(ranges.size());
  for (const IndexRange& r : ranges) {
    futures.push_back(pool.submit([&fn, r] { fn(r); }));
  }
  join_all(futures);
}

/// Serialises chunk hand-offs in ticket order: producer c blocks in
/// wait_turn(c) until every ticket below c has completed. Safe to drive
/// from ThreadPool tasks BECAUSE the pool pops tasks FIFO: when ticket
/// c's task runs, every lower ticket's task has already started, so the
/// lowest unfinished ticket is always running and the chain advances.
/// A producer that fails must still complete its ticket (after
/// wait_turn) or every later ticket deadlocks.
class OrderedGate {
 public:
  void wait_turn(std::uint64_t ticket) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return next_ == ticket; });
  }

  void complete(std::uint64_t ticket) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      FB_CHECK_MSG(next_ == ticket,
                   "OrderedGate ticket " << ticket << " completed out of turn ("
                                         << next_ << " expected)");
      ++next_;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t next_ = 0;
};

}  // namespace fbfs
