// Bounded queues for the engine pipelines.
//
// SpscQueue  — wait-free single-producer/single-consumer ring; the
//              scatter thread feeds the update shuffler through one.
// MpscQueue  — mutex+condvar multi-producer/single-consumer queue; the
//              AsyncWriter's work feed (any thread appends, one writer
//              thread drains).
//
// Both are closable: close() wakes blocked consumers, pop() drains the
// remaining items and then returns false, and push() on a closed queue
// is a checked programming error.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace fbfs {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity) : ring_(capacity + 1) {
    FB_CHECK_MSG(capacity > 0, "SpscQueue capacity must be positive");
  }

  std::size_t capacity() const { return ring_.size() - 1; }

  bool try_push(T value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = advance(tail);
    if (next == head_.load(std::memory_order_acquire)) return false;  // full
    ring_[tail] = std::move(value);
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Blocks while full. Pushing into a closed queue is a checked error.
  void push(T value) {
    FB_CHECK_MSG(!closed(), "push into closed SpscQueue");
    while (!try_push(std::move(value))) {
      FB_CHECK_MSG(!closed(), "push into closed SpscQueue");
      std::this_thread::yield();
    }
  }

  std::optional<T> try_pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return std::nullopt;
    std::optional<T> out(std::move(ring_[head]));
    head_.store(advance(head), std::memory_order_release);
    return out;
  }

  /// Blocks while empty; returns false once the queue is closed and
  /// fully drained.
  bool pop(T& out) {
    for (;;) {
      if (auto item = try_pop()) {
        out = std::move(*item);
        return true;
      }
      if (closed()) {
        // Drain anything pushed between the failed try_pop and close().
        if (auto item = try_pop()) {
          out = std::move(*item);
          return true;
        }
        return false;
      }
      std::this_thread::yield();
    }
  }

  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  std::size_t advance(std::size_t i) const {
    return i + 1 == ring_.size() ? 0 : i + 1;
  }

  std::vector<T> ring_;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer cursor
  std::atomic<bool> closed_{false};
};

template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(std::size_t capacity) : capacity_(capacity) {
    FB_CHECK_MSG(capacity > 0, "MpscQueue capacity must be positive");
  }

  std::size_t capacity() const { return capacity_; }

  bool try_push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      FB_CHECK_MSG(!closed_, "push into closed MpscQueue");
      if (items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while full. Pushing into a closed queue is a checked error.
  void push(T value) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      FB_CHECK_MSG(!closed_, "push into closed MpscQueue");
      not_full_.wait(lock,
                     [&] { return items_.size() < capacity_ || closed_; });
      FB_CHECK_MSG(!closed_, "push into closed MpscQueue");
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
  }

  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (items_.empty()) return std::nullopt;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Blocks while empty; returns false once closed and drained.
  bool pop(T& out) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
      if (items_.empty()) return false;
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace fbfs
