#include "common/rng.hpp"

#include <algorithm>
#include <cmath>

namespace fbfs {

ZipfSampler::ZipfSampler(std::uint64_t n, double theta) {
  FB_CHECK_MSG(n > 0, "ZipfSampler needs n > 0");
  FB_CHECK_MSG(theta > 0.0, "ZipfSampler needs theta > 0, got " << theta);
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    total += std::pow(static_cast<double>(k + 1), -theta);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it == cdf_.end() ? cdf_.size() - 1
                                                     : it - cdf_.begin());
}

}  // namespace fbfs
