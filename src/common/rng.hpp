// Deterministic pseudo-randomness for generators and tests.
//
// Rng is xoshiro256** (Blackman & Vigna), seeded by expanding a single
// 64-bit seed through splitmix64 — the combination both authors
// recommend. Same seed => same sequence on every platform; generators
// record their seed in the graph's .meta sidecar so datasets are
// reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace fbfs {

/// splitmix64 step: mixes `state` forward and returns the next output.
inline std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (std::uint64_t& word : state_) word = splitmix64_next(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound); bound must be positive. Debiased via
  /// rejection on the tail window.
  std::uint64_t next_below(std::uint64_t bound) {
    FB_CHECK(bound > 0);
    const std::uint64_t threshold = -bound % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [0, 1) with 53 bits of precision.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool next_bool(double p) { return next_double() < p; }

  // std::uniform_random_bit_generator interface, so Rng plugs into
  // std::shuffle and <random> distributions.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next_u64(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// Zipf(theta) sampler over {0, ..., n-1}: P(k) ∝ 1/(k+1)^theta. Exact
/// inverse-CDF table (O(n) memory, O(log n) sample) — generators sample
/// a few edges per vertex, so table build cost amortises immediately,
/// and any theta > 0 works (including theta > 1, where the common
/// YCSB-style closed form breaks down).
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double theta);

  std::uint64_t n() const { return static_cast<std::uint64_t>(cdf_.size()); }

  std::uint64_t sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(X <= k), cdf_.back() == 1
};

}  // namespace fbfs
