// Monotonic wall-clock stopwatch; RunStats times every phase with one.
#pragma once

#include <chrono>
#include <cstdint>

namespace fbfs {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace fbfs
