#include "common/temp_dir.hpp"

#include <atomic>

#include <unistd.h>

#include "common/check.hpp"

namespace fbfs {

TempDir::TempDir(const std::string& prefix) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t id = counter.fetch_add(1);
  const auto root = std::filesystem::temp_directory_path();
  path_ = root / (prefix + "-" + std::to_string(::getpid()) + "-" +
                  std::to_string(id));
  std::error_code ec;
  std::filesystem::create_directories(path_, ec);
  FB_CHECK_MSG(!ec, "cannot create temp dir " << path_.string() << ": "
                                              << ec.message());
}

TempDir::~TempDir() {
  if (path_.empty()) return;
  std::error_code ec;  // best-effort; never throw from a destructor
  std::filesystem::remove_all(path_, ec);
}

}  // namespace fbfs
