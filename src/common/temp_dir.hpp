// Scoped temporary directory: created unique under the system temp
// root, recursively removed on destruction. Tests and benchmarks root
// their Devices in one of these.
#pragma once

#include <filesystem>
#include <string>

namespace fbfs {

class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "fbfs");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  TempDir(TempDir&& other) noexcept : path_(std::move(other.path_)) {
    other.path_.clear();
  }
  TempDir& operator=(TempDir&&) = delete;

  const std::filesystem::path& path() const { return path_; }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

}  // namespace fbfs
