// Fixed-size thread pool. The engines size one pool from their
// `threads` config (the paper's Fig. 8 sweep) and submit per-partition
// scatter/gather work; wait_idle() is the round barrier.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace fbfs {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads) {
    FB_CHECK_MSG(threads > 0, "ThreadPool needs at least one thread");
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs f() on a pool thread; the future carries its result or
  /// exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      FB_CHECK_MSG(!stopping_, "submit on a stopping ThreadPool");
      tasks_.push_back([task] { (*task)(); });
    }
    work_ready_.notify_one();
    return result;
  }

  /// Blocks until every submitted task has finished. Tasks submitted
  /// concurrently with the wait (e.g. by pool tasks themselves) are
  /// awaited too.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [&] { return tasks_.empty() && active_ == 0; });
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_ready_.wait(lock, [&] { return stopping_ || !tasks_.empty(); });
        if (tasks_.empty()) return;  // stopping and drained
        task = std::move(tasks_.front());
        tasks_.pop_front();
        ++active_;
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --active_;
        if (tasks_.empty() && active_ == 0) idle_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> tasks_;
  unsigned active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fbfs
