// Byte-size units and human-readable formatting.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace fbfs {

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

/// "512 B", "4.0 KiB", "31.5 MiB", "2.0 GiB".
inline std::string format_bytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes < kKiB) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else if (bytes < kMiB) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / static_cast<double>(kKiB));
  } else if (bytes < kGiB) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / static_cast<double>(kMiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GiB",
                  static_cast<double>(bytes) / static_cast<double>(kGiB));
  }
  return buf;
}

}  // namespace fbfs
