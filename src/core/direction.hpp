// The per-iteration direction cost model (Beamer/Buluç-style
// direction-optimizing traversal as a core engine strategy).
//
// Top-down scatters the frontier's out-edges: the engine reads the
// input edges of every partition with an active source and emits one
// update per live edge — in the dense middle iterations of a
// low-diameter BFS that is most of the graph, per round. Bottom-up
// scans the IN-edges of partitions that still contain unvisited
// vertices and probes the frontier bitmap instead: at most one update
// per unvisited vertex, and a vertex's in-edge run short-circuits once
// claimed. The right mode flips per iteration with the frontier shape,
// so the engine models the bytes each mode would move and picks the
// cheaper one when `core.direction = auto`:
//
//   topdown  = topdown_scan_edges x edge_bytes
//              + frontier_fraction x total_edges x 2 x update_bytes
//   bottomup = bottomup_scan_edges x edge_bytes
//              + unvisited x 2 x update_bytes
//
// The update terms charge each update twice — once written by the
// shuffle, once read back by the gather. The top-down update count is
// an expectation (the frontier's share of all edges); the bottom-up
// one is the hard ceiling the pull loop enforces. Auto flips to
// bottom-up only when topdown > alpha x bottomup AND the frontier
// holds at least beta of all vertices — the growth gate that keeps
// sliver frontiers (high-diameter grids: every round under ~5% of V)
// top-down no matter what the byte model says, mirroring the alpha/
// beta heuristic of the direction-optimizing BFS paper.
//
// Everything here is a pure function of DirectionInputs so the unit
// tests can pin decisions on synthetic frontier schedules without
// running an engine.
#pragma once

#include <cstdint>

#include "engine/types.hpp"

namespace fbfs::core {

/// One round's observable shape, gathered by core::run before the
/// scatter phase.
struct DirectionInputs {
  std::uint64_t num_vertices = 0;
  std::uint64_t total_edges = 0;
  /// Vertices active this round (the frontier about to scatter).
  std::uint64_t frontier = 0;
  /// Vertices never yet visited (not in any past or present frontier).
  std::uint64_t unvisited = 0;
  /// Input edges of the partitions a top-down scatter would scan
  /// (partitions with an active source; trimmed inputs where stays
  /// committed).
  std::uint64_t topdown_scan_edges = 0;
  /// In-edges of the partitions a bottom-up pull would scan
  /// (partitions still containing an unvisited vertex).
  std::uint64_t bottomup_scan_edges = 0;
  std::uint32_t edge_bytes = 0;
  std::uint32_t update_bytes = 0;
  /// Batched (masked) traversals only — zero for single-query runs:
  /// aggregate popcount of the round's frontier masks, and the number
  /// of queries with any frontier bit left. When set, the beta growth
  /// gate reads the MEAN per-query frontier share
  /// (frontier_bits / (num_vertices x active_queries)) instead of the
  /// vertex fraction — 64 sliver wavefronts summed over one batch look
  /// vertex-dense without being dense for any single query, and the
  /// gate exists to catch exactly that sliver shape. The byte terms
  /// keep the vertex fraction: update RECORDS scale with frontier
  /// vertices whatever their masks hold.
  std::uint64_t frontier_bits = 0;
  std::uint32_t active_queries = 0;
};

/// The modelled bytes behind a decision — surfaced into IterationStats
/// so a run records why each round went the way it did.
struct DirectionCosts {
  double topdown_bytes = 0.0;
  double bottomup_bytes = 0.0;
  double frontier_fraction = 0.0;
};

inline DirectionCosts model_direction_costs(const DirectionInputs& in) {
  DirectionCosts costs;
  const double vertex_fraction =
      in.num_vertices == 0 ? 0.0
                           : static_cast<double>(in.frontier) /
                                 static_cast<double>(in.num_vertices);
  // The gate's fraction: per-query mean for masked batches, the plain
  // vertex fraction otherwise (see DirectionInputs::frontier_bits).
  costs.frontier_fraction =
      in.active_queries > 0 && in.num_vertices > 0
          ? static_cast<double>(in.frontier_bits) /
                (static_cast<double>(in.num_vertices) *
                 static_cast<double>(in.active_queries))
          : vertex_fraction;
  const double update_rw = 2.0 * static_cast<double>(in.update_bytes);
  costs.topdown_bytes =
      static_cast<double>(in.topdown_scan_edges) *
          static_cast<double>(in.edge_bytes) +
      vertex_fraction * static_cast<double>(in.total_edges) *
          update_rw;
  costs.bottomup_bytes = static_cast<double>(in.bottomup_scan_edges) *
                             static_cast<double>(in.edge_bytes) +
                         static_cast<double>(in.unvisited) * update_rw;
  return costs;
}

/// The per-round decision. Forced modes pass through (the engine
/// degrades a forced bottom-up to top-down only when the program has no
/// pull hook); auto applies the byte model behind the beta growth gate.
inline engine::Direction decide_direction(engine::Direction configured,
                                          const DirectionInputs& in,
                                          double alpha, double beta,
                                          DirectionCosts* costs_out = nullptr) {
  const DirectionCosts costs = model_direction_costs(in);
  if (costs_out != nullptr) *costs_out = costs;
  if (configured != engine::Direction::kAuto) return configured;
  const bool bottomup = costs.frontier_fraction >= beta &&
                        costs.topdown_bytes > alpha * costs.bottomup_bytes;
  return bottomup ? engine::Direction::kBottomUp
                  : engine::Direction::kTopDown;
}

}  // namespace fbfs::core
