#include "core/engine.hpp"

#include "common/log.hpp"

namespace fbfs::core {

EngineOptions engine_options_from_config(const Config& config) {
  return engine::options_from_config(config, engine::Kind::kCore);
}

std::uint32_t partition_count_from_config(const Config& config,
                                          std::uint32_t fallback) {
  return engine::partition_count_from_config(config, engine::Kind::kCore,
                                             fallback);
}

std::string stay_file_name(const graph::PartitionedGraph& pg,
                           std::uint32_t p) {
  return pg.meta.name + ".P" +
         std::to_string(pg.layout.num_partitions()) + ".stay" +
         std::to_string(p);
}

namespace detail {

void log_trim_resolution(const char* program, std::uint32_t partition,
                         io::AsyncWriter::StreamState state) {
  const char* outcome = "?";
  switch (state) {
    case io::AsyncWriter::StreamState::active:
      outcome = "active";
      break;
    case io::AsyncWriter::StreamState::completed:
      outcome = "committed";
      break;
    case io::AsyncWriter::StreamState::cancelled:
      outcome = "cancelled";
      break;
    case io::AsyncWriter::StreamState::failed:
      outcome = "failed";
      break;
  }
  FB_LOG_DEBUG << program << " trim of partition " << partition << ": "
               << outcome;
}

}  // namespace detail

}  // namespace fbfs::core
