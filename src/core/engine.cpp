#include "core/engine.hpp"

#include "common/log.hpp"

namespace fbfs::core {

EngineOptions engine_options_from_config(const Config& config) {
  EngineOptions opts;
  opts.reader = io::reader_options_from_config(config);
  opts.write_buffer_bytes = static_cast<std::size_t>(
      config.get_bytes_or("core.write_buffer", opts.write_buffer_bytes));
  opts.max_iterations = static_cast<std::uint32_t>(
      config.get_u64_or("core.max_iterations", opts.max_iterations));
  opts.trim = config.get_bool_or("core.trim", opts.trim);
  opts.selective = config.get_bool_or("core.selective", opts.selective);
  opts.trim_start_round = static_cast<std::uint32_t>(
      config.get_u64_or("core.trim_start_round", opts.trim_start_round));
  opts.trim_min_frontier_fraction = config.get_f64_or(
      "core.trim_min_frontier_fraction", opts.trim_min_frontier_fraction);
  opts.trim_min_dead_fraction = config.get_f64_or(
      "core.trim_min_dead_fraction", opts.trim_min_dead_fraction);
  opts.grace_timeout_seconds =
      config.get_f64_or("core.grace_timeout", opts.grace_timeout_seconds);
  opts.stay_buffer_bytes = static_cast<std::size_t>(
      config.get_bytes_or("core.stay_buffer", opts.stay_buffer_bytes));
  opts.stay_pool_buffers = static_cast<std::size_t>(
      config.get_u64_or("core.stay_pool_buffers", opts.stay_pool_buffers));
  opts.num_threads = config.get_threads_or("engine.num_threads", 1);
  const std::string update_codec = config.get_enum_or(
      "updates.codec", {"auto", "raw", "bitmap", "varint"},
      io::codec::to_string(opts.update_codec));
  opts.update_codec = io::codec::parse_policy(update_codec);
  opts.sieve_updates = config.get_bool_or("updates.sieve", opts.sieve_updates);
  // Stay files follow the update codec unless overridden.
  opts.stay_codec = io::codec::parse_policy(config.get_enum_or(
      "updates.stay_codec", {"auto", "raw", "bitmap", "varint"},
      update_codec));
  return opts;
}

std::uint32_t partition_count_from_config(const Config& config,
                                          std::uint32_t fallback) {
  return static_cast<std::uint32_t>(
      config.get_u64_or("core.partition_count", fallback));
}

std::string stay_file_name(const graph::PartitionedGraph& pg,
                           std::uint32_t p) {
  return pg.meta.name + ".P" +
         std::to_string(pg.layout.num_partitions()) + ".stay" +
         std::to_string(p);
}

namespace detail {

void log_trim_resolution(const char* program, std::uint32_t partition,
                         io::AsyncWriter::StreamState state) {
  const char* outcome = "?";
  switch (state) {
    case io::AsyncWriter::StreamState::active:
      outcome = "active";
      break;
    case io::AsyncWriter::StreamState::completed:
      outcome = "committed";
      break;
    case io::AsyncWriter::StreamState::cancelled:
      outcome = "cancelled";
      break;
    case io::AsyncWriter::StreamState::failed:
      outcome = "failed";
      break;
  }
  FB_LOG_DEBUG << program << " trim of partition " << partition << ": "
               << outcome;
}

}  // namespace detail

}  // namespace fbfs::core
