// The FastBFS engine (ROADMAP item 1): the streaming scatter/gather
// loop of xstream::run plus the paper's §II-C mechanisms —
//
//   edge trimming       during a partition's scatter scan, edges whose
//                       source is in the frontier emit their update and
//                       die (a trimmable program never re-activates a
//                       scattered source); surviving edges stream
//                       through AsyncWriter::begin_staged onto the
//                       plan's stay device as the partition's
//                       next-iteration input;
//   latency hiding      the stay write proceeds on the writer thread
//                       while the scatter loop moves on; only the NEXT
//                       scatter of the same partition needs the file,
//                       so wait_complete(id, grace_timeout) gates the
//                       swap there — on timeout the stream is
//                       cancelled and the previous input file is
//                       reused (begin_staged's .wip-never-clobbers
//                       contract makes the fallback safe);
//   trim triggers       per partition and per round, trimming starts
//                       only when it plausibly pays: round >=
//                       trim_start_round, frontier fraction >=
//                       trim_min_frontier_fraction, and the dead-edge
//                       fraction observed in the partition's previous
//                       scan >= trim_min_dead_fraction;
//   selective scheduling partitions whose vertex range received no
//                       gather update are skipped outright (shared
//                       with xstream via AtomicBitmap::any_in_range).
//
// Trimming applies only to programs declaring kTrimmable (BFS — see
// program.hpp for the licence); for the rest core::run degrades to the
// untrimmed loop and stays bit-identical to xstream::run/inmem::run by
// construction. Deadness is engine-level: `retired` accumulates every
// past frontier, and an edge survives iff its source is neither active
// nor retired — no peeking into program State.
//
// Masked programs (graph::MaskedProgram — MultiBfs, the batched
// multi-source traversal) swap both engine-level bitmaps for the
// MaskStateTracker's SATURATION set: a vertex every query has seen can
// never gather anything new, so once it scatters the frontier it is
// carrying, its out-edges are dead (trim deadness = saturated, NOT
// has-been-active — an unsaturated vertex re-enters the frontier when
// a later query reaches it) and bottom-up rounds treat it as claimed.
// The direction model additionally sees the round's aggregate frontier
// mask popcount, so the beta gate reads per-query density.
//
// Round accounting and stop rules are EXACTLY inmem::run's (change
// both or neither); init/fan-out/gather/collect come verbatim from
// xstream/detail.hpp.
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/bitmap.hpp"
#include "common/check.hpp"
#include "common/config.hpp"
#include "common/parallel.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "core/direction.hpp"
#include "engine/types.hpp"
#include "graph/partitioner.hpp"
#include "graph/program.hpp"
#include "metrics/collector.hpp"
#include "metrics/device_usage.hpp"
#include "storage/async_writer.hpp"
#include "storage/codec.hpp"
#include "storage/reader_factory.hpp"
#include "storage/storage_plan.hpp"
#include "xstream/detail.hpp"

namespace fbfs::core {

/// The unified engine surface (engine/types.hpp — the one place the
/// shared-key precedence is documented). This engine reads every field:
/// the trim knobs, the stay-stream codec (raw keeps the fully streamed
/// async write; the other policies buffer survivors and encode at
/// finish time, bitmap never applying since multi-edges keep their
/// multiplicity), and the direction strategy below.
using EngineOptions = engine::Options;
using Direction = engine::Direction;

template <graph::GraphProgram P>
using RunResult = engine::RunResult<P>;

/// engine::options_from_config(config, Kind::kCore): the shared keys
/// plus the `core.*` trim knobs (write_buffer, max_iterations, trim,
/// selective, trim_start_round, trim_min_frontier_fraction,
/// trim_min_dead_fraction, grace_timeout, stay_buffer,
/// stay_pool_buffers), `updates.stay_codec` (defaults to the resolved
/// `updates.codec`), and the direction strategy (`core.direction` =
/// topdown | bottomup | auto, `core.direction_alpha`,
/// `core.direction_beta`).
EngineOptions engine_options_from_config(const Config& config);

/// Reads `core.partition_count` > `engine.partition_count` > `fallback`.
std::uint32_t partition_count_from_config(const Config& config,
                                          std::uint32_t fallback);

/// Partition p's trimmed input on the stay device. Staged writes land
/// on "<name>.wip" first, so the previous version survives cancellation.
std::string stay_file_name(const graph::PartitionedGraph& pg,
                           std::uint32_t p);

/// The hoisted per-round stats record (metrics/iteration_stats.hpp)
/// already carries the trim life-cycle counters this engine used to
/// bolt onto xstream's struct; the alias keeps the historical
/// spelling the tests and benches use.
using IterationStats = metrics::IterationStats;

namespace detail {

void log_trim_resolution(const char* program, std::uint32_t partition,
                         io::AsyncWriter::StreamState state);

/// After a grace-timeout cancel, the writer thread gets this long to
/// reach a terminal state (cancel is cooperative and never blocks on
/// the device, so this settles promptly; it exists so a commit that
/// raced the cancel is observed as the commit it is).
inline constexpr double kSettleTimeoutSeconds = 60.0;

/// One in-flight stay stream per partition: the trim started at some
/// round's scan, resolved at the partition's next scan (or end of run).
struct PendingTrim {
  io::AsyncWriter::StreamId id = 0;
  std::uint64_t survivors = 0;  // edges appended to the stream
  /// Format the stream was written in; the next scan dispatches on it
  /// (raw = positional scan past the header, else decode-then-scatter)
  /// without re-reading the header.
  io::codec::Format format = io::codec::Format::kRaw;
};

/// scatter_partition's edge-observer for core (see xstream/detail.hpp's
/// NullTrimSink for the hook contract): counts dead edges and feeds the
/// partition's ONE staged stay stream with survivors. flush() is only
/// ever called in input order — serially, or inside the parallel
/// scatter's ordered hand-off, whose gate mutex sequences the calls —
/// so the plain (non-atomic) members are race-free and the stay file
/// receives survivors in scan order at every thread count.
struct StayTrimSink {
  struct ChunkState {
    std::vector<graph::Edge> survivors;
    std::uint64_t dead = 0;
  };

  bool counting = false;    // trim-capable run: count dead edges
  bool collecting = false;  // trimming this scan: stage survivors
  /// Non-raw stay codec: survivors accumulate in `staged` (in scan
  /// order, flush() being input-ordered) and the engine encodes +
  /// appends the whole stream at finish time, instead of streaming
  /// chunks through the async writer as they retire.
  bool buffered = false;
  /// Masked programs: deadness is saturation alone (`retired` points at
  /// the tracker's saturated set). An active-but-unsaturated source
  /// must SURVIVE — a later query can put it back in the frontier —
  /// where the single-query rule would kill it.
  bool masked = false;
  const AtomicBitmap* retired = nullptr;
  io::AsyncWriter* writer = nullptr;
  io::AsyncWriter::StreamId id = 0;
  bool alive = false;
  std::uint64_t dead_total = 0;
  std::vector<graph::Edge> staged;

  ChunkState make_chunk_state() const { return {}; }

  void observe(const graph::Edge& e, bool src_active,
               ChunkState& chunk) const {
    if (!counting) return;
    const bool dead =
        masked ? retired->test(e.src) : (src_active || retired->test(e.src));
    if (dead) {
      ++chunk.dead;
    } else if (collecting) {
      chunk.survivors.push_back(e);
    }
  }

  void flush(ChunkState& chunk) {
    dead_total += chunk.dead;
    chunk.dead = 0;
    if (chunk.survivors.empty()) return;
    if (buffered) {
      staged.insert(staged.end(), chunk.survivors.begin(),
                    chunk.survivors.end());
    } else if (alive &&
               !writer->append_raw(
                   id, chunk.survivors.data(),
                   chunk.survivors.size() * sizeof(graph::Edge))) {
      alive = false;  // stream cancelled/failed under us
    }
    chunk.survivors.clear();
  }
};

}  // namespace detail

template <graph::GraphProgram P>
RunResult<P> run(const graph::PartitionedGraph& pg,
                 const io::StoragePlan& plan, const P& program,
                 const EngineOptions& options = {}) {
  using State = typename P::State;
  using Update = typename P::Update;
  namespace xd = xstream::detail;
  FB_CHECK_MSG(!P::kRequiresUndirected || pg.meta.undirected,
               P::kName << " requires a symmetric edge list, but "
                        << pg.meta.name
                        << " is directed (symmetrize_edge_list)");
  const graph::PartitionLayout& layout = pg.layout;
  const std::uint32_t num_partitions = layout.num_partitions();
  const std::uint64_t n = layout.num_vertices();

  RunResult<P> result;
  AtomicBitmap active(n);
  AtomicBitmap next_active(n);

  const unsigned num_threads = resolve_thread_count(options.num_threads);
  std::optional<ThreadPool> pool;
  if (num_threads > 1) pool.emplace(num_threads);
  const ExecContext exec{pool ? &*pool : nullptr};

  // ---- masked-program state (batched multi-source traversal). The
  // tracker mirrors every vertex's seen/frontier mask into flat arrays
  // (refreshed by the init/gather observer hooks) and owns the
  // saturation bitmap that replaces `retired` AND `visited` below.
  constexpr bool masked = graph::MaskedProgram<P>;
  [[maybe_unused]] std::uint32_t batch_width = 0;
  std::optional<xd::MaskStateTracker<P>> tracker;
  if constexpr (masked) {
    batch_width = static_cast<std::uint32_t>(std::popcount(program.full_mask()));
    tracker.emplace(program, n);
    xd::init_partition_states(pg, plan, options.reader,
                              options.write_buffer_bytes, program, active,
                              exec, &*tracker);
  } else {
    xd::init_partition_states(pg, plan, options.reader,
                              options.write_buffer_bytes, program, active,
                              exec);
  }

  // ---- trimming state. Only kTrimmable programs ever pay for any of
  // this; for the rest the loop below is xstream::run's. Masked
  // programs key deadness on the tracker's saturation set instead of a
  // past-frontiers bitmap (see the header comment).
  const bool trim_capable = options.trim && P::kTrimmable;
  std::optional<io::AsyncWriter> writer;
  std::optional<AtomicBitmap> retired;
  if (trim_capable) {
    writer.emplace(options.stay_buffer_bytes, options.stay_pool_buffers);
    if constexpr (!masked) retired.emplace(n);
  }
  std::vector<bool> input_on_stay(num_partitions, false);
  // Codec format of partition p's committed stay file (meaningful only
  // when input_on_stay[p]); raw scans positionally past the header, any
  // other format decodes up front and scatters the in-memory span.
  std::vector<io::codec::Format> stay_format(num_partitions,
                                             io::codec::Format::kRaw);
  std::vector<std::uint64_t> input_edges(pg.edges_per_partition);
  // Dead edges seen in the latest scan of the partition's CURRENT input
  // (replaced per scan — deadness is monotone, so a stale count only
  // undercounts; reset to 0 when the input swaps to a fresh stay file).
  std::vector<std::uint64_t> dead_seen(num_partitions, 0);
  std::vector<std::optional<detail::PendingTrim>> pending(num_partitions);

  // ---- direction state (ROADMAP item 4). Only PullCapable and masked
  // programs can run bottom-up; for the rest any configured direction
  // silently degrades to top-down and none of this is paid for. The
  // transposed (in-edge) view builds once up front — or loads from its
  // cache — on the plan's edge device. The bottom-up claimed set:
  // `visited` (every frontier ever activated) for single-query pulls,
  // the tracker's saturation bitmap for masked programs — in both
  // cases, exactly the vertices a bottom-up probe can never gain
  // anything for, which is also the cost model's `unvisited` term.
  constexpr bool pull_capable = graph::PullCapable<P>;
  constexpr bool pull_ok = pull_capable || masked;
  const Direction configured =
      pull_ok ? options.direction : Direction::kTopDown;
  std::optional<AtomicBitmap> visited;
  graph::TransposedView transposed;
  if constexpr (pull_ok) {
    if (configured != Direction::kTopDown) {
      if constexpr (!masked) {
        visited.emplace(n);
        visited->or_with(active);
      }
      graph::PartitionOptions topts;
      topts.reader = options.reader.mode;
      transposed = graph::build_transposed_view(plan, pg, topts);
    }
  }
  // The bottom-up claimed set (null when direction state is off).
  const AtomicBitmap* const claimed = [&]() -> const AtomicBitmap* {
    if constexpr (masked) return &tracker->saturated;
    return visited ? &*visited : nullptr;
  }();

  metrics::Collector* const collector = options.collector;

  // Resolves partition p's pending stay stream: bounded grace wait,
  // cancel on timeout, settle, then swap the input on commit or fall
  // back to the previous input otherwise. `stats` is the current
  // round's row, or the run's epilogue row at end-of-run — every
  // resolution lands in exactly one row, so the run totals always equal
  // the rows' sum (CHECKed below).
  const auto resolve_pending = [&](std::uint32_t p, IterationStats* stats) {
    if (!pending[p]) return;
    metrics::ScopedPhase resolve_timer(collector,
                                       metrics::Phase::kTrimResolve);
    const io::AsyncWriter::StreamId id = pending[p]->id;
    bool committed = writer->wait_complete(id, options.grace_timeout_seconds);
    if (!committed) {
      writer->cancel(id);
      // The commit rename may have raced the cancel; either terminal
      // state is correct (a committed stay file is a valid input), so
      // just observe which one the writer reached.
      committed = writer->wait_complete(id, detail::kSettleTimeoutSeconds);
    }
    const io::AsyncWriter::StreamState state = writer->state(id);
    detail::log_trim_resolution(P::kName, p, state);
    if (committed) {
      input_on_stay[p] = true;
      stay_format[p] = pending[p]->format;
      input_edges[p] = pending[p]->survivors;
      dead_seen[p] = 0;
      ++result.trims_committed;
      if (stats != nullptr) ++stats->trims_committed;
    } else if (state == io::AsyncWriter::StreamState::failed) {
      ++result.trims_failed;
      if (stats != nullptr) ++stats->trims_failed;
    } else {
      ++result.trims_cancelled;
      if (stats != nullptr) ++stats->trims_cancelled;
    }
    writer->release(id);
    pending[p].reset();
  };

  // ---- rounds. Stop rules mirror inmem::run exactly.
  std::vector<std::uint64_t> pending_updates(num_partitions, 0);
  while (result.iterations < options.max_iterations) {
    Stopwatch round_clock;
    IterationStats stats;
    stats.iteration = result.iterations;
    const metrics::RoleSnapshots io_before = plan.stats_snapshot();
    const double frontier_fraction =
        P::kScatterAllVertices
            ? 1.0
            : static_cast<double>(active.count_set()) / static_cast<double>(n);

    // Masked programs: the round's aggregate mask shape — the direction
    // model's per-query densities, the batch columns in the stats row,
    // and the live per-query convergence counter (monotone: a query
    // with no frontier bit anywhere can never regain one).
    [[maybe_unused]] typename xd::MaskStateTracker<P>::RoundMasks round_masks;
    if constexpr (masked) {
      round_masks = tracker->round_masks(active);
      stats.frontier_mask_bits = round_masks.frontier_bits;
      stats.queries_active = static_cast<std::uint32_t>(
          std::popcount(round_masks.active_mask));
      if (collector != nullptr) {
        collector->live().set_queries_converged(batch_width -
                                                stats.queries_active);
      }
    }

    // Direction decision: model both modes' bytes from this round's
    // frontier and the partitions each mode would actually touch, then
    // decide (forced modes pass straight through). Both costs are
    // recorded in the round's stats either way, so an ablation can see
    // the margin the model acted on.
    Direction mode = Direction::kTopDown;
    if constexpr (pull_ok) {
      if (configured != Direction::kTopDown) {
        DirectionInputs din;
        din.num_vertices = n;
        din.total_edges = pg.meta.num_edges;
        din.frontier = active.count_set();
        din.unvisited = n - claimed->count_set();
        din.edge_bytes = sizeof(graph::Edge);
        din.update_bytes = sizeof(Update);
        if constexpr (masked) {
          din.frontier_bits = round_masks.frontier_bits;
          din.active_queries = stats.queries_active;
        }
        for (std::uint32_t p = 0; p < num_partitions; ++p) {
          if (!options.selective || P::kScatterAllVertices ||
              active.any_in_range(layout.begin(p), layout.end(p))) {
            din.topdown_scan_edges += input_edges[p];
          }
          if (!claimed->all_in_range(layout.begin(p), layout.end(p))) {
            din.bottomup_scan_edges += transposed.in_edges_per_partition[p];
          }
        }
        DirectionCosts costs;
        mode = decide_direction(configured, din, options.direction_alpha,
                                options.direction_beta, &costs);
        stats.modelled_topdown_bytes = costs.topdown_bytes;
        stats.modelled_bottomup_bytes = costs.bottomup_bytes;
        stats.bottomup = mode == Direction::kBottomUp;
      }
    }

    // Scatter.
    {
      Stopwatch scatter_clock;
      auto fanout = xd::open_update_fanout<Update>(
          pg, plan, options.write_buffer_bytes, options.update_codec,
          graph::kIdempotentGatherV<P>);
      if constexpr (pull_ok) {
        if (mode == Direction::kBottomUp) {
          // Bottom-up: scan the transposed files of partitions that
          // still hold unclaimed vertices and let those vertices probe
          // the frontier. Pending trims of the FORWARD inputs stay
          // pending (nothing reads them this round, so their streams
          // just get more time), and no trim sink runs — the transposed
          // view is never trimmed. Masked programs hand the pull the
          // tracker's flat mask arrays; single-query pulls pass empty
          // spans the pull never reads.
          std::span<const std::uint64_t> frontier_masks;
          std::span<const std::uint64_t> seen_masks;
          if constexpr (masked) {
            frontier_masks = tracker->frontier;
            seen_masks = tracker->seen;
          }
          for (std::uint32_t q = 0; q < num_partitions; ++q) {
            if (claimed->all_in_range(layout.begin(q), layout.end(q))) {
              ++stats.partitions_skipped;
              if (collector != nullptr) {
                collector->live().add_partition_skipped();
              }
              continue;
            }
            ++stats.partitions_scattered;
            if (collector != nullptr) {
              collector->live().add_partition_scattered();
            }
            metrics::ScopedPhase scatter_timer(collector,
                                               metrics::Phase::kScatter);
            const xd::ScatterResult pulled = xd::pull_partition<P>(
                exec, plan.edges(), graph::transposed_file(pg, q),
                transposed.in_edges_per_partition[q],
                std::span<const graph::TransposedBlock>(transposed.blocks[q]),
                layout, q, active, *claimed, program, result.iterations,
                options.reader, frontier_masks, seen_masks, fanout,
                collector);
            FB_CHECK_MSG(
                pulled.scanned + pulled.skipped ==
                    transposed.in_edges_per_partition[q],
                "transposed partition " << q << " of " << pg.meta.name
                                        << " covered " << pulled.scanned
                                        << " + " << pulled.skipped
                                        << " edges, expected "
                                        << transposed.in_edges_per_partition[q]);
            stats.edges_scanned += pulled.scanned;
            stats.edges_probed += pulled.probed;
            stats.edge_bytes_skipped +=
                pulled.skipped * sizeof(graph::Edge);
          }
        }
      }
      // Top-down (the entire loop no-ops after a bottom-up pull above).
      for (std::uint32_t p = 0;
           mode != Direction::kBottomUp && p < num_partitions; ++p) {
        if (options.selective && !P::kScatterAllVertices &&
            !active.any_in_range(layout.begin(p), layout.end(p))) {
          // A pending trim of a skipped partition stays pending: the
          // stream gets more time, and nothing needs its file yet.
          ++stats.partitions_skipped;
          if (collector != nullptr) collector->live().add_partition_skipped();
          continue;
        }
        ++stats.partitions_scattered;
        if (collector != nullptr) collector->live().add_partition_scattered();
        resolve_pending(p, &stats);

        const bool trim_this_scan =
            trim_capable && result.iterations >= options.trim_start_round &&
            frontier_fraction >= options.trim_min_frontier_fraction &&
            static_cast<double>(dead_seen[p]) >=
                options.trim_min_dead_fraction *
                    static_cast<double>(input_edges[p]);
        detail::StayTrimSink sink;
        sink.counting = trim_capable;
        sink.collecting = trim_this_scan;
        sink.buffered = options.stay_codec != io::codec::Policy::kRaw;
        sink.masked = masked;
        if (trim_capable) {
          if constexpr (masked) {
            sink.retired = &tracker->saturated;
          } else {
            sink.retired = &*retired;
          }
        }
        if (trim_this_scan) {
          sink.id = writer->begin_staged(plan.stay(), stay_file_name(pg, p));
          sink.writer = &*writer;
          sink.alive = true;
          if (!sink.buffered) {
            // Streamed-raw stays are self-describing too: header first,
            // survivors appended behind it as they retire.
            const io::codec::FileHeader header =
                io::codec::raw_stream_header<graph::Edge>();
            if (!writer->append_raw(sink.id, &header, sizeof(header))) {
              sink.alive = false;
            }
          }
          ++result.trims_started;
          ++stats.trims_started;
        }

        metrics::ScopedPhase scatter_timer(collector,
                                           metrics::Phase::kScatter);
        const std::vector<State> states = xd::read_records<State>(
            plan.state(), xstream::state_file_name(pg, p), options.reader,
            layout.size(p));
        xd::ScatterResult scattered;
        {
          if (input_on_stay[p] &&
              stay_format[p] != io::codec::Format::kRaw) {
            // An encoded stay file has no per-chunk byte offsets to
            // slice, so it decodes whole and scatters as a span (same
            // windows, same ordered hand-off).
            const std::vector<graph::Edge> stay_edges =
                io::codec::read_all<graph::Edge>(plan.stay(),
                                                 stay_file_name(pg, p),
                                                 options.reader,
                                                 input_edges[p]);
            scattered = xd::scatter_span<P>(
                exec, stay_edges, layout, layout.begin(p), states, active,
                program, options.reader, options.sieve_updates, fanout, sink,
                collector);
          } else {
            io::Device& input_dev =
                input_on_stay[p] ? plan.stay() : plan.edges();
            const std::string input_name = input_on_stay[p]
                                               ? stay_file_name(pg, p)
                                               : pg.partition_file(p);
            const std::uint64_t base_offset =
                input_on_stay[p] ? io::codec::kHeaderBytes : 0;
            scattered = xd::scatter_partition<P>(
                exec, input_dev, input_name, base_offset, input_edges[p],
                layout, layout.begin(p), states, active, program,
                options.reader, options.sieve_updates, fanout, sink,
                collector);
          }
        }  // readers closed before the stream can commit a rename
        FB_CHECK_MSG(scattered.scanned == input_edges[p],
                     "partition " << p << " input of " << pg.meta.name
                                  << " holds " << scattered.scanned
                                  << " edges, expected " << input_edges[p]);
        stats.edges_scanned += scattered.scanned;
        stats.edges_probed += scattered.probed;
        stats.updates_sieved += scattered.sieved;
        if (trim_capable) dead_seen[p] = sink.dead_total;
        if (trim_this_scan) {
          const std::uint64_t survivors = input_edges[p] - sink.dead_total;
          io::codec::Format format = io::codec::Format::kRaw;
          if (sink.buffered && sink.alive) {
            // Buffered stay codec: encode the whole survivor stream now
            // and hand the device write to the async writer as one
            // append (still .wip-staged, still cancellable).
            FB_CHECK_EQ(sink.staged.size(), survivors);
            io::codec::EncodeOptions eopts;
            eopts.policy = options.stay_codec;
            // Multi-edges must keep their multiplicity (a collapsed
            // duplicate would change scanned counts and PageRank
            // contributions), so the bitmap format never applies.
            eopts.allow_bitmap = false;
            eopts.range_begin = 0;
            eopts.range_end = n;
            const io::codec::EncodedBlob blob =
                io::codec::encode_records<graph::Edge>(sink.staged, eopts);
            format = blob.format;
            if (!writer->append_raw(sink.id, blob.bytes.data(),
                                    blob.bytes.size())) {
              sink.alive = false;
            }
          }
          if (sink.alive) {
            writer->finish(sink.id);
          } else {
            writer->cancel(sink.id);  // no-op if already failed
          }
          stats.stay_edges_written += survivors;
          result.stay_edges_written += survivors;
          pending[p] = detail::PendingTrim{sink.id, survivors, format};
        }
      }
      {
        metrics::ScopedPhase flush_timer(collector,
                                         metrics::Phase::kShuffleFlush);
        const auto closed = fanout.close(pending_updates);
        stats.updates_emitted = closed.updates;
        stats.update_codec_bytes = closed.file_bytes;
      }
      stats.scatter_seconds = scatter_clock.seconds();
    }
    if (stats.updates_emitted == 0 && !P::kScatterAllVertices) {
      // The uncounted final round may still have resolved or started
      // trims; fold its counters into the epilogue row so the run
      // totals keep reconciling against the per-iteration rows.
      result.epilogue.trims_started += stats.trims_started;
      result.epilogue.trims_committed += stats.trims_committed;
      result.epilogue.trims_cancelled += stats.trims_cancelled;
      result.epilogue.trims_failed += stats.trims_failed;
      result.epilogue.stay_edges_written += stats.stay_edges_written;
      break;
    }
    result.updates_emitted += stats.updates_emitted;
    if (stats.bottomup) {
      ++result.bottomup_rounds;
      if (collector != nullptr) collector->live().add_bottomup_round();
    }

    next_active.reset();
    {
      Stopwatch gather_clock;
      if constexpr (masked) {
        xd::gather_partitions(pg, plan, options.reader,
                              options.write_buffer_bytes, program,
                              pending_updates, next_active, exec, collector,
                              &*tracker);
      } else {
        xd::gather_partitions(pg, plan, options.reader,
                              options.write_buffer_bytes, program,
                              pending_updates, next_active, exec, collector);
      }
      stats.gather_seconds = gather_clock.seconds();
    }

    // This round's frontier has scattered: those sources are dead for
    // every future round of a trimmable program. (Masked deadness is
    // saturation, which the gather observer just refreshed.)
    if constexpr (!masked) {
      if (trim_capable) retired->or_with(active);
    }

    ++result.iterations;
    std::swap(active, next_active);
    // The freshly activated vertices are claimed from here on — exactly
    // what the next bottom-up probe and the cost model must see.
    if (visited) visited->or_with(active);
    stats.activated = active.count_set();
    stats.seconds = round_clock.seconds();
    metrics::capture_iteration_io(plan, io_before, stats);
    xd::log_iteration(P::kName, stats);
    result.per_iteration.push_back(stats);
    if (collector != nullptr) collector->end_iteration(stats);
    if (!P::kScatterAllVertices && !active.any()) break;
  }

  // ---- settle the trims the run ended on, collect, tidy.
  if constexpr (masked) {
    // Final convergence: queries with no frontier left anywhere are
    // done (a clean stop converges all of them; an iteration-cap stop
    // reports the true residue).
    if (collector != nullptr) {
      const auto final_masks = tracker->round_masks(active);
      collector->live().set_queries_converged(
          batch_width -
          static_cast<std::uint32_t>(std::popcount(final_masks.active_mask)));
    }
  }
  for (std::uint32_t p = 0; p < num_partitions; ++p) {
    resolve_pending(p, &result.epilogue);
  }
  // Reconcile: run-level trim totals == per-iteration rows + epilogue.
  // Drift here means a resolution was dropped or double-counted.
  {
    IterationStats sum = result.epilogue;
    for (const IterationStats& s : result.per_iteration) {
      sum.trims_started += s.trims_started;
      sum.trims_committed += s.trims_committed;
      sum.trims_cancelled += s.trims_cancelled;
      sum.trims_failed += s.trims_failed;
      sum.stay_edges_written += s.stay_edges_written;
    }
    FB_CHECK_EQ(sum.trims_started, result.trims_started);
    FB_CHECK_EQ(sum.trims_committed, result.trims_committed);
    FB_CHECK_EQ(sum.trims_cancelled, result.trims_cancelled);
    FB_CHECK_EQ(sum.trims_failed, result.trims_failed);
    FB_CHECK_EQ(sum.stay_edges_written, result.stay_edges_written);
  }
  result.states = xd::collect_states<P>(pg, plan, options.reader);
  if (!options.keep_files) {
    xd::remove_run_files(pg, plan);
    for (std::uint32_t p = 0; p < num_partitions; ++p) {
      if (plan.stay().exists(stay_file_name(pg, p))) {
        plan.stay().remove(stay_file_name(pg, p));
      }
    }
  }
  return result;
}

}  // namespace fbfs::core
