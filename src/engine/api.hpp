// engine::run — the one run entry the benches and tests dispatch
// through. Picks the engine by engine::Kind at runtime; all three
// variants consume the same engine::Options and produce the same
// engine::RunResult<P> (types.hpp), so a caller can sweep engines in a
// loop instead of hard-coding one namespace per arm.
//
// The streaming engines run over the partitioned graph + storage plan
// as before. Kind::kInmem ignores the partitioning and builds the
// reference CSR straight off the plan's edge device — the same call
// every equivalence test makes by hand — so one dispatch covers the
// reference run too.
#pragma once

#include "core/engine.hpp"
#include "engine/types.hpp"
#include "graph/csr.hpp"
#include "inmem/engine.hpp"
#include "xstream/engine.hpp"

namespace fbfs::engine {

template <graph::GraphProgram P>
RunResult<P> run(Kind kind, const graph::PartitionedGraph& pg,
                 const io::StoragePlan& plan, const P& program,
                 const Options& options = {}) {
  switch (kind) {
    case Kind::kInmem:
      return inmem::run_graph(plan.edges(), pg.meta, program, options);
    case Kind::kXstream:
      return xstream::run(pg, plan, program, options);
    case Kind::kCore:
      return core::run(pg, plan, program, options);
  }
  FB_CHECK_MSG(false, "unreachable engine kind");
  return {};
}

}  // namespace fbfs::engine
