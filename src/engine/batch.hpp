// engine::run_batch — the batched multi-source front door. Packs up to
// 64 BFS sources into one graph::MultiBfs traversal (one edge scan for
// the whole batch) and unpacks per-query BfsProgram-shaped results that
// are bit-identical to running each source on its own.
//
// Wider source lists split into ceil(N / max_width) traversals, each at
// most max_width queries, preserving source order across the splits.
// The per-traversal RunResults ride along in the return value so a
// bench can sum edge/update bytes over the whole batch.
//
// Config keys (batch_options_from_config):
//   * `batch.max_width` — queries packed per traversal, clamped to
//     [1, graph::kMaxBatchQueries]. Default 64. Shrinking it trades
//     scan sharing for narrower masks (the codec's per-update mask
//     bytes don't shrink — Update stays 16 bytes — so 64 is right
//     unless memory for B x 4-byte levels per vertex is the limit).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/config.hpp"
#include "engine/api.hpp"
#include "engine/types.hpp"
#include "graph/multi_bfs.hpp"

namespace fbfs::engine {

/// The one MultiBfs instantiation the batch API runs. Narrower batches
/// use the same type with width < 64: the unused high bits never set,
/// so they cost mask space, not traffic (updates are sieved/coded by
/// content, and saturation checks use full_mask()).
using MultiBfs64 = graph::MultiBfs<graph::kMaxBatchQueries>;

struct BatchOptions {
  /// Queries packed per traversal (<= graph::kMaxBatchQueries).
  std::uint32_t max_width = graph::kMaxBatchQueries;
};

inline BatchOptions batch_options_from_config(const Config& config) {
  BatchOptions opts;
  const std::uint64_t width =
      config.get_u64_or("batch.max_width", graph::kMaxBatchQueries);
  opts.max_width = static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
      width, 1, graph::kMaxBatchQueries));
  return opts;
}

struct BatchRunResult {
  /// per_query[i] = BFS-from-sources[i] states for all vertices, in the
  /// caller's source order (bit-identical to a standalone BfsProgram
  /// run from that source).
  std::vector<std::vector<graph::BfsProgram::State>> per_query;
  /// The underlying traversals, one per <= max_width slice of the
  /// source list, for callers that aggregate I/O or iteration stats.
  std::vector<RunResult<MultiBfs64>> traversals;
};

/// Runs BFS from every source in `sources` (order preserved, duplicates
/// allowed — each occurrence gets its own query bit) through `kind`,
/// batching up to batch.max_width sources per traversal.
inline BatchRunResult run_batch(Kind kind, const graph::PartitionedGraph& pg,
                                const io::StoragePlan& plan,
                                std::span<const graph::VertexId> sources,
                                const Options& options = {},
                                const BatchOptions& batch = {}) {
  FB_CHECK_MSG(!sources.empty(), "run_batch needs at least one source");
  FB_CHECK_MSG(batch.max_width >= 1 &&
                   batch.max_width <= graph::kMaxBatchQueries,
               "batch.max_width " << batch.max_width << " outside [1, "
                                  << graph::kMaxBatchQueries << "]");
  for (const graph::VertexId s : sources) {
    FB_CHECK_MSG(s < pg.meta.num_vertices,
                 "batch source " << s << " >= num_vertices "
                                 << pg.meta.num_vertices);
  }

  BatchRunResult result;
  result.per_query.reserve(sources.size());
  for (std::size_t begin = 0; begin < sources.size();
       begin += batch.max_width) {
    const std::uint32_t width = static_cast<std::uint32_t>(
        std::min<std::size_t>(batch.max_width, sources.size() - begin));
    MultiBfs64 program;
    program.width = width;
    for (std::uint32_t b = 0; b < width; ++b) {
      program.roots[b] = sources[begin + b];
    }
    RunResult<MultiBfs64> run_result =
        run(kind, pg, plan, program, options);
    for (std::uint32_t b = 0; b < width; ++b) {
      result.per_query.push_back(program.unpack_query(
          b, std::span<const MultiBfs64::State>(run_result.states)));
    }
    result.traversals.push_back(std::move(run_result));
  }
  return result;
}

}  // namespace fbfs::engine
