#include "engine/types.hpp"

#include "common/check.hpp"

namespace fbfs::engine {

const char* to_string(Kind kind) {
  switch (kind) {
    case Kind::kInmem:
      return "inmem";
    case Kind::kXstream:
      return "xstream";
    case Kind::kCore:
      return "core";
  }
  return "?";
}

Kind parse_kind(const std::string& name) {
  if (name == "inmem") return Kind::kInmem;
  if (name == "xstream") return Kind::kXstream;
  if (name == "core" || name == "fastbfs") return Kind::kCore;
  FB_CHECK_MSG(false, "unknown engine kind '" << name
                                              << "' (inmem | xstream | core)");
  return Kind::kInmem;
}

const char* to_string(Direction direction) {
  switch (direction) {
    case Direction::kTopDown:
      return "topdown";
    case Direction::kBottomUp:
      return "bottomup";
    case Direction::kAuto:
      return "auto";
  }
  return "?";
}

Direction parse_direction(const std::string& name) {
  if (name == "topdown") return Direction::kTopDown;
  if (name == "bottomup") return Direction::kBottomUp;
  if (name == "auto") return Direction::kAuto;
  FB_CHECK_MSG(false, "unknown direction '" << name
                                            << "' (topdown | bottomup | auto)");
  return Direction::kTopDown;
}

namespace {

/// `<kind>.key` > `engine.key` > `fallback` — the shared-key precedence
/// the header documents, applied to one u64-ish key.
std::uint64_t layered_u64(const Config& config, Kind kind,
                          const std::string& key, std::uint64_t fallback) {
  const std::uint64_t shared =
      config.get_u64_or("engine." + key, fallback);
  return config.get_u64_or(std::string(to_string(kind)) + "." + key, shared);
}

std::uint64_t layered_bytes(const Config& config, Kind kind,
                            const std::string& key, std::uint64_t fallback) {
  const std::uint64_t shared =
      config.get_bytes_or("engine." + key, fallback);
  return config.get_bytes_or(std::string(to_string(kind)) + "." + key, shared);
}

}  // namespace

Options options_from_config(const Config& config, Kind kind) {
  Options opts;
  opts.reader = io::reader_options_from_config(config);
  opts.write_buffer_bytes = static_cast<std::size_t>(
      layered_bytes(config, kind, "write_buffer", opts.write_buffer_bytes));
  opts.max_iterations = static_cast<std::uint32_t>(
      layered_u64(config, kind, "max_iterations", opts.max_iterations));
  opts.num_threads = config.get_threads_or("engine.num_threads", 1);
  const std::string update_codec = config.get_enum_or(
      "updates.codec", {"auto", "raw", "bitmap", "varint"},
      io::codec::to_string(opts.update_codec));
  opts.update_codec = io::codec::parse_policy(update_codec);
  opts.sieve_updates = config.get_bool_or("updates.sieve", opts.sieve_updates);
  if (kind != Kind::kCore) return opts;

  // ---- core-only: trim, stay-stream, and direction knobs.
  opts.trim = config.get_bool_or("core.trim", opts.trim);
  opts.selective = config.get_bool_or("core.selective", opts.selective);
  opts.trim_start_round = static_cast<std::uint32_t>(
      config.get_u64_or("core.trim_start_round", opts.trim_start_round));
  opts.trim_min_frontier_fraction = config.get_f64_or(
      "core.trim_min_frontier_fraction", opts.trim_min_frontier_fraction);
  opts.trim_min_dead_fraction = config.get_f64_or(
      "core.trim_min_dead_fraction", opts.trim_min_dead_fraction);
  opts.grace_timeout_seconds =
      config.get_f64_or("core.grace_timeout", opts.grace_timeout_seconds);
  opts.stay_buffer_bytes = static_cast<std::size_t>(
      config.get_bytes_or("core.stay_buffer", opts.stay_buffer_bytes));
  opts.stay_pool_buffers = static_cast<std::size_t>(
      config.get_u64_or("core.stay_pool_buffers", opts.stay_pool_buffers));
  // Stay files follow the update codec unless overridden.
  opts.stay_codec = io::codec::parse_policy(config.get_enum_or(
      "updates.stay_codec", {"auto", "raw", "bitmap", "varint"},
      update_codec));
  opts.direction = parse_direction(config.get_enum_or(
      "core.direction", {"topdown", "bottomup", "auto"},
      to_string(opts.direction)));
  opts.direction_alpha =
      config.get_f64_or("core.direction_alpha", opts.direction_alpha);
  opts.direction_beta =
      config.get_f64_or("core.direction_beta", opts.direction_beta);
  return opts;
}

std::uint32_t partition_count_from_config(const Config& config, Kind kind,
                                          std::uint32_t fallback) {
  if (kind == Kind::kInmem) return fallback;
  return static_cast<std::uint32_t>(
      layered_u64(config, kind, "partition_count", fallback));
}

}  // namespace fbfs::engine
