// The unified engine surface (PR 8's api_redesign): one Options
// struct, one RunResult, one config parser for all three run-entry
// variants (inmem / xstream / core).
//
// Before this header each engine declared its own options + result
// structs and its own `engine_options_from_config`, drifting a field at
// a time (core's grew trim knobs, xstream's grew the codec keys, inmem
// had neither). Now every engine consumes engine::Options — fields an
// engine does not use are simply ignored (inmem reads only
// max_iterations + collector) — and returns engine::RunResult<P>,
// whose trim/direction counters stay default-zero for the engines that
// never trim or flip direction. The per-engine spellings
// (xstream::EngineOptions, core::RunResult, inmem::RunOptions, ...)
// are `using` aliases, so existing call sites migrate mechanically.
//
// Shared-key precedence — THE one place it is documented:
//   * `engine.num_threads` (0 = hardware concurrency) is shared by the
//     streaming engines; there is no per-engine spelling.
//   * `updates.codec`, `updates.sieve`, `updates.stay_codec` are shared
//     update-stream keys (stay_codec is read by core only and defaults
//     to the resolved updates.codec).
//   * `io.reader` / `io.reader_buffer` configure every record stream.
//   * write_buffer / max_iterations / partition_count resolve as
//     `<engine>.key` > `engine.key` > built-in default: a generic
//     `engine.*` value applies to whichever engine runs, and the
//     engine-specific spelling (`xstream.write_buffer`,
//     `core.partition_count`, ...) wins when both are present.
//   * `core.*` trim and direction knobs belong to core alone and are
//     parsed only for Kind::kCore.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "metrics/iteration_stats.hpp"
#include "storage/codec.hpp"
#include "storage/reader_factory.hpp"

namespace fbfs::metrics {
class Collector;
}  // namespace fbfs::metrics

namespace fbfs::engine {

/// The three run-entry variants. Benches/tests dispatch on this instead
/// of hard-coding one engine's namespace (engine::run in api.hpp).
enum class Kind {
  kInmem = 0,    // exact in-memory CSR reference
  kXstream = 1,  // streaming scatter/gather baseline
  kCore = 2,     // FastBFS: trimming + direction-optimizing strategies
};

const char* to_string(Kind kind);
Kind parse_kind(const std::string& name);

/// Per-iteration traversal mode of the core engine (`core.direction`).
/// kTopDown scatters the frontier's out-edges (the classic loop);
/// kBottomUp scans in-edges of unvisited vertices and probes the
/// frontier, emitting at most one update per unvisited vertex per
/// in-run; kAuto picks per iteration by the modelled byte cost
/// (core/direction.hpp). Programs without a pull hook
/// (graph::PullCapable) always run top-down whatever the setting.
enum class Direction {
  kTopDown = 0,
  kBottomUp = 1,
  kAuto = 2,
};

const char* to_string(Direction direction);
Direction parse_direction(const std::string& name);

/// Options for every engine. One struct instead of three: engines read
/// the fields they understand and ignore the rest, so a bench can fill
/// one Options and hand it to any Kind.
struct Options {
  /// First member so `{.max_iterations = N}` designated initialization
  /// (the equivalence suites' idiom) skips no earlier field.
  std::uint32_t max_iterations = 1'000'000;
  /// Edge, update, and state streams all honour this mode/buffer.
  io::ReaderOptions reader = {};
  /// Split across the P update writers during scatter; whole for the
  /// state write-back.
  std::size_t write_buffer_bytes = 1 << 20;
  /// Leave state, update (and core's stay) files on their devices
  /// after the run.
  bool keep_files = false;
  /// On-disk format policy for the per-partition update files
  /// (storage/codec.hpp). The duplicate-collapsing bitmap format only
  /// ever applies to idempotent-gather programs; forced formats degrade
  /// to raw when ineligible, so any policy is safe for any program.
  io::codec::Policy update_codec = io::codec::Policy::kRaw;
  /// Drop dominated same-destination updates at the scatter staging
  /// buffers, before they reach the shuffle writers. Exact for
  /// SieveCapable programs (min-fold gathers); ignored for the rest.
  bool sieve_updates = false;
  /// Worker threads for the scatter/gather phases. 1 = the serial
  /// engine (no pool); 0 = one per hardware thread. States, outputs,
  /// update files, and stay files are bit-identical at every count
  /// (chunk-ordered hand-off; see xstream/detail.hpp).
  std::uint32_t num_threads = 1;

  // ---- core-only knobs (ignored by inmem/xstream). --------------------

  /// Master switch for edge trimming (only effective for kTrimmable
  /// programs).
  bool trim = true;
  /// Skip partitions with no active source (xstream always does; here a
  /// knob so the ablation can price it).
  bool selective = true;
  /// First round allowed to start a trim (0 = eager).
  std::uint32_t trim_start_round = 0;
  /// Trim only when at least this fraction of all vertices is active
  /// this round.
  double trim_min_frontier_fraction = 0.0;
  /// Trim only when the partition's previous scan saw at least this
  /// fraction of its input edges already dead.
  double trim_min_dead_fraction = 0.0;
  /// Seconds the next scatter of a partition waits for its pending stay
  /// stream before cancelling and falling back to the previous input.
  double grace_timeout_seconds = 5.0;
  /// AsyncWriter pool geometry for the stay streams.
  std::size_t stay_buffer_bytes = 1 << 20;
  std::size_t stay_pool_buffers = 4;
  /// Format policy for the trimmed stay files (bitmap never applies:
  /// multi-edges keep their multiplicity). Defaults to following the
  /// resolved update codec when read from config.
  io::codec::Policy stay_codec = io::codec::Policy::kRaw;
  /// Traversal mode strategy (core only; see Direction).
  Direction direction = Direction::kTopDown;
  /// kAuto picks bottom-up only when the modelled top-down bytes exceed
  /// alpha x the modelled bottom-up bytes...
  double direction_alpha = 1.0;
  /// ...and the frontier holds at least this fraction of all vertices
  /// (the Beamer-style growth gate: sliver frontiers on high-diameter
  /// graphs never flip).
  double direction_beta = 0.1;

  /// Optional observability hook (not owned). Null runs every engine
  /// exactly as before — no allocation, no clock reads, no extra
  /// atomics — and collection never changes results or on-device bytes
  /// either way (see metrics/collector.hpp).
  metrics::Collector* collector = nullptr;
};

/// One result shape for every engine. Counters an engine never touches
/// stay default-zero: inmem/xstream leave the whole trim/direction
/// block alone, core leaves bottomup_rounds zero for top-down runs.
template <typename P>
struct RunResult {
  std::vector<typename P::State> states;  // all vertices, in id order
  std::uint32_t iterations = 0;           // counted rounds
  std::uint64_t updates_emitted = 0;      // across the whole run
  std::vector<metrics::IterationStats> per_iteration;

  // Trim totals over the whole run (core; includes streams still
  // pending at the end, which are resolved with the same grace
  // protocol).
  std::uint32_t trims_started = 0;
  std::uint32_t trims_committed = 0;
  std::uint32_t trims_cancelled = 0;
  std::uint32_t trims_failed = 0;
  std::uint64_t stay_edges_written = 0;
  /// End-of-run settle row (core): trim resolutions that happened after
  /// the last counted round land here, so the per-iteration rows plus
  /// this row always sum to the run totals above (core::run CHECKs it).
  metrics::IterationStats epilogue;

  /// Rounds the core engine ran bottom-up (direction strategy).
  std::uint32_t bottomup_rounds = 0;
};

/// Reads the engine keys for `kind` under the precedence documented in
/// the header comment. Core's trim/direction knobs are parsed only for
/// Kind::kCore; inmem uses only the shared subset it understands.
Options options_from_config(const Config& config, Kind kind);

/// Reads `<kind>.partition_count` > `engine.partition_count` >
/// `fallback` (inmem has no partitions; its kind returns `fallback`).
std::uint32_t partition_count_from_config(const Config& config, Kind kind,
                                          std::uint32_t fallback);

}  // namespace fbfs::engine
