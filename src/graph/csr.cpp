#include "graph/csr.hpp"

#include "common/check.hpp"
#include "storage/reader_factory.hpp"

namespace fbfs::graph {

Csr::Csr(std::uint64_t num_vertices, std::span<const Edge> edges) {
  offsets_.assign(num_vertices + 1, 0);
  for (const Edge& e : edges) {
    FB_CHECK_LT(e.src, num_vertices);
    FB_CHECK_LT(e.dst, num_vertices);
    ++offsets_[e.src + 1];
  }
  for (std::uint64_t v = 0; v < num_vertices; ++v) {
    offsets_[v + 1] += offsets_[v];
  }
  targets_.resize(edges.size());
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edges) {
    targets_[cursor[e.src]++] = e.dst;
  }
}

Csr build_csr(io::Device& device, const GraphMeta& meta) {
  FB_CHECK_EQ(meta.record_size, sizeof(Edge));
  const std::vector<Edge> edges = read_all_edges(device, meta);
  return Csr(meta.num_vertices, edges);
}

}  // namespace fbfs::graph
