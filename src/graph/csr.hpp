// Compressed sparse row adjacency, the in-memory reference layout.
//
// Built from an edge list (in memory or streamed off a Device) by a
// stable counting sort: out-edges are grouped by source, and edges of
// one source keep their edge-list order. inmem::run scans it edge by
// edge with the same (src, dst) pairs the streaming engine reads from
// its partition files, so programs (program.hpp) see identical inputs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"
#include "storage/device.hpp"

namespace fbfs::graph {

class Csr {
 public:
  Csr() = default;

  /// Groups `edges` by source over [0, num_vertices); every endpoint
  /// must be < num_vertices (CHECK).
  Csr(std::uint64_t num_vertices, std::span<const Edge> edges);

  std::uint64_t num_vertices() const { return offsets_.size() - 1; }
  std::uint64_t num_edges() const { return targets_.size(); }

  std::uint32_t out_degree(VertexId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Out-neighbours of `v`, in edge-list order.
  std::span<const VertexId> neighbors(VertexId v) const {
    return {targets_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

 private:
  std::vector<std::uint64_t> offsets_;  // size num_vertices + 1
  std::vector<VertexId> targets_;
};

/// One read-ahead scan of `meta`'s edge file into a Csr, verifying the
/// sidecar checksum en route.
Csr build_csr(io::Device& device, const GraphMeta& meta);

}  // namespace fbfs::graph
