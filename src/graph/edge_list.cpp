#include "graph/edge_list.hpp"

#include "common/config.hpp"
#include "common/units.hpp"
#include "storage/reader_factory.hpp"
#include "storage/stream.hpp"

namespace fbfs::graph {

namespace {
constexpr std::size_t kIoBuffer = 1 << 20;
}  // namespace

void save_meta(io::Device& device, const GraphMeta& meta) {
  Config cfg;
  cfg.set_str("name", meta.name);
  cfg.set_u64("num_vertices", meta.num_vertices);
  cfg.set_u64("num_edges", meta.num_edges);
  cfg.set_u64("record_size", meta.record_size);
  cfg.set_u64("seed", meta.seed);
  cfg.set_bool("undirected", meta.undirected);
  cfg.set_u64("checksum", meta.checksum);
  cfg.write_file(device.path(meta.meta_file()));
}

GraphMeta load_meta(io::Device& device, const std::string& name) {
  GraphMeta meta;
  meta.name = name;
  const Config cfg = Config::parse_file(device.path(meta.meta_file()));
  meta.num_vertices = cfg.get_u64("num_vertices");
  meta.num_edges = cfg.get_u64("num_edges");
  meta.record_size = static_cast<std::uint32_t>(cfg.get_u64("record_size"));
  meta.seed = cfg.get_u64("seed");
  meta.undirected = cfg.get_bool("undirected");
  meta.checksum = cfg.get_u64("checksum");
  FB_CHECK_MSG(device.exists(meta.edge_file()),
               "edge file missing for graph " << name);
  FB_CHECK_MSG(device.file_size(meta.edge_file()) == meta.edge_bytes(),
               "edge file of " << name << " is "
                               << device.file_size(meta.edge_file())
                               << " bytes, sidecar says "
                               << meta.edge_bytes());
  return meta;
}

GraphMeta write_generated(
    io::Device& device, const std::string& name, std::uint64_t num_vertices,
    std::uint64_t seed, bool undirected,
    const std::function<void(const EdgeSink&)>& generate) {
  GraphMeta meta;
  meta.name = name;
  meta.num_vertices = num_vertices;
  meta.seed = seed;
  meta.undirected = undirected;

  auto file = device.open(meta.edge_file(), /*truncate=*/true);
  io::RecordWriter<Edge> writer(*file, kIoBuffer);
  generate([&](const Edge& e) {
    FB_CHECK_MSG(e.src < num_vertices && e.dst < num_vertices,
                 "edge (" << e.src << ", " << e.dst
                          << ") outside vertex range of " << name << " ("
                          << num_vertices << " vertices)");
    writer.append(e);
    meta.checksum += edge_digest(e);
    ++meta.num_edges;
  });
  writer.flush();

  save_meta(device, meta);
  return meta;
}

std::vector<Edge> read_all_edges(io::Device& device, const GraphMeta& meta) {
  FB_CHECK_EQ(meta.record_size, sizeof(Edge));
  auto reader = io::open_record_reader<Edge>(
      device, meta.edge_file(), io::ReaderOptions::prefetch(kIoBuffer));
  std::vector<Edge> edges;
  edges.reserve(meta.num_edges);
  std::uint64_t checksum = 0;
  for (auto batch = reader->next_batch(); !batch.empty();
       batch = reader->next_batch()) {
    for (const Edge& e : batch) checksum += edge_digest(e);
    edges.insert(edges.end(), batch.begin(), batch.end());
  }
  FB_CHECK_MSG(edges.size() == meta.num_edges,
               "edge file of " << meta.name << " holds " << edges.size()
                               << " records, sidecar says "
                               << meta.num_edges);
  FB_CHECK_MSG(checksum == meta.checksum,
               "edge file of " << meta.name << " fails its checksum");
  return edges;
}

GraphMeta symmetrize_edge_list(io::Device& device, const GraphMeta& meta,
                               const std::string& out_name) {
  FB_CHECK_EQ(meta.record_size, sizeof(Edge));
  GraphMeta out;
  out.name = out_name;
  out.num_vertices = meta.num_vertices;
  out.seed = meta.seed;
  out.undirected = true;

  auto reader = io::open_record_reader<Edge>(
      device, meta.edge_file(), io::ReaderOptions::prefetch(kIoBuffer));
  auto file = device.open(out.edge_file(), /*truncate=*/true);
  io::RecordWriter<Edge> writer(*file, kIoBuffer);
  std::uint64_t in_checksum = 0;
  for (auto batch = reader->next_batch(); !batch.empty();
       batch = reader->next_batch()) {
    for (const Edge& e : batch) {
      in_checksum += edge_digest(e);
      writer.append(e);
      out.checksum += edge_digest(e);
      ++out.num_edges;
      const Edge reversed{e.dst, e.src};
      writer.append(reversed);
      out.checksum += edge_digest(reversed);
      ++out.num_edges;
    }
  }
  writer.flush();
  FB_CHECK_MSG(in_checksum == meta.checksum,
               "edge file of " << meta.name
                               << " fails its checksum during symmetrize");
  save_meta(device, out);
  return out;
}

}  // namespace fbfs::graph
