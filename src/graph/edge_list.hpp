// Binary edge lists and their `.meta` sidecar.
//
// A graph named `g` on a Device is two files: `g.edges`, a flat array
// of Edge (or WeightedEdge) records, and `g.meta`, a key-value sidecar
// (common::Config format) recording vertex count, edge count, record
// size, generator seed, directedness, and the multiset checksum of the
// records. Everything downstream — partitioner, engines, benches —
// loads the sidecar instead of guessing from file sizes, and can verify
// the checksum while streaming.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "storage/device.hpp"

namespace fbfs::graph {

struct GraphMeta {
  std::string name;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint32_t record_size = sizeof(Edge);
  std::uint64_t seed = 0;
  bool undirected = false;  // edge list is symmetric (both directions present)
  std::uint64_t checksum = 0;  // sum of edge_digest over all records

  std::string edge_file() const { return name + ".edges"; }
  std::string meta_file() const { return name + ".meta"; }
  std::uint64_t edge_bytes() const { return num_edges * record_size; }
};

/// Writes `meta` to its sidecar file on `device` (atomic via Config's
/// tmp+rename).
void save_meta(io::Device& device, const GraphMeta& meta);

/// Loads the sidecar of graph `name`; CHECKs that the edge file exists
/// and its size matches num_edges * record_size.
GraphMeta load_meta(io::Device& device, const std::string& name);

/// Runs `generate` once, streaming every emitted edge to `name.edges`
/// through one buffered writer, then writes the sidecar. The serial
/// reference path; build_edge_list_parallel (generators.hpp) produces
/// byte-identical output for chunked sources.
GraphMeta write_generated(
    io::Device& device, const std::string& name, std::uint64_t num_vertices,
    std::uint64_t seed, bool undirected,
    const std::function<void(const EdgeSink&)>& generate);

/// Streams the whole edge file into memory (read-ahead path), verifying
/// count and checksum against the sidecar.
std::vector<Edge> read_all_edges(io::Device& device, const GraphMeta& meta);

/// Writes `out_name` holding every edge of `meta` in both directions
/// (each (u,v) immediately followed by (v,u)), with its sidecar marked
/// undirected — the conforming input for programs that require a
/// symmetric graph (WCC). Self-loops and duplicate edges are kept;
/// label propagation is insensitive to multiplicity.
GraphMeta symmetrize_edge_list(io::Device& device, const GraphMeta& meta,
                               const std::string& out_name);

}  // namespace fbfs::graph
