#include "graph/generators.hpp"

#include <future>

#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "storage/stream.hpp"

namespace fbfs::graph {

namespace {

std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return b == 0 ? 0 : (a + b - 1) / b;
}

std::string shard_name(const std::string& name, std::uint64_t chunk) {
  return name + ".gshard" + std::to_string(chunk);
}

}  // namespace

void ChunkedEdgeSource::generate(const EdgeSink& sink) const {
  const std::uint64_t chunks = num_chunks();
  for (std::uint64_t c = 0; c < chunks; ++c) generate_chunk(c, sink);
}

// ------------------------------------------------------------- R-MAT

RmatSource::RmatSource(const RmatParams& params) : params_(params) {
  FB_CHECK_MSG(params_.scale >= 1 && params_.scale <= 31,
               "rmat scale out of VertexId range: " << params_.scale);
  FB_CHECK_MSG(params_.a >= 0 && params_.b >= 0 && params_.c >= 0 &&
                   params_.a + params_.b + params_.c <= 1.0,
               "rmat quadrant probabilities invalid");
}

std::uint64_t RmatSource::num_edges() const {
  return std::uint64_t{params_.edge_factor} << params_.scale;
}

std::uint64_t RmatSource::num_chunks() const {
  return ceil_div(num_edges(), kChunkTargetEdges);
}

void RmatSource::generate_chunk(std::uint64_t chunk,
                                const EdgeSink& sink) const {
  Rng rng = chunk_rng(params_.seed, chunk);
  const std::uint64_t begin = chunk * kChunkTargetEdges;
  const std::uint64_t end =
      std::min(num_edges(), begin + kChunkTargetEdges);
  const double ab = params_.a + params_.b;
  const double abc = ab + params_.c;
  for (std::uint64_t i = begin; i < end; ++i) {
    VertexId src = 0;
    VertexId dst = 0;
    for (std::uint32_t level = 0; level < params_.scale; ++level) {
      const double r = rng.next_double();
      src <<= 1;
      dst <<= 1;
      if (r < params_.a) {
        // top-left quadrant: both bits 0
      } else if (r < ab) {
        dst |= 1;
      } else if (r < abc) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    sink(Edge{src, dst});
  }
}

// ------------------------------------------------------ Erdős–Rényi

ErdosRenyiSource::ErdosRenyiSource(const ErdosRenyiParams& params)
    : params_(params) {
  FB_CHECK_MSG(params_.num_vertices > 0, "ER graph needs vertices");
}

std::uint64_t ErdosRenyiSource::num_chunks() const {
  return ceil_div(params_.num_edges, kChunkTargetEdges);
}

void ErdosRenyiSource::generate_chunk(std::uint64_t chunk,
                                      const EdgeSink& sink) const {
  Rng rng = chunk_rng(params_.seed, chunk);
  const std::uint64_t begin = chunk * kChunkTargetEdges;
  const std::uint64_t end =
      std::min(params_.num_edges, begin + kChunkTargetEdges);
  for (std::uint64_t i = begin; i < end; ++i) {
    sink(Edge{static_cast<VertexId>(rng.next_below(params_.num_vertices)),
              static_cast<VertexId>(rng.next_below(params_.num_vertices))});
  }
}

// ------------------------------------------------------------- grid

Grid2dSource::Grid2dSource(const Grid2dParams& params) : params_(params) {
  FB_CHECK_MSG(params_.width >= 1 && params_.height >= 1,
               "grid needs positive dimensions");
  FB_CHECK_MSG(std::uint64_t{params_.width} * params_.height <=
                   std::uint64_t{1} << 32,
               "grid too large for 32-bit vertex ids");
}

std::uint64_t Grid2dSource::num_vertices() const {
  return std::uint64_t{params_.width} * params_.height;
}

std::uint64_t Grid2dSource::num_edges() const {
  const std::uint64_t w = params_.width;
  const std::uint64_t h = params_.height;
  return 2 * ((w - 1) * h + w * (h - 1));
}

std::uint64_t Grid2dSource::rows_per_chunk() const {
  // ~kChunkTargetEdges edges per chunk; each row emits < 4 * width.
  return std::max<std::uint64_t>(
      1, kChunkTargetEdges / std::max<std::uint64_t>(1, 4 * params_.width));
}

std::uint64_t Grid2dSource::num_chunks() const {
  return ceil_div(params_.height, rows_per_chunk());
}

void Grid2dSource::generate_chunk(std::uint64_t chunk,
                                  const EdgeSink& sink) const {
  const std::uint64_t w = params_.width;
  const std::uint64_t h = params_.height;
  const std::uint64_t row_begin = chunk * rows_per_chunk();
  const std::uint64_t row_end = std::min(h, row_begin + rows_per_chunk());
  for (std::uint64_t y = row_begin; y < row_end; ++y) {
    for (std::uint64_t x = 0; x < w; ++x) {
      const auto v = static_cast<VertexId>(y * w + x);
      if (x + 1 < w) {
        sink(Edge{v, v + 1});
        sink(Edge{v + 1, v});
      }
      if (y + 1 < h) {
        const auto down = static_cast<VertexId>(v + w);
        sink(Edge{v, down});
        sink(Edge{down, v});
      }
    }
  }
}

// ----------------------------------------------- social stand-ins

TwitterLikeSource::TwitterLikeSource(const TwitterLikeParams& params)
    : params_(params),
      fringe_(params.num_vertices / 4),
      main_edges_(0),
      out_sampler_(params.num_vertices - params.num_vertices / 4,
                   params.theta_out),
      in_sampler_(params.num_vertices - params.num_vertices / 4,
                  params.theta_in) {
  core_ = params_.num_vertices - fringe_;
  FB_CHECK_MSG(core_ >= 1, "twitter-like graph needs a non-empty core");
  FB_CHECK_MSG(params_.chain_length >= 1, "chain_length must be positive");
  FB_CHECK_MSG(params_.num_edges >= fringe_,
               "twitter-like needs num_edges >= fringe size " << fringe_);
  main_edges_ = params_.num_edges - fringe_;
  main_chunks_ = ceil_div(main_edges_, kChunkTargetEdges);
  chains_ = ceil_div(fringe_, params_.chain_length);
  chains_per_chunk_ = std::max<std::uint64_t>(
      1, kChunkTargetEdges / params_.chain_length);
}

std::uint64_t TwitterLikeSource::num_chunks() const {
  return main_chunks_ + ceil_div(chains_, chains_per_chunk_);
}

void TwitterLikeSource::generate_chunk(std::uint64_t chunk,
                                       const EdgeSink& sink) const {
  Rng rng = chunk_rng(params_.seed, chunk);
  if (chunk < main_chunks_) {
    const std::uint64_t begin = chunk * kChunkTargetEdges;
    const std::uint64_t end =
        std::min(main_edges_, begin + kChunkTargetEdges);
    for (std::uint64_t i = begin; i < end; ++i) {
      const auto src = static_cast<VertexId>(out_sampler_.sample(rng));
      const auto dst = static_cast<VertexId>(
          rng.next_bool(params_.uniform_fraction)
              ? rng.next_below(core_)
              : in_sampler_.sample(rng));
      sink(Edge{src, dst});
    }
    return;
  }
  // Fringe chains: every fringe vertex receives exactly one edge — the
  // chain head from a random core attach point, the rest from its chain
  // predecessor — so BFS walks each chain one level per round.
  const std::uint64_t chain_begin = (chunk - main_chunks_) * chains_per_chunk_;
  const std::uint64_t chain_end =
      std::min(chains_, chain_begin + chains_per_chunk_);
  for (std::uint64_t k = chain_begin; k < chain_end; ++k) {
    const std::uint64_t start = core_ + k * params_.chain_length;
    const std::uint64_t len =
        std::min<std::uint64_t>(params_.chain_length,
                                params_.num_vertices - start);
    const auto attach = static_cast<VertexId>(rng.next_below(core_));
    sink(Edge{attach, static_cast<VertexId>(start)});
    for (std::uint64_t i = 1; i < len; ++i) {
      sink(Edge{static_cast<VertexId>(start + i - 1),
                static_cast<VertexId>(start + i)});
    }
  }
}

FriendsterLikeSource::FriendsterLikeSource(
    const FriendsterLikeParams& params)
    : params_(params),
      fringe_(params.num_vertices / 4),
      sampler_(params.num_vertices - params.num_vertices / 4, params.theta) {
  core_ = params_.num_vertices - fringe_;
  FB_CHECK_MSG(core_ >= 1, "friendster-like graph needs a non-empty core");
  FB_CHECK_MSG(params_.chain_length >= 1, "chain_length must be positive");
  FB_CHECK_MSG(params_.num_undirected_edges >= fringe_,
               "friendster-like needs num_undirected_edges >= fringe size "
                   << fringe_);
  main_undirected_ = params_.num_undirected_edges - fringe_;
  main_chunks_ = ceil_div(main_undirected_, kChunkTargetEdges / 2);
  chains_ = ceil_div(fringe_, params_.chain_length);
  chains_per_chunk_ = std::max<std::uint64_t>(
      1, (kChunkTargetEdges / 2) / params_.chain_length);
}

std::uint64_t FriendsterLikeSource::num_chunks() const {
  return main_chunks_ + ceil_div(chains_, chains_per_chunk_);
}

void FriendsterLikeSource::generate_chunk(std::uint64_t chunk,
                                          const EdgeSink& sink) const {
  Rng rng = chunk_rng(params_.seed, chunk);
  const auto emit_both = [&](VertexId u, VertexId v) {
    sink(Edge{u, v});
    sink(Edge{v, u});
  };
  if (chunk < main_chunks_) {
    const std::uint64_t per_chunk = kChunkTargetEdges / 2;
    const std::uint64_t begin = chunk * per_chunk;
    const std::uint64_t end = std::min(main_undirected_, begin + per_chunk);
    for (std::uint64_t i = begin; i < end; ++i) {
      const auto u = static_cast<VertexId>(
          rng.next_bool(params_.uniform_fraction) ? rng.next_below(core_)
                                                  : sampler_.sample(rng));
      auto v = static_cast<VertexId>(rng.next_below(core_));
      if (v == u && core_ > 1) v = static_cast<VertexId>((v + 1) % core_);
      emit_both(u, v);
    }
    return;
  }
  const std::uint64_t chain_begin = (chunk - main_chunks_) * chains_per_chunk_;
  const std::uint64_t chain_end =
      std::min(chains_, chain_begin + chains_per_chunk_);
  for (std::uint64_t k = chain_begin; k < chain_end; ++k) {
    const std::uint64_t start = core_ + k * params_.chain_length;
    const std::uint64_t len =
        std::min<std::uint64_t>(params_.chain_length,
                                params_.num_vertices - start);
    const auto attach = static_cast<VertexId>(rng.next_below(core_));
    emit_both(attach, static_cast<VertexId>(start));
    for (std::uint64_t i = 1; i < len; ++i) {
      emit_both(static_cast<VertexId>(start + i - 1),
                static_cast<VertexId>(start + i));
    }
  }
}

// -------------------------------------------------- serial wrappers

void generate_rmat(const RmatParams& params, const EdgeSink& sink) {
  RmatSource(params).generate(sink);
}

void generate_erdos_renyi(const ErdosRenyiParams& params,
                          const EdgeSink& sink) {
  ErdosRenyiSource(params).generate(sink);
}

void generate_grid2d(const Grid2dParams& params, const EdgeSink& sink) {
  Grid2dSource(params).generate(sink);
}

void generate_twitter_like(const TwitterLikeParams& params,
                           const EdgeSink& sink) {
  TwitterLikeSource(params).generate(sink);
}

void generate_friendster_like(const FriendsterLikeParams& params,
                              const EdgeSink& sink) {
  FriendsterLikeSource(params).generate(sink);
}

// ------------------------------------------- parallel build pipeline

ParallelBuildReport build_edge_list_parallel(
    io::Device& device, const std::string& name,
    const ChunkedEdgeSource& source, const ParallelBuildOptions& options) {
  std::vector<io::Device*> devices = options.shard_devices;
  if (devices.empty()) devices.push_back(&device);
  const std::uint64_t chunks = source.num_chunks();
  const std::uint64_t num_vertices = source.num_vertices();

  struct ChunkResult {
    std::uint64_t edges = 0;
    std::uint64_t digest = 0;
  };

  ParallelBuildReport report;
  report.num_chunks = chunks;
  GraphMeta& meta = report.meta;
  meta.name = name;
  meta.num_vertices = num_vertices;
  meta.seed = source.seed();
  meta.undirected = source.undirected();

  // Fan-out: each chunk generates into its own shard file through the
  // worker's private RecordWriter. Chunk -> device placement is keyed
  // on the chunk index, so the file layout (and the merge below) is
  // independent of which worker ran which chunk.
  ThreadPool pool(options.threads == 0 ? 1 : options.threads);
  std::vector<std::future<ChunkResult>> results;
  results.reserve(chunks);
  Stopwatch generate_watch;
  for (std::uint64_t c = 0; c < chunks; ++c) {
    io::Device* shard_device = devices[c % devices.size()];
    results.push_back(pool.submit([&, c, shard_device] {
      auto shard = shard_device->open(shard_name(name, c), /*truncate=*/true);
      io::RecordWriter<Edge> writer(*shard, options.writer_buffer_bytes);
      ChunkResult result;
      source.generate_chunk(c, [&](const Edge& e) {
        FB_CHECK_MSG(e.src < num_vertices && e.dst < num_vertices,
                     "edge (" << e.src << ", " << e.dst
                              << ") outside vertex range of " << name << " ("
                              << num_vertices << " vertices)");
        writer.append(e);
        result.digest += edge_digest(e);
        ++result.edges;
      });
      writer.flush();
      return result;
    }));
  }
  for (auto& result : results) {
    const ChunkResult r = result.get();
    meta.num_edges += r.edges;
    meta.checksum += r.digest;
  }
  report.generate_seconds = generate_watch.seconds();
  FB_CHECK_EQ(meta.num_edges, source.num_edges());

  // Deterministic merge: concatenate shards in chunk order. Whole-buffer
  // copies ride the StreamWriter large-write bypass straight to the
  // device.
  Stopwatch merge_watch;
  auto out_file = device.open(meta.edge_file(), /*truncate=*/true);
  io::StreamWriter out(*out_file, options.writer_buffer_bytes);
  std::vector<std::byte> buffer(
      options.writer_buffer_bytes == 0 ? 1 : options.writer_buffer_bytes);
  for (std::uint64_t c = 0; c < chunks; ++c) {
    io::Device* shard_device = devices[c % devices.size()];
    {
      auto shard = shard_device->open(shard_name(name, c));
      std::uint64_t offset = 0;
      for (;;) {
        const std::size_t got =
            shard->read_at(offset, buffer.data(), buffer.size());
        if (got == 0) break;
        out.append_raw(buffer.data(), got);
        offset += got;
      }
    }
    shard_device->remove(shard_name(name, c));
  }
  out.flush();
  report.merge_seconds = merge_watch.seconds();
  FB_CHECK_EQ(out_file->size(), meta.edge_bytes());

  save_meta(device, meta);
  return report;
}

}  // namespace fbfs::graph
