// Synthetic graph generators (Table II stand-ins) and the parallel
// build pipeline that writes them to disk.
//
// Every generator is a ChunkedEdgeSource: the edge stream is defined as
// the concatenation of `num_chunks()` independent chunks, and chunk `c`
// draws all of its randomness from an Rng seeded by (seed, c) alone.
// That one rule buys the whole pipeline:
//
//  * determinism — the stream depends only on the seed, never on the
//    thread count or chunk scheduling (Graph500's R-MAT generator uses
//    the same per-edge-block reseeding trick; Buluç & Madduri,
//    arXiv:1104.4518);
//  * parallelism — build_edge_list_parallel farms chunks over a
//    common::ThreadPool, each worker streaming its chunk through its
//    own RecordWriter into a per-chunk shard file (optionally spread
//    across several shard devices so modelled-disk time overlaps), and
//    a deterministic in-order merge produces a file byte-identical to
//    the serial write_generated path.
//
// Generators: R-MAT (Graph500 recursive quadrants), Erdős–Rényi G(n,m),
// 2-D grid (high-diameter control), and the twitter-like /
// friendster-like social stand-ins of DESIGN.md — power-law cores with
// a uniform-destination mixture plus bounded "fringe chains" through a
// reserved quarter of the id space, which reproduce the straggler tail
// that keeps real social-graph BFS iterating.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace fbfs::graph {

/// Edges per chunk the sources aim for; small enough that any thread
/// count ≤ 16 load-balances, large enough that per-chunk overhead
/// (shard open, seeding) vanishes.
inline constexpr std::uint64_t kChunkTargetEdges = 1ull << 16;

/// The chunk's private random stream: a function of (seed, chunk) only.
inline Rng chunk_rng(std::uint64_t seed, std::uint64_t chunk) {
  std::uint64_t mix = chunk + 0x9e3779b97f4a7c15ull;
  return Rng(seed ^ splitmix64_next(mix));
}

class ChunkedEdgeSource {
 public:
  virtual ~ChunkedEdgeSource() = default;

  virtual std::uint64_t num_vertices() const = 0;
  virtual std::uint64_t num_edges() const = 0;  // exact, known up front
  virtual std::uint64_t seed() const = 0;
  virtual bool undirected() const { return false; }

  virtual std::uint64_t num_chunks() const = 0;
  virtual void generate_chunk(std::uint64_t chunk,
                              const EdgeSink& sink) const = 0;

  /// The full stream: chunks in index order.
  void generate(const EdgeSink& sink) const;
};

// ------------------------------------------------------------- R-MAT

struct RmatParams {
  std::uint32_t scale = 16;        // 2^scale vertices
  std::uint32_t edge_factor = 16;  // edges = edge_factor * 2^scale
  std::uint64_t seed = 1;
  // Graph500 quadrant probabilities; d = 1 - a - b - c.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
};

class RmatSource final : public ChunkedEdgeSource {
 public:
  explicit RmatSource(const RmatParams& params);

  std::uint64_t num_vertices() const override { return 1ull << params_.scale; }
  std::uint64_t num_edges() const override;
  std::uint64_t seed() const override { return params_.seed; }
  std::uint64_t num_chunks() const override;
  void generate_chunk(std::uint64_t chunk,
                      const EdgeSink& sink) const override;

 private:
  RmatParams params_;
};

// ------------------------------------------------------ Erdős–Rényi

struct ErdosRenyiParams {
  std::uint64_t num_vertices = 1 << 16;
  std::uint64_t num_edges = 1 << 20;  // G(n, m): m uniform random edges
  std::uint64_t seed = 1;
};

class ErdosRenyiSource final : public ChunkedEdgeSource {
 public:
  explicit ErdosRenyiSource(const ErdosRenyiParams& params);

  std::uint64_t num_vertices() const override { return params_.num_vertices; }
  std::uint64_t num_edges() const override { return params_.num_edges; }
  std::uint64_t seed() const override { return params_.seed; }
  std::uint64_t num_chunks() const override;
  void generate_chunk(std::uint64_t chunk,
                      const EdgeSink& sink) const override;

 private:
  ErdosRenyiParams params_;
};

// ------------------------------------------------------------- grid

struct Grid2dParams {
  std::uint32_t width = 64;
  std::uint32_t height = 64;
};

/// 4-neighbour lattice with both edge directions present: the
/// high-diameter control graph (diameter = width + height - 2).
class Grid2dSource final : public ChunkedEdgeSource {
 public:
  explicit Grid2dSource(const Grid2dParams& params);

  std::uint64_t num_vertices() const override;
  std::uint64_t num_edges() const override;
  std::uint64_t seed() const override { return 0; }
  bool undirected() const override { return true; }  // both directions emitted
  std::uint64_t num_chunks() const override;
  void generate_chunk(std::uint64_t chunk,
                      const EdgeSink& sink) const override;

 private:
  std::uint64_t rows_per_chunk() const;

  Grid2dParams params_;
};

// ----------------------------------------------- social stand-ins

struct TwitterLikeParams {
  std::uint64_t num_vertices = 512ull << 10;
  std::uint64_t num_edges = 8ull << 20;
  std::uint64_t seed = 1;
  double theta_out = 0.60;         // source (out-degree) skew
  double theta_in = 0.75;          // popular-destination skew
  double uniform_fraction = 0.30;  // uniform-destination mixture
  std::uint32_t chain_length = 12;  // bounded fringe chains (~14 rounds)
};

class TwitterLikeSource final : public ChunkedEdgeSource {
 public:
  explicit TwitterLikeSource(const TwitterLikeParams& params);

  std::uint64_t num_vertices() const override { return params_.num_vertices; }
  std::uint64_t num_edges() const override { return params_.num_edges; }
  std::uint64_t seed() const override { return params_.seed; }
  std::uint64_t num_chunks() const override;
  void generate_chunk(std::uint64_t chunk,
                      const EdgeSink& sink) const override;

 private:
  TwitterLikeParams params_;
  std::uint64_t core_;    // vertices [0, core_) form the power-law core
  std::uint64_t fringe_;  // vertices [core_, V) form the chain fringe
  std::uint64_t main_edges_;
  std::uint64_t main_chunks_;
  std::uint64_t chains_;
  std::uint64_t chains_per_chunk_;
  ZipfSampler out_sampler_;
  ZipfSampler in_sampler_;
};

struct FriendsterLikeParams {
  std::uint64_t num_vertices = 1ull << 20;
  std::uint64_t num_undirected_edges = 6ull << 20;  // records = 2x this
  std::uint64_t seed = 1;
  double theta = 0.40;             // milder skew than twitter
  double uniform_fraction = 0.50;  // half the endpoints uniform
  std::uint32_t chain_length = 27;  // ~29 BFS rounds (diameter 32 graph)
};

/// Symmetric edge list: every undirected edge is emitted in both
/// directions, adjacent in the stream.
class FriendsterLikeSource final : public ChunkedEdgeSource {
 public:
  explicit FriendsterLikeSource(const FriendsterLikeParams& params);

  std::uint64_t num_vertices() const override { return params_.num_vertices; }
  std::uint64_t num_edges() const override {
    return 2 * params_.num_undirected_edges;
  }
  std::uint64_t seed() const override { return params_.seed; }
  bool undirected() const override { return true; }
  std::uint64_t num_chunks() const override;
  void generate_chunk(std::uint64_t chunk,
                      const EdgeSink& sink) const override;

 private:
  FriendsterLikeParams params_;
  std::uint64_t core_;
  std::uint64_t fringe_;
  std::uint64_t main_undirected_;
  std::uint64_t main_chunks_;
  std::uint64_t chains_;
  std::uint64_t chains_per_chunk_;
  ZipfSampler sampler_;
};

// -------------------------------------------------- serial wrappers

void generate_rmat(const RmatParams& params, const EdgeSink& sink);
void generate_erdos_renyi(const ErdosRenyiParams& params,
                          const EdgeSink& sink);
void generate_grid2d(const Grid2dParams& params, const EdgeSink& sink);
void generate_twitter_like(const TwitterLikeParams& params,
                           const EdgeSink& sink);
void generate_friendster_like(const FriendsterLikeParams& params,
                              const EdgeSink& sink);

// ------------------------------------------- parallel build pipeline

struct ParallelBuildOptions {
  unsigned threads = 1;
  /// Per-writer (and merge) staging buffer.
  std::size_t writer_buffer_bytes = 1 << 20;
  /// Devices the per-chunk shard files round-robin over; empty means
  /// the target device. Spreading shards over several devices lets the
  /// modelled disks serve chunks concurrently (multi-disk build box),
  /// which is what makes generation scale past compute on one core.
  std::vector<io::Device*> shard_devices;
};

struct ParallelBuildReport {
  GraphMeta meta;
  std::uint64_t num_chunks = 0;
  double generate_seconds = 0.0;  // shard fan-out phase (parallel)
  double merge_seconds = 0.0;     // in-order concatenation onto `device`
};

/// Generates `source` into `name.edges` + `name.meta` on `device`
/// through the chunked parallel pipeline. The committed file is
/// byte-identical to write_generated(...) streaming the same source
/// serially, for every thread count and shard placement.
ParallelBuildReport build_edge_list_parallel(
    io::Device& device, const std::string& name,
    const ChunkedEdgeSource& source, const ParallelBuildOptions& options = {});

}  // namespace fbfs::graph
