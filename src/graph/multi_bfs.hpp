// MultiBfs: MS-BFS-style batched traversal — up to 64 BFS queries share
// one edge scan.
//
// Per-vertex state carries one bit per query in two 64-bit masks:
// `seen` (queries that have reached the vertex) and `frontier` (queries
// for which the vertex is in the current round's frontier). Scatter
// pushes the source's whole frontier mask along each out-edge; gather is
// an idempotent, order-free OR-fold — `fresh = mask & ~seen` — so the
// program runs unmodified through every existing engine layer: the
// chunk-ordered update shuffle, the staging sieve (subset dominance +
// mask-OR merge), the codec auto-selection, core's trimming (a vertex is
// retired once seen by ALL queries), and bottom-up rounds (a dst is
// claimed once its mask saturates).
//
// The level invariant that makes per-query results exact: every update
// emitted in round r carries level r+1 (an active source in round r has
// mark == r — it was activated, and marked, by round r-1's updates; the
// roots scatter mark 0 in round 0). So for each query bit b, the first
// round whose update reaches v with bit b set is exactly BFS-from-
// roots[b]'s level of v, and `levels[b]` reproduces a standalone
// BfsProgram run bit for bit (unpack_query).
//
// Why State keeps a per-round `mark`: gather must clear the stale
// frontier of a vertex the first time a NEW round's update lands on it
// (frontier is "this round's arrivals", seen is forever). Updates carry
// their round's level, so "u.level != s.mark" detects the round change
// without the engine telling states when a round ends — order-free,
// because every update of one round carries the same level.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "graph/program.hpp"
#include "graph/types.hpp"

namespace fbfs::graph {

/// Widest batch one MultiBfs traversal packs (one bit per query in a
/// uint64_t mask). engine::run_batch splits wider source lists.
inline constexpr std::uint32_t kMaxBatchQueries = 64;

template <std::uint32_t B = kMaxBatchQueries>
struct MultiBfs {
  static_assert(B >= 1 && B <= kMaxBatchQueries,
                "query masks are one uint64_t");

  static constexpr const char* kName = "msbfs";
  static constexpr bool kScatterAllVertices = false;
  static constexpr bool kNeedsApply = false;
  static constexpr bool kRequiresUndirected = false;
  // NOT the single-query "an active source never re-activates" licence:
  // a vertex re-enters the frontier whenever a new query reaches it.
  // core::run therefore keys deadness for masked programs on SATURATION
  // (seen == full_mask(): no query can ever gather anything new there,
  // so after the round that scatters its last frontier the out-edges
  // are dead), not on having-been-active.
  static constexpr bool kTrimmable = true;
  // OR-fold with a fresh-bits early-out: duplicate delivery is a no-op.
  static constexpr bool kIdempotentGather = true;

  struct State {
    std::uint64_t seen = 0;      // queries that reached this vertex
    std::uint64_t frontier = 0;  // queries that reached it THIS round
    std::uint32_t mark = 0;      // level of the round `frontier` is from
    std::uint32_t pad = 0;       // keep the on-disk record fully defined
    std::uint32_t levels[B] = {};  // per-query BFS level (kUnreachedLevel)
  };
  struct Update {
    VertexId dst = 0;
    std::uint32_t level = 0;
    std::uint64_t mask = 0;  // queries whose frontier crossed the edge
  };

  std::array<VertexId, B> roots{};  // roots[b] = query b's source
  std::uint32_t width = 0;          // live queries: bits [0, width)

  std::uint64_t full_mask() const {
    return width >= 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << width) - 1;
  }

  void init(VertexId v, std::uint32_t /*out_degree*/, State& s,
            bool& active) const {
    s.seen = 0;
    s.frontier = 0;
    s.mark = 0;
    s.pad = 0;
    for (std::uint32_t b = 0; b < B; ++b) s.levels[b] = kUnreachedLevel;
    for (std::uint32_t b = 0; b < width; ++b) {
      if (roots[b] != v) continue;
      const std::uint64_t bit = std::uint64_t{1} << b;
      s.seen |= bit;
      s.frontier |= bit;
      s.levels[b] = 0;
    }
    active = s.seen != 0;
  }
  bool scatter(const Edge& e, const State& src, Update& out) const {
    out = {e.dst, src.mark + 1, src.frontier};
    return true;
  }
  /// The bottom-up hook (MaskedProgram): like BfsProgram::pull, but the
  /// caller supplies the source's frontier mask (restricted to the bits
  /// dst still needs) since the in-edge scan has no source State loaded.
  bool pull_masked(const Edge& e, std::uint32_t round, std::uint64_t mask,
                   Update& out) const {
    out = {e.dst, round + 1, mask};
    return mask != 0;
  }
  std::uint64_t frontier_mask(const State& s) const { return s.frontier; }
  std::uint64_t seen_mask(const State& s) const { return s.seen; }
  bool gather(const Update& u, State& s) const {
    const std::uint64_t fresh = u.mask & ~s.seen;
    // The early-out must come BEFORE any mutation: top-down rounds
    // deliver redundant updates that bottom-up rounds (restricted
    // masks + claiming) never emit, and direction equivalence needs
    // both to leave byte-identical states.
    if (fresh == 0) return false;
    if (u.level != s.mark) {  // first arrival of a new round
      s.frontier = 0;
      s.mark = u.level;
    }
    s.seen |= fresh;
    s.frontier |= fresh;
    for (std::uint64_t bits = fresh; bits != 0; bits &= bits - 1) {
      s.levels[std::countr_zero(bits)] = u.level;
    }
    return true;
  }
  void apply(VertexId, State&) const {}
  /// Subset dominance: b is redundant after a when it brings no new
  /// query bits. Same-dst updates within one scatter window all carry
  /// the same level (the round invariant above), which is what makes
  /// the mask-OR merge equivalent to delivering both.
  bool dominates(const Update& a, const Update& b) const {
    return b.level >= a.level && (b.mask & ~a.mask) == 0;
  }
  void sieve_merge(Update& champion, const Update& u) const {
    champion.mask |= u.mask;
  }
  std::uint64_t output(VertexId, const State& s) const { return s.seen; }

  /// Query b's standalone-BFS view of a finished batch run —
  /// bit-identical to inmem::run(BfsProgram{.root = roots[b]}) by the
  /// level invariant (unreached stays kUnreachedLevel from init).
  std::vector<BfsProgram::State> unpack_query(
      std::uint32_t b, std::span<const State> states) const {
    FB_CHECK_MSG(b < width, "unpack_query(" << b << ") of a width-"
                                            << width << " batch");
    std::vector<BfsProgram::State> out(states.size());
    for (std::size_t v = 0; v < states.size(); ++v) {
      out[v].level = states[v].levels[b];
    }
    return out;
  }
};

static_assert(GraphProgram<MultiBfs<64>>);
static_assert(SieveCapable<MultiBfs<64>>);
static_assert(MaskedProgram<MultiBfs<64>>);
static_assert(MaskedProgram<MultiBfs<7>>);
// Masked programs pull through pull_masked, not the single-query hook.
static_assert(!PullCapable<MultiBfs<64>>);
// dst at offset 0 (RoutedRecord), one 8-byte mask + dst/level packed.
static_assert(sizeof(MultiBfs<64>::Update) == 16);
static_assert(sizeof(MultiBfs<64>::State) == 24 + 64 * 4);

}  // namespace fbfs::graph
