#include "graph/partitioner.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/config.hpp"
#include "common/log.hpp"
#include "storage/stream.hpp"

namespace fbfs::graph {

PartitionLayout::PartitionLayout(std::uint64_t num_vertices,
                                 std::uint32_t num_partitions)
    : num_vertices_(num_vertices), num_partitions_(num_partitions) {
  FB_CHECK_MSG(num_partitions >= 1, "need at least one partition");
  base_ = num_vertices / num_partitions;
  extra_ = num_vertices % num_partitions;
}

VertexId PartitionLayout::begin(std::uint32_t p) const {
  FB_CHECK_LE(p, num_partitions_);
  const std::uint64_t extra_here = std::min<std::uint64_t>(p, extra_);
  return static_cast<VertexId>(p * base_ + extra_here);
}

std::uint32_t PartitionLayout::owner(VertexId v) const {
  FB_CHECK_LT(v, num_vertices_);
  const std::uint64_t wide_end = extra_ * (base_ + 1);
  if (v < wide_end) {
    return static_cast<std::uint32_t>(v / (base_ + 1));
  }
  // base_ > 0 here: wide_end == num_vertices_ when base_ == 0, and v is
  // below num_vertices_.
  return static_cast<std::uint32_t>(extra_ + (v - wide_end) / base_);
}

std::string PartitionedGraph::partition_file(std::uint32_t p) const {
  return meta.name + ".P" + std::to_string(layout.num_partitions()) +
         ".part" + std::to_string(p);
}

PartitionedGraph partition_edge_list(const io::StoragePlan& plan,
                                     const GraphMeta& meta,
                                     std::uint32_t num_partitions,
                                     const PartitionOptions& options) {
  FB_CHECK_EQ(meta.record_size, sizeof(Edge));
  io::Device& device = plan.edges();
  PartitionedGraph pg;
  pg.meta = meta;
  pg.layout = PartitionLayout(meta.num_vertices, num_partitions);
  pg.edges_per_partition.assign(num_partitions, 0);

  // Half the budget feeds the (double-buffered) input scan, the other
  // half is split into per-partition staging buffers.
  const std::size_t read_buffer =
      std::max<std::size_t>(sizeof(Edge), options.buffer_bytes / 2);
  const std::size_t write_buffer = std::max<std::size_t>(
      sizeof(Edge), options.buffer_bytes / 2 / num_partitions);

  struct PartitionOut {
    std::unique_ptr<io::File> file;
    std::unique_ptr<io::RecordWriter<Edge>> writer;
  };
  std::vector<PartitionOut> outputs(num_partitions);
  for (std::uint32_t p = 0; p < num_partitions; ++p) {
    outputs[p].file = device.open(pg.partition_file(p), /*truncate=*/true);
    outputs[p].writer =
        std::make_unique<io::RecordWriter<Edge>>(*outputs[p].file,
                                                 write_buffer);
  }

  auto reader = io::open_record_reader<Edge>(
      device, meta.edge_file(), {options.reader, read_buffer, 0});
  std::uint64_t total = 0;
  std::uint64_t checksum = 0;
  for (auto batch = reader->next_batch(); !batch.empty();
       batch = reader->next_batch()) {
    for (const Edge& e : batch) {
      const std::uint32_t p = pg.layout.owner(e.src);
      outputs[p].writer->append(e);
      ++pg.edges_per_partition[p];
      checksum += edge_digest(e);
    }
    total += batch.size();
  }
  for (PartitionOut& out : outputs) out.writer->flush();

  FB_CHECK_MSG(total == meta.num_edges,
               "partitioner read " << total << " edges of " << meta.name
                                   << ", sidecar says " << meta.num_edges);
  FB_CHECK_MSG(checksum == meta.checksum,
               "edge file of " << meta.name
                               << " fails its checksum during partitioning");
  FB_LOG_DEBUG << "partitioned " << meta.name << " into " << num_partitions
               << " ranges (" << total << " edges)";
  return pg;
}

std::string transposed_file(const PartitionedGraph& pg, std::uint32_t q) {
  return pg.meta.name + ".P" + std::to_string(pg.layout.num_partitions()) +
         ".tpart" + std::to_string(q);
}

std::string transposed_index_file(const PartitionedGraph& pg,
                                  std::uint32_t q) {
  return pg.meta.name + ".P" + std::to_string(pg.layout.num_partitions()) +
         ".tindex" + std::to_string(q);
}

std::string transposed_meta_file(const PartitionedGraph& pg) {
  return pg.meta.name + ".P" + std::to_string(pg.layout.num_partitions()) +
         ".tmeta";
}

namespace {

std::uint64_t transposed_block_count(std::uint64_t records) {
  return (records + kTransposedBlockRecords - 1) / kTransposedBlockRecords;
}

/// A cache hit: the sidecar matches this graph + partition count AND
/// the block granularity this build understands, and every transposed
/// file and block index is exactly the size the sidecar implies.
/// (Sidecars from before the block index lack `block_records`, so old
/// caches rebuild once.)
bool load_cached_transposed_view(io::Device& device,
                                 const PartitionedGraph& pg,
                                 TransposedView& view) {
  const std::string meta_name = transposed_meta_file(pg);
  if (!device.exists(meta_name)) return false;
  const Config cfg = Config::parse_file(device.path(meta_name));
  if (cfg.get_u64_or("num_partitions", 0) != pg.layout.num_partitions() ||
      cfg.get_u64_or("num_edges", 0) != pg.meta.num_edges ||
      cfg.get_u64_or("checksum", 0) != pg.meta.checksum ||
      cfg.get_u64_or("block_records", 0) != kTransposedBlockRecords) {
    return false;
  }
  std::vector<std::uint64_t> counts(pg.layout.num_partitions());
  for (std::uint32_t q = 0; q < counts.size(); ++q) {
    counts[q] = cfg.get_u64_or("in_edges" + std::to_string(q), 0);
    const std::string name = transposed_file(pg, q);
    if (!device.exists(name) ||
        device.file_size(name) != counts[q] * sizeof(Edge)) {
      return false;
    }
    const std::string index_name = transposed_index_file(pg, q);
    if (!device.exists(index_name) ||
        device.file_size(index_name) !=
            transposed_block_count(counts[q]) * sizeof(TransposedBlock)) {
      return false;
    }
  }
  view.blocks.assign(pg.layout.num_partitions(), {});
  for (std::uint32_t q = 0; q < counts.size(); ++q) {
    view.blocks[q].resize(transposed_block_count(counts[q]));
    if (view.blocks[q].empty()) continue;
    auto file = device.open(transposed_index_file(pg, q), /*truncate=*/false);
    const std::uint64_t bytes =
        view.blocks[q].size() * sizeof(TransposedBlock);
    FB_CHECK_EQ(file->read_at(0, view.blocks[q].data(), bytes), bytes);
  }
  view.in_edges_per_partition = std::move(counts);
  FB_LOG_DEBUG << "transposed view of " << pg.meta.name << " ("
               << pg.layout.num_partitions() << " partitions): cache hit";
  return true;
}

}  // namespace

TransposedView build_transposed_view(const io::StoragePlan& plan,
                                     const PartitionedGraph& pg,
                                     const PartitionOptions& options) {
  io::Device& device = plan.edges();
  TransposedView view;
  if (load_cached_transposed_view(device, pg, view)) return view;

  const std::uint32_t num_partitions = pg.layout.num_partitions();
  view.in_edges_per_partition.assign(num_partitions, 0);

  // Pass 1 — fan out by DESTINATION owner, streaming each source
  // partition file in order (the same split-the-budget buffering as the
  // forward partitioner). The multiset checksum re-verifies the
  // partition files en route.
  const std::size_t read_buffer =
      std::max<std::size_t>(sizeof(Edge), options.buffer_bytes / 2);
  const std::size_t write_buffer = std::max<std::size_t>(
      sizeof(Edge), options.buffer_bytes / 2 / num_partitions);
  struct PartitionOut {
    std::unique_ptr<io::File> file;
    std::unique_ptr<io::RecordWriter<Edge>> writer;
  };
  {
    std::vector<PartitionOut> outputs(num_partitions);
    for (std::uint32_t q = 0; q < num_partitions; ++q) {
      outputs[q].file = device.open(transposed_file(pg, q), /*truncate=*/true);
      outputs[q].writer = std::make_unique<io::RecordWriter<Edge>>(
          *outputs[q].file, write_buffer);
    }
    std::uint64_t total = 0;
    std::uint64_t checksum = 0;
    for (std::uint32_t p = 0; p < num_partitions; ++p) {
      auto reader = io::open_record_reader<Edge>(
          device, pg.partition_file(p), {options.reader, read_buffer, 0});
      for (auto batch = reader->next_batch(); !batch.empty();
           batch = reader->next_batch()) {
        for (const Edge& e : batch) {
          const std::uint32_t q = pg.layout.owner(e.dst);
          outputs[q].writer->append(e);
          ++view.in_edges_per_partition[q];
          checksum += edge_digest(e);
        }
        total += batch.size();
      }
    }
    for (PartitionOut& out : outputs) out.writer->flush();
    FB_CHECK_MSG(total == pg.meta.num_edges,
                 "transpose read " << total << " edges of " << pg.meta.name
                                   << ", sidecar says " << pg.meta.num_edges);
    FB_CHECK_MSG(checksum == pg.meta.checksum,
                 "partition files of " << pg.meta.name
                                       << " fail their checksum during "
                                          "transposition");
  }

  // Pass 2 — sort each transposed file by destination (stable, so
  // same-dst edges keep their pass-1 order and the output is a pure
  // function of the partition files). The dst-sorted layout is what
  // lets the bottom-up scan treat each vertex's in-edges as one run.
  // The block index falls out of the sorted array for free: each fixed
  // kTransposedBlockRecords-record block's dst range, persisted beside
  // the file so the skip-scan never needs a priming read.
  view.blocks.assign(num_partitions, {});
  for (std::uint32_t q = 0; q < num_partitions; ++q) {
    const std::string name = transposed_file(pg, q);
    std::vector<Edge> edges(view.in_edges_per_partition[q]);
    {
      auto file = device.open(name, /*truncate=*/false);
      const std::uint64_t bytes = edges.size() * sizeof(Edge);
      FB_CHECK_EQ(file->read_at(0, edges.data(), bytes), bytes);
    }
    std::stable_sort(edges.begin(), edges.end(),
                     [](const Edge& a, const Edge& b) { return a.dst < b.dst; });
    auto file = device.open(name, /*truncate=*/true);
    io::RecordWriter<Edge> writer(*file, read_buffer);
    for (const Edge& e : edges) writer.append(e);
    writer.flush();

    std::vector<TransposedBlock>& blocks = view.blocks[q];
    blocks.resize(transposed_block_count(edges.size()));
    for (std::uint64_t b = 0; b < blocks.size(); ++b) {
      const std::uint64_t first = b * kTransposedBlockRecords;
      const std::uint64_t last =
          std::min(first + kTransposedBlockRecords, edges.size()) - 1;
      blocks[b] = {edges[first].dst, edges[last].dst};
    }
    auto index = device.open(transposed_index_file(pg, q), /*truncate=*/true);
    io::RecordWriter<TransposedBlock> index_writer(*index, 1 << 16);
    for (const TransposedBlock& block : blocks) index_writer.append(block);
    index_writer.flush();
  }

  // Sidecar last: its presence certifies the files above are complete.
  Config cfg;
  cfg.set_u64("num_partitions", num_partitions);
  cfg.set_u64("num_edges", pg.meta.num_edges);
  cfg.set_u64("checksum", pg.meta.checksum);
  cfg.set_u64("block_records", kTransposedBlockRecords);
  for (std::uint32_t q = 0; q < num_partitions; ++q) {
    cfg.set_u64("in_edges" + std::to_string(q),
                view.in_edges_per_partition[q]);
  }
  cfg.write_file(device.path(transposed_meta_file(pg)));
  FB_LOG_DEBUG << "built transposed view of " << pg.meta.name << " ("
               << num_partitions << " partitions, " << pg.meta.num_edges
               << " edges)";
  return view;
}

std::vector<std::uint32_t> compute_out_degrees(io::Device& device,
                                               const GraphMeta& meta) {
  FB_CHECK_EQ(meta.record_size, sizeof(Edge));
  std::vector<std::uint32_t> degrees(meta.num_vertices, 0);
  auto reader = io::open_record_reader<Edge>(
      device, meta.edge_file(), io::ReaderOptions::prefetch(1 << 20));
  for (auto batch = reader->next_batch(); !batch.empty();
       batch = reader->next_batch()) {
    for (const Edge& e : batch) ++degrees[e.src];
  }
  return degrees;
}

DegreeStats compute_out_degree_stats(io::Device& device,
                                     const GraphMeta& meta) {
  const std::vector<std::uint32_t> degrees = compute_out_degrees(device, meta);
  DegreeStats stats;
  for (VertexId v = 0; v < degrees.size(); ++v) {
    if (degrees[v] == 0) continue;
    ++stats.vertices_with_edges;
    if (degrees[v] > stats.max_degree) {
      stats.max_degree = degrees[v];
      stats.max_degree_vertex = v;
    }
  }
  stats.mean_degree =
      meta.num_vertices == 0
          ? 0.0
          : static_cast<double>(meta.num_edges) /
                static_cast<double>(meta.num_vertices);
  return stats;
}

}  // namespace fbfs::graph
