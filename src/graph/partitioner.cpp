#include "graph/partitioner.hpp"

#include <memory>

#include "common/log.hpp"
#include "storage/stream.hpp"

namespace fbfs::graph {

PartitionLayout::PartitionLayout(std::uint64_t num_vertices,
                                 std::uint32_t num_partitions)
    : num_vertices_(num_vertices), num_partitions_(num_partitions) {
  FB_CHECK_MSG(num_partitions >= 1, "need at least one partition");
  base_ = num_vertices / num_partitions;
  extra_ = num_vertices % num_partitions;
}

VertexId PartitionLayout::begin(std::uint32_t p) const {
  FB_CHECK_LE(p, num_partitions_);
  const std::uint64_t extra_here = std::min<std::uint64_t>(p, extra_);
  return static_cast<VertexId>(p * base_ + extra_here);
}

std::uint32_t PartitionLayout::owner(VertexId v) const {
  FB_CHECK_LT(v, num_vertices_);
  const std::uint64_t wide_end = extra_ * (base_ + 1);
  if (v < wide_end) {
    return static_cast<std::uint32_t>(v / (base_ + 1));
  }
  // base_ > 0 here: wide_end == num_vertices_ when base_ == 0, and v is
  // below num_vertices_.
  return static_cast<std::uint32_t>(extra_ + (v - wide_end) / base_);
}

std::string PartitionedGraph::partition_file(std::uint32_t p) const {
  return meta.name + ".P" + std::to_string(layout.num_partitions()) +
         ".part" + std::to_string(p);
}

PartitionedGraph partition_edge_list(const io::StoragePlan& plan,
                                     const GraphMeta& meta,
                                     std::uint32_t num_partitions,
                                     const PartitionOptions& options) {
  FB_CHECK_EQ(meta.record_size, sizeof(Edge));
  io::Device& device = plan.edges();
  PartitionedGraph pg;
  pg.meta = meta;
  pg.layout = PartitionLayout(meta.num_vertices, num_partitions);
  pg.edges_per_partition.assign(num_partitions, 0);

  // Half the budget feeds the (double-buffered) input scan, the other
  // half is split into per-partition staging buffers.
  const std::size_t read_buffer =
      std::max<std::size_t>(sizeof(Edge), options.buffer_bytes / 2);
  const std::size_t write_buffer = std::max<std::size_t>(
      sizeof(Edge), options.buffer_bytes / 2 / num_partitions);

  struct PartitionOut {
    std::unique_ptr<io::File> file;
    std::unique_ptr<io::RecordWriter<Edge>> writer;
  };
  std::vector<PartitionOut> outputs(num_partitions);
  for (std::uint32_t p = 0; p < num_partitions; ++p) {
    outputs[p].file = device.open(pg.partition_file(p), /*truncate=*/true);
    outputs[p].writer =
        std::make_unique<io::RecordWriter<Edge>>(*outputs[p].file,
                                                 write_buffer);
  }

  auto reader = io::open_record_reader<Edge>(
      device, meta.edge_file(), {options.reader, read_buffer, 0});
  std::uint64_t total = 0;
  std::uint64_t checksum = 0;
  for (auto batch = reader->next_batch(); !batch.empty();
       batch = reader->next_batch()) {
    for (const Edge& e : batch) {
      const std::uint32_t p = pg.layout.owner(e.src);
      outputs[p].writer->append(e);
      ++pg.edges_per_partition[p];
      checksum += edge_digest(e);
    }
    total += batch.size();
  }
  for (PartitionOut& out : outputs) out.writer->flush();

  FB_CHECK_MSG(total == meta.num_edges,
               "partitioner read " << total << " edges of " << meta.name
                                   << ", sidecar says " << meta.num_edges);
  FB_CHECK_MSG(checksum == meta.checksum,
               "edge file of " << meta.name
                               << " fails its checksum during partitioning");
  FB_LOG_DEBUG << "partitioned " << meta.name << " into " << num_partitions
               << " ranges (" << total << " edges)";
  return pg;
}

std::vector<std::uint32_t> compute_out_degrees(io::Device& device,
                                               const GraphMeta& meta) {
  FB_CHECK_EQ(meta.record_size, sizeof(Edge));
  std::vector<std::uint32_t> degrees(meta.num_vertices, 0);
  auto reader = io::open_record_reader<Edge>(
      device, meta.edge_file(), io::ReaderOptions::prefetch(1 << 20));
  for (auto batch = reader->next_batch(); !batch.empty();
       batch = reader->next_batch()) {
    for (const Edge& e : batch) ++degrees[e.src];
  }
  return degrees;
}

DegreeStats compute_out_degree_stats(io::Device& device,
                                     const GraphMeta& meta) {
  const std::vector<std::uint32_t> degrees = compute_out_degrees(device, meta);
  DegreeStats stats;
  for (VertexId v = 0; v < degrees.size(); ++v) {
    if (degrees[v] == 0) continue;
    ++stats.vertices_with_edges;
    if (degrees[v] > stats.max_degree) {
      stats.max_degree = degrees[v];
      stats.max_degree_vertex = v;
    }
  }
  stats.mean_degree =
      meta.num_vertices == 0
          ? 0.0
          : static_cast<double>(meta.num_edges) /
                static_cast<double>(meta.num_vertices);
  return stats;
}

}  // namespace fbfs::graph
