// Range partitioner: fans one edge file out to P per-partition edge
// files in a single streaming pass, plus degree statistics over the
// same scan.
//
// Partition p owns the contiguous vertex range [begin(p), end(p)); an
// edge belongs to the partition that owns its *source* (scatter streams
// a partition's out-edges — X-Stream's layout). The pass reads the
// source file through the prefetching reader (compute the fan-out while
// the next buffer is in flight) and stages each partition's edges in a
// private write buffer so the device sees few, large appends per
// partition file.
#pragma once

#include <string>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"
#include "storage/reader_factory.hpp"
#include "storage/storage_plan.hpp"

namespace fbfs::graph {

/// Contiguous, balanced vertex ranges: the first (num_vertices mod P)
/// partitions hold one extra vertex.
class PartitionLayout {
 public:
  PartitionLayout() = default;
  PartitionLayout(std::uint64_t num_vertices, std::uint32_t num_partitions);

  std::uint64_t num_vertices() const { return num_vertices_; }
  std::uint32_t num_partitions() const { return num_partitions_; }

  VertexId begin(std::uint32_t p) const;
  VertexId end(std::uint32_t p) const { return begin(p + 1); }
  std::uint64_t size(std::uint32_t p) const { return end(p) - begin(p); }

  /// The partition owning vertex `v` (O(1) arithmetic, no table).
  std::uint32_t owner(VertexId v) const;

 private:
  std::uint64_t num_vertices_ = 0;
  std::uint32_t num_partitions_ = 0;
  std::uint64_t base_ = 0;   // vertices per partition, rounded down
  std::uint64_t extra_ = 0;  // partitions holding base_ + 1
};

struct PartitionedGraph {
  GraphMeta meta;
  PartitionLayout layout;
  std::vector<std::uint64_t> edges_per_partition;

  /// On-device name of partition p's edge file.
  std::string partition_file(std::uint32_t p) const;
};

struct PartitionOptions {
  /// Split across the input reader and the P per-partition writers.
  std::size_t buffer_bytes = 4 << 20;
  io::ReaderMode reader = io::ReaderMode::kPrefetch;
};

/// One streaming pass: `meta.edge_file()` -> P partition files, both on
/// the plan's edges device, verifying the sidecar checksum en route.
PartitionedGraph partition_edge_list(const io::StoragePlan& plan,
                                     const GraphMeta& meta,
                                     std::uint32_t num_partitions,
                                     const PartitionOptions& options = {});

/// Single-device convenience wrapper.
inline PartitionedGraph partition_edge_list(io::Device& device,
                                            const GraphMeta& meta,
                                            std::uint32_t num_partitions,
                                            std::size_t buffer_bytes = 4
                                                                       << 20) {
  return partition_edge_list(io::StoragePlan::single(device), meta,
                             num_partitions, {.buffer_bytes = buffer_bytes});
}

/// The transposed (in-edge) partition view the bottom-up direction
/// scans: partition q's transposed file holds every edge whose
/// DESTINATION q owns, sorted by destination — dst-sorted so a
/// bottom-up scan sees each target's in-edges as one contiguous run and
/// can stop probing a vertex the moment it is claimed. Built once from
/// the partition files (one fan-out pass + one per-partition sort) and
/// cached on the plan's edge device behind a `.tmeta` sidecar; later
/// runs at the same partition count load the counts and skip the build.
/// Fixed record count per transposed-file block: the granularity of the
/// frontier-density-aware bottom-up reader (pull_partition skips a
/// block — never reads its bytes — when its whole dst range is already
/// claimed) and of the pull determinism windows. 4096 edges = 32 KiB.
inline constexpr std::uint64_t kTransposedBlockRecords = 4096;

/// Destination range of one fixed-size block of a transposed file:
/// block i covers records [i * kTransposedBlockRecords, ...), whose
/// dst-sorted destinations all lie in [first_dst, last_dst].
struct TransposedBlock {
  VertexId first_dst = 0;
  VertexId last_dst = 0;
};
static_assert(sizeof(TransposedBlock) == 8);

struct TransposedView {
  /// In-edges landing in each partition's vertex range. Sums to
  /// meta.num_edges.
  std::vector<std::uint64_t> in_edges_per_partition;
  /// Per-partition block index over the transposed files (persisted in
  /// the `.tindex<q>` files; ceil(count / kTransposedBlockRecords)
  /// entries each).
  std::vector<std::vector<TransposedBlock>> blocks;
};

/// On-device name of partition q's transposed (in-edge) file.
std::string transposed_file(const PartitionedGraph& pg, std::uint32_t q);
/// On-device name of partition q's transposed block index.
std::string transposed_index_file(const PartitionedGraph& pg,
                                  std::uint32_t q);
/// The cache sidecar recording per-partition counts + checksum.
std::string transposed_meta_file(const PartitionedGraph& pg);

/// Builds (or loads, on a cache hit) the transposed view of `pg` on the
/// plan's edges device. The fan-out pass verifies the edge multiset
/// checksum against the sidecar; the cache is valid only when the
/// `.tmeta` sidecar matches the graph and every transposed file has its
/// recorded size.
TransposedView build_transposed_view(const io::StoragePlan& plan,
                                     const PartitionedGraph& pg,
                                     const PartitionOptions& options = {});

struct DegreeStats {
  std::uint64_t max_degree = 0;
  VertexId max_degree_vertex = 0;
  double mean_degree = 0.0;  // over all vertices
  std::uint64_t vertices_with_edges = 0;
};

/// Out-degree of every vertex, from one read-ahead scan of the edge
/// file.
std::vector<std::uint32_t> compute_out_degrees(io::Device& device,
                                               const GraphMeta& meta);

DegreeStats compute_out_degree_stats(io::Device& device,
                                     const GraphMeta& meta);

}  // namespace fbfs::graph
