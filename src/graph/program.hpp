// GraphProgram: the algorithm/engine split.
//
// A graph computation is expressed once, as three pure functors over
// typed POD records, and executed by any engine (inmem::run — the exact
// in-memory reference — or xstream::run — the streaming-partition
// scatter/gather engine). Per iteration every engine runs the same
// synchronous phases:
//
//   scatter  for each edge (u,v) with u active (or every edge, when
//            kScatterAllVertices): read u's State, optionally emit one
//            Update addressed to v;
//   gather   for each emitted Update: fold it into its target's State;
//            a `true` return marks the target active next iteration;
//   apply    (only when kNeedsApply) once per vertex per iteration,
//            after all gathers — PageRank's rank-from-accumulator step.
//
// The run stops when an iteration emits no updates, activates no
// vertex, or hits the engine's iteration cap.
//
// THE bit-identity rule: gather must be a commutative, associative,
// exact fold (integer min/add, float min — never float accumulation).
// Engines differ only in the ORDER they scatter edges and deliver
// updates (partition files interleave sources; the shuffle reorders
// updates), so an order-free gather is what makes every engine, at
// every partition count, produce bit-identical states. PageRank
// therefore accumulates contributions in 24.40 fixed point — integer
// addition — instead of summing floats.
//
// kTrimmable is the licence for FastBFS's edge trimming (core::run): a
// program declares it only when a vertex scattered as an active source
// can NEVER be active again, so all of its out-edges are dead from that
// round on and may be dropped from the partition's input file without
// changing a single emitted update. BFS satisfies it (levels only ever
// get set once); WCC and SSSP re-activate sources, PageRank scatters
// everything every round — they declare false and the trimming engine
// degrades to the untrimmed loop for them.
//
// Programs are small value objects; parameters (root, vertex count)
// are constructor state, so one instance drives both the engine run and
// the reference run of an equivalence test.
#pragma once

#include <cmath>
#include <concepts>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <utility>

#include "graph/types.hpp"

namespace fbfs::graph {

template <typename P>
concept GraphProgram = requires(const P p, const Edge e,
                                typename P::State s,
                                const typename P::State cs,
                                typename P::Update u, bool active) {
  requires std::is_trivially_copyable_v<typename P::State>;
  requires std::is_trivially_copyable_v<typename P::Update>;
  { std::as_const(u).dst } -> std::convertible_to<VertexId>;
  { P::kName } -> std::convertible_to<const char*>;
  { P::kScatterAllVertices } -> std::convertible_to<bool>;
  { P::kNeedsApply } -> std::convertible_to<bool>;
  { P::kRequiresUndirected } -> std::convertible_to<bool>;
  { P::kTrimmable } -> std::convertible_to<bool>;
  { p.init(VertexId{}, std::uint32_t{}, s, active) } -> std::same_as<void>;
  { p.scatter(e, cs, u) } -> std::same_as<bool>;
  { p.gather(std::as_const(u), s) } -> std::same_as<bool>;
  { p.apply(VertexId{}, s) } -> std::same_as<void>;
  { p.output(VertexId{}, cs) };
};

/// True when P declares `kIdempotentGather = true`: delivering the same
/// update twice (or any byte-identical duplicate) cannot change a state
/// or an activation. Min-folds qualify — gathering an equal value hits
/// the `>=` early-out both times. Additive gathers (PageRank) must NOT
/// declare it. This is the licence for the update codec's bitmap format
/// (which collapses duplicate destinations) and for the staging sieve.
template <typename P>
inline constexpr bool kIdempotentGatherV = requires {
  requires P::kIdempotentGather == true;
};

/// A program the staging-buffer sieve can run on, via a program-supplied
/// dominance predicate plus a merge:
///
///   * `dominates(a, b)` — true when delivering `b` after `a` can never
///     change the target's state or activation, so `b` may be dropped at
///     the staging buffer before it reaches the shuffle writers.
///     Min-folds use value order (any staged champion with an equal-or-
///     better value dominates); mask folds (MultiBfs) use subset order.
///   * `sieve_merge(champion, u)` — called when the staged champion does
///     NOT dominate `u`: fold `u` into the champion so the single staged
///     record is equivalent to delivering both. Min-folds replace the
///     champion; mask folds OR the masks.
///
/// Only exact for idempotent-gather programs, hence the conjunction.
template <typename P>
concept SieveCapable = kIdempotentGatherV<P> &&
    requires(const P p, typename P::Update u) {
      { p.dominates(std::as_const(u), std::as_const(u)) }
          -> std::same_as<bool>;
      { p.sieve_merge(u, std::as_const(u)) } -> std::same_as<void>;
    };

/// A program the bottom-up (pull) direction can run on (core::run's
/// direction strategy): `pull(e, round, out)` produces the update edge
/// e would carry to e.dst GIVEN ONLY that e.src is in the round-r
/// frontier — without reading src's State, which a bottom-up in-edge
/// scan of dst's partition does not have loaded. The contract:
///
///   * the engine calls pull(e, r, out) only when e.src is active in
///     round r, and the emitted update must be byte-identical to what
///     scatter(e, state-of-src-at-round-r, out) would emit;
///   * every update pulled for the same dst in the same round must be
///     byte-identical (so dropping all but the first — the per-vertex
///     claimed short-circuit — cannot change any state), which is why
///     the concept additionally requires an idempotent gather.
///
/// BFS satisfies both: a round-r frontier vertex has level exactly r,
/// so pull emits {dst, r+1} — the same record any frontier in-neighbor
/// would push. Level-agnostic programs (WCC's labels, SSSP's
/// distances, PageRank's ranks) cannot reconstruct the update from the
/// round number alone and stay top-down.
template <typename P>
concept PullCapable = kIdempotentGatherV<P> &&
    requires(const P p, const Edge e, typename P::Update u) {
      { p.pull(e, std::uint32_t{}, u) } -> std::same_as<bool>;
    };

/// A batched multi-source program (MultiBfs): per-vertex state carries a
/// 64-bit seen/frontier mask pair the engine can mirror into flat arrays
/// (xstream::detail::MaskStateTracker) to drive trimming (a vertex is
/// retired once `seen_mask(s) == full_mask()` — saturated by every
/// query), bottom-up claiming, and the direction model's per-query
/// frontier densities. `pull_masked(e, round, mask, out)` is the
/// bottom-up hook: it builds the update e would carry to e.dst given
/// src's frontier mask restricted by the caller (the engine passes
/// `frontier_mask(src) & ~already-delivered`, so a dst's pulled masks
/// never overlap) and returns false when the restricted mask is empty.
/// Exactness needs an idempotent OR-fold gather, hence the conjunction.
template <typename P>
concept MaskedProgram = kIdempotentGatherV<P> &&
    requires(const P p, const Edge e, const typename P::State cs,
             typename P::Update u) {
      { p.frontier_mask(cs) } -> std::same_as<std::uint64_t>;
      { p.seen_mask(cs) } -> std::same_as<std::uint64_t>;
      { p.full_mask() } -> std::same_as<std::uint64_t>;
      { p.pull_masked(e, std::uint32_t{}, std::uint64_t{}, u) }
          -> std::same_as<bool>;
    };

/// Deterministic per-edge weight in [1, 2): SSSP needs weights, edge
/// files store none, and both engines see the same (src, dst) pairs —
/// so both derive the identical weight from the edge digest.
inline float edge_weight(const Edge& e) {
  return 1.0f + static_cast<float>(edge_digest(e) & 0xffff) / 65536.0f;
}

// --------------------------------------------------------------- BFS

inline constexpr std::uint32_t kUnreachedLevel =
    std::numeric_limits<std::uint32_t>::max();

struct BfsProgram {
  static constexpr const char* kName = "bfs";
  static constexpr bool kScatterAllVertices = false;
  static constexpr bool kNeedsApply = false;
  static constexpr bool kRequiresUndirected = false;
  // Every update of round r carries level r+1, so a vertex activates at
  // most once (a later update can never beat its level): a source
  // scattered once never scatters again, and its out-edges are dead —
  // the property FastBFS's edge trimming (core::run) relies on.
  static constexpr bool kTrimmable = true;
  // Min-fold over levels: duplicate delivery is a no-op.
  static constexpr bool kIdempotentGather = true;

  struct State {
    std::uint32_t level = kUnreachedLevel;
  };
  struct Update {
    VertexId dst = 0;
    std::uint32_t level = 0;
  };

  VertexId root = 0;

  void init(VertexId v, std::uint32_t /*out_degree*/, State& s,
            bool& active) const {
    s.level = v == root ? 0 : kUnreachedLevel;
    active = v == root;
  }
  bool scatter(const Edge& e, const State& src, Update& out) const {
    out = {e.dst, src.level + 1};
    return true;
  }
  /// The bottom-up hook (PullCapable): a round-r frontier source has
  /// level exactly r (levels are set once, by the round that claims
  /// them), so the update e.dst would receive is reconstructible from
  /// the round number alone — byte-identical to scatter's.
  bool pull(const Edge& e, std::uint32_t round, Update& out) const {
    out = {e.dst, round + 1};
    return true;
  }
  bool gather(const Update& u, State& dst) const {
    if (u.level >= dst.level) return false;
    dst.level = u.level;
    return true;
  }
  void apply(VertexId, State&) const {}
  /// Within one round every update to a vertex carries the same level,
  /// so any staged champion dominates every later same-dst update.
  bool dominates(const Update& a, const Update& b) const {
    return b.level >= a.level;
  }
  void sieve_merge(Update& champion, const Update& u) const { champion = u; }
  std::uint32_t output(VertexId, const State& s) const { return s.level; }
};
static_assert(sizeof(BfsProgram::Update) == 8);

// --------------------------------------------------------------- WCC

/// Minimum-label propagation. Converges to weakly connected components
/// only when every edge is present in both directions, hence
/// kRequiresUndirected (engines CHECK the input's undirected flag;
/// symmetrize_edge_list produces a conforming copy of any graph).
struct WccProgram {
  static constexpr const char* kName = "wcc";
  static constexpr bool kScatterAllVertices = false;
  static constexpr bool kNeedsApply = false;
  static constexpr bool kRequiresUndirected = true;
  // A vertex re-activates whenever a smaller label reaches it, so its
  // out-edges stay useful after a scatter: not trimmable.
  static constexpr bool kTrimmable = false;
  // Min-fold over labels: duplicate delivery is a no-op.
  static constexpr bool kIdempotentGather = true;

  struct State {
    std::uint32_t label = 0;
  };
  struct Update {
    VertexId dst = 0;
    std::uint32_t label = 0;
  };

  void init(VertexId v, std::uint32_t /*out_degree*/, State& s,
            bool& active) const {
    s.label = v;
    active = true;  // every vertex seeds its own label
  }
  bool scatter(const Edge& e, const State& src, Update& out) const {
    out = {e.dst, src.label};
    return true;
  }
  bool gather(const Update& u, State& dst) const {
    if (u.label >= dst.label) return false;
    dst.label = u.label;
    return true;
  }
  void apply(VertexId, State&) const {}
  bool dominates(const Update& a, const Update& b) const {
    return b.label >= a.label;
  }
  void sieve_merge(Update& champion, const Update& u) const { champion = u; }
  std::uint32_t output(VertexId, const State& s) const { return s.label; }
};

// -------------------------------------------------------------- SSSP

struct SsspProgram {
  static constexpr const char* kName = "sssp";
  static constexpr bool kScatterAllVertices = false;
  static constexpr bool kNeedsApply = false;
  static constexpr bool kRequiresUndirected = false;
  // Distances improve repeatedly (weights are non-uniform), so sources
  // re-activate: not trimmable.
  static constexpr bool kTrimmable = false;
  // Min over floats is exact, so duplicate delivery is still a no-op.
  static constexpr bool kIdempotentGather = true;

  struct State {
    float dist = std::numeric_limits<float>::infinity();
  };
  struct Update {
    VertexId dst = 0;
    float dist = 0.0f;
  };

  VertexId root = 0;

  void init(VertexId v, std::uint32_t /*out_degree*/, State& s,
            bool& active) const {
    s.dist = v == root ? 0.0f : std::numeric_limits<float>::infinity();
    active = v == root;
  }
  bool scatter(const Edge& e, const State& src, Update& out) const {
    out = {e.dst, src.dist + edge_weight(e)};
    return true;
  }
  // Min over floats is exact, so the fold stays order-free even though
  // the path sums are floating point.
  bool gather(const Update& u, State& dst) const {
    if (u.dist >= dst.dist) return false;
    dst.dist = u.dist;
    return true;
  }
  void apply(VertexId, State&) const {}
  bool dominates(const Update& a, const Update& b) const {
    return b.dist >= a.dist;
  }
  void sieve_merge(Update& champion, const Update& u) const { champion = u; }
  float output(VertexId, const State& s) const { return s.dist; }
};

// ---------------------------------------------------------- PageRank

struct PageRankProgram {
  static constexpr const char* kName = "pagerank";
  /// Every vertex contributes every iteration; the engine's iteration
  /// cap is the stopping rule (the paper's fixed-round comparisons).
  static constexpr bool kScatterAllVertices = true;
  static constexpr bool kNeedsApply = true;
  static constexpr bool kRequiresUndirected = false;
  // Every edge carries a contribution every round: nothing ever dies.
  static constexpr bool kTrimmable = false;

  /// 24.40 fixed point: contributions are <= 1, partial sums <= N < 2^24.
  static constexpr double kFixedOne = static_cast<double>(1ull << 40);
  static constexpr double kDamping = 0.85;

  struct State {
    std::uint64_t accum = 0;  // fixed-point sum of this round's inputs
    float rank = 0.0f;
    std::uint32_t out_degree = 0;
  };
  struct Update {
    std::uint64_t contrib = 0;  // fixed-point rank / out_degree
    VertexId dst = 0;
    std::uint32_t pad = 0;  // keep the on-disk record fully initialised
  };

  std::uint64_t num_vertices = 1;

  void init(VertexId /*v*/, std::uint32_t out_degree, State& s,
            bool& active) const {
    s = {0, static_cast<float>(1.0 / static_cast<double>(num_vertices)),
         out_degree};
    active = true;
  }
  bool scatter(const Edge& e, const State& src, Update& out) const {
    out = {static_cast<std::uint64_t>(
               std::llround(static_cast<double>(src.rank) /
                            static_cast<double>(src.out_degree) * kFixedOne)),
           e.dst, 0};
    return true;
  }
  bool gather(const Update& u, State& dst) const {
    dst.accum += u.contrib;  // integer add: exact and order-free
    return true;
  }
  void apply(VertexId, State& s) const {
    s.rank = static_cast<float>(
        (1.0 - kDamping) / static_cast<double>(num_vertices) +
        kDamping * (static_cast<double>(s.accum) / kFixedOne));
    s.accum = 0;
  }
  float output(VertexId, const State& s) const { return s.rank; }
};
static_assert(sizeof(PageRankProgram::Update) == 16);

static_assert(GraphProgram<BfsProgram>);
static_assert(GraphProgram<WccProgram>);
static_assert(GraphProgram<SsspProgram>);
static_assert(GraphProgram<PageRankProgram>);

static_assert(SieveCapable<BfsProgram>);
static_assert(SieveCapable<WccProgram>);
static_assert(SieveCapable<SsspProgram>);

// Only BFS can reconstruct a frontier source's update from the round
// number; the others' updates depend on source state the bottom-up scan
// never loads.
static_assert(PullCapable<BfsProgram>);
static_assert(!PullCapable<WccProgram>);
static_assert(!PullCapable<SsspProgram>);
static_assert(!PullCapable<PageRankProgram>);
// PageRank's additive gather counts every delivery: sieving or
// collapsing duplicates would change ranks.
static_assert(!kIdempotentGatherV<PageRankProgram>);
static_assert(!SieveCapable<PageRankProgram>);

// Single-query programs carry no frontier masks; only MultiBfs
// (graph/multi_bfs.hpp) models MaskedProgram.
static_assert(!MaskedProgram<BfsProgram>);
static_assert(!MaskedProgram<WccProgram>);
static_assert(!MaskedProgram<SsspProgram>);
static_assert(!MaskedProgram<PageRankProgram>);

}  // namespace fbfs::graph
