// Core graph value types. Edge files are flat arrays of these PODs —
// io::RecordWriter/RecordReader move them, the .meta sidecar
// (edge_list.hpp) records which record type a file holds.
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>

#include "common/rng.hpp"

namespace fbfs::graph {

/// Vertex ids are dense [0, num_vertices). 32 bits cover every scaled
/// dataset in DESIGN.md (max 2^20 vertices) with the paper's 8-byte
/// edge record.
using VertexId = std::uint32_t;

struct Edge {
  VertexId src = 0;
  VertexId dst = 0;

  bool operator==(const Edge&) const = default;
};
static_assert(std::is_trivially_copyable_v<Edge> && sizeof(Edge) == 8);

/// SSSP input: Edge plus a float weight (the layout GraphChi's shards
/// and the xstream SSSP program will share).
struct WeightedEdge {
  VertexId src = 0;
  VertexId dst = 0;
  float weight = 0.0f;

  bool operator==(const WeightedEdge&) const = default;
};
static_assert(std::is_trivially_copyable_v<WeightedEdge> &&
              sizeof(WeightedEdge) == 12);

/// Generators and importers push edges through one of these.
using EdgeSink = std::function<void(const Edge&)>;

/// Order-independent digest term of one edge. Summing the terms mod
/// 2^64 gives a *multiset* checksum of an edge file: invariant under
/// reordering (shards merged in any order, partitions concatenated in
/// any order) but sensitive to any lost, duplicated, or altered edge.
inline std::uint64_t edge_digest(const Edge& e) {
  std::uint64_t packed =
      (static_cast<std::uint64_t>(e.src) << 32) | e.dst;
  return splitmix64_next(packed);
}

}  // namespace fbfs::graph
