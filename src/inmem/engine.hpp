// The exact in-memory reference engine (ROADMAP item 1).
//
// Executes any GraphProgram over a Csr with the same synchronous
// scatter -> gather -> apply rounds as the streaming engine, holding
// every State and every Update in memory. It is the ground truth the
// xstream engine is validated against: because programs keep gather an
// order-free fold (program.hpp), both engines produce bit-identical
// states even though they scatter edges in different orders.
//
// Round semantics (xstream::run mirrors these exactly — change both or
// neither):
//   * scatter reads the states frozen at the start of the round;
//   * a round that emits no updates ends the run uncounted, unless the
//     program scatters all vertices every round (PageRank), in which
//     case gather/apply still run and the round counts;
//   * a counted round with no newly-activated vertex ends the run
//     (again: unless the program scatters all vertices);
//   * the run also ends after options.max_iterations counted rounds —
//     the stopping rule for kScatterAllVertices programs.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bitmap.hpp"
#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "engine/types.hpp"
#include "graph/csr.hpp"
#include "graph/program.hpp"
#include "metrics/collector.hpp"

namespace fbfs::inmem {

/// The unified engine surface (engine/types.hpp). This engine reads
/// only max_iterations and collector; the streaming/trim fields are
/// ignored. Null collector keeps the hot loops unchanged — no
/// allocation, no atomics, no per-edge clock reads; the only addition
/// is one per-round stopwatch, matching the streaming engines. There
/// is no storage plan here, so the per-role I/O block of each
/// iteration row stays zero.
using RunOptions = engine::Options;

template <graph::GraphProgram P>
using RunResult = engine::RunResult<P>;

template <graph::GraphProgram P>
RunResult<P> run(const graph::Csr& csr, const P& program,
                 const RunOptions& options = {}) {
  using Update = typename P::Update;
  const std::uint64_t n = csr.num_vertices();

  RunResult<P> result;
  result.states.resize(n);
  AtomicBitmap active(n);
  AtomicBitmap next_active(n);
  for (graph::VertexId v = 0; v < n; ++v) {
    bool is_active = false;
    program.init(v, csr.out_degree(v), result.states[v], is_active);
    if (is_active) active.set(v);
  }

  metrics::Collector* const collector = options.collector;
  std::vector<Update> updates;
  while (result.iterations < options.max_iterations) {
    Stopwatch round_clock;
    updates.clear();
    std::uint64_t scanned = 0;
    std::uint64_t sieved = 0;
    {
      metrics::ScopedPhase scatter_timer(collector, metrics::Phase::kScatter);
      for (graph::VertexId v = 0; v < n; ++v) {
        if (!P::kScatterAllVertices && !active.test(v)) continue;
        const typename P::State src_state = result.states[v];  // frozen copy
        scanned += csr.out_degree(v);
        for (const graph::VertexId dst : csr.neighbors(v)) {
          Update u;
          if (program.scatter(graph::Edge{v, dst}, src_state, u)) {
            updates.push_back(u);
          } else {
            ++sieved;
          }
        }
      }
    }
    if (collector != nullptr) {
      collector->live().add_edges_scanned(scanned);
      collector->live().add_edges_probed(scanned);
      collector->live().add_updates(updates.size(), sieved);
    }
    if (updates.empty() && !P::kScatterAllVertices) break;
    result.updates_emitted += updates.size();

    next_active.reset();
    {
      metrics::ScopedPhase gather_timer(collector, metrics::Phase::kGather);
      for (const Update& u : updates) {
        if (program.gather(u, result.states[u.dst])) next_active.set(u.dst);
      }
    }
    if constexpr (P::kNeedsApply) {
      metrics::ScopedPhase apply_timer(collector, metrics::Phase::kApply);
      for (graph::VertexId v = 0; v < n; ++v) {
        program.apply(v, result.states[v]);
      }
    }
    ++result.iterations;
    std::swap(active, next_active);
    if (collector != nullptr) {
      metrics::IterationStats stats;
      stats.iteration = result.iterations - 1;
      stats.edges_scanned = scanned;
      stats.edges_probed = scanned;
      stats.updates_emitted = updates.size();
      stats.activated = active.count_set();
      stats.seconds = round_clock.seconds();
      collector->end_iteration(stats);
    }
    if (!P::kScatterAllVertices && !active.any()) break;
  }
  return result;
}

/// Builds the Csr off `device` (checksum-verified) and runs; CHECKs the
/// program's undirected requirement against the sidecar.
template <graph::GraphProgram P>
RunResult<P> run_graph(io::Device& device, const graph::GraphMeta& meta,
                       const P& program, const RunOptions& options = {}) {
  FB_CHECK_MSG(!P::kRequiresUndirected || meta.undirected,
               P::kName << " requires a symmetric edge list, but "
                        << meta.name << " is directed (symmetrize_edge_list)");
  return run(graph::build_csr(device, meta), program, options);
}

}  // namespace fbfs::inmem
