#include "metrics/collector.hpp"

#include "common/log.hpp"

namespace fbfs::metrics {

CollectorOptions collector_options_from_config(const Config& config) {
  CollectorOptions opts;
  opts.histogram_shards = static_cast<std::size_t>(
      config.get_u64_or("metrics.histogram_shards", opts.histogram_shards));
  opts.sampler_interval_seconds = config.get_f64_or(
      "metrics.sampler_interval", opts.sampler_interval_seconds);
  opts.live_ops = config.get_bool_or("metrics.live_ops", opts.live_ops);
  return opts;
}

Collector::Collector(CollectorOptions options) : options_(options) {
  phases_.reserve(kNumPhases);
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    phases_.push_back(
        std::make_unique<ShardedHistogram>(options_.histogram_shards));
  }
  if (options_.sampler_interval_seconds > 0.0) {
    sampler_ = std::thread([this] { sampler_loop(); });
  }
}

Collector::~Collector() {
  if (sampler_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(sampler_mutex_);
      sampler_stop_ = true;
    }
    sampler_cv_.notify_all();
    sampler_.join();
  }
}

void Collector::end_iteration(const IterationStats& stats) {
  IterationMetrics row;
  row.stats = stats;
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    row.phase[p] = phases_[p]->drain();
  }
  run_.iterations.push_back(std::move(row));
  live_.add_iteration();
  run_.ops = live_.snapshot();
  run_.wall_seconds = run_clock_.seconds();
}

void Collector::sampler_loop() {
  LiveOpsSnapshot last = live_.snapshot();
  Stopwatch tick;
  std::unique_lock<std::mutex> lock(sampler_mutex_);
  while (true) {
    sampler_cv_.wait_for(
        lock, std::chrono::duration<double>(options_.sampler_interval_seconds),
        [this] { return sampler_stop_; });
    if (sampler_stop_) return;
    const LiveOpsSnapshot now = live_.snapshot();
    const double dt = tick.seconds();
    tick.restart();
    if (dt <= 0.0) continue;
    const auto rate = [dt](std::uint64_t delta) {
      return static_cast<std::uint64_t>(static_cast<double>(delta) / dt);
    };
    FB_LOG_INFO << "metrics: iter " << now.iterations << ", "
                << rate(now.edges_scanned - last.edges_scanned)
                << " edges/s, "
                << rate(now.updates_emitted - last.updates_emitted)
                << " updates/s ("
                << rate(now.updates_sieved - last.updates_sieved)
                << " sieved/s), "
                << (now.partitions_scattered - last.partitions_scattered)
                << " partitions scattered, "
                << (now.partitions_skipped - last.partitions_skipped)
                << " skipped";
    last = now;
  }
}

}  // namespace fbfs::metrics
