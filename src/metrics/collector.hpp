// Collector: the engines' observability hook.
//
// inmem::run, xstream::run, and core::run all accept an optional
// `metrics::Collector*`. When it is null the engines run exactly as
// before — every metrics call site is behind an `if (collector)` (or
// inside ScopedPhase, which checks internally), so the null path does
// no allocation, takes no lock, and touches no atomic beyond what the
// engines already did; the metrics tests and bench/metrics_smoke pin
// that contract. Collection also never perturbs results: recording is
// off the data path entirely, so update/stay/state files stay
// byte-identical with metrics on and off (pinned by the on/off
// bit-identity test).
//
// Recording path: hot loops bump LiveOps (relaxed atomics) and record
// phase latencies into per-phase ShardedHistograms (per-thread shards,
// relaxed, lock-free). At each iteration boundary the engine hands its
// finished IterationStats to end_iteration(), which drains the shards
// into that iteration's row — the merge point where the sharded counts
// become exact histograms.
//
// The optional sampler thread (CollectorOptions::sampler_interval_
// seconds > 0) wakes on its interval and logs a live rate line from
// LiveOps deltas — elbencho's live-ops view, useful on runs whose
// iterations take minutes.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/stopwatch.hpp"
#include "metrics/iteration_stats.hpp"
#include "metrics/latency_histogram.hpp"
#include "metrics/live_ops.hpp"
#include "metrics/run_stats.hpp"

namespace fbfs::metrics {

struct CollectorOptions {
  /// Shards per phase histogram; sized to the engine's worker-thread
  /// count (rounded up to a power of two, clamped to [1, 256]).
  std::size_t histogram_shards = 16;
  /// > 0 starts the background sampler thread logging a live rate line
  /// (FASTBFS_LOG=info) every interval.
  double sampler_interval_seconds = 0.0;
  /// Scale live-op rates in the sampler line by FASTBFS_TIME_SCALE?
  /// Kept simple: rates are reported as measured.
  bool live_ops = true;
};

/// Reads the `metrics.*` keys: histogram_shards (count),
/// sampler_interval (seconds; 0 disables the sampler), live_ops (bool).
CollectorOptions collector_options_from_config(const Config& config);

class Collector {
 public:
  explicit Collector(CollectorOptions options = {});
  ~Collector();
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// Hot-path recording (sharded, relaxed, lock-free).
  void record_phase_ns(Phase phase, std::uint64_t ns) {
    phases_[static_cast<std::size_t>(phase)]->record(ns);
  }

  LiveOps& live() { return live_; }
  const LiveOps& live() const { return live_; }

  /// Iteration boundary: stores `stats` as the next RunStats row and
  /// drains every phase's shards into it. Called by the engine after
  /// its recording workers have joined, which is what makes the
  /// drained histograms exact.
  void end_iteration(const IterationStats& stats);

  /// The accumulated run record. Stable between end_iteration calls;
  /// typically read after the engine returns.
  const RunStats& run_stats() const { return run_; }
  RunStats& run_stats() { return run_; }

 private:
  void sampler_loop();

  CollectorOptions options_;
  std::vector<std::unique_ptr<ShardedHistogram>> phases_;  // kNumPhases
  LiveOps live_;
  RunStats run_;
  Stopwatch run_clock_;

  std::mutex sampler_mutex_;
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;
  std::thread sampler_;
};

/// RAII phase timer. A null collector costs one pointer test — no
/// clock read, no allocation, no atomics.
class ScopedPhase {
 public:
  ScopedPhase(Collector* collector, Phase phase)
      : collector_(collector), phase_(phase) {
    if (collector_ != nullptr) start_ = clock::now();
  }
  ~ScopedPhase() {
    if (collector_ != nullptr) {
      collector_->record_phase_ns(
          phase_, static_cast<std::uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          clock::now() - start_)
                          .count()));
    }
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  using clock = std::chrono::steady_clock;

  Collector* collector_;
  Phase phase_;
  clock::time_point start_{};
};

}  // namespace fbfs::metrics
