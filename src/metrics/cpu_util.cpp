#include "metrics/cpu_util.hpp"

#include <fstream>
#include <sstream>
#include <string>

namespace fbfs::metrics {

std::optional<CpuTimes> sample_cpu_times() {
  std::ifstream stat("/proc/stat");
  if (!stat.good()) return std::nullopt;
  std::string line;
  if (!std::getline(stat, line)) return std::nullopt;
  std::istringstream is(line);
  std::string tag;
  is >> tag;
  if (tag != "cpu") return std::nullopt;
  // user nice system idle iowait irq softirq steal [guest guest_nice]
  std::uint64_t fields[8] = {};
  for (std::uint64_t& f : fields) {
    if (!(is >> f)) return std::nullopt;  // pre-2.6 kernels lack fields
  }
  CpuTimes t;
  t.idle_ticks = fields[3];
  t.iowait_ticks = fields[4];
  t.busy_ticks =
      fields[0] + fields[1] + fields[2] + fields[5] + fields[6] + fields[7];
  t.total_ticks = t.busy_ticks + t.idle_ticks + t.iowait_ticks;
  return t;
}

CpuUsage cpu_usage_between(const CpuTimes& a, const CpuTimes& b) {
  CpuUsage u;
  if (b.total_ticks <= a.total_ticks || b.busy_ticks < a.busy_ticks ||
      b.iowait_ticks < a.iowait_ticks) {
    return u;
  }
  const double total = static_cast<double>(b.total_ticks - a.total_ticks);
  u.busy = static_cast<double>(b.busy_ticks - a.busy_ticks) / total;
  u.iowait = static_cast<double>(b.iowait_ticks - a.iowait_ticks) / total;
  u.valid = true;
  return u;
}

}  // namespace fbfs::metrics
