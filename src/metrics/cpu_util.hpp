// Host CPU accounting off /proc/stat — elbencho's CPUUtil shape. The
// modelled devices give the MODELLED iowait ratio (IterationStats);
// this sampler reads the REAL host's aggregate cpu line so a bench on
// a physical disk can report both side by side. Two samples bracket an
// interval; the tick deltas give busy/iowait shares.
//
// Linux-only by nature: sample_cpu_times() returns nullopt where
// /proc/stat is absent or unparseable, and callers degrade (the fig6
// bench prints "n/a").
#pragma once

#include <cstdint>
#include <optional>

namespace fbfs::metrics {

/// One reading of the aggregate "cpu " line. Ticks are cumulative
/// since boot, in USER_HZ units (the ratios below cancel the unit).
struct CpuTimes {
  std::uint64_t busy_ticks = 0;    // user + nice + system + irq + softirq + steal
  std::uint64_t idle_ticks = 0;
  std::uint64_t iowait_ticks = 0;
  std::uint64_t total_ticks = 0;   // sum of all fields
};

std::optional<CpuTimes> sample_cpu_times();

/// Share of the interval [a, b] spent busy / in iowait. Invalid (all
/// zeros, valid=false) when the interval is empty or ticks regressed.
struct CpuUsage {
  double busy = 0.0;
  double iowait = 0.0;
  bool valid = false;
};

CpuUsage cpu_usage_between(const CpuTimes& a, const CpuTimes& b);

}  // namespace fbfs::metrics
