#include "metrics/device_usage.hpp"

#include <algorithm>

namespace fbfs::metrics {

void capture_iteration_io(const io::StoragePlan& plan,
                          const RoleSnapshots& before, IterationStats& stats) {
  const RoleSnapshots now = plan.stats_snapshot();
  stats.device_bytes_read = 0;
  stats.device_bytes_written = 0;
  stats.device_busy_ns = 0;
  stats.device_model_busy_ns = 0;
  stats.max_device_busy_ns = 0;
  std::array<const io::Device*, io::kNumRoles> seen{};
  std::size_t num_seen = 0;
  for (std::size_t r = 0; r < io::kNumRoles; ++r) {
    const io::IoStatsSnapshot d = now[r].delta(before[r]);
    RoleIo& io = stats.io[r];
    io.bytes_read = d.bytes_read;
    io.bytes_written = d.bytes_written;
    io.read_ops = d.read_ops;
    io.write_ops = d.write_ops;
    io.seeks = d.seeks;
    io.busy_ns = d.busy_ns;
    io.model_busy_ns = d.model_busy_ns;

    // Distinct-device totals: count each device once, whichever roles
    // share it.
    const io::Device* dev = &plan.device(static_cast<io::Role>(r));
    bool counted = false;
    for (std::size_t i = 0; i < num_seen; ++i) {
      if (seen[i] == dev) {
        counted = true;
        break;
      }
    }
    if (counted) continue;
    seen[num_seen++] = dev;
    stats.device_bytes_read += d.bytes_read;
    stats.device_bytes_written += d.bytes_written;
    stats.device_busy_ns += d.busy_ns;
    stats.device_model_busy_ns += d.model_busy_ns;
    stats.max_device_busy_ns = std::max(stats.max_device_busy_ns, d.busy_ns);
  }
}

}  // namespace fbfs::metrics
