// Device-usage capture: turns two StoragePlan counter snapshots into
// one iteration's I/O record — per-role deltas plus distinct-device
// totals (the modelled iowait inputs). Replaces the engines' ad-hoc
// capture_role_deltas, which only kept bytes.
#pragma once

#include <array>

#include "metrics/iteration_stats.hpp"
#include "storage/io_stats.hpp"
#include "storage/storage_plan.hpp"

namespace fbfs::metrics {

using RoleSnapshots = std::array<io::IoStatsSnapshot, io::kNumRoles>;

/// Fills stats.io with the per-role deltas accumulated since `before`
/// (a plan.stats_snapshot() taken at the start of the round), and the
/// distinct-device totals: each device is counted once however many
/// roles it serves, and max_device_busy_ns is the busiest device's
/// scaled busy delta — the modelled bottleneck spindle of the round.
void capture_iteration_io(const io::StoragePlan& plan,
                          const RoleSnapshots& before, IterationStats& stats);

}  // namespace fbfs::metrics
