// Per-iteration engine statistics — the single source of truth.
//
// Before src/metrics existed, xstream and core each kept an ad-hoc
// IterationStats (core's deriving xstream's); the figure benches then
// hand-rolled their aggregation. This header hoists the struct: every
// engine fills the same record, trim counters simply stay zero for the
// engines that never trim, and metrics::RunStats aggregates the rows.
//
// RoleIo carries the full per-role device-counter deltas — not only
// bytes but ops, seeks, and the token-bucket model's busy time
// (IoStats::busy_ns / model_busy_ns), which is what the modelled iowait
// ratio of Fig. 6 is computed from. Per-role attribution is exact when
// the plan's roles are dedicated(); roles sharing a device all surface
// the shared device's counters, so the distinct-device totals below are
// deduplicated by device, never by role.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

#include "storage/storage_plan.hpp"

namespace fbfs::metrics {

/// Device-counter deltas of one stream role over one iteration.
struct RoleIo {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;
  std::uint64_t seeks = 0;
  std::uint64_t busy_ns = 0;        // scaled (wall-clock) device busy time
  std::uint64_t model_busy_ns = 0;  // unscaled modelled service time

  std::uint64_t bytes_moved() const { return bytes_read + bytes_written; }
};

struct IterationStats {
  std::uint32_t iteration = 0;             // 0-based round index
  std::uint32_t partitions_scattered = 0;  // partitions not skipped
  std::uint32_t partitions_skipped = 0;    // no active source in range
  std::uint64_t updates_emitted = 0;
  /// Updates dropped at the scatter staging buffers (scatter declined
  /// or collapsed by the sieve) — they never reached the shuffle
  /// writers.
  std::uint64_t updates_sieved = 0;
  /// Update-file bytes written this round (codec headers included),
  /// bucketed by the chosen on-disk format: [raw, bitmap, varint] in
  /// io::codec::Format order. Kept as a plain array so this header
  /// stays decoupled from the codec layer.
  std::array<std::uint64_t, 3> update_codec_bytes{};
  std::uint64_t activated = 0;  // vertices active entering the next round
  double seconds = 0.0;
  double scatter_seconds = 0.0;  // edge-scan + update-shuffle share
  double gather_seconds = 0.0;   // update-fold + apply + write-back share

  /// Per-role device-counter deltas over this round, indexed by
  /// io::Role (see the header comment for the shared-device caveat).
  std::array<RoleIo, io::kNumRoles> io{};

  /// Totals over the plan's DISTINCT devices (each device counted once,
  /// however many roles map to it) — the round's true traffic.
  std::uint64_t device_bytes_read = 0;
  std::uint64_t device_bytes_written = 0;
  std::uint64_t device_busy_ns = 0;
  std::uint64_t device_model_busy_ns = 0;
  /// Busiest single device this round (scaled ns): the modelled
  /// bottleneck spindle.
  std::uint64_t max_device_busy_ns = 0;

  /// Direction strategy (core::run; top-down-only engines leave the
  /// whole block default). `bottomup` records the mode this round ran
  /// in; edges_scanned counts edge records the scatter/pull actually
  /// read; edges_probed counts the bottom-up subset that survived the
  /// per-vertex claimed short-circuit and probed the frontier bitmap
  /// (top-down rounds set probed = scanned). The modelled byte costs
  /// are the cost model's two sides for this round — what auto
  /// compared, recorded whichever way it decided.
  bool bottomup = false;
  std::uint64_t edges_scanned = 0;
  std::uint64_t edges_probed = 0;
  double modelled_topdown_bytes = 0.0;
  double modelled_bottomup_bytes = 0.0;
  /// Transposed-view bytes a bottom-up round never read because the
  /// whole block's destination range was already claimed (the
  /// frontier-density-aware reader; zero for top-down rounds).
  std::uint64_t edge_bytes_skipped = 0;

  /// Batched multi-source traversal (core::run over a masked program —
  /// MultiBfs; every other engine/program leaves both zero).
  /// frontier_mask_bits = aggregate popcount of the frontier masks over
  /// the round's active vertices; queries_active = queries with any
  /// frontier bit left entering the round.
  std::uint64_t frontier_mask_bits = 0;
  std::uint32_t queries_active = 0;

  /// Trim life cycle (core::run; zero for the untrimmed engines).
  /// Resolution counters land on the round that RESOLVED the stream —
  /// the next scan of that partition — not the round that started it.
  std::uint32_t trims_started = 0;
  std::uint32_t trims_committed = 0;
  std::uint32_t trims_cancelled = 0;
  std::uint32_t trims_failed = 0;
  /// Survivor edges accepted by streams STARTED this round.
  std::uint64_t stay_edges_written = 0;

  const RoleIo& role_io(io::Role role) const {
    return io[static_cast<std::size_t>(role)];
  }

  /// Fig. 6's modelled iowait ratio for this round: the share of the
  /// round's wall time the bottleneck device was busy (the engine is a
  /// single pipeline, so the busiest spindle is what it waits on).
  /// Clamped to [0, 1]; needs a time-scaled run (busy_ns is the scaled
  /// busy time) — at FASTBFS_TIME_SCALE=0 it reads 0.
  double modelled_iowait() const {
    if (seconds <= 0.0) return 0.0;
    return std::min(
        1.0, static_cast<double>(max_device_busy_ns) * 1e-9 / seconds);
  }
};

}  // namespace fbfs::metrics
