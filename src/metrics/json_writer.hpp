// Hand-rolled JSON writer: flat sections of key/value pairs are all the
// structure the bench reports and RunStats emitters need, and the tree
// stays free of third-party deps. Hoisted from bench/json_writer.hpp so
// metrics::RunStats can emit the same reports the benches upload
// (bench/json_writer.hpp now aliases this).
#pragma once

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>

namespace fbfs::metrics {

class Json {
 public:
  void number(const std::string& key, double v) {
    std::ostringstream os;
    os << std::setprecision(6) << v;
    field(key, os.str());
  }
  void integer(const std::string& key, std::uint64_t v) {
    field(key, std::to_string(v));
  }
  void text(const std::string& key, const std::string& v) {
    field(key, "\"" + v + "\"");
  }
  void open(const std::string& key) {
    indent();
    out_ << "\"" << key << "\": {\n";
    ++depth_;
    first_ = true;
  }
  void close() {
    --depth_;
    out_ << "\n";
    for (int i = 0; i <= depth_; ++i) out_ << "  ";
    out_ << "}";
    first_ = false;
  }
  std::string str() const { return "{\n" + out_.str() + "\n}\n"; }

 private:
  void field(const std::string& key, const std::string& value) {
    indent();
    out_ << "\"" << key << "\": " << value;
    first_ = false;
  }
  void indent() {
    if (!first_) out_ << ",\n";
    for (int i = 0; i <= depth_; ++i) out_ << "  ";
  }

  std::ostringstream out_;
  int depth_ = 0;
  bool first_ = true;
};

}  // namespace fbfs::metrics
