#include "metrics/latency_histogram.hpp"

#include <cstdio>

namespace fbfs::metrics {

std::string format_ns(std::uint64_t ns) {
  char buf[32];
  const double v = static_cast<double>(ns);
  if (ns < 1'000) {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  } else if (ns < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", v / 1e3);
  } else if (ns < 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fms", v / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", v / 1e9);
  }
  return buf;
}

std::string LatencyHistogram::summary() const {
  if (count_ == 0) return "n=0";
  return "n=" + std::to_string(count_) +
         " avg=" + format_ns(static_cast<std::uint64_t>(mean())) +
         " p50=" + format_ns(percentile(0.5)) +
         " p95=" + format_ns(percentile(0.95)) + " max=" + format_ns(max_);
}

std::size_t thread_ordinal() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ShardedHistogram::ShardedHistogram(std::size_t shards) {
  const std::size_t n = std::clamp<std::size_t>(round_up_pow2(shards), 1, 256);
  mask_ = n - 1;
  shards_ = std::make_unique<Shard[]>(n);
}

LatencyHistogram ShardedHistogram::snapshot() const {
  LatencyHistogram out;
  for (std::size_t i = 0; i <= mask_; ++i) {
    const Shard& s = shards_[i];
    for (std::size_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
      out.buckets_[b] += s.buckets[b].load(kRelaxed);
    }
    out.count_ += s.count.load(kRelaxed);
    out.sum_ += s.sum.load(kRelaxed);
    out.min_ = std::min(out.min_, s.min.load(kRelaxed));
    out.max_ = std::max(out.max_, s.max.load(kRelaxed));
  }
  return out;
}

LatencyHistogram ShardedHistogram::drain() {
  LatencyHistogram out;
  for (std::size_t i = 0; i <= mask_; ++i) {
    Shard& s = shards_[i];
    for (std::size_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
      out.buckets_[b] += s.buckets[b].exchange(0, kRelaxed);
    }
    out.count_ += s.count.exchange(0, kRelaxed);
    out.sum_ += s.sum.exchange(0, kRelaxed);
    out.min_ = std::min(
        out.min_,
        s.min.exchange(std::numeric_limits<std::uint64_t>::max(), kRelaxed));
    out.max_ = std::max(out.max_, s.max.exchange(0, kRelaxed));
  }
  return out;
}

}  // namespace fbfs::metrics
