// LatencyHistogram: log2-bucketed latency accounting, exactly mergeable.
//
// The shape is elbencho's telemetry (LatencyHistogram.h): a fixed array
// of power-of-two buckets plus exact count/sum/min/max, so merging two
// histograms loses nothing — merge(a, b) has exactly the counters a
// serial recording of both streams would have (DESIGN-style invariant
// the metrics tests pin). Percentiles are estimated from the bucket
// walk and are monotone in p by construction.
//
// Hot paths never touch a plain LatencyHistogram concurrently. They
// record through a ShardedHistogram: per-thread shards of relaxed
// atomics, zero locks, merged into a plain histogram at phase
// boundaries (Collector::end_iteration). Relaxed fetch_add keeps the
// totals exact; the merge point runs after the recording threads have
// been joined, which is what makes the drained snapshot a consistent
// histogram and not a torn one.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>

#include "common/check.hpp"

namespace fbfs::metrics {

class ShardedHistogram;

class LatencyHistogram {
 public:
  /// bucket_of(v) = bit_width(v): bucket 0 holds exactly {0}, bucket b
  /// holds [2^(b-1), 2^b). 65 buckets cover all of uint64.
  static constexpr std::size_t kNumBuckets = 65;

  static std::size_t bucket_of(std::uint64_t v) {
    return static_cast<std::size_t>(std::bit_width(v));
  }

  /// Largest value bucket b holds (inclusive).
  static std::uint64_t bucket_upper(std::size_t b) {
    if (b == 0) return 0;
    if (b >= 64) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << b) - 1;
  }

  void record(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  /// Exact: count/sum/min/max and every bucket of the merged histogram
  /// equal those of one histogram fed both recording streams.
  void merge(const LatencyHistogram& other) {
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      buckets_[b] += other.buckets_[b];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t bucket_count(std::size_t b) const { return buckets_[b]; }
  bool empty() const { return count_ == 0; }

  double mean() const {
    return count_ == 0
               ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Estimated p-quantile (p in [0, 1]): the inclusive upper bound of
  /// the bucket holding the ceil(p * count)-th smallest sample, clamped
  /// into [min, max]. Monotone in p (the rank, the bucket index, the
  /// upper bound, and the clamp are each monotone); exact whenever the
  /// target bucket holds a single distinct value (so percentile(1) ==
  /// max and single-sample histograms are exact at every p).
  std::uint64_t percentile(double p) const {
    if (count_ == 0) return 0;
    const double scaled = std::ceil(p * static_cast<double>(count_));
    const std::uint64_t rank = std::clamp<std::uint64_t>(
        scaled <= 0.0 ? 0 : static_cast<std::uint64_t>(scaled), 1, count_);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      seen += buckets_[b];
      if (seen >= rank) {
        return std::clamp(bucket_upper(b), min_, max_);
      }
    }
    return max_;
  }

  /// "n=12 avg=1.2ms p50=1.0ms p95=2.1ms max=4.0ms" (for table cells
  /// and log lines). Empty histograms render as "n=0".
  std::string summary() const;

  void reset() { *this = LatencyHistogram{}; }

 private:
  friend class ShardedHistogram;

  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

/// "1.2us" / "3.4ms" / "5.6s" for a nanosecond quantity.
std::string format_ns(std::uint64_t ns);

/// Stable small ordinal for the calling thread (assigned on first use,
/// process-wide). Shard selection for every ShardedHistogram.
std::size_t thread_ordinal();

/// The hot-path recorder: shard_count() cache-line-sized shards of
/// relaxed atomics. record() is wait-free apart from the min/max CAS
/// loops and takes no lock; threads land on shards by thread_ordinal(),
/// so with shards >= recording threads there is no sharing at all (and
/// a collision only costs contention, never accuracy — fetch_add is
/// exact regardless).
class ShardedHistogram {
 public:
  /// `shards` is rounded up to a power of two and clamped to [1, 256].
  explicit ShardedHistogram(std::size_t shards = 16);

  std::size_t shard_count() const { return mask_ + 1; }

  void record(std::uint64_t v) {
    Shard& s = shards_[thread_ordinal() & mask_];
    s.buckets[LatencyHistogram::bucket_of(v)].fetch_add(1, kRelaxed);
    s.count.fetch_add(1, kRelaxed);
    s.sum.fetch_add(v, kRelaxed);
    atomic_min(s.min, v);
    atomic_max(s.max, v);
  }

  /// Merged view of every shard. Exact when the recording threads have
  /// quiesced (the engines call this at phase boundaries, after joins);
  /// under concurrent recording it is a consistent-enough live view for
  /// the sampler, not an invariant-bearing snapshot.
  LatencyHistogram snapshot() const;

  /// snapshot() + reset of every shard. Same quiescence caveat.
  LatencyHistogram drain();

 private:
  static constexpr std::memory_order kRelaxed = std::memory_order_relaxed;

  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, LatencyHistogram::kNumBuckets>
        buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{std::numeric_limits<std::uint64_t>::max()};
    std::atomic<std::uint64_t> max{0};
  };

  static void atomic_min(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
    std::uint64_t cur = slot.load(kRelaxed);
    while (v < cur && !slot.compare_exchange_weak(cur, v, kRelaxed)) {
    }
  }
  static void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
    std::uint64_t cur = slot.load(kRelaxed);
    while (v > cur && !slot.compare_exchange_weak(cur, v, kRelaxed)) {
    }
  }

  std::size_t mask_ = 0;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace fbfs::metrics
