// LiveOps: monotone run-wide counters the hot paths bump as they go —
// elbencho's LiveOps.h shape. Unlike RunStats (which materialises at
// iteration boundaries), these move WHILE a phase runs, so the optional
// sampler thread can log live rate lines mid-round. All relaxed
// atomics: exact totals, no ordering obligations, no locks.
#pragma once

#include <atomic>
#include <cstdint>

namespace fbfs::metrics {

struct LiveOpsSnapshot {
  std::uint64_t edges_scanned = 0;
  std::uint64_t edges_probed = 0;     // bottom-up in-edges that survived the
                                      // claimed short-circuit and probed the
                                      // frontier (top-down scans count whole)
  std::uint64_t updates_emitted = 0;  // updates program.scatter produced
  std::uint64_t updates_sieved = 0;   // updates dropped before the shuffle
                                      // writers: scatter declined, or the
                                      // staging-buffer sieve collapsed them
                                      // onto an earlier same-dst update
  std::uint64_t partitions_scattered = 0;
  std::uint64_t partitions_skipped = 0;
  std::uint64_t iterations = 0;
  std::uint64_t bottomup_rounds = 0;   // core direction strategy
  std::uint64_t queries_converged = 0;  // batched (masked) runs: queries
                                        // whose traversal has finished
};

class LiveOps {
 public:
  void add_edges_scanned(std::uint64_t n) { edges_scanned_.fetch_add(n, kR); }
  void add_edges_probed(std::uint64_t n) { edges_probed_.fetch_add(n, kR); }
  void add_updates(std::uint64_t emitted, std::uint64_t sieved) {
    updates_emitted_.fetch_add(emitted, kR);
    updates_sieved_.fetch_add(sieved, kR);
  }
  void add_partition_scattered() { partitions_scattered_.fetch_add(1, kR); }
  void add_partition_skipped() { partitions_skipped_.fetch_add(1, kR); }
  void add_iteration() { iterations_.fetch_add(1, kR); }
  void add_bottomup_round() { bottomup_rounds_.fetch_add(1, kR); }
  /// Monotone high-water set (not an add): the engine re-derives the
  /// converged-query count each round, and a sampler must never see it
  /// go backwards.
  void set_queries_converged(std::uint64_t n) {
    std::uint64_t cur = queries_converged_.load(kR);
    while (n > cur && !queries_converged_.compare_exchange_weak(cur, n, kR)) {
    }
  }

  LiveOpsSnapshot snapshot() const {
    LiveOpsSnapshot s;
    s.edges_scanned = edges_scanned_.load(kR);
    s.edges_probed = edges_probed_.load(kR);
    s.updates_emitted = updates_emitted_.load(kR);
    s.updates_sieved = updates_sieved_.load(kR);
    s.partitions_scattered = partitions_scattered_.load(kR);
    s.partitions_skipped = partitions_skipped_.load(kR);
    s.iterations = iterations_.load(kR);
    s.bottomup_rounds = bottomup_rounds_.load(kR);
    s.queries_converged = queries_converged_.load(kR);
    return s;
  }

 private:
  static constexpr std::memory_order kR = std::memory_order_relaxed;

  std::atomic<std::uint64_t> edges_scanned_{0};
  std::atomic<std::uint64_t> edges_probed_{0};
  std::atomic<std::uint64_t> updates_emitted_{0};
  std::atomic<std::uint64_t> updates_sieved_{0};
  std::atomic<std::uint64_t> partitions_scattered_{0};
  std::atomic<std::uint64_t> partitions_skipped_{0};
  std::atomic<std::uint64_t> iterations_{0};
  std::atomic<std::uint64_t> bottomup_rounds_{0};
  std::atomic<std::uint64_t> queries_converged_{0};
};

}  // namespace fbfs::metrics
