#include "metrics/run_stats.hpp"

#include <algorithm>

#include "metrics/table.hpp"

namespace fbfs::metrics {

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kScatter:
      return "scatter";
    case Phase::kShuffleFlush:
      return "shuffle-flush";
    case Phase::kGather:
      return "gather";
    case Phase::kApply:
      return "apply";
    case Phase::kTrimResolve:
      return "trim-resolve";
  }
  return "?";
}

std::uint64_t RunStats::bytes_read(io::Role role) const {
  std::uint64_t total = 0;
  for (const auto& it : iterations) total += it.stats.role_io(role).bytes_read;
  return total;
}

std::uint64_t RunStats::bytes_written(io::Role role) const {
  std::uint64_t total = 0;
  for (const auto& it : iterations) {
    total += it.stats.role_io(role).bytes_written;
  }
  return total;
}

std::uint64_t RunStats::device_bytes_read() const {
  std::uint64_t total = 0;
  for (const auto& it : iterations) total += it.stats.device_bytes_read;
  return total;
}

std::uint64_t RunStats::device_bytes_written() const {
  std::uint64_t total = 0;
  for (const auto& it : iterations) total += it.stats.device_bytes_written;
  return total;
}

std::uint64_t RunStats::updates_emitted() const {
  std::uint64_t total = 0;
  for (const auto& it : iterations) total += it.stats.updates_emitted;
  return total;
}

std::uint64_t RunStats::updates_sieved() const {
  std::uint64_t total = 0;
  for (const auto& it : iterations) total += it.stats.updates_sieved;
  return total;
}

std::uint64_t RunStats::edges_scanned() const {
  std::uint64_t total = 0;
  for (const auto& it : iterations) total += it.stats.edges_scanned;
  return total;
}

std::uint64_t RunStats::edges_probed() const {
  std::uint64_t total = 0;
  for (const auto& it : iterations) total += it.stats.edges_probed;
  return total;
}

std::uint32_t RunStats::bottomup_rounds() const {
  std::uint32_t total = 0;
  for (const auto& it : iterations) total += it.stats.bottomup ? 1 : 0;
  return total;
}

std::uint64_t RunStats::edge_bytes_skipped() const {
  std::uint64_t total = 0;
  for (const auto& it : iterations) total += it.stats.edge_bytes_skipped;
  return total;
}

std::array<std::uint64_t, 3> RunStats::update_codec_bytes() const {
  std::array<std::uint64_t, 3> total{};
  for (const auto& it : iterations) {
    for (std::size_t f = 0; f < total.size(); ++f) {
      total[f] += it.stats.update_codec_bytes[f];
    }
  }
  return total;
}

double RunStats::modelled_iowait() const {
  double busy = 0.0;
  double wall = 0.0;
  for (const auto& it : iterations) {
    busy += static_cast<double>(it.stats.max_device_busy_ns) * 1e-9;
    wall += it.stats.seconds;
  }
  if (wall <= 0.0) return 0.0;
  return std::min(1.0, busy / wall);
}

LatencyHistogram RunStats::phase_total(Phase p) const {
  LatencyHistogram total;
  for (const auto& it : iterations) total.merge(it.phase_hist(p));
  return total;
}

void RunStats::print(std::ostream& os) const {
  os << "run" << (label.empty() ? "" : " " + label) << ": "
     << iterations.size() << " iterations, "
     << Table::count(ops.edges_scanned) << " edges scanned, "
     << Table::count(ops.updates_emitted) << " updates ("
     << Table::count(ops.updates_sieved) << " sieved), "
     << Table::seconds(wall_seconds) << "\n";
  // The two batch columns ("qact" live queries, "skip rd" bytes the
  // density-aware bottom-up reader never read) only render when a row
  // used them — single-query runs keep the familiar 16-column table.
  bool batched = false;
  for (const auto& it : iterations) {
    batched |= it.stats.queries_active > 0 ||
               it.stats.edge_bytes_skipped > 0;
  }
  std::vector<std::string> header = {
      "iter", "dir", "scat", "skip", "updates", "sieved", "active", "sec",
      "edges rd", "upd wr", "u raw", "u bmp", "u vint", "stay wr", "trims",
      "iowait"};
  if (batched) {
    header.insert(header.begin() + 7, "qact");
    header.insert(header.begin() + 10, "skip rd");
  }
  Table table(header);
  for (const auto& it : iterations) {
    const IterationStats& s = it.stats;
    std::vector<std::string> row = {
        std::to_string(s.iteration), s.bottomup ? "bu" : "td",
        std::to_string(s.partitions_scattered),
        std::to_string(s.partitions_skipped), Table::count(s.updates_emitted),
        Table::count(s.updates_sieved), Table::count(s.activated),
        Table::seconds(s.seconds),
        Table::bytes(s.role_io(io::Role::kEdges).bytes_read +
                     s.role_io(io::Role::kStay).bytes_read),
        Table::bytes(s.role_io(io::Role::kUpdates).bytes_written),
        Table::bytes(s.update_codec_bytes[0]),
        Table::bytes(s.update_codec_bytes[1]),
        Table::bytes(s.update_codec_bytes[2]),
        Table::bytes(s.role_io(io::Role::kStay).bytes_written),
        std::to_string(s.trims_started), Table::percent(s.modelled_iowait())};
    if (batched) {
      row.insert(row.begin() + 7, std::to_string(s.queries_active));
      row.insert(row.begin() + 10, Table::bytes(s.edge_bytes_skipped));
    }
    table.add_row(row);
  }
  table.print(os);
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    const LatencyHistogram hist = phase_total(static_cast<Phase>(p));
    if (hist.empty()) continue;
    os << "  phase " << to_string(static_cast<Phase>(p)) << ": "
       << hist.summary() << "\n";
  }
}

namespace {

void write_histogram(Json& json, const LatencyHistogram& hist) {
  json.integer("count", hist.count());
  json.integer("sum_ns", hist.sum());
  json.integer("min_ns", hist.min());
  json.integer("max_ns", hist.max());
  json.integer("p50_ns", hist.percentile(0.5));
  json.integer("p95_ns", hist.percentile(0.95));
  json.integer("p99_ns", hist.percentile(0.99));
}

}  // namespace

void RunStats::write_json(Json& json) const {
  json.integer("iterations", iterations.size());
  json.number("wall_seconds", wall_seconds);
  json.integer("edges_scanned", ops.edges_scanned);
  json.integer("edges_probed", ops.edges_probed);
  json.integer("updates_emitted", ops.updates_emitted);
  json.integer("updates_sieved", ops.updates_sieved);
  json.integer("bottomup_rounds", bottomup_rounds());
  if (edge_bytes_skipped() > 0) {
    json.integer("edge_bytes_skipped", edge_bytes_skipped());
  }
  if (ops.queries_converged > 0) {
    json.integer("queries_converged", ops.queries_converged);
  }
  json.integer("partitions_scattered", ops.partitions_scattered);
  json.integer("partitions_skipped", ops.partitions_skipped);
  json.integer("bytes_read", device_bytes_read());
  json.integer("bytes_written", device_bytes_written());
  for (std::size_t r = 0; r < io::kNumRoles; ++r) {
    const io::Role role = static_cast<io::Role>(r);
    json.integer(std::string(io::to_string(role)) + "_bytes_read",
                 bytes_read(role));
    json.integer(std::string(io::to_string(role)) + "_bytes_written",
                 bytes_written(role));
  }
  {
    const std::array<std::uint64_t, 3> codec = update_codec_bytes();
    json.integer("update_bytes_raw", codec[0]);
    json.integer("update_bytes_bitmap", codec[1]);
    json.integer("update_bytes_varint", codec[2]);
  }
  json.number("modelled_iowait", modelled_iowait());
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    const LatencyHistogram hist = phase_total(static_cast<Phase>(p));
    if (hist.empty()) continue;
    json.open(std::string("phase_") + to_string(static_cast<Phase>(p)));
    write_histogram(json, hist);
    json.close();
  }
  for (const auto& it : iterations) {
    const IterationStats& s = it.stats;
    json.open("iter" + std::to_string(s.iteration));
    json.text("direction", s.bottomup ? "bottomup" : "topdown");
    json.integer("edges_scanned", s.edges_scanned);
    json.integer("edges_probed", s.edges_probed);
    if (s.edge_bytes_skipped > 0) {
      json.integer("edge_bytes_skipped", s.edge_bytes_skipped);
    }
    if (s.queries_active > 0) {
      json.integer("queries_active", s.queries_active);
      json.integer("frontier_mask_bits", s.frontier_mask_bits);
    }
    if (s.modelled_topdown_bytes > 0.0 || s.modelled_bottomup_bytes > 0.0) {
      json.number("modelled_topdown_bytes", s.modelled_topdown_bytes);
      json.number("modelled_bottomup_bytes", s.modelled_bottomup_bytes);
    }
    json.integer("updates_emitted", s.updates_emitted);
    json.integer("updates_sieved", s.updates_sieved);
    json.integer("update_bytes_raw", s.update_codec_bytes[0]);
    json.integer("update_bytes_bitmap", s.update_codec_bytes[1]);
    json.integer("update_bytes_varint", s.update_codec_bytes[2]);
    json.integer("activated", s.activated);
    json.number("seconds", s.seconds);
    json.integer("edge_input_bytes_read",
                 s.role_io(io::Role::kEdges).bytes_read +
                     s.role_io(io::Role::kStay).bytes_read);
    json.integer("update_bytes_written",
                 s.role_io(io::Role::kUpdates).bytes_written);
    json.integer("stay_bytes_written",
                 s.role_io(io::Role::kStay).bytes_written);
    json.integer("bytes_read", s.device_bytes_read);
    json.integer("bytes_written", s.device_bytes_written);
    json.integer("busy_ns", s.device_busy_ns);
    json.integer("max_device_busy_ns", s.max_device_busy_ns);
    json.number("modelled_iowait", s.modelled_iowait());
    if (s.trims_started + s.trims_committed + s.trims_cancelled +
            s.trims_failed >
        0) {
      json.integer("trims_started", s.trims_started);
      json.integer("trims_committed", s.trims_committed);
      json.integer("trims_cancelled", s.trims_cancelled);
      json.integer("trims_failed", s.trims_failed);
      json.integer("stay_edges_written", s.stay_edges_written);
    }
    json.close();
  }
}

}  // namespace fbfs::metrics
