// RunStats: one run's full observability record — per-iteration
// IterationStats rows, per-iteration x per-phase latency histograms,
// the final LiveOps counters — plus the two renderers (aligned text
// table, Json sections) the benches report through instead of
// hand-rolling stats.
#pragma once

#include <array>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "metrics/iteration_stats.hpp"
#include "metrics/json_writer.hpp"
#include "metrics/latency_histogram.hpp"
#include "metrics/live_ops.hpp"

namespace fbfs::metrics {

/// The engine phases histograms are kept for. kScatter times one
/// partition's edge scan (state load included); kShuffleFlush times
/// each update fan-out flush (one per scatter batch or parallel
/// chunk); kGather times one partition's update fold (update read
/// included); kApply one partition's apply pass; kTrimResolve one
/// pending stay-stream resolution (core only).
enum class Phase : std::size_t {
  kScatter = 0,
  kShuffleFlush = 1,
  kGather = 2,
  kApply = 3,
  kTrimResolve = 4,
};
inline constexpr std::size_t kNumPhases = 5;

const char* to_string(Phase phase);

/// One iteration's stats row plus its phase histograms (drained from
/// the Collector's shards at the iteration boundary).
struct IterationMetrics {
  IterationStats stats;
  std::array<LatencyHistogram, kNumPhases> phase{};

  const LatencyHistogram& phase_hist(Phase p) const {
    return phase[static_cast<std::size_t>(p)];
  }
};

struct RunStats {
  std::string label;  // "xstream bfs", "fastbfs bfs", ...
  std::vector<IterationMetrics> iterations;
  LiveOpsSnapshot ops{};      // final live counters
  double wall_seconds = 0.0;  // Collector construction -> last iteration

  // ---- aggregates over the rows.
  std::uint64_t bytes_read(io::Role role) const;
  std::uint64_t bytes_written(io::Role role) const;
  /// Distinct-device totals (each device counted once per round).
  std::uint64_t device_bytes_read() const;
  std::uint64_t device_bytes_written() const;
  std::uint64_t device_bytes_moved() const {
    return device_bytes_read() + device_bytes_written();
  }
  std::uint64_t updates_emitted() const;
  std::uint64_t updates_sieved() const;
  /// Edge records the scatter/pull phases actually read, summed over
  /// the rows (top-down scans + bottom-up in-edge scans).
  std::uint64_t edges_scanned() const;
  /// The bottom-up subset that probed the frontier bitmap (top-down
  /// rounds count their whole scan).
  std::uint64_t edges_probed() const;
  /// Rounds the direction strategy ran bottom-up.
  std::uint32_t bottomup_rounds() const;
  /// Transposed-view bytes bottom-up rounds never read because whole
  /// blocks' dst ranges were already claimed (the frontier-density-
  /// aware reader), summed over the rows.
  std::uint64_t edge_bytes_skipped() const;
  /// Update-file bytes written over the run, bucketed by on-disk codec
  /// format: [raw, bitmap, varint] (io::codec::Format order).
  std::array<std::uint64_t, 3> update_codec_bytes() const;
  /// Busy-time-weighted mean of the per-iteration modelled iowait:
  /// sum(max_device_busy) / sum(round seconds), clamped to [0, 1].
  double modelled_iowait() const;
  /// All iterations' histograms of one phase, merged (exactly).
  LatencyHistogram phase_total(Phase p) const;

  /// Aligned per-iteration table + per-phase histogram summaries.
  void print(std::ostream& os = std::cout) const;

  /// Emits the run under the currently open JSON section: totals, the
  /// per-phase histogram digests, and one "iterN" subsection per round
  /// (role bytes, iowait, trim counters).
  void write_json(Json& json) const;
};

}  // namespace fbfs::metrics
