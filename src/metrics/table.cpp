#include "metrics/table.hpp"

#include <cstdio>
#include <fstream>

#include "common/check.hpp"

namespace fbfs::metrics {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  FB_CHECK_MSG(cells.size() == headers_.size(),
               "table row has " << cells.size() << " cells, expected "
                                << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  ";
      const std::size_t pad = widths[c] - row[c].size();
      if (c == 0) {
        os << row[c] << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << row[c];
      }
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv_file(const std::string& path) const {
  std::ofstream out(path);
  FB_CHECK_MSG(out.good(), "cannot write " << path);
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ",";
      out << row[c];
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::bytes(std::uint64_t v) {
  char buf[32];
  const double d = static_cast<double>(v);
  if (v < (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(v));
  } else if (v < (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", d / (1ull << 10));
  } else if (v < (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", d / (1ull << 20));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", d / (1ull << 30));
  }
  return buf;
}

std::string Table::percent(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", ratio * 100.0);
  return buf;
}

std::string Table::seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f s", s);
  return buf;
}

std::string Table::count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i > 0 && (digits.size() - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

void print_experiment_header(const std::string& title,
                             const std::string& claim) {
  std::cout << "==== " << title << " ====\n"
            << "paper claim: " << claim << "\n\n";
}

}  // namespace fbfs::metrics
