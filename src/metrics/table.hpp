// Aligned text tables for stdout reports, plus the shared experiment
// header banner. The formatting statics (bytes / percent / seconds) are
// what keep every bench main printing the same units.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

namespace fbfs::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Right-aligns every column but the first to its widest cell.
  void print(std::ostream& os = std::cout) const;

  /// Plain comma-separated dump (header row first). Aborts (FB_CHECK)
  /// when the file cannot be written.
  void write_csv_file(const std::string& path) const;

  static std::string bytes(std::uint64_t v);    // "12.3 MiB"
  static std::string percent(double ratio);     // 0.41 -> "41.0%"
  static std::string seconds(double s);         // "1.234 s"
  static std::string count(std::uint64_t v);    // grouped: "1,234,567"

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Banner every figure bench prints first: the figure's title and the
/// paper's claim it reproduces.
void print_experiment_header(const std::string& title,
                             const std::string& claim);

}  // namespace fbfs::metrics
