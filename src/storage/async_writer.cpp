#include "storage/async_writer.hpp"

#include <atomic>
#include <chrono>
#include <cstring>

#include "common/check.hpp"
#include "common/log.hpp"

namespace fbfs::io {

// One producer thread drives a given stream's append()/finish();
// cancel(), wait_complete(), state() may come from any thread. The
// stream mutex coordinates the producer with cancellation and carries
// the terminal-state condvar.
struct AsyncWriter::Stream {
  StreamId id = 0;

  File* file = nullptr;           // direct target, or owned.get()
  std::unique_ptr<File> owned;    // staged .wip file
  Device* device = nullptr;       // staged only
  std::string target;             // staged only
  std::string wip;                // staged only
  bool staged = false;

  mutable std::mutex mutex;
  std::condition_variable terminal_cv;
  int fill = -1;                  // producer's partially-filled pool buffer
  std::byte* fill_ptr = nullptr;  // its stable address (guarded by `mutex`)
  std::size_t fill_length = 0;
  std::uint64_t accepted = 0;
  // Set (under `mutex`) by the writer thread the instant it starts the
  // commit sequence for a finish item. From then on cancel() is a
  // no-op: the stream WILL reach completed (or failed), and the
  // reported terminal state always matches what landed on disk. Without
  // this claim a cancel racing the in-flight rename would report
  // `cancelled` for a stream whose commit already replaced the target.
  bool committing = false;

  std::atomic<StreamState> state{StreamState::active};
  std::atomic<bool> acked{false};  // writer thread finished with it
};

// Pool buffers are aligned for O_DIRECT so full-buffer flushes on a
// real-backend device go down the direct path without bouncing; on the
// modelled backend alignment is simply invisible.
constexpr std::size_t kPoolAlignment = 4096;

AsyncWriter::AsyncWriter(std::size_t buffer_bytes, std::size_t pool_buffers)
    : buffer_bytes_(buffer_bytes == 0 ? 1 : buffer_bytes),
      base_buffers_(pool_buffers),
      work_(pool_buffers * 2 + 64) {
  FB_CHECK_MSG(pool_buffers > 0, "AsyncWriter needs at least one buffer");
  pool_.reserve(pool_buffers);
  free_buffers_.reserve(pool_buffers);
  for (std::size_t i = 0; i < pool_buffers; ++i) {
    pool_.push_back(AlignedBuffer::allocate(buffer_bytes_, kPoolAlignment));
    free_buffers_.push_back(static_cast<int>(i));
  }
  allocated_ = pool_buffers;
  writer_ = std::thread([this] { writer_loop(); });
}

AsyncWriter::~AsyncWriter() {
  // Abandon whatever is still running; staged targets stay untouched.
  std::vector<StreamId> ids;
  {
    std::lock_guard<std::mutex> lock(streams_mutex_);
    for (const auto& [id, stream] : streams_) ids.push_back(id);
  }
  for (const StreamId id : ids) cancel(id);
  work_.push(WorkItem{WorkItem::Kind::stop, 0, -1, 0});
  writer_.join();
}

AsyncWriter::StreamId AsyncWriter::begin(File* file) {
  FB_CHECK(file != nullptr);
  auto stream = std::make_shared<Stream>();
  stream->file = file;
  stream->fill = allocate_stream_buffer();
  stream->fill_ptr = buffer_ptr(stream->fill);
  std::lock_guard<std::mutex> lock(streams_mutex_);
  stream->id = next_id_++;
  streams_.emplace(stream->id, stream);
  return stream->id;
}

AsyncWriter::StreamId AsyncWriter::begin_staged(Device& device,
                                                const std::string& target) {
  auto stream = std::make_shared<Stream>();
  stream->staged = true;
  stream->device = &device;
  stream->target = target;
  stream->wip = target + ".wip";
  stream->owned = device.open(stream->wip, /*truncate=*/true);
  stream->file = stream->owned.get();
  stream->fill = allocate_stream_buffer();
  stream->fill_ptr = buffer_ptr(stream->fill);
  std::lock_guard<std::mutex> lock(streams_mutex_);
  stream->id = next_id_++;
  streams_.emplace(stream->id, stream);
  return stream->id;
}

std::shared_ptr<AsyncWriter::Stream> AsyncWriter::find(StreamId id) const {
  std::lock_guard<std::mutex> lock(streams_mutex_);
  const auto it = streams_.find(id);
  FB_CHECK_MSG(it != streams_.end(), "unknown AsyncWriter stream " << id);
  return it->second;
}

std::shared_ptr<AsyncWriter::Stream> AsyncWriter::find_or_null(
    StreamId id) const {
  std::lock_guard<std::mutex> lock(streams_mutex_);
  const auto it = streams_.find(id);
  return it == streams_.end() ? nullptr : it->second;
}

// The lock only guards `pool_` the vector — allocate_stream_buffer()
// may relocate its storage concurrently. The byte array a slot owns
// never moves (and is never reset) while that slot is in flight, so
// the returned pointer stays valid until the buffer is released.
std::byte* AsyncWriter::buffer_ptr(int index) const {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  return pool_[index].data();
}

int AsyncWriter::acquire_buffer() {
  std::unique_lock<std::mutex> lock(pool_mutex_);
  pool_available_.wait(lock, [&] { return !free_buffers_.empty(); });
  const int index = free_buffers_.back();
  free_buffers_.pop_back();
  return index;
}

/// Grows the pool by the new stream's budgeted fill buffer.
int AsyncWriter::allocate_stream_buffer() {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  ++live_streams_;
  ++allocated_;
  int index;
  if (!retired_slots_.empty()) {
    index = retired_slots_.back();
    retired_slots_.pop_back();
    pool_[index] = AlignedBuffer::allocate(buffer_bytes_, kPoolAlignment);
  } else {
    index = static_cast<int>(pool_.size());
    pool_.push_back(AlignedBuffer::allocate(buffer_bytes_, kPoolAlignment));
  }
  return index;
}

/// Frees excess buffers once streams have been released, so the pool
/// settles back to `base_buffers_` when idle.
void AsyncWriter::trim_pool_locked() {
  while (allocated_ > base_buffers_ + live_streams_ &&
         !free_buffers_.empty()) {
    const int index = free_buffers_.back();
    free_buffers_.pop_back();
    pool_[index] = AlignedBuffer{};
    retired_slots_.push_back(index);
    --allocated_;
  }
}

void AsyncWriter::release_buffer(int index) {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    free_buffers_.push_back(index);
    trim_pool_locked();
  }
  pool_available_.notify_one();
}

void AsyncWriter::retire_stream_buffer() {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  FB_CHECK_GT(live_streams_, 0u);
  --live_streams_;
  trim_pool_locked();
}

bool AsyncWriter::append(StreamId id, std::span<const std::byte> data) {
  return append_raw(id, data.data(), data.size());
}

bool AsyncWriter::append_raw(StreamId id, const void* src,
                             std::size_t bytes) {
  const std::shared_ptr<Stream> stream = find(id);
  const auto* in = static_cast<const std::byte*>(src);
  while (bytes > 0) {
    if (stream->state.load(std::memory_order_acquire) !=
        StreamState::active) {
      return false;
    }
    int pending_push = -1;
    std::size_t pending_length = 0;
    {
      std::lock_guard<std::mutex> lock(stream->mutex);
      if (stream->state.load(std::memory_order_relaxed) !=
          StreamState::active) {
        return false;
      }
      if (stream->fill >= 0) {
        const std::size_t room = buffer_bytes_ - stream->fill_length;
        const std::size_t take = bytes < room ? bytes : room;
        std::memcpy(stream->fill_ptr + stream->fill_length, in, take);
        stream->fill_length += take;
        stream->accepted += take;
        in += take;
        bytes -= take;
        if (stream->fill_length == buffer_bytes_) {
          pending_push = stream->fill;
          pending_length = stream->fill_length;
          stream->fill = -1;
          stream->fill_ptr = nullptr;
          stream->fill_length = 0;
        }
      }
    }
    if (pending_push >= 0) {
      work_.push(WorkItem{WorkItem::Kind::data, id, pending_push,
                          pending_length});
      continue;
    }
    if (bytes == 0) break;
    // Need a fresh buffer. Acquire it outside the stream lock so a
    // cancel() is never stuck behind pool backpressure.
    const int buffer = acquire_buffer();
    std::byte* const buffer_data = buffer_ptr(buffer);
    std::lock_guard<std::mutex> lock(stream->mutex);
    if (stream->state.load(std::memory_order_relaxed) !=
        StreamState::active) {
      release_buffer(buffer);
      return false;
    }
    FB_CHECK_MSG(stream->fill < 0,
                 "concurrent producers on AsyncWriter stream " << id);
    stream->fill = buffer;
    stream->fill_ptr = buffer_data;
    stream->fill_length = 0;
  }
  return true;
}

void AsyncWriter::finish(StreamId id) {
  const std::shared_ptr<Stream> stream = find(id);
  int pending_push = -1;
  std::size_t pending_length = 0;
  {
    std::lock_guard<std::mutex> lock(stream->mutex);
    if (stream->state.load(std::memory_order_relaxed) !=
        StreamState::active) {
      return;
    }
    if (stream->fill >= 0) {
      pending_push = stream->fill;
      pending_length = stream->fill_length;
      stream->fill = -1;
      stream->fill_ptr = nullptr;
      stream->fill_length = 0;
    }
  }
  if (pending_push >= 0 && pending_length > 0) {
    work_.push(
        WorkItem{WorkItem::Kind::data, id, pending_push, pending_length});
  } else if (pending_push >= 0) {
    release_buffer(pending_push);
  }
  work_.push(WorkItem{WorkItem::Kind::finish, id, -1, 0});
}

void AsyncWriter::cancel(StreamId id) {
  const std::shared_ptr<Stream> stream = find(id);
  int reclaim = -1;
  {
    std::lock_guard<std::mutex> lock(stream->mutex);
    if (stream->state.load(std::memory_order_relaxed) !=
        StreamState::active) {
      return;
    }
    if (stream->committing) {
      // The writer thread already started the commit sequence; the
      // stream will turn completed (or failed) on its own. Cancelling
      // here would mislabel a commit that may already have renamed the
      // staged file onto its target.
      return;
    }
    stream->state.store(StreamState::cancelled, std::memory_order_release);
    reclaim = stream->fill;
    stream->fill = -1;
    stream->fill_ptr = nullptr;
    stream->fill_length = 0;
    stream->terminal_cv.notify_all();
  }
  if (reclaim >= 0) release_buffer(reclaim);
  // The writer thread acknowledges by cleaning up the stream's file.
  work_.push(WorkItem{WorkItem::Kind::cancel, id, -1, 0});
}

bool AsyncWriter::wait_complete(StreamId id, double timeout_seconds) {
  const std::shared_ptr<Stream> stream = find(id);
  std::unique_lock<std::mutex> lock(stream->mutex);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  stream->terminal_cv.wait_until(lock, deadline, [&] {
    return stream->state.load(std::memory_order_acquire) !=
           StreamState::active;
  });
  return stream->state.load(std::memory_order_acquire) ==
         StreamState::completed;
}

AsyncWriter::StreamState AsyncWriter::state(StreamId id) const {
  return find(id)->state.load(std::memory_order_acquire);
}

std::uint64_t AsyncWriter::bytes_accepted(StreamId id) const {
  const std::shared_ptr<Stream> stream = find(id);
  std::lock_guard<std::mutex> lock(stream->mutex);
  return stream->accepted;
}

void AsyncWriter::release(StreamId id) {
  const std::shared_ptr<Stream> stream = find(id);
  if (stream->state.load(std::memory_order_acquire) ==
      StreamState::active) {
    cancel(id);
  }
  // Wait for the writer thread's acknowledgement so the File (and any
  // .wip cleanup) is settled before the slot disappears.
  while (!stream->acked.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  {
    std::lock_guard<std::mutex> lock(streams_mutex_);
    streams_.erase(id);
  }
  retire_stream_buffer();
}

void AsyncWriter::finish_terminal(Stream& stream, StreamState state) {
  {
    std::lock_guard<std::mutex> lock(stream.mutex);
    StreamState expected = StreamState::active;
    stream.state.compare_exchange_strong(expected, state,
                                         std::memory_order_acq_rel);
    stream.terminal_cv.notify_all();
  }
  // Close and, unless committed, drop the staging file. The previous
  // committed `target` version is deliberately never touched here.
  if (stream.staged) {
    stream.owned.reset();
    if (stream.state.load(std::memory_order_acquire) !=
            StreamState::completed &&
        stream.device->exists(stream.wip)) {
      stream.device->remove(stream.wip);
    }
  }
  stream.acked.store(true, std::memory_order_release);
}

void AsyncWriter::writer_loop() {
  WorkItem item;
  while (work_.pop(item)) {
    if (item.kind == WorkItem::Kind::stop) break;
    // A stream acked from the data-fault path can be release()d by the
    // producer while later items for it still sit in the queue; those
    // stragglers only need their buffers returned to the pool.
    const std::shared_ptr<Stream> stream = find_or_null(item.id);
    if (!stream) {
      if (item.kind == WorkItem::Kind::data) release_buffer(item.buffer);
      continue;
    }

    switch (item.kind) {
      case WorkItem::Kind::data: {
        if (stream->state.load(std::memory_order_acquire) ==
            StreamState::active) {
          try {
            stream->file->append(buffer_ptr(item.buffer), item.length);
          } catch (const IoError& error) {
            FB_LOG_WARN << "async stream " << item.id
                        << " failed, auto-cancelling: " << error.what();
            finish_terminal(*stream, StreamState::failed);
          }
        }
        release_buffer(item.buffer);
        break;
      }
      case WorkItem::Kind::finish: {
        {
          // Claim the commit atomically against cancel(): once
          // `committing` is up, cancellation requests are no-ops and the
          // terminal state below is the truth about the target file.
          std::lock_guard<std::mutex> lock(stream->mutex);
          if (stream->state.load(std::memory_order_relaxed) !=
              StreamState::active) {
            break;  // lost to a cancel/fault; that path acknowledges
          }
          stream->committing = true;
        }
        try {
          stream->file->sync();
          if (stream->staged) {
            stream->owned.reset();  // close before rename
            stream->device->rename(stream->wip, stream->target);
          }
          finish_terminal(*stream, StreamState::completed);
        } catch (const IoError& error) {
          FB_LOG_WARN << "async stream " << item.id
                      << " failed at commit, auto-cancelling: "
                      << error.what();
          finish_terminal(*stream, StreamState::failed);
        }
        break;
      }
      case WorkItem::Kind::cancel: {
        // Acknowledge a producer-side cancel (unless a fault or commit
        // already settled the stream).
        if (!stream->acked.load(std::memory_order_acquire)) {
          finish_terminal(*stream, StreamState::cancelled);
        }
        break;
      }
      case WorkItem::Kind::stop:
        break;
    }
  }
}

}  // namespace fbfs::io
