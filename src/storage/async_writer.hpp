// AsyncWriter: the paper's dedicated stay-file writer thread (§II-C2).
//
// One background thread drains append chunks for any number of
// concurrent write streams through a private, bounded buffer pool (so
// stay writing can never eat the scatter path's memory budget).
//
// Stream life cycle and the contracts the engine leans on
// (DESIGN invariant 6):
//
//  * begin(file)            — stream into an already-open File, as-is.
//  * begin_staged(dev,name) — stream into "<name>.wip" on `dev`; only a
//    durable, complete finish() renames it onto `name`. Cancellation or
//    a write fault removes the .wip and NEVER touches the previous
//    `name` — which is exactly why a cancelled trim can fall back to
//    the old stay file (paper: "the previous input file is reused").
//  * append(id, bytes)      — copies into the pool; blocks only when
//    all pool buffers are in flight; returns false once the stream is
//    no longer active (cancelled / failed), so producers notice
//    degradation and stop paying for dead work.
//  * finish(id)             — marks the logical end; the writer flushes,
//    fdatasyncs, commits (staged rename), state -> completed. The
//    committed file is byte-identical to the logical append sequence.
//  * cancel(id)             — cooperative: producers see append() ==
//    false immediately; the writer thread discards queued chunks and
//    cleans up. Never blocks on the device.
//  * wait_complete(id, s)   — bounded wait (the engine's grace timeout);
//    true iff the stream committed.
//  * release(id)            — frees the slot; auto-cancels if active.
//
// A device write fault (IoError) fails only the stream it hit: the
// writer thread survives and sibling streams complete normally.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/queue.hpp"
#include "storage/device.hpp"

namespace fbfs::io {

class AsyncWriter {
 public:
  using StreamId = std::uint64_t;

  enum class StreamState {
    active,     // accepting appends (or finishing, not yet committed)
    completed,  // durable and committed; staged target renamed in place
    cancelled,  // abandoned by request; staged target untouched
    failed,     // abandoned by a device write fault; target untouched
  };

  /// `buffer_bytes` per buffer; `pool_buffers` buffers bound the data in
  /// flight to the writer thread (each live stream owns one extra fill
  /// buffer on top).
  AsyncWriter(std::size_t buffer_bytes, std::size_t pool_buffers);
  ~AsyncWriter();

  AsyncWriter(const AsyncWriter&) = delete;
  AsyncWriter& operator=(const AsyncWriter&) = delete;

  /// Streams into `file` (not owned; must outlive the stream's terminal
  /// state). No commit protocol: bytes land in the file as written.
  StreamId begin(File* file);

  /// Streams into `target + ".wip"` on `device`; finish() commits by
  /// atomic rename onto `target`. The previous `target` version (if
  /// any) survives cancellation and faults untouched.
  StreamId begin_staged(Device& device, const std::string& target);

  /// Copies `data` into the stream. Returns false (dropping the data)
  /// if the stream is no longer active.
  bool append(StreamId id, std::span<const std::byte> data);
  bool append_raw(StreamId id, const void* src, std::size_t bytes);

  /// No more appends; the writer commits asynchronously.
  void finish(StreamId id);

  /// Requests cancellation. No-op on a terminal stream, and no-op once
  /// the writer thread has started committing a finish(): the stream
  /// then still turns completed/failed, never cancelled, so the
  /// terminal state always tells the truth about the target file.
  void cancel(StreamId id);

  /// Waits up to `timeout_seconds` for a terminal state; true iff the
  /// stream committed (completed).
  bool wait_complete(StreamId id, double timeout_seconds);

  StreamState state(StreamId id) const;

  /// Bytes accepted by append() so far.
  std::uint64_t bytes_accepted(StreamId id) const;

  /// Forgets the stream. Auto-cancels and waits for the writer thread's
  /// acknowledgement if it is not yet terminal.
  void release(StreamId id);

  std::size_t buffer_bytes() const { return buffer_bytes_; }
  std::size_t pool_buffers() const { return base_buffers_; }

 private:
  struct Stream;

  struct WorkItem {
    enum class Kind { data, finish, cancel, stop };
    Kind kind = Kind::stop;
    StreamId id = 0;
    int buffer = -1;        // pool index for data items
    std::size_t length = 0; // valid bytes in the buffer
  };

  void writer_loop();
  int acquire_buffer();
  int allocate_stream_buffer();
  std::byte* buffer_ptr(int index) const;
  void release_buffer(int index);
  void retire_stream_buffer();
  void trim_pool_locked();
  std::shared_ptr<Stream> find(StreamId id) const;
  std::shared_ptr<Stream> find_or_null(StreamId id) const;
  void finish_terminal(Stream& stream, StreamState state);

  const std::size_t buffer_bytes_;
  const std::size_t base_buffers_;

  // Buffer pool. `base_buffers_` buffers bound the in-flight data; each
  // live stream owns one extra fill buffer (allocated at begin, retired
  // at release), so producers waiting for a replacement buffer always
  // sit behind in-flight work the writer thread is guaranteed to drain —
  // any number of concurrent streams stays deadlock-free. Buffers are
  // I/O-aligned so a real-backend device can take full-buffer flushes
  // through its O_DIRECT path without bouncing.
  std::vector<AlignedBuffer> pool_;
  std::vector<int> free_buffers_;
  std::vector<int> retired_slots_;
  std::size_t allocated_ = 0;
  std::size_t live_streams_ = 0;
  mutable std::mutex pool_mutex_;
  std::condition_variable pool_available_;

  // Stream registry.
  mutable std::mutex streams_mutex_;
  std::unordered_map<StreamId, std::shared_ptr<Stream>> streams_;
  StreamId next_id_ = 1;

  MpscQueue<WorkItem> work_;
  std::thread writer_;
};

}  // namespace fbfs::io
