#include "storage/codec.hpp"

namespace fbfs::io::codec {

Policy parse_policy(const std::string& name) {
  if (name == "raw") return Policy::kRaw;
  if (name == "bitmap") return Policy::kBitmap;
  if (name == "varint") return Policy::kVarint;
  if (name == "auto") return Policy::kAuto;
  FB_CHECK_MSG(false, "unknown update codec \"" << name
                                                << "\"; valid: auto | raw | "
                                                   "bitmap | varint");
  return Policy::kRaw;
}

const char* to_string(Policy policy) {
  switch (policy) {
    case Policy::kRaw:
      return "raw";
    case Policy::kBitmap:
      return "bitmap";
    case Policy::kVarint:
      return "varint";
    case Policy::kAuto:
      return "auto";
  }
  return "?";
}

const char* to_string(Format format) {
  switch (format) {
    case Format::kRaw:
      return "raw";
    case Format::kBitmap:
      return "bitmap";
    case Format::kVarint:
      return "varint";
  }
  return "?";
}

FileHeader probe(Device& device, const std::string& name) {
  auto src = open_stream_reader(device, name, ReaderOptions::plain(4096));
  return detail::read_header(*src, name);
}

}  // namespace fbfs::io::codec
