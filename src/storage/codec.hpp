// Update-stream codecs: the self-describing on-disk encodings behind
// every state/update/stay stream the engines write.
//
// Fig. 5 measured update files at 64-86% of all bytes written — the
// update stream, not edge input, dominates the streaming engines' I/O.
// Following the compression-and-sieve levers (PAPERS.md), every codec
// file starts with one fixed FileHeader naming its format, so readers
// never guess, and the payload is one of three encodings:
//
//   kRaw     the records verbatim — today's layout, the format-0
//            fallback every stream can always use (and the only format
//            for records without a `dst` field, i.e. state files);
//   kBitmap  one shared payload + a destination bitmap over the
//            stream's vertex range. Exact only when the caller proves
//            (a) every record's payload bytes are identical and (b) the
//            program's gather is idempotent, so collapsing duplicate
//            destinations cannot change a single state or activation —
//            BFS rounds (every update carries level r+1) are the
//            showcase: a dense round's update file shrinks from
//            8 bytes/update to range/8 bits total;
//   kVarint  records stable-sorted by destination, each encoded as a
//            varint delta from the previous destination plus its
//            payload bytes verbatim. Exact for EVERY program: the
//            engine contract (graph/program.hpp) already requires
//            gathers to be order-free exact folds, so delivering a
//            partition's updates in destination order is as legal as
//            any shuffle order. Multiplicity is preserved.
//
// CodecWriter picks the format at close() with an EXACT byte-cost
// model — no estimates: raw = n*sizeof(T); bitmap = payload +
// range/8 (when eligible); varint = the true sum of the sorted deltas'
// varint sizes + n*payload. Policy kAuto takes the cheapest (ties
// prefer the lower format id, raw first); a forced policy is honoured
// whenever the stream is eligible and degrades to raw otherwise, so
// forcing `bitmap` on a non-idempotent program is safe, never wrong.
//
// Writers buffer records in memory for the non-raw policies (the cost
// model wants the whole stream; at this repo's partition sizes that is
// the same order as the gather phase's in-memory update batch). Policy
// kRaw streams straight through a StreamWriter — the header goes first
// with sentinel counts and the reader derives the record count from the
// file size, which is what keeps core's async stay streaming path
// append-only.
//
// Readers come back through open_reader<T>() as the same type-erased
// RecordSource<T> the ReaderFactory hands out, built over
// open_stream_reader so prefetch mode keeps working underneath any
// format. Decoded delivery order: raw = append order, bitmap/varint =
// ascending destination.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <numeric>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/bitmap.hpp"
#include "common/check.hpp"
#include "storage/device.hpp"
#include "storage/reader_factory.hpp"
#include "storage/stream.hpp"

namespace fbfs::io::codec {

enum class Format : std::uint16_t {
  kRaw = 0,
  kBitmap = 1,
  kVarint = 2,
};
inline constexpr std::size_t kNumFormats = 3;

/// Per-stream format policy: a forced format (degrading to raw when the
/// stream is ineligible) or the exact-cost-model choice.
enum class Policy {
  kRaw = 0,
  kBitmap = 1,
  kVarint = 2,
  kAuto = 3,
};

/// Aborts listing the valid names on anything but
/// "raw"/"bitmap"/"varint"/"auto".
Policy parse_policy(const std::string& name);
const char* to_string(Policy policy);
const char* to_string(Format format);

inline constexpr std::uint32_t kMagic = 0x43554246;  // "FBUC"
inline constexpr std::uint16_t kVersion = 1;
/// record_count/payload_bytes value of a streamed-raw header: the
/// counts were unknown when the header was appended; the reader derives
/// them from the file size.
inline constexpr std::uint64_t kCountFromFileSize = ~0ull;
/// dst_offset value for record types without a `dst` field (states).
inline constexpr std::uint32_t kNoDstField = ~0u;

/// The fixed header opening every codec file. Native-endian, like every
/// other on-disk record in this repo (single-server system).
struct FileHeader {
  std::uint32_t magic = kMagic;
  std::uint16_t version = kVersion;
  std::uint16_t format = 0;  // Format
  std::uint32_t record_size = 0;
  std::uint32_t dst_offset = kNoDstField;
  std::uint64_t record_count = 0;   // records a decoder delivers
  std::uint64_t payload_bytes = 0;  // encoded bytes after this header
  std::uint64_t range_begin = 0;    // varint delta base / bitmap bit 0
  std::uint64_t range_end = 0;      // exclusive; 0 when unused
};
static_assert(sizeof(FileHeader) == 48, "on-disk header layout is pinned");
static_assert(std::is_trivially_copyable_v<FileHeader>);
inline constexpr std::uint64_t kHeaderBytes = sizeof(FileHeader);

// ------------------------------------------------------------- varint

inline std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// LEB128 little-endian base-128; returns bytes written (<= 10).
inline std::size_t put_varint(std::uint64_t v, std::byte* out) {
  std::size_t n = 0;
  while (v >= 0x80) {
    out[n++] = static_cast<std::byte>((v & 0x7f) | 0x80);
    v >>= 7;
  }
  out[n++] = static_cast<std::byte>(v);
  return n;
}

/// Decodes one varint at `pos`, advancing it. CHECK-fatal on a
/// truncated or over-wide (> 64 bit) encoding.
inline std::uint64_t get_varint(std::span<const std::byte> buf,
                                std::size_t& pos) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  while (true) {
    FB_CHECK_MSG(pos < buf.size(),
                 "varint stream truncated at byte " << pos);
    FB_CHECK_MSG(shift < 64, "varint wider than 64 bits");
    const auto b = std::to_integer<std::uint8_t>(buf[pos++]);
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

// ------------------------------------------------- record layout trait

/// A record the dst-keyed formats can encode: trivially copyable with a
/// 32-bit `dst` member (the engines' Update types and graph::Edge).
/// Anything else (state records) is raw-only.
template <typename T>
concept RoutedRecord = std::is_trivially_copyable_v<T> &&
    requires(const T t) {
      { t.dst } -> std::convertible_to<std::uint32_t>;
      requires sizeof(t.dst) == sizeof(std::uint32_t);
    };

template <typename T>
constexpr std::uint32_t dst_offset_of() {
  if constexpr (RoutedRecord<T>) {
    return static_cast<std::uint32_t>(offsetof(T, dst));
  } else {
    return kNoDstField;
  }
}

namespace detail {

/// Record bytes minus the 4-byte dst field, in layout order.
inline void copy_payload(const std::byte* rec, std::size_t record_size,
                         std::uint32_t dst_off, std::byte* out) {
  std::memcpy(out, rec, dst_off);
  std::memcpy(out + dst_off, rec + dst_off + 4, record_size - dst_off - 4);
}

inline void restore_record(const std::byte* payload, std::size_t record_size,
                           std::uint32_t dst_off, std::uint32_t dst,
                           std::byte* rec) {
  std::memcpy(rec, payload, dst_off);
  std::memcpy(rec + dst_off, &dst, 4);
  std::memcpy(rec + dst_off + 4, payload + dst_off,
              record_size - dst_off - 4);
}

}  // namespace detail

// ------------------------------------------------------------- encode

struct EncodeOptions {
  Policy policy = Policy::kRaw;
  /// The caller's proof that collapsing byte-identical duplicate
  /// destinations is exact — i.e. the program's gather is idempotent
  /// (min-fold BFS/WCC/SSSP yes; additive PageRank no; edge streams no,
  /// multi-edges must keep their multiplicity). Without it the bitmap
  /// format is never chosen.
  bool allow_bitmap = false;
  /// Destination range the stream may address: the bitmap's bit span
  /// and the varint delta base. Every routed record's dst must lie in
  /// [range_begin, range_end).
  std::uint64_t range_begin = 0;
  std::uint64_t range_end = 0;
};

struct EncodedBlob {
  Format format = Format::kRaw;
  std::uint64_t records = 0;  // records a decoder will deliver
  std::vector<std::byte> bytes;  // header + payload
};

/// Encodes `records` under `opts` into one self-describing blob
/// (header included). Deterministic: same records + options => same
/// bytes. The returned record count differs from records.size() only
/// for the bitmap format (duplicate destinations collapse).
template <typename T>
EncodedBlob encode_records(std::span<const T> records,
                           const EncodeOptions& opts) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::uint64_t n = records.size();
  constexpr std::uint32_t dst_off = dst_offset_of<T>();

  FileHeader header;
  header.record_size = sizeof(T);
  header.dst_offset = dst_off;
  header.range_begin = opts.range_begin;
  header.range_end = opts.range_end;

  EncodedBlob blob;
  const auto encode_raw = [&] {
    blob.format = Format::kRaw;
    blob.records = n;
    header.format = static_cast<std::uint16_t>(Format::kRaw);
    header.record_count = n;
    header.payload_bytes = n * sizeof(T);
    blob.bytes.resize(kHeaderBytes + n * sizeof(T));
    std::memcpy(blob.bytes.data(), &header, kHeaderBytes);
    if (n > 0) {
      std::memcpy(blob.bytes.data() + kHeaderBytes, records.data(),
                  n * sizeof(T));
    }
  };

  if constexpr (!RoutedRecord<T>) {
    // No dst field: raw is the only representable format; kAuto and the
    // forced dst-keyed policies all degrade to it.
    encode_raw();
    return blob;
  } else {
    constexpr std::size_t payload_size = sizeof(T) - 4;
    const std::uint64_t range_size =
        opts.range_end > opts.range_begin ? opts.range_end - opts.range_begin
                                          : 0;
    const bool ranged = range_size > 0;
    const auto rec_bytes = [&](std::uint64_t i) {
      return reinterpret_cast<const std::byte*>(records.data()) +
             i * sizeof(T);
    };
    const auto dst_of = [&](std::uint64_t i) {
      std::uint32_t dst;
      std::memcpy(&dst, rec_bytes(i) + dst_off, 4);
      return dst;
    };
    if (ranged) {
      for (std::uint64_t i = 0; i < n; ++i) {
        FB_CHECK_MSG(dst_of(i) >= opts.range_begin &&
                         dst_of(i) < opts.range_end,
                     "record destination " << dst_of(i)
                                           << " outside the stream range ["
                                           << opts.range_begin << ", "
                                           << opts.range_end << ")");
      }
    }

    // Bitmap eligibility: licensed, ranged, and every payload is
    // byte-identical (so the collapsed records are true duplicates).
    bool bitmap_ok = opts.allow_bitmap && ranged;
    if (bitmap_ok && payload_size > 0) {
      for (std::uint64_t i = 1; i < n && bitmap_ok; ++i) {
        bitmap_ok = std::memcmp(rec_bytes(0) + dst_off + 4,
                                rec_bytes(i) + dst_off + 4,
                                payload_size - dst_off) == 0 &&
                    std::memcmp(rec_bytes(0), rec_bytes(i), dst_off) == 0;
      }
    }
    const bool varint_ok = ranged;

    // Destination order for the varint format (and its exact cost):
    // stable sort keeps equal-dst records in append order, so the
    // encoding is deterministic.
    std::vector<std::uint32_t> order;
    std::uint64_t varint_payload = 0;
    if (varint_ok &&
        (opts.policy == Policy::kVarint || opts.policy == Policy::kAuto)) {
      order.resize(n);
      std::iota(order.begin(), order.end(), 0u);
      std::stable_sort(order.begin(), order.end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return dst_of(a) < dst_of(b);
                       });
      std::uint64_t prev = opts.range_begin;
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint32_t dst = dst_of(order[i]);
        varint_payload += varint_size(dst - prev) + payload_size;
        prev = dst;
      }
    }

    // The exact byte-cost model; ties prefer the lower format id.
    Format format = Format::kRaw;
    if (opts.policy == Policy::kAuto) {
      const std::uint64_t bitmap_words = (range_size + 63) / 64;
      const std::uint64_t raw_cost = n * sizeof(T);
      const std::uint64_t bitmap_cost =
          bitmap_ok ? payload_size + bitmap_words * 8
                    : std::numeric_limits<std::uint64_t>::max();
      const std::uint64_t varint_cost =
          varint_ok ? varint_payload
                    : std::numeric_limits<std::uint64_t>::max();
      if (bitmap_cost < raw_cost && bitmap_cost <= varint_cost) {
        format = Format::kBitmap;
      } else if (varint_cost < raw_cost) {
        format = Format::kVarint;
      }
    } else if (opts.policy == Policy::kBitmap && bitmap_ok) {
      format = Format::kBitmap;
    } else if (opts.policy == Policy::kVarint && varint_ok) {
      format = Format::kVarint;
    }

    switch (format) {
      case Format::kRaw:
        encode_raw();
        break;
      case Format::kBitmap: {
        AtomicBitmap bits(range_size);
        for (std::uint64_t i = 0; i < n; ++i) {
          bits.set(dst_of(i) - opts.range_begin);
        }
        const std::uint64_t words = bits.num_words();
        blob.format = Format::kBitmap;
        blob.records = bits.count_set();
        header.format = static_cast<std::uint16_t>(Format::kBitmap);
        header.record_count = blob.records;
        header.payload_bytes = payload_size + words * 8;
        blob.bytes.resize(kHeaderBytes + header.payload_bytes);
        std::memcpy(blob.bytes.data(), &header, kHeaderBytes);
        if (n > 0) {
          detail::copy_payload(rec_bytes(0), sizeof(T), dst_off,
                               blob.bytes.data() + kHeaderBytes);
        } else {
          std::memset(blob.bytes.data() + kHeaderBytes, 0, payload_size);
        }
        for (std::uint64_t w = 0; w < words; ++w) {
          const std::uint64_t word = bits.word(w);
          std::memcpy(blob.bytes.data() + kHeaderBytes + payload_size + w * 8,
                      &word, 8);
        }
        break;
      }
      case Format::kVarint: {
        if (order.empty() && n > 0) {
          // Forced varint without a prior cost pass: build the order now.
          order.resize(n);
          std::iota(order.begin(), order.end(), 0u);
          std::stable_sort(order.begin(), order.end(),
                           [&](std::uint32_t a, std::uint32_t b) {
                             return dst_of(a) < dst_of(b);
                           });
          std::uint64_t prev = opts.range_begin;
          varint_payload = 0;
          for (std::uint64_t i = 0; i < n; ++i) {
            const std::uint32_t dst = dst_of(order[i]);
            varint_payload += varint_size(dst - prev) + payload_size;
            prev = dst;
          }
        }
        blob.format = Format::kVarint;
        blob.records = n;
        header.format = static_cast<std::uint16_t>(Format::kVarint);
        header.record_count = n;
        header.payload_bytes = varint_payload;
        blob.bytes.resize(kHeaderBytes + varint_payload);
        std::memcpy(blob.bytes.data(), &header, kHeaderBytes);
        std::byte* out = blob.bytes.data() + kHeaderBytes;
        std::uint64_t prev = opts.range_begin;
        for (std::uint64_t i = 0; i < n; ++i) {
          const std::uint32_t dst = dst_of(order[i]);
          out += put_varint(dst - prev, out);
          detail::copy_payload(rec_bytes(order[i]), sizeof(T), dst_off, out);
          out += payload_size;
          prev = dst;
        }
        FB_CHECK_EQ(static_cast<std::uint64_t>(
                        out - (blob.bytes.data() + kHeaderBytes)),
                    varint_payload);
        break;
      }
    }
    return blob;
  }
}

/// The header a streamed-raw writer appends before its records (counts
/// come from the file size at read time).
template <typename T>
FileHeader raw_stream_header() {
  FileHeader header;
  header.format = static_cast<std::uint16_t>(Format::kRaw);
  header.record_size = sizeof(T);
  header.dst_offset = dst_offset_of<T>();
  header.record_count = kCountFromFileSize;
  header.payload_bytes = kCountFromFileSize;
  return header;
}

// ------------------------------------------------------------- writer

/// The typed append stream the engines write through. Policy kRaw (and
/// every policy for dst-less record types) streams through a buffered
/// writer exactly like RecordWriter did, header first; the other
/// policies stage records in memory and encode once at close().
template <typename T>
class CodecWriter {
 public:
  static_assert(std::is_trivially_copyable_v<T>);

  struct Result {
    Format format = Format::kRaw;
    std::uint64_t records = 0;         // records a reader will deliver
    std::uint64_t staged_records = 0;  // records appended pre-collapse
    std::uint64_t file_bytes = 0;      // header + payload
  };

  CodecWriter(Device& device, std::string name, std::size_t buffer_bytes,
              const EncodeOptions& opts = {})
      : device_(&device),
        name_(std::move(name)),
        buffer_bytes_(buffer_bytes < sizeof(T) ? sizeof(T) : buffer_bytes),
        opts_(opts) {
    if (streaming()) {
      file_ = device_->open(name_, /*truncate=*/true);
      stream_.emplace(*file_, buffer_bytes_);
      const FileHeader header = raw_stream_header<T>();
      stream_->append_raw(&header, sizeof(header));
    }
  }

  void append(const T& record) {
    if (streaming()) {
      stream_->append_raw(&record, sizeof(T));
    } else {
      staged_.push_back(record);
    }
  }

  void append_batch(std::span<const T> records) {
    if (streaming()) {
      stream_->append_raw(records.data(), records.size() * sizeof(T));
    } else {
      staged_.insert(staged_.end(), records.begin(), records.end());
    }
  }

  std::uint64_t records_appended() const {
    if (streaming()) {
      return (stream_->bytes_appended() - kHeaderBytes) / sizeof(T);
    }
    return staged_.size();
  }

  /// Flushes (raw) or encodes and writes (staged policies); call once.
  Result close() {
    Result result;
    if (streaming()) {
      stream_->flush();
      result.format = Format::kRaw;
      result.staged_records = records_appended();
      result.records = result.staged_records;
      result.file_bytes = stream_->bytes_appended();
      return result;
    }
    const EncodedBlob blob = encode_records<T>(staged_, opts_);
    auto file = device_->open(name_, /*truncate=*/true);
    StreamWriter out(*file, buffer_bytes_);
    out.append_raw(blob.bytes.data(), blob.bytes.size());
    out.flush();
    result.format = blob.format;
    result.records = blob.records;
    result.staged_records = staged_.size();
    result.file_bytes = blob.bytes.size();
    return result;
  }

 private:
  bool streaming() const {
    return !RoutedRecord<T> || opts_.policy == Policy::kRaw;
  }

  Device* device_;
  std::string name_;
  std::size_t buffer_bytes_;
  EncodeOptions opts_;
  std::unique_ptr<File> file_;        // streaming path
  std::optional<StreamWriter> stream_;
  std::vector<T> staged_;             // buffered policies
};

// ------------------------------------------------------------- reader

namespace detail {

/// Reads and validates a header off an already-open byte source.
inline FileHeader read_header(ByteSource& src, const std::string& name) {
  FileHeader header;
  const std::size_t got = src.read(&header, sizeof(header));
  FB_CHECK_MSG(got == sizeof(header),
               name << " is not a codec file: " << got
                    << " header bytes, expected " << sizeof(header));
  FB_CHECK_MSG(header.magic == kMagic,
               name << " has a foreign or corrupted codec magic");
  FB_CHECK_MSG(header.version == kVersion,
               name << " uses codec version " << header.version
                    << ", this build reads " << kVersion);
  FB_CHECK_MSG(header.format < kNumFormats,
               name << " names unknown codec format " << header.format);
  FB_CHECK_MSG(header.record_size > 0, name << " has zero record size");
  return header;
}

/// Raw payload: records verbatim after the header, streamed in batches
/// with BasicRecordReader's truncated-tail CHECK. When the header
/// carries an exact count (buffered write), the total is CHECKed at end
/// of stream too.
template <typename T>
class RawDecodeSource final : public RecordSource<T> {
 public:
  RawDecodeSource(std::unique_ptr<ByteSource> src, std::size_t buffer_bytes,
                  std::uint64_t expected, std::string name)
      : src_(std::move(src)),
        batch_((buffer_bytes < sizeof(T) ? sizeof(T) : buffer_bytes) /
               sizeof(T)),
        expected_(expected),
        name_(std::move(name)) {}

  bool next(T& out) override {
    if (cursor_ == loaded_) {
      load();
      if (loaded_ == 0) return false;
    }
    out = batch_[cursor_++];
    return true;
  }

  std::span<const T> next_batch() override {
    if (cursor_ == loaded_) load();
    const std::span<const T> out(batch_.data() + cursor_, loaded_ - cursor_);
    cursor_ = loaded_;
    return out;
  }

 private:
  void load() {
    const std::size_t got =
        src_->read(batch_.data(), batch_.size() * sizeof(T));
    FB_CHECK_MSG(got % sizeof(T) == 0,
                 name_ << " ends mid-record: " << got % sizeof(T)
                       << " stray tail bytes after "
                       << delivered_ + got / sizeof(T)
                       << " whole records of size " << sizeof(T));
    loaded_ = got / sizeof(T);
    cursor_ = 0;
    delivered_ += loaded_;
    if (loaded_ == 0 && expected_ != kCountFromFileSize) {
      FB_CHECK_MSG(delivered_ == expected_,
                   name_ << " decoded " << delivered_
                         << " records, header promised " << expected_);
    }
  }

  std::unique_ptr<ByteSource> src_;
  std::vector<T> batch_;
  std::size_t cursor_ = 0;
  std::size_t loaded_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t expected_;
  std::string name_;
};

/// Bitmap payload: the shared payload template plus the destination
/// words are read eagerly (they are the compressed representation, far
/// smaller than the decoded stream); records synthesize per batch in
/// ascending destination order.
template <typename T>
class BitmapDecodeSource final : public RecordSource<T> {
 public:
  BitmapDecodeSource(std::unique_ptr<ByteSource> src,
                     std::size_t buffer_bytes, const FileHeader& header,
                     std::string name)
      : header_(header),
        batch_((buffer_bytes < sizeof(T) ? sizeof(T) : buffer_bytes) /
               sizeof(T)),
        name_(std::move(name)) {
    constexpr std::size_t payload_size = sizeof(T) - 4;
    const std::uint64_t range =
        header_.range_end - header_.range_begin;
    const std::uint64_t words = (range + 63) / 64;
    FB_CHECK_MSG(header_.payload_bytes == payload_size + words * 8,
                 name_ << " bitmap payload is " << header_.payload_bytes
                       << " bytes, expected " << payload_size + words * 8);
    payload_.resize(payload_size);
    words_.resize(words);
    std::size_t got = src->read(payload_.data(), payload_size);
    got += src->read(words_.data(), words * 8);
    FB_CHECK_MSG(got == header_.payload_bytes,
                 name_ << " bitmap payload truncated: " << got << " of "
                       << header_.payload_bytes << " bytes");
  }

  bool next(T& out) override {
    if (cursor_ == loaded_) {
      load();
      if (loaded_ == 0) return false;
    }
    out = batch_[cursor_++];
    return true;
  }

  std::span<const T> next_batch() override {
    if (cursor_ == loaded_) load();
    const std::span<const T> out(batch_.data() + cursor_, loaded_ - cursor_);
    cursor_ = loaded_;
    return out;
  }

 private:
  void load() {
    loaded_ = 0;
    cursor_ = 0;
    const std::uint64_t range = header_.range_end - header_.range_begin;
    while (loaded_ < batch_.size() && bit_ < range) {
      const std::uint64_t word = words_[bit_ >> 6] >> (bit_ & 63);
      if (word == 0) {
        bit_ = (bit_ & ~63ull) + 64;
        continue;
      }
      bit_ += static_cast<std::uint64_t>(__builtin_ctzll(word));
      if (bit_ >= range) break;
      const std::uint32_t dst =
          static_cast<std::uint32_t>(header_.range_begin + bit_);
      restore_record(payload_.data(), sizeof(T), header_.dst_offset, dst,
                     reinterpret_cast<std::byte*>(&batch_[loaded_]));
      ++loaded_;
      ++delivered_;
      ++bit_;
    }
    if (loaded_ == 0) {
      FB_CHECK_MSG(delivered_ == header_.record_count,
                   name_ << " decoded " << delivered_
                         << " records, header promised "
                         << header_.record_count);
    }
  }

  FileHeader header_;
  std::vector<std::byte> payload_;
  std::vector<std::uint64_t> words_;
  std::vector<T> batch_;
  std::size_t cursor_ = 0;
  std::size_t loaded_ = 0;
  std::uint64_t bit_ = 0;        // next range-relative bit to inspect
  std::uint64_t delivered_ = 0;
  std::string name_;
};

/// Varint payload: the compressed bytes are read eagerly (again smaller
/// than the decoded stream) and decoded per batch.
template <typename T>
class VarintDecodeSource final : public RecordSource<T> {
 public:
  VarintDecodeSource(std::unique_ptr<ByteSource> src,
                     std::size_t buffer_bytes, const FileHeader& header,
                     std::string name)
      : header_(header),
        batch_((buffer_bytes < sizeof(T) ? sizeof(T) : buffer_bytes) /
               sizeof(T)),
        prev_(header.range_begin),
        name_(std::move(name)) {
    payload_.resize(header_.payload_bytes);
    const std::size_t got = src->read(payload_.data(), payload_.size());
    FB_CHECK_MSG(got == payload_.size(),
                 name_ << " varint payload truncated: " << got << " of "
                       << payload_.size() << " bytes");
  }

  bool next(T& out) override {
    if (cursor_ == loaded_) {
      load();
      if (loaded_ == 0) return false;
    }
    out = batch_[cursor_++];
    return true;
  }

  std::span<const T> next_batch() override {
    if (cursor_ == loaded_) load();
    const std::span<const T> out(batch_.data() + cursor_, loaded_ - cursor_);
    cursor_ = loaded_;
    return out;
  }

 private:
  void load() {
    constexpr std::size_t payload_size = sizeof(T) - 4;
    loaded_ = 0;
    cursor_ = 0;
    while (loaded_ < batch_.size() && delivered_ < header_.record_count) {
      const std::uint64_t delta = get_varint(payload_, pos_);
      prev_ += delta;
      FB_CHECK_MSG(pos_ + payload_size <= payload_.size(),
                   name_ << " varint record payload truncated at byte "
                         << pos_);
      restore_record(payload_.data() + pos_, sizeof(T), header_.dst_offset,
                     static_cast<std::uint32_t>(prev_),
                     reinterpret_cast<std::byte*>(&batch_[loaded_]));
      pos_ += payload_size;
      ++loaded_;
      ++delivered_;
    }
    if (loaded_ == 0) {
      FB_CHECK_MSG(pos_ == payload_.size(),
                   name_ << " has " << payload_.size() - pos_
                         << " trailing varint payload bytes after "
                         << delivered_ << " records");
    }
  }

  FileHeader header_;
  std::vector<std::byte> payload_;
  std::vector<T> batch_;
  std::size_t cursor_ = 0;
  std::size_t loaded_ = 0;
  std::size_t pos_ = 0;
  std::uint64_t prev_;
  std::uint64_t delivered_ = 0;
  std::string name_;
};

}  // namespace detail

/// Opens a codec file as the same type-erased RecordSource<T> the
/// ReaderFactory hands out. The underlying byte stream honours
/// opts.mode (plain/prefetch) and opts.buffer_bytes; opts.offset must
/// be 0 (codec files are whole streams, not sliceable).
template <typename T>
std::unique_ptr<RecordSource<T>> open_reader(Device& device,
                                             const std::string& name,
                                             const ReaderOptions& opts) {
  static_assert(std::is_trivially_copyable_v<T>);
  FB_CHECK_MSG(opts.offset == 0,
               "codec streams decode from the top; offset "
                   << opts.offset << " is not supported");
  auto src = open_stream_reader(device, name, opts);
  const FileHeader header = detail::read_header(*src, name);
  FB_CHECK_MSG(header.record_size == sizeof(T),
               name << " holds records of size " << header.record_size
                    << ", reader expects " << sizeof(T));
  FB_CHECK_MSG(header.dst_offset == dst_offset_of<T>(),
               name << " was written with dst offset " << header.dst_offset
                    << ", reader expects " << dst_offset_of<T>());
  switch (static_cast<Format>(header.format)) {
    case Format::kRaw:
      return std::make_unique<detail::RawDecodeSource<T>>(
          std::move(src), opts.buffer_bytes, header.record_count, name);
    case Format::kBitmap:
      if constexpr (RoutedRecord<T>) {
        return std::make_unique<detail::BitmapDecodeSource<T>>(
            std::move(src), opts.buffer_bytes, header, name);
      }
      break;
    case Format::kVarint:
      if constexpr (RoutedRecord<T>) {
        return std::make_unique<detail::VarintDecodeSource<T>>(
            std::move(src), opts.buffer_bytes, header, name);
      }
      break;
  }
  FB_CHECK_MSG(false, name << " uses a dst-keyed format, but the record "
                              "type has no dst field");
  return nullptr;
}

/// Decodes the whole file; CHECKs the record count against `expected`
/// unless it is kCountFromFileSize (the default: take whatever the
/// file holds).
template <typename T>
std::vector<T> read_all(Device& device, const std::string& name,
                        const ReaderOptions& opts,
                        std::uint64_t expected = kCountFromFileSize) {
  auto reader = open_reader<T>(device, name, opts);
  std::vector<T> out;
  if (expected != kCountFromFileSize) out.reserve(expected);
  for (auto batch = reader->next_batch(); !batch.empty();
       batch = reader->next_batch()) {
    out.insert(out.end(), batch.begin(), batch.end());
  }
  FB_CHECK_MSG(expected == kCountFromFileSize || out.size() == expected,
               name << " decodes to " << out.size() << " records, expected "
                    << expected);
  return out;
}

/// Reads just the header (48 bytes) — the tests' and tools' format
/// probe; the engines never need it (they remember what they wrote).
FileHeader probe(Device& device, const std::string& name);

}  // namespace fbfs::io::codec
