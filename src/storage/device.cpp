#include "storage/device.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

#include "common/check.hpp"
#include "common/log.hpp"

namespace fbfs::io {

namespace {

double env_time_scale() {
  const char* env = std::getenv("FASTBFS_TIME_SCALE");
  if (env == nullptr || *env == '\0') return 1.0;
  char* end = nullptr;
  const double parsed = std::strtod(env, &end);
  if (end == env || *end != '\0' || !(parsed >= 0.0) ||
      !std::isfinite(parsed)) {
    FB_LOG_WARN << "ignoring invalid FASTBFS_TIME_SCALE: " << env;
    return 1.0;
  }
  return parsed;
}

std::uint64_t transfer_ns(std::uint64_t bytes, double mb_s) {
  if (mb_s <= 0.0) return 0;
  // bytes / (mb_s * 1e6 B/s) seconds = bytes * 1000 / mb_s ns.
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(bytes) * 1000.0 / mb_s));
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

}  // namespace

DeviceModel DeviceModel::hdd() {
  DeviceModel m;
  m.name = "hdd";
  m.read_mb_s = 110.0;
  m.write_mb_s = 105.0;
  m.seek_ns = 8'000'000;  // 8 ms
  m.time_scale = env_time_scale();
  return m;
}

DeviceModel DeviceModel::ssd() {
  DeviceModel m;
  m.name = "ssd";
  m.read_mb_s = 250.0;
  m.write_mb_s = 200.0;
  m.seek_ns = 60'000;  // 60 us
  m.time_scale = env_time_scale();
  return m;
}

DeviceModel DeviceModel::unthrottled() {
  DeviceModel m;
  m.name = "unthrottled";
  m.time_scale = env_time_scale();
  return m;
}

std::uint64_t DeviceModel::read_service_ns(std::uint64_t bytes,
                                           bool seek) const {
  return (seek ? seek_ns : 0) + transfer_ns(bytes, read_mb_s);
}

std::uint64_t DeviceModel::write_service_ns(std::uint64_t bytes,
                                            bool seek) const {
  return (seek ? seek_ns : 0) + transfer_ns(bytes, write_mb_s);
}

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kModelled:
      return "modelled";
    case BackendKind::kReal:
      return "real";
  }
  return "?";
}

BackendKind backend_kind_from_string(const std::string& s) {
  if (s == "modelled") return BackendKind::kModelled;
  if (s == "real") return BackendKind::kReal;
  throw IoError("unknown storage backend \"" + s +
                "\" (expected modelled|real)");
}

// ----------------------------------------------------------- IoBackend

int IoBackend::fd(const File& f) { return f.fd_; }
int IoBackend::direct_fd(const File& f) { return f.direct_fd_; }
std::uint64_t IoBackend::file_id(const File& f) { return f.id_; }

void IoBackend::charge(Device& d, bool is_write, std::uint64_t file_id,
                       std::uint64_t offset, std::uint64_t bytes) {
  d.charge(is_write, file_id, offset, bytes);
}

void IoBackend::account_measured(Device& d, bool is_write,
                                 std::uint64_t file_id, std::uint64_t offset,
                                 std::uint64_t bytes,
                                 std::uint64_t measured_ns) {
  d.account_measured(is_write, file_id, offset, bytes, measured_ns);
}

namespace {

// The token-bucket simulation: plain buffered syscalls, with every
// transfer charged to the device timeline. This is byte-for-byte and
// stat-for-stat the pre-seam Device behavior — the modelled IoStats
// numbers are load-bearing across DESIGN invariants and BENCH history,
// so nothing here may reorder or merge charges.
class ModelledBackend final : public IoBackend {
 public:
  explicit ModelledBackend(Device& device) : device_(device) {}

  BackendKind kind() const override { return BackendKind::kModelled; }
  std::string describe() const override { return "modelled"; }

  void open_file(const std::string& path, bool truncate, int* fd,
                 int* direct_fd) override {
    int flags = O_RDWR | O_CLOEXEC;
    if (truncate) flags |= O_CREAT | O_TRUNC;
    *fd = ::open(path.c_str(), flags, 0644);
    if (*fd < 0) throw_errno("open " + path);
    *direct_fd = -1;
  }

  std::size_t read_at(File& file, std::uint64_t offset, void* dst,
                      std::size_t bytes) override {
    std::size_t total = 0;
    auto* out = static_cast<char*>(dst);
    while (total < bytes) {
      const ssize_t n = ::pread(fd(file), out + total, bytes - total,
                                static_cast<off_t>(offset + total));
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("pread " + file.path());
      }
      if (n == 0) break;  // end of file
      total += static_cast<std::size_t>(n);
    }
    // Zero-byte transfers (EOF probes) never reach a disk; don't account
    // them, so byte and op counters stay exactly the logical traffic.
    if (total > 0) {
      charge(device_, /*is_write=*/false, file_id(file), offset, total);
    }
    return total;
  }

  void write_at(File& file, std::uint64_t offset, const void* src,
                std::size_t bytes) override {
    charge(device_, /*is_write=*/true, file_id(file), offset, bytes);
    std::size_t total = 0;
    const auto* in = static_cast<const char*>(src);
    while (total < bytes) {
      const ssize_t n = ::pwrite(fd(file), in + total, bytes - total,
                                 static_cast<off_t>(offset + total));
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("pwrite " + file.path());
      }
      total += static_cast<std::size_t>(n);
    }
  }

  void read_batch(std::span<ReadRequest> requests) override {
    // In submission order, one charge per request: stats identical to
    // the caller issuing the reads itself.
    for (ReadRequest& r : requests) {
      r.got = read_at(*r.file, r.offset, r.dst, r.bytes);
    }
  }

  void sync(File& file) override {
    if (::fdatasync(fd(file)) != 0) throw_errno("fdatasync " + file.path());
  }

 private:
  Device& device_;
};

}  // namespace

// ---------------------------------------------------------------- File

File::File(Device* device, std::string name, int fd, int direct_fd,
           std::uint64_t id, std::uint64_t size)
    : device_(device),
      name_(std::move(name)),
      fd_(fd),
      direct_fd_(direct_fd),
      id_(id),
      size_(size) {}

File::~File() {
  if (fd_ >= 0) ::close(fd_);
  if (direct_fd_ >= 0) ::close(direct_fd_);
}

std::string File::path() const { return device_->path(name_); }

std::uint64_t File::size() const {
  return size_.load(std::memory_order_acquire);
}

std::size_t File::read_at(std::uint64_t offset, void* dst,
                          std::size_t bytes) {
  return device_->backend_->read_at(*this, offset, dst, bytes);
}

void File::write_at(std::uint64_t offset, const void* src,
                    std::size_t bytes) {
  if (bytes == 0) return;
  device_->consume_write_fault(name_);
  device_->backend_->write_at(*this, offset, src, bytes);
  std::lock_guard<std::mutex> lock(size_mutex_);
  if (offset + bytes > size_.load(std::memory_order_relaxed)) {
    size_.store(offset + bytes, std::memory_order_release);
  }
}

std::uint64_t File::append(const void* src, std::size_t bytes) {
  if (bytes == 0) return size();
  std::uint64_t offset;
  {
    std::lock_guard<std::mutex> lock(size_mutex_);
    offset = size_.load(std::memory_order_relaxed);
    // Reserve the range; concurrent appenders get disjoint ranges.
    size_.store(offset + bytes, std::memory_order_release);
  }
  try {
    device_->consume_write_fault(name_);
    device_->backend_->write_at(*this, offset, src, bytes);
  } catch (...) {
    std::lock_guard<std::mutex> lock(size_mutex_);
    // Roll back a reservation still at the tail (the common case).
    if (size_.load(std::memory_order_relaxed) == offset + bytes) {
      size_.store(offset, std::memory_order_release);
    }
    throw;
  }
  return offset;
}

void File::sync() { device_->backend_->sync(*this); }

// -------------------------------------------------------------- Device

Device::Device(std::string root_dir, DeviceModel model, BackendOptions backend)
    : root_(std::move(root_dir)),
      model_(std::move(model)),
      backend_options_(backend) {
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);
  FB_CHECK_MSG(!ec, "cannot create device root " << root_ << ": "
                                                 << ec.message());
  // After the root exists: the real backend probes it for O_DIRECT.
  if (backend_options_.kind == BackendKind::kReal) {
    backend_ = make_real_backend(*this, backend_options_);
  } else {
    backend_ = std::make_unique<ModelledBackend>(*this);
  }
}

Device::~Device() = default;

std::string Device::path(const std::string& name) const {
  return root_ + "/" + name;
}

std::unique_ptr<File> Device::open(const std::string& name, bool truncate) {
  int fd = -1;
  int direct_fd = -1;
  backend_->open_file(path(name), truncate, &fd, &direct_fd);
  const auto size = static_cast<std::uint64_t>(::lseek(fd, 0, SEEK_END));
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lock(schedule_mutex_);
    id = next_file_id_++;
  }
  return std::unique_ptr<File>(
      new File(this, name, fd, direct_fd, id, size));
}

void Device::read_batch(std::span<ReadRequest> requests) {
  backend_->read_batch(requests);
}

bool Device::exists(const std::string& name) const {
  return std::filesystem::exists(path(name));
}

std::uint64_t Device::file_size(const std::string& name) const {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path(name), ec);
  FB_CHECK_MSG(!ec, "file_size " << path(name) << ": " << ec.message());
  return size;
}

void Device::remove(const std::string& name) {
  std::error_code ec;
  std::filesystem::remove(path(name), ec);
  FB_CHECK_MSG(!ec, "remove " << path(name) << ": " << ec.message());
}

void Device::rename(const std::string& from, const std::string& to) {
  if (::rename(path(from).c_str(), path(to).c_str()) != 0) {
    throw_errno("rename " + path(from) + " -> " + path(to));
  }
}

std::vector<std::string> Device::list_files() const {
  std::vector<std::string> out;
  for (const auto& entry : std::filesystem::directory_iterator(root_)) {
    if (entry.is_regular_file()) out.push_back(entry.path().filename());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Device::inject_write_faults(std::uint64_t n) {
  write_faults_.store(n, std::memory_order_relaxed);
}

std::uint64_t Device::pending_write_faults() const {
  return write_faults_.load(std::memory_order_relaxed);
}

void Device::consume_write_fault(const std::string& file_name) {
  std::uint64_t pending = write_faults_.load(std::memory_order_relaxed);
  while (pending > 0) {
    if (write_faults_.compare_exchange_weak(pending, pending - 1,
                                            std::memory_order_relaxed)) {
      throw IoError("injected write fault on " + path(file_name));
    }
  }
}

void Device::charge(bool is_write, std::uint64_t file_id,
                    std::uint64_t offset, std::uint64_t bytes) {
  using clock = std::chrono::steady_clock;
  clock::time_point reservation_end;
  bool must_sleep;
  {
    std::lock_guard<std::mutex> lock(schedule_mutex_);
    // A single head: the op seeks unless it starts exactly where the
    // previous op on this device ended, in the same file.
    const bool seek = !(head_file_ == file_id && head_offset_ == offset);
    if (seek) stats_.record_seek();
    head_file_ = file_id;
    head_offset_ = offset + bytes;

    const std::uint64_t model_ns = is_write
                                       ? model_.write_service_ns(bytes, seek)
                                       : model_.read_service_ns(bytes, seek);
    const auto scaled_ns = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(model_ns) * model_.time_scale));
    stats_.record_busy(scaled_ns, model_ns);
    if (is_write) {
      stats_.record_write(bytes);
    } else {
      stats_.record_read(bytes);
    }

    const auto now = clock::now();
    const auto start = std::max(now, next_free_);
    reservation_end = start + std::chrono::nanoseconds(scaled_ns);
    next_free_ = reservation_end;
    must_sleep = scaled_ns > 0;
  }
  // Sleep outside the lock: the modelled timeline serialises the device,
  // but accounting by other threads is never blocked behind a delay.
  if (must_sleep) std::this_thread::sleep_until(reservation_end);
}

void Device::account_measured(bool is_write, std::uint64_t file_id,
                              std::uint64_t offset, std::uint64_t bytes,
                              std::uint64_t measured_ns) {
  {
    std::lock_guard<std::mutex> lock(schedule_mutex_);
    // Same head tracking as charge(): on a real device the seek counter
    // becomes "non-sequential accesses", which is what the DeviceModel's
    // seek term prices, so measured and modelled stats stay comparable.
    const bool seek = !(head_file_ == file_id && head_offset_ == offset);
    if (seek) stats_.record_seek();
    head_file_ = file_id;
    head_offset_ = offset + bytes;

    // busy_ns: measured wall time. model_busy_ns: what the DeviceModel
    // *predicts* for this op — every real run doubles as a
    // measured-vs-modelled validation of the simulator.
    const std::uint64_t model_ns = is_write
                                       ? model_.write_service_ns(bytes, seek)
                                       : model_.read_service_ns(bytes, seek);
    stats_.record_busy(measured_ns, model_ns);
    if (is_write) {
      stats_.record_write(bytes);
    } else {
      stats_.record_read(bytes);
    }
  }
  if (is_write) {
    write_latency_.record(measured_ns);
  } else {
    read_latency_.record(measured_ns);
  }
}

}  // namespace fbfs::io
