#include "storage/device.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

#include "common/check.hpp"
#include "common/log.hpp"

namespace fbfs::io {

namespace {

double env_time_scale() {
  const char* env = std::getenv("FASTBFS_TIME_SCALE");
  if (env == nullptr || *env == '\0') return 1.0;
  char* end = nullptr;
  const double parsed = std::strtod(env, &end);
  if (end == env || *end != '\0' || !(parsed >= 0.0) ||
      !std::isfinite(parsed)) {
    FB_LOG_WARN << "ignoring invalid FASTBFS_TIME_SCALE: " << env;
    return 1.0;
  }
  return parsed;
}

std::uint64_t transfer_ns(std::uint64_t bytes, double mb_s) {
  if (mb_s <= 0.0) return 0;
  // bytes / (mb_s * 1e6 B/s) seconds = bytes * 1000 / mb_s ns.
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(bytes) * 1000.0 / mb_s));
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

}  // namespace

DeviceModel DeviceModel::hdd() {
  DeviceModel m;
  m.name = "hdd";
  m.read_mb_s = 110.0;
  m.write_mb_s = 105.0;
  m.seek_ns = 8'000'000;  // 8 ms
  m.time_scale = env_time_scale();
  return m;
}

DeviceModel DeviceModel::ssd() {
  DeviceModel m;
  m.name = "ssd";
  m.read_mb_s = 250.0;
  m.write_mb_s = 200.0;
  m.seek_ns = 60'000;  // 60 us
  m.time_scale = env_time_scale();
  return m;
}

DeviceModel DeviceModel::unthrottled() {
  DeviceModel m;
  m.name = "unthrottled";
  m.time_scale = env_time_scale();
  return m;
}

std::uint64_t DeviceModel::read_service_ns(std::uint64_t bytes,
                                           bool seek) const {
  return (seek ? seek_ns : 0) + transfer_ns(bytes, read_mb_s);
}

std::uint64_t DeviceModel::write_service_ns(std::uint64_t bytes,
                                            bool seek) const {
  return (seek ? seek_ns : 0) + transfer_ns(bytes, write_mb_s);
}

// ---------------------------------------------------------------- File

File::File(Device* device, std::string name, int fd, std::uint64_t id,
           std::uint64_t size)
    : device_(device), name_(std::move(name)), fd_(fd), id_(id), size_(size) {}

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

std::string File::path() const { return device_->path(name_); }

std::uint64_t File::size() const {
  return size_.load(std::memory_order_acquire);
}

std::size_t File::read_at(std::uint64_t offset, void* dst,
                          std::size_t bytes) {
  std::size_t total = 0;
  auto* out = static_cast<char*>(dst);
  while (total < bytes) {
    const ssize_t n = ::pread(fd_, out + total, bytes - total,
                              static_cast<off_t>(offset + total));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("pread " + path());
    }
    if (n == 0) break;  // end of file
    total += static_cast<std::size_t>(n);
  }
  // Zero-byte transfers (EOF probes) never reach a disk; don't account
  // them, so byte and op counters stay exactly the logical traffic.
  if (total > 0) device_->charge(/*is_write=*/false, id_, offset, total);
  return total;
}

void File::write_at(std::uint64_t offset, const void* src,
                    std::size_t bytes) {
  if (bytes == 0) return;
  device_->consume_write_fault(name_);
  device_->charge(/*is_write=*/true, id_, offset, bytes);
  std::size_t total = 0;
  const auto* in = static_cast<const char*>(src);
  while (total < bytes) {
    const ssize_t n = ::pwrite(fd_, in + total, bytes - total,
                               static_cast<off_t>(offset + total));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("pwrite " + path());
    }
    total += static_cast<std::size_t>(n);
  }
  std::lock_guard<std::mutex> lock(size_mutex_);
  if (offset + bytes > size_.load(std::memory_order_relaxed)) {
    size_.store(offset + bytes, std::memory_order_release);
  }
}

std::uint64_t File::append(const void* src, std::size_t bytes) {
  if (bytes == 0) return size();
  std::uint64_t offset;
  {
    std::lock_guard<std::mutex> lock(size_mutex_);
    offset = size_.load(std::memory_order_relaxed);
    // Reserve the range; concurrent appenders get disjoint ranges.
    size_.store(offset + bytes, std::memory_order_release);
  }
  try {
    device_->consume_write_fault(name_);
    device_->charge(/*is_write=*/true, id_, offset, bytes);
    std::size_t total = 0;
    const auto* in = static_cast<const char*>(src);
    while (total < bytes) {
      const ssize_t n = ::pwrite(fd_, in + total, bytes - total,
                                 static_cast<off_t>(offset + total));
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("pwrite " + path());
      }
      total += static_cast<std::size_t>(n);
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(size_mutex_);
    // Roll back a reservation still at the tail (the common case).
    if (size_.load(std::memory_order_relaxed) == offset + bytes) {
      size_.store(offset, std::memory_order_release);
    }
    throw;
  }
  return offset;
}

void File::sync() {
  if (::fdatasync(fd_) != 0) throw_errno("fdatasync " + path());
}

// -------------------------------------------------------------- Device

Device::Device(std::string root_dir, DeviceModel model)
    : root_(std::move(root_dir)), model_(std::move(model)) {
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);
  FB_CHECK_MSG(!ec, "cannot create device root " << root_ << ": "
                                                 << ec.message());
}

std::string Device::path(const std::string& name) const {
  return root_ + "/" + name;
}

std::unique_ptr<File> Device::open(const std::string& name, bool truncate) {
  int flags = O_RDWR | O_CLOEXEC;
  if (truncate) flags |= O_CREAT | O_TRUNC;
  const int fd = ::open(path(name).c_str(), flags, 0644);
  if (fd < 0) throw_errno("open " + path(name));
  const auto size = static_cast<std::uint64_t>(::lseek(fd, 0, SEEK_END));
  std::uint64_t id;
  {
    std::lock_guard<std::mutex> lock(schedule_mutex_);
    id = next_file_id_++;
  }
  return std::unique_ptr<File>(new File(this, name, fd, id, size));
}

bool Device::exists(const std::string& name) const {
  return std::filesystem::exists(path(name));
}

std::uint64_t Device::file_size(const std::string& name) const {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path(name), ec);
  FB_CHECK_MSG(!ec, "file_size " << path(name) << ": " << ec.message());
  return size;
}

void Device::remove(const std::string& name) {
  std::error_code ec;
  std::filesystem::remove(path(name), ec);
  FB_CHECK_MSG(!ec, "remove " << path(name) << ": " << ec.message());
}

void Device::rename(const std::string& from, const std::string& to) {
  if (::rename(path(from).c_str(), path(to).c_str()) != 0) {
    throw_errno("rename " + path(from) + " -> " + path(to));
  }
}

std::vector<std::string> Device::list_files() const {
  std::vector<std::string> out;
  for (const auto& entry : std::filesystem::directory_iterator(root_)) {
    if (entry.is_regular_file()) out.push_back(entry.path().filename());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Device::inject_write_faults(std::uint64_t n) {
  write_faults_.store(n, std::memory_order_relaxed);
}

std::uint64_t Device::pending_write_faults() const {
  return write_faults_.load(std::memory_order_relaxed);
}

void Device::consume_write_fault(const std::string& file_name) {
  std::uint64_t pending = write_faults_.load(std::memory_order_relaxed);
  while (pending > 0) {
    if (write_faults_.compare_exchange_weak(pending, pending - 1,
                                            std::memory_order_relaxed)) {
      throw IoError("injected write fault on " + path(file_name));
    }
  }
}

void Device::charge(bool is_write, std::uint64_t file_id,
                    std::uint64_t offset, std::uint64_t bytes) {
  using clock = std::chrono::steady_clock;
  clock::time_point reservation_end;
  bool must_sleep;
  {
    std::lock_guard<std::mutex> lock(schedule_mutex_);
    // A single head: the op seeks unless it starts exactly where the
    // previous op on this device ended, in the same file.
    const bool seek = !(head_file_ == file_id && head_offset_ == offset);
    if (seek) stats_.record_seek();
    head_file_ = file_id;
    head_offset_ = offset + bytes;

    const std::uint64_t model_ns = is_write
                                       ? model_.write_service_ns(bytes, seek)
                                       : model_.read_service_ns(bytes, seek);
    const auto scaled_ns = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(model_ns) * model_.time_scale));
    stats_.record_busy(scaled_ns, model_ns);
    if (is_write) {
      stats_.record_write(bytes);
    } else {
      stats_.record_read(bytes);
    }

    const auto now = clock::now();
    const auto start = std::max(now, next_free_);
    reservation_end = start + std::chrono::nanoseconds(scaled_ns);
    next_free_ = reservation_end;
    must_sleep = scaled_ns > 0;
  }
  // Sleep outside the lock: the modelled timeline serialises the device,
  // but accounting by other threads is never blocked behind a delay.
  if (must_sleep) std::this_thread::sleep_until(reservation_end);
}

}  // namespace fbfs::io
