// Device: one modelled disk, rooted at a host directory.
//
// All engine I/O goes through Device-opened Files, so the device can
// (a) keep exact per-device IoStats and (b) impose a timing model — the
// repo's substitute for the paper's physical HDDs/SSD (DESIGN.md,
// substitutions table). The model is a token bucket: the device owns a
// single service timeline (`next free time`); each operation reserves
// seek latency (when it does not continue the previous operation's file
// + offset) plus bytes/bandwidth of transfer time, then sleeps until
// its reservation ends. One Device therefore serialises its own I/O —
// concurrent readers contend like threads sharing a spindle — while two
// Devices proceed fully in parallel, exactly like two disks.
//
// FASTBFS_TIME_SCALE (default 1.0) multiplies every modelled delay; 0
// disables sleeping entirely while keeping byte/seek accounting exact.
// The env var is read when a DeviceModel factory runs; tests may also
// set `time_scale` directly.
//
// Write faults: inject_write_faults(n) makes the next n write operations
// on the device throw IoError — how the tests stand in for a dying stay
// disk (DESIGN invariant 6: AsyncWriter must degrade, not crash).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "storage/io_stats.hpp"

namespace fbfs::io {

/// Expected runtime I/O failure (disk full, injected fault, ...).
/// Distinct from FB_CHECK aborts: callers like AsyncWriter catch it and
/// degrade.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

/// Timing model of one disk. Bandwidths in MB/s (decimal, as vendors
/// quote); 0 bandwidth = unthrottled (no transfer delay).
struct DeviceModel {
  std::string name = "unthrottled";
  double read_mb_s = 0.0;
  double write_mb_s = 0.0;
  std::uint64_t seek_ns = 0;
  /// Multiplies every modelled delay; initialised from FASTBFS_TIME_SCALE
  /// by the factories below.
  double time_scale = 1.0;

  /// 7200rpm HDD: 110/105 MB/s sequential, 8 ms seek.
  static DeviceModel hdd();
  /// SATA SSD: 250/200 MB/s, 60 us access.
  static DeviceModel ssd();
  /// No modelled delays; still counts bytes/ops/seeks.
  static DeviceModel unthrottled();

  bool throttled() const { return read_mb_s > 0.0 || write_mb_s > 0.0; }

  /// Unscaled modelled service time of one operation. Monotone in
  /// `bytes`; `seek` adds the full seek penalty.
  std::uint64_t read_service_ns(std::uint64_t bytes, bool seek) const;
  std::uint64_t write_service_ns(std::uint64_t bytes, bool seek) const;
};

class Device;

/// One open file on a Device. Reading is positional (pread-style), so
/// any number of readers can stream the same File with private cursors;
/// writes either append or go to an explicit offset. Every transfer is
/// charged to the owning Device.
class File {
 public:
  ~File();
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  const std::string& name() const { return name_; }
  std::string path() const;
  Device& device() const { return *device_; }
  std::uint64_t size() const;

  /// Reads up to `bytes` at `offset`; returns the bytes transferred
  /// (short only at end of file). Throws IoError on failure.
  std::size_t read_at(std::uint64_t offset, void* dst, std::size_t bytes);

  /// Writes exactly `bytes` at `offset`. Throws IoError on failure or
  /// injected fault.
  void write_at(std::uint64_t offset, const void* src, std::size_t bytes);

  /// Appends at the current end; returns the offset written at.
  std::uint64_t append(const void* src, std::size_t bytes);

  /// Flushes file data to stable storage (fdatasync).
  void sync();

 private:
  friend class Device;
  File(Device* device, std::string name, int fd, std::uint64_t id,
       std::uint64_t size);

  Device* device_;
  std::string name_;
  int fd_;
  std::uint64_t id_;  // device-unique, for head-position tracking
  std::atomic<std::uint64_t> size_;
  std::mutex size_mutex_;  // append offset reservation
};

class Device {
 public:
  /// Roots the device at `root_dir` (created if absent).
  Device(std::string root_dir, DeviceModel model);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& root_dir() const { return root_; }
  const DeviceModel& model() const { return model_; }
  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }

  /// Opens `name` under the root. truncate=true creates the file (or
  /// empties an existing one); truncate=false requires it to exist.
  std::unique_ptr<File> open(const std::string& name, bool truncate = false);

  bool exists(const std::string& name) const;
  std::uint64_t file_size(const std::string& name) const;
  void remove(const std::string& name);
  /// Atomic within the device directory (POSIX rename).
  void rename(const std::string& from, const std::string& to);
  /// Names of regular files directly under the root, sorted.
  std::vector<std::string> list_files() const;
  std::string path(const std::string& name) const;

  /// The next `n` write operations on this device throw IoError.
  /// Replaces any still-pending faults; 0 clears them.
  void inject_write_faults(std::uint64_t n);
  std::uint64_t pending_write_faults() const;

 private:
  friend class File;

  /// Models + accounts one operation of `bytes` at (file, offset):
  /// reserves a slot on the device timeline, updates IoStats, sleeps out
  /// the scaled delay. Called by File after (reads) or before (writes)
  /// the syscall.
  void charge(bool is_write, std::uint64_t file_id, std::uint64_t offset,
              std::uint64_t bytes);

  /// Throws IoError when a fault is pending (consuming it).
  void consume_write_fault(const std::string& file_name);

  std::string root_;
  DeviceModel model_;
  IoStats stats_;

  std::mutex schedule_mutex_;
  std::chrono::steady_clock::time_point next_free_{};
  std::uint64_t head_file_ = 0;  // 0 = no operation yet
  std::uint64_t head_offset_ = 0;
  std::uint64_t next_file_id_ = 1;

  std::atomic<std::uint64_t> write_faults_{0};
};

}  // namespace fbfs::io
