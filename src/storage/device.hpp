// Device: one disk, rooted at a host directory, behind an IoBackend.
//
// All engine I/O goes through Device-opened Files, so the device can
// (a) keep exact per-device IoStats and (b) either impose a timing
// model or hit real hardware. Which of the two happens is the
// IoBackend's business: File::read_at/write_at/append/sync and the
// batched Device::read_batch route every transfer through one backend
// object, selected per Device at construction (BackendOptions). The
// engines never see the difference.
//
//  * ModelledBackend — the repo's substitute for the paper's physical
//    HDDs/SSD (DESIGN.md, substitutions table). The model is a token
//    bucket: the device owns a single service timeline (`next free
//    time`); each operation reserves seek latency (when it does not
//    continue the previous operation's file + offset) plus
//    bytes/bandwidth of transfer time, then sleeps until its
//    reservation ends. One Device therefore serialises its own I/O —
//    concurrent readers contend like threads sharing a spindle — while
//    two Devices proceed fully in parallel, exactly like two disks.
//
//  * RealBackend (real_backend.cpp) — measured I/O on the host
//    filesystem: O_DIRECT opens with aligned bounce buffers (falling
//    back to buffered + posix_fadvise(DONTNEED) where the filesystem
//    refuses O_DIRECT, e.g. tmpfs), io_uring submission for batched
//    positional reads, and a synchronous pread/pwrite fallback when
//    io_uring is unavailable. IoStats byte/op/seek accounting stays
//    exact; busy_ns holds measured wall time while model_busy_ns holds
//    the DeviceModel's *predicted* service time, so a run is its own
//    measured-vs-modelled comparison. Measured per-op latency
//    additionally lands in the Device's read/write LatencyHistograms.
//
// FASTBFS_TIME_SCALE (default 1.0) multiplies every modelled delay; 0
// disables sleeping entirely while keeping byte/seek accounting exact.
// The env var is read when a DeviceModel factory runs; tests may also
// set `time_scale` directly. The real backend never sleeps.
//
// Write faults: inject_write_faults(n) makes the next n write operations
// on the device throw IoError — how the tests stand in for a dying stay
// disk (DESIGN invariant 6: AsyncWriter must degrade, not crash). Fault
// consumption lives in File, above the backend seam, so injection
// behaves identically on both backends.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "metrics/latency_histogram.hpp"
#include "storage/io_stats.hpp"

namespace fbfs::io {

/// Expected runtime I/O failure (disk full, injected fault, ...).
/// Distinct from FB_CHECK aborts: callers like AsyncWriter catch it and
/// degrade.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

/// Timing model of one disk. Bandwidths in MB/s (decimal, as vendors
/// quote); 0 bandwidth = unthrottled (no transfer delay).
struct DeviceModel {
  std::string name = "unthrottled";
  double read_mb_s = 0.0;
  double write_mb_s = 0.0;
  std::uint64_t seek_ns = 0;
  /// Multiplies every modelled delay; initialised from FASTBFS_TIME_SCALE
  /// by the factories below.
  double time_scale = 1.0;

  /// 7200rpm HDD: 110/105 MB/s sequential, 8 ms seek.
  static DeviceModel hdd();
  /// SATA SSD: 250/200 MB/s, 60 us access.
  static DeviceModel ssd();
  /// No modelled delays; still counts bytes/ops/seeks.
  static DeviceModel unthrottled();

  bool throttled() const { return read_mb_s > 0.0 || write_mb_s > 0.0; }

  /// Unscaled modelled service time of one operation. Monotone in
  /// `bytes`; `seek` adds the full seek penalty.
  std::uint64_t read_service_ns(std::uint64_t bytes, bool seek) const;
  std::uint64_t write_service_ns(std::uint64_t bytes, bool seek) const;
};

/// Which IoBackend a Device runs on.
enum class BackendKind {
  kModelled,  // token-bucket simulation (default; deterministic stats)
  kReal,      // measured I/O: O_DIRECT + io_uring where available
};

const char* to_string(BackendKind kind);
/// Parses "modelled" / "real" (throws IoError on anything else).
BackendKind backend_kind_from_string(const std::string& s);

/// Backend selection + real-backend tuning. The modelled backend
/// ignores everything but `kind`, so defaulted options keep today's
/// behavior bit-for-bit.
struct BackendOptions {
  BackendKind kind = BackendKind::kModelled;
  /// Real backend: try O_DIRECT opens (auto-falls back to buffered +
  /// posix_fadvise(DONTNEED) when the filesystem refuses, e.g. tmpfs).
  bool direct_io = true;
  /// Real backend: use io_uring for read_batch when the kernel has it
  /// (auto-falls back to synchronous preads when not).
  bool use_uring = true;
  /// Ring submission depth; also sizes queue-depth-aware consumers
  /// (PrefetchReader ring, xstream batched chunk reads).
  unsigned queue_depth = 8;
  /// O_DIRECT offset/length/buffer alignment (power of two).
  std::size_t alignment = 4096;
};

class Device;
class File;

/// One positional read in a Device::read_batch submission. `got` is the
/// out-param: bytes actually transferred (short only at end of file).
struct ReadRequest {
  File* file = nullptr;
  std::uint64_t offset = 0;
  void* dst = nullptr;
  std::size_t bytes = 0;
  std::size_t got = 0;
};

/// The seam between File/Device and the bytes' actual source. Both
/// implementations must preserve the Device contracts: exact IoStats
/// byte/op accounting, zero-byte transfers never charged, read_at short
/// only at end of file, IoError (not aborts) on runtime failure.
class IoBackend {
 public:
  virtual ~IoBackend() = default;

  virtual BackendKind kind() const = 0;
  /// Human-readable mode string, e.g. "modelled" or
  /// "real(direct+uring qd=8)". Tests assert on the active fallbacks.
  virtual std::string describe() const = 0;

  /// Opens `path`, producing the buffered fd and (real backend, when
  /// the filesystem allows it) an O_DIRECT fd; *direct_fd = -1 when
  /// unused. Throws IoError on failure.
  virtual void open_file(const std::string& path, bool truncate, int* fd,
                         int* direct_fd) = 0;

  /// Full read_at semantics: loops partial reads to the requested span,
  /// returns bytes transferred (short only at end of file), accounts
  /// the transfer to the device. Throws IoError on failure.
  virtual std::size_t read_at(File& file, std::uint64_t offset, void* dst,
                              std::size_t bytes) = 0;

  /// Writes exactly `bytes` at `offset` and accounts it. Fault
  /// injection happens in File, above this call.
  virtual void write_at(File& file, std::uint64_t offset, const void* src,
                        std::size_t bytes) = 0;

  /// Executes every request, filling `got`. Modelled: in-order loop of
  /// read_at (so charge order — and therefore stats — is identical to
  /// the unbatched code). Real: one io_uring submission of up to
  /// queue_depth in-flight reads when available.
  virtual void read_batch(std::span<ReadRequest> requests) = 0;

  /// Flushes file data to stable storage (fdatasync).
  virtual void sync(File& file) = 0;

 protected:
  // Subclasses live behind this interface in other translation units;
  // these helpers route to Device/File privates via the base class's
  // friendship so the subclasses need none of their own.
  static int fd(const File& f);
  static int direct_fd(const File& f);
  static std::uint64_t file_id(const File& f);
  static void charge(Device& d, bool is_write, std::uint64_t file_id,
                     std::uint64_t offset, std::uint64_t bytes);
  static void account_measured(Device& d, bool is_write,
                               std::uint64_t file_id, std::uint64_t offset,
                               std::uint64_t bytes, std::uint64_t measured_ns);
};

/// One open file on a Device. Reading is positional (pread-style), so
/// any number of readers can stream the same File with private cursors;
/// writes either append or go to an explicit offset. Every transfer is
/// charged to the owning Device through its backend.
class File {
 public:
  ~File();
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  const std::string& name() const { return name_; }
  std::string path() const;
  Device& device() const { return *device_; }
  std::uint64_t size() const;

  /// Reads up to `bytes` at `offset`; returns the bytes transferred.
  /// Loops partial reads to the full requested span, so the result is
  /// short only at end of file — on both backends. Throws IoError on
  /// failure.
  std::size_t read_at(std::uint64_t offset, void* dst, std::size_t bytes);

  /// Writes exactly `bytes` at `offset`. Throws IoError on failure or
  /// injected fault.
  void write_at(std::uint64_t offset, const void* src, std::size_t bytes);

  /// Appends at the current end; returns the offset written at.
  std::uint64_t append(const void* src, std::size_t bytes);

  /// Flushes file data to stable storage (fdatasync).
  void sync();

 private:
  friend class Device;
  friend class IoBackend;
  File(Device* device, std::string name, int fd, int direct_fd,
       std::uint64_t id, std::uint64_t size);

  Device* device_;
  std::string name_;
  int fd_;
  int direct_fd_;     // real backend O_DIRECT fd, -1 when unused
  std::uint64_t id_;  // device-unique, for head-position tracking
  std::atomic<std::uint64_t> size_;
  std::mutex size_mutex_;  // append offset reservation
};

class Device {
 public:
  /// Roots the device at `root_dir` (created if absent). Defaulted
  /// `backend` selects the modelled token bucket — exactly the
  /// pre-seam behavior.
  Device(std::string root_dir, DeviceModel model, BackendOptions backend = {});
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& root_dir() const { return root_; }
  const DeviceModel& model() const { return model_; }
  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }

  const BackendOptions& backend_options() const { return backend_options_; }
  BackendKind backend_kind() const { return backend_->kind(); }
  /// The backend's live mode string (which fallbacks are active).
  std::string backend_description() const { return backend_->describe(); }

  /// Measured per-operation latency (real backend; the modelled backend
  /// records nothing here — its timing lives in IoStats busy_ns).
  metrics::LatencyHistogram read_latency() const {
    return read_latency_.snapshot();
  }
  metrics::LatencyHistogram write_latency() const {
    return write_latency_.snapshot();
  }

  /// Opens `name` under the root. truncate=true creates the file (or
  /// empties an existing one); truncate=false requires it to exist.
  std::unique_ptr<File> open(const std::string& name, bool truncate = false);

  /// Executes a batch of positional reads, filling each request's
  /// `got`. On the real backend with io_uring this is one ring
  /// submission with up to queue_depth reads in flight; otherwise an
  /// in-order loop of read_at with identical accounting.
  void read_batch(std::span<ReadRequest> requests);

  bool exists(const std::string& name) const;
  std::uint64_t file_size(const std::string& name) const;
  void remove(const std::string& name);
  /// Atomic within the device directory (POSIX rename).
  void rename(const std::string& from, const std::string& to);
  /// Names of regular files directly under the root, sorted.
  std::vector<std::string> list_files() const;
  std::string path(const std::string& name) const;

  /// The next `n` write operations on this device throw IoError.
  /// Replaces any still-pending faults; 0 clears them.
  void inject_write_faults(std::uint64_t n);
  std::uint64_t pending_write_faults() const;

 private:
  friend class File;
  friend class IoBackend;

  /// Models + accounts one operation of `bytes` at (file, offset):
  /// reserves a slot on the device timeline, updates IoStats, sleeps out
  /// the scaled delay. Called by the modelled backend after (reads) or
  /// before (writes) the syscall.
  void charge(bool is_write, std::uint64_t file_id, std::uint64_t offset,
              std::uint64_t bytes);

  /// Real-backend accounting: same head/seek tracking and byte/op
  /// counters as charge(), but busy_ns records the *measured* wall time
  /// (model_busy_ns still records the model's prediction) and nothing
  /// ever sleeps. Also feeds the latency histograms.
  void account_measured(bool is_write, std::uint64_t file_id,
                        std::uint64_t offset, std::uint64_t bytes,
                        std::uint64_t measured_ns);

  /// Throws IoError when a fault is pending (consuming it).
  void consume_write_fault(const std::string& file_name);

  std::string root_;
  DeviceModel model_;
  BackendOptions backend_options_;
  std::unique_ptr<IoBackend> backend_;
  IoStats stats_;

  metrics::ShardedHistogram read_latency_{16};
  metrics::ShardedHistogram write_latency_{16};

  std::mutex schedule_mutex_;
  std::chrono::steady_clock::time_point next_free_{};
  std::uint64_t head_file_ = 0;  // 0 = no operation yet
  std::uint64_t head_offset_ = 0;
  std::uint64_t next_file_id_ = 1;

  std::atomic<std::uint64_t> write_faults_{0};
};

/// Factory for the measured backend (real_backend.cpp). Probes the
/// device root for O_DIRECT support and the kernel for io_uring once at
/// construction; refused features degrade to the documented fallbacks.
std::unique_ptr<IoBackend> make_real_backend(Device& device,
                                             const BackendOptions& options);

}  // namespace fbfs::io
