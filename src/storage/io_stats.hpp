// Per-device I/O accounting — the repo's substitute for `iostat`.
//
// Byte counters are exact: every read/write that reaches the device adds
// precisely the bytes the syscall transferred (DESIGN invariant 5 leans
// on this). busy_ns accumulates the device's modelled service time (seek
// + transfer under the DeviceModel, after FASTBFS_TIME_SCALE); dividing
// it by wall time gives the paper's iowait ratio. model_busy_ns keeps
// the unscaled service time so accounting stays deterministic even at
// time scale 0.
#pragma once

#include <atomic>
#include <cstdint>

namespace fbfs::io {

/// Plain-value copy of the counters at one instant.
struct IoStatsSnapshot {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;
  std::uint64_t seeks = 0;
  std::uint64_t busy_ns = 0;        // scaled (wall-clock) device busy time
  std::uint64_t model_busy_ns = 0;  // unscaled modelled service time

  double busy_seconds() const { return static_cast<double>(busy_ns) * 1e-9; }

  /// Counter deltas between two snapshots of the same IoStats — what a
  /// round or phase cost. All counters are monotone, so every field of
  /// the result is exact (no sampling, no estimation).
  IoStatsSnapshot delta(const IoStatsSnapshot& since) const {
    IoStatsSnapshot d;
    d.bytes_read = bytes_read - since.bytes_read;
    d.bytes_written = bytes_written - since.bytes_written;
    d.read_ops = read_ops - since.read_ops;
    d.write_ops = write_ops - since.write_ops;
    d.seeks = seeks - since.seeks;
    d.busy_ns = busy_ns - since.busy_ns;
    d.model_busy_ns = model_busy_ns - since.model_busy_ns;
    return d;
  }
};

class IoStats {
 public:
  std::uint64_t bytes_read() const { return bytes_read_.load(order); }
  std::uint64_t bytes_written() const { return bytes_written_.load(order); }
  std::uint64_t read_ops() const { return read_ops_.load(order); }
  std::uint64_t write_ops() const { return write_ops_.load(order); }
  std::uint64_t seeks() const { return seeks_.load(order); }
  std::uint64_t busy_ns() const { return busy_ns_.load(order); }
  std::uint64_t model_busy_ns() const { return model_busy_ns_.load(order); }
  double busy_seconds() const {
    return static_cast<double>(busy_ns()) * 1e-9;
  }

  IoStatsSnapshot snapshot() const {
    IoStatsSnapshot s;
    s.bytes_read = bytes_read();
    s.bytes_written = bytes_written();
    s.read_ops = read_ops();
    s.write_ops = write_ops();
    s.seeks = seeks();
    s.busy_ns = busy_ns();
    s.model_busy_ns = model_busy_ns();
    return s;
  }

  void record_read(std::uint64_t bytes) {
    bytes_read_.fetch_add(bytes, order);
    read_ops_.fetch_add(1, order);
  }
  void record_write(std::uint64_t bytes) {
    bytes_written_.fetch_add(bytes, order);
    write_ops_.fetch_add(1, order);
  }
  void record_seek() { seeks_.fetch_add(1, order); }
  void record_busy(std::uint64_t scaled_ns, std::uint64_t model_ns) {
    busy_ns_.fetch_add(scaled_ns, order);
    model_busy_ns_.fetch_add(model_ns, order);
  }

  void reset() {
    bytes_read_.store(0, order);
    bytes_written_.store(0, order);
    read_ops_.store(0, order);
    write_ops_.store(0, order);
    seeks_.store(0, order);
    busy_ns_.store(0, order);
    model_busy_ns_.store(0, order);
  }

 private:
  static constexpr std::memory_order order = std::memory_order_relaxed;

  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> read_ops_{0};
  std::atomic<std::uint64_t> write_ops_{0};
  std::atomic<std::uint64_t> seeks_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
  std::atomic<std::uint64_t> model_busy_ns_{0};
};

}  // namespace fbfs::io
