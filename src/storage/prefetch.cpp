#include "storage/prefetch.hpp"

#include <cstring>

namespace fbfs::io {

PrefetchReader::PrefetchReader(File& file, std::size_t buffer_bytes,
                               std::uint64_t offset, std::size_t num_buffers)
    : file_(&file),
      start_offset_(offset),
      slots_(num_buffers < 2 ? 2 : num_buffers) {
  for (Slot& slot : slots_) {
    slot.data.resize(buffer_bytes == 0 ? 1 : buffer_bytes);
  }
  fetcher_ = std::thread([this] { fetch_loop(); });
}

PrefetchReader::~PrefetchReader() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  slot_freed_.notify_all();
  fetcher_.join();
}

void PrefetchReader::fetch_loop() {
  std::uint64_t offset = start_offset_;
  std::size_t index = 0;
  std::vector<ReadRequest> requests;
  for (;;) {
    // Free slots are consecutive in ring order starting at `index`:
    // the fetcher fills and the consumer drains in the same order.
    std::size_t free_count = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      slot_freed_.wait(lock, [&] { return stop_ || !slots_[index].full; });
      if (stop_) return;
      while (free_count < slots_.size() &&
             !slots_[(index + free_count) % slots_.size()].full) {
        ++free_count;
      }
    }
    // The transfers (and any modelled device delay) run outside the
    // lock: this is the overlap the reader exists for. All free slots
    // go down as one batch — one ring submission on the real backend.
    requests.clear();
    for (std::size_t k = 0; k < free_count; ++k) {
      Slot& slot = slots_[(index + k) % slots_.size()];
      requests.push_back({file_, offset + k * slot.data.size(),
                          slot.data.data(), slot.data.size(), 0});
    }
    file_->device().read_batch(requests);
    bool eof = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (std::size_t k = 0; k < free_count && !eof; ++k) {
        Slot& slot = slots_[(index + k) % slots_.size()];
        const std::size_t got = requests[k].got;
        slot.size = got;
        slot.full = got > 0;
        offset += got;
        // A short slot is EOF; later requests in this batch started
        // past it and transferred nothing.
        if (got < slot.data.size()) {
          eof = true;
          done_ = true;
        }
      }
    }
    slot_filled_.notify_all();
    if (eof) return;  // EOF snapshot: equivalence holds for static files
    index = (index + free_count) % slots_.size();
  }
}

std::size_t PrefetchReader::read(void* dst, std::size_t bytes) {
  auto* out = static_cast<std::byte*>(dst);
  std::size_t total = 0;
  while (total < bytes) {
    Slot& slot = slots_[head_];
    {
      std::unique_lock<std::mutex> lock(mutex_);
      slot_filled_.wait(lock, [&] { return slot.full || done_; });
      if (!slot.full) break;  // drained past EOF
    }
    const std::size_t have = slot.size - pos_;
    const std::size_t want = bytes - total;
    const std::size_t take = want < have ? want : have;
    std::memcpy(out + total, slot.data.data() + pos_, take);
    pos_ += take;
    total += take;
    if (pos_ == slot.size) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        slot.full = false;
      }
      slot_freed_.notify_one();
      head_ = (head_ + 1) % slots_.size();
      pos_ = 0;
    }
  }
  consumed_ += total;
  return total;
}

}  // namespace fbfs::io
