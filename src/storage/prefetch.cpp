#include "storage/prefetch.hpp"

#include <cstring>

namespace fbfs::io {

PrefetchReader::PrefetchReader(File& file, std::size_t buffer_bytes,
                               std::uint64_t offset, std::size_t num_buffers)
    : file_(&file),
      start_offset_(offset),
      slots_(num_buffers < 2 ? 2 : num_buffers) {
  for (Slot& slot : slots_) {
    slot.data.resize(buffer_bytes == 0 ? 1 : buffer_bytes);
  }
  fetcher_ = std::thread([this] { fetch_loop(); });
}

PrefetchReader::~PrefetchReader() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  slot_freed_.notify_all();
  fetcher_.join();
}

void PrefetchReader::fetch_loop() {
  std::uint64_t offset = start_offset_;
  std::size_t index = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      slot_freed_.wait(lock, [&] { return stop_ || !slots_[index].full; });
      if (stop_) return;
    }
    Slot& slot = slots_[index];
    // The transfer (and its modelled device delay) runs outside the
    // lock: this is the overlap the reader exists for.
    const std::size_t got =
        file_->read_at(offset, slot.data.data(), slot.data.size());
    offset += got;
    const bool eof = got < slot.data.size();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      slot.size = got;
      slot.full = got > 0;
      if (eof) done_ = true;
    }
    slot_filled_.notify_one();
    if (eof) return;  // EOF snapshot: equivalence holds for static files
    index = (index + 1) % slots_.size();
  }
}

std::size_t PrefetchReader::read(void* dst, std::size_t bytes) {
  auto* out = static_cast<std::byte*>(dst);
  std::size_t total = 0;
  while (total < bytes) {
    Slot& slot = slots_[head_];
    {
      std::unique_lock<std::mutex> lock(mutex_);
      slot_filled_.wait(lock, [&] { return slot.full || done_; });
      if (!slot.full) break;  // drained past EOF
    }
    const std::size_t have = slot.size - pos_;
    const std::size_t want = bytes - total;
    const std::size_t take = want < have ? want : have;
    std::memcpy(out + total, slot.data.data() + pos_, take);
    pos_ += take;
    total += take;
    if (pos_ == slot.size) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        slot.full = false;
      }
      slot_freed_.notify_one();
      head_ = (head_ + 1) % slots_.size();
      pos_ = 0;
    }
  }
  consumed_ += total;
  return total;
}

}  // namespace fbfs::io
