// Read-ahead streaming: a background thread keeps the next buffer(s) of
// a File in flight while the consumer drains the current one, so a
// sequential scan never stalls on the device (the engines' dominant
// access pattern is exactly this scan — see ISSUE/ROADMAP item 1 and
// the BFS I/O-overlap motivation in arXiv:2503.00430).
//
// The reader is an N-deep ring (num_buffers >= 2; the old
// double-buffering is the N = 2 case). Each fetch cycle gathers every
// currently-free slot — they are always consecutive in ring order — and
// submits them as ONE Device::read_batch: on the modelled backend that
// is an in-order loop of read_at (stats unchanged), on the real backend
// one io_uring submission with up to queue_depth reads in flight.
// Sizing num_buffers to the device's queue depth is what turns the ring
// into genuine parallel I/O.
//
// PrefetchReader is byte-for-byte equivalent to StreamReader on a file
// that is not concurrently appended: same delivered bytes, same
// position() semantics. Every transfer is still charged to the device,
// so per-device IoStats stay exact — the fetcher may read up to
// (num_buffers - 1) buffers past what the consumer ultimately consumes,
// and those transfers are real, charged device operations, exactly like
// a disk's own read-ahead.
//
// Threading: one fetcher thread per reader, one consumer thread assumed
// (the same contract StreamReader has). Slot handoff is mutex+condvar;
// a slot's bytes are only touched by the side that currently owns it
// (fetcher while `full == false`, consumer while `full == true`), with
// the ownership flip always under the mutex.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "storage/device.hpp"
#include "storage/stream.hpp"

namespace fbfs::io {

class PrefetchReader {
 public:
  /// Streams from `offset` with `buffer_bytes` read-ahead granularity;
  /// `num_buffers` (>= 2) is the ring depth — each round of free slots
  /// is submitted as one Device::read_batch.
  PrefetchReader(File& file, std::size_t buffer_bytes,
                 std::uint64_t offset = 0, std::size_t num_buffers = 2);
  ~PrefetchReader();

  PrefetchReader(const PrefetchReader&) = delete;
  PrefetchReader& operator=(const PrefetchReader&) = delete;

  /// Reads up to `bytes`; returns bytes delivered (short only at EOF).
  std::size_t read(void* dst, std::size_t bytes);

  /// Device offset of the next byte this reader will deliver.
  std::uint64_t position() const { return start_offset_ + consumed_; }

 private:
  struct Slot {
    std::vector<std::byte> data;
    std::size_t size = 0;  // valid bytes when full
    bool full = false;     // true: consumer owns; false: fetcher owns
  };

  void fetch_loop();

  File* file_;
  const std::uint64_t start_offset_;
  std::uint64_t consumed_ = 0;

  std::vector<Slot> slots_;
  std::size_t head_ = 0;  // consumer's current slot
  std::size_t pos_ = 0;   // consumed within that slot

  std::mutex mutex_;
  std::condition_variable slot_filled_;
  std::condition_variable slot_freed_;
  bool done_ = false;  // fetcher saw EOF; no further slot will fill
  bool stop_ = false;  // destructor shutting the fetcher down

  std::thread fetcher_;
};

/// Typed sequential reader with read-ahead: RecordReader's contract
/// (including the truncated-tail CHECK), PrefetchReader's overlap.
template <typename T>
using PrefetchRecordReader = BasicRecordReader<T, PrefetchReader>;

}  // namespace fbfs::io
