#include "storage/reader_factory.hpp"

#include "common/check.hpp"

namespace fbfs::io {

ReaderMode parse_reader_mode(const std::string& name) {
  if (name == "plain") return ReaderMode::kPlain;
  if (name == "prefetch") return ReaderMode::kPrefetch;
  FB_CHECK_MSG(false, "unknown reader mode '" << name
                                              << "'; valid values: plain, "
                                                 "prefetch");
  return ReaderMode::kPlain;
}

const char* to_string(ReaderMode mode) {
  return mode == ReaderMode::kPrefetch ? "prefetch" : "plain";
}

ReaderOptions reader_options_from_config(const Config& config) {
  ReaderOptions opts;
  opts.mode = parse_reader_mode(
      config.get_enum_or("io.reader", {"plain", "prefetch"}, "plain"));
  opts.buffer_bytes = static_cast<std::size_t>(
      config.get_bytes_or("io.reader_buffer", opts.buffer_bytes));
  opts.prefetch_depth = std::max<std::size_t>(
      2, config.get_u64_or("io.prefetch_depth", opts.prefetch_depth));
  return opts;
}

std::unique_ptr<ByteSource> open_stream_reader(File& file,
                                               const ReaderOptions& opts) {
  if (opts.mode == ReaderMode::kPrefetch) {
    return std::make_unique<detail::ByteSourceImpl<PrefetchReader>>(
        nullptr, file, opts.buffer_bytes, opts.offset, opts.prefetch_depth);
  }
  return std::make_unique<detail::ByteSourceImpl<StreamReader>>(
      nullptr, file, opts.buffer_bytes, opts.offset);
}

std::unique_ptr<ByteSource> open_stream_reader(Device& device,
                                               const std::string& name,
                                               const ReaderOptions& opts) {
  auto file = device.open(name);
  File& ref = *file;
  if (opts.mode == ReaderMode::kPrefetch) {
    return std::make_unique<detail::ByteSourceImpl<PrefetchReader>>(
        std::move(file), ref, opts.buffer_bytes, opts.offset,
        opts.prefetch_depth);
  }
  return std::make_unique<detail::ByteSourceImpl<StreamReader>>(
      std::move(file), ref, opts.buffer_bytes, opts.offset);
}

}  // namespace fbfs::io
