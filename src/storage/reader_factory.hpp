// The one entry point for opening sequential readers.
//
// The repo has two byte-stream implementations with identical contracts
// — StreamReader (synchronous) and PrefetchReader (background
// read-ahead) — and a typed record view over each. Engine code must not
// care which one it gets: the choice is a *placement/tuning* decision
// (config key `io.reader`), not an algorithmic one. open_stream_reader /
// open_record_reader<T> return type-erased handles (ByteSource /
// RecordSource<T>) so callers never name a concrete reader type; the
// virtual dispatch is per buffer / per batch, invisible next to the
// modelled device time.
//
// Handles opened via the (Device&, name) overloads own the underlying
// File; the (File&) overloads borrow it (the File must outlive the
// handle), which lets many readers stream one open File concurrently.
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <string>

#include "common/config.hpp"
#include "storage/device.hpp"
#include "storage/prefetch.hpp"
#include "storage/stream.hpp"

namespace fbfs::io {

enum class ReaderMode {
  kPlain,     // StreamReader: fetch on demand
  kPrefetch,  // PrefetchReader: background read-ahead thread
};

/// Aborts listing the valid names on anything but "plain"/"prefetch".
ReaderMode parse_reader_mode(const std::string& name);
const char* to_string(ReaderMode mode);

struct ReaderOptions {
  ReaderMode mode = ReaderMode::kPlain;
  std::size_t buffer_bytes = 1 << 20;
  std::uint64_t offset = 0;
  /// PrefetchReader ring depth (>= 2). The default keeps the historic
  /// double-buffering — byte accounting of every existing modelled run
  /// is unchanged. Size it to the device's queue depth to keep a real
  /// backend's ring full (see BackendOptions::queue_depth).
  std::size_t prefetch_depth = 2;

  static ReaderOptions plain(std::size_t buffer_bytes = 1 << 20) {
    return {ReaderMode::kPlain, buffer_bytes, 0, 2};
  }
  static ReaderOptions prefetch(std::size_t buffer_bytes = 1 << 20,
                                std::size_t depth = 2) {
    return {ReaderMode::kPrefetch, buffer_bytes, 0, depth};
  }

  /// Prefetch depth matched to `device`'s backend: the configured queue
  /// depth on a real device, the default double-buffering on a modelled
  /// one (where extra slots buy nothing — the timeline is serial).
  ReaderOptions& match_device(const Device& device) {
    if (device.backend_kind() == BackendKind::kReal) {
      prefetch_depth =
          std::max<std::size_t>(2, device.backend_options().queue_depth);
    }
    return *this;
  }
};

/// Reads `io.reader` (plain | prefetch), `io.reader_buffer` (byte size)
/// and `io.prefetch_depth` (ring depth) with the defaults above.
ReaderOptions reader_options_from_config(const Config& config);

/// Type-erased StreamReader/PrefetchReader: `read` is short only at end
/// of file, `position` is the device offset of the next byte delivered.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  virtual std::size_t read(void* dst, std::size_t bytes) = 0;
  virtual std::uint64_t position() const = 0;
};

/// Type-erased RecordReader<T>/PrefetchRecordReader<T>: the
/// BasicRecordReader contract (truncated-tail CHECK included).
template <typename T>
class RecordSource {
 public:
  virtual ~RecordSource() = default;
  /// Next record into `out`; false at end of stream.
  virtual bool next(T& out) = 0;
  /// Up to one buffer of records; empty at end of stream. The span is
  /// valid until the next call.
  virtual std::span<const T> next_batch() = 0;
};

namespace detail {

template <typename Reader>
class ByteSourceImpl final : public ByteSource {
 public:
  template <typename... Extra>
  ByteSourceImpl(std::unique_ptr<File> owned, File& file,
                 std::size_t buffer_bytes, std::uint64_t offset,
                 Extra... extra)
      : owned_(std::move(owned)),
        reader_(file, buffer_bytes, offset, extra...) {}

  std::size_t read(void* dst, std::size_t bytes) override {
    return reader_.read(dst, bytes);
  }
  std::uint64_t position() const override { return reader_.position(); }

 private:
  std::unique_ptr<File> owned_;  // null when borrowing the caller's File
  Reader reader_;
};

template <typename T, typename Reader>
class RecordSourceImpl final : public RecordSource<T> {
 public:
  template <typename... Extra>
  RecordSourceImpl(std::unique_ptr<File> owned, File& file,
                   std::size_t buffer_bytes, std::uint64_t offset,
                   Extra... extra)
      : owned_(std::move(owned)),
        reader_(file, buffer_bytes, offset, extra...) {}

  bool next(T& out) override { return reader_.next(out); }
  std::span<const T> next_batch() override { return reader_.next_batch(); }

 private:
  std::unique_ptr<File> owned_;
  BasicRecordReader<T, Reader> reader_;
};

}  // namespace detail

/// Borrowing byte reader over an already-open File.
std::unique_ptr<ByteSource> open_stream_reader(File& file,
                                               const ReaderOptions& opts);
/// Owning byte reader over `name` on `device` (must exist).
std::unique_ptr<ByteSource> open_stream_reader(Device& device,
                                               const std::string& name,
                                               const ReaderOptions& opts);

/// Borrowing record reader over an already-open File.
template <typename T>
std::unique_ptr<RecordSource<T>> open_record_reader(File& file,
                                                    const ReaderOptions& opts) {
  if (opts.mode == ReaderMode::kPrefetch) {
    return std::make_unique<detail::RecordSourceImpl<T, PrefetchReader>>(
        nullptr, file, opts.buffer_bytes, opts.offset, opts.prefetch_depth);
  }
  return std::make_unique<detail::RecordSourceImpl<T, StreamReader>>(
      nullptr, file, opts.buffer_bytes, opts.offset);
}

/// Owning record reader over `name` on `device` (must exist).
template <typename T>
std::unique_ptr<RecordSource<T>> open_record_reader(Device& device,
                                                    const std::string& name,
                                                    const ReaderOptions& opts) {
  auto file = device.open(name);
  File& ref = *file;
  if (opts.mode == ReaderMode::kPrefetch) {
    return std::make_unique<detail::RecordSourceImpl<T, PrefetchReader>>(
        std::move(file), ref, opts.buffer_bytes, opts.offset,
        opts.prefetch_depth);
  }
  return std::make_unique<detail::RecordSourceImpl<T, StreamReader>>(
      std::move(file), ref, opts.buffer_bytes, opts.offset);
}

}  // namespace fbfs::io
