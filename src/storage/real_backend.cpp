// RealBackend: measured I/O on the host filesystem.
//
// Three capability tiers, probed once at construction and degraded
// gracefully (describe() reports which are live):
//
//  * O_DIRECT — every File gets a second fd opened O_DIRECT; reads
//    bypass the page cache so the numbers are the disk's, not the
//    kernel's. Direct transfers need offset/length/buffer alignment, so
//    unaligned requests bounce through an AlignedBufferPool and the
//    logical slice is copied out. Filesystems that refuse O_DIRECT
//    (tmpfs in CI) fall back to buffered I/O + posix_fadvise(DONTNEED),
//    the closest cache-bypass approximation available there.
//
//  * io_uring — read_batch submits up to queue_depth positional reads
//    as one ring submission, completing and resubmitting partial reads
//    until the batch drains. Raw syscalls (io_uring_setup/enter + ring
//    mmaps); the container has no liburing and the ABI is stable.
//    Kernels without io_uring fall back to a synchronous pread loop.
//
//  * synchronous pread/pwrite — always available; also the single-op
//    read_at/write_at path.
//
// Accounting: byte/op/seek counters stay exactly the logical traffic
// (identical to the modelled backend); busy_ns records measured wall
// time per op while model_busy_ns records the DeviceModel's prediction,
// and per-op measured latency feeds the Device's LatencyHistograms.
// Batch wall time is split across the batch's requests proportionally
// to bytes transferred.
//
// O_DIRECT EOF tail: a direct pread of the last, partially-filled block
// returns an unaligned count; continuing from the now-unaligned offset
// would EINVAL. The read loops below treat any unaligned direct-read
// count as end of file — which is the only place it can occur.
#include "storage/device.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#define FBFS_HAVE_URING_ABI 1
#else
#define FBFS_HAVE_URING_ABI 0
#endif

#include "common/aligned_buffer.hpp"
#include "common/log.hpp"

namespace fbfs::io {

namespace {

using steady_clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno_msg(const std::string& what, int err) {
  throw IoError(what + ": " + std::strerror(err));
}

std::uint64_t elapsed_ns(steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          steady_clock::now() - since)
          .count());
}

#if FBFS_HAVE_URING_ABI

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

/// One io_uring instance: SQ/CQ ring mmaps + SQE array, single-threaded
/// use (RingPool hands each ring to one thread at a time). Only
/// IORING_OP_READ is ever queued.
class UringRing {
 public:
  struct Completion {
    std::uint64_t user_data;
    std::int32_t res;  // bytes read, or -errno
  };

  /// nullptr when the kernel lacks io_uring (or setup fails for any
  /// reason — memlock limits, seccomp, ...).
  static std::unique_ptr<UringRing> create(unsigned entries) {
    io_uring_params p{};
    const int fd = sys_io_uring_setup(entries, &p);
    if (fd < 0) return nullptr;
    auto ring = std::unique_ptr<UringRing>(new UringRing);
    ring->ring_fd_ = fd;
    ring->sq_entries_ = p.sq_entries;

    std::size_t sq_size = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    std::size_t cq_size = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) sq_size = cq_size = std::max(sq_size, cq_size);

    ring->sq_size_ = sq_size;
    ring->sq_ptr_ = ::mmap(nullptr, sq_size, PROT_READ | PROT_WRITE,
                           MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
    if (ring->sq_ptr_ == MAP_FAILED) return (ring->sq_ptr_ = nullptr), nullptr;
    if (single_mmap) {
      ring->cq_ptr_ = ring->sq_ptr_;
      ring->cq_size_ = 0;  // shared mapping, unmapped via sq_ptr_
    } else {
      ring->cq_size_ = cq_size;
      ring->cq_ptr_ = ::mmap(nullptr, cq_size, PROT_READ | PROT_WRITE,
                             MAP_SHARED | MAP_POPULATE, fd,
                             IORING_OFF_CQ_RING);
      if (ring->cq_ptr_ == MAP_FAILED) {
        return (ring->cq_ptr_ = nullptr), nullptr;
      }
    }
    ring->sqes_size_ = p.sq_entries * sizeof(io_uring_sqe);
    void* sqes = ::mmap(nullptr, ring->sqes_size_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES);
    if (sqes == MAP_FAILED) return nullptr;
    ring->sqes_ = static_cast<io_uring_sqe*>(sqes);

    auto* sq = static_cast<char*>(ring->sq_ptr_);
    ring->sq_head_ = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
    ring->sq_tail_ = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
    ring->sq_mask_ = *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
    ring->sq_array_ = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
    auto* cq = static_cast<char*>(ring->cq_ptr_);
    ring->cq_head_ = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
    ring->cq_tail_ = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
    ring->cq_mask_ = *reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
    ring->cqes_ = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);
    return ring;
  }

  ~UringRing() {
    if (sqes_ != nullptr) ::munmap(sqes_, sqes_size_);
    if (cq_ptr_ != nullptr && cq_size_ != 0) ::munmap(cq_ptr_, cq_size_);
    if (sq_ptr_ != nullptr) ::munmap(sq_ptr_, sq_size_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  unsigned depth() const { return sq_entries_; }

  bool can_push() const {
    const unsigned head =
        std::atomic_ref<unsigned>(*sq_head_).load(std::memory_order_acquire);
    const unsigned tail = *sq_tail_;
    return tail - head < sq_entries_;
  }

  /// Queues one positional read; caller guarantees can_push().
  void push_read(int fd, void* buf, unsigned len, std::uint64_t off,
                 std::uint64_t user_data) {
    const unsigned tail = *sq_tail_;
    const unsigned idx = tail & sq_mask_;
    io_uring_sqe& sqe = sqes_[idx];
    std::memset(&sqe, 0, sizeof(sqe));
    sqe.opcode = IORING_OP_READ;
    sqe.fd = fd;
    sqe.addr = reinterpret_cast<std::uint64_t>(buf);
    sqe.len = len;
    sqe.off = off;
    sqe.user_data = user_data;
    sq_array_[idx] = idx;
    std::atomic_ref<unsigned>(*sq_tail_).store(tail + 1,
                                               std::memory_order_release);
    ++to_submit_;
  }

  /// Submits queued SQEs and, when `min_complete` > 0, blocks for at
  /// least that many completions; reaps everything available into
  /// `out`. Throws IoError if the kernel rejects the submission itself.
  void submit_and_wait(unsigned min_complete, std::vector<Completion>& out) {
    out.clear();
    while (true) {
      const int ret =
          sys_io_uring_enter(ring_fd_, to_submit_, min_complete,
                             min_complete > 0 ? IORING_ENTER_GETEVENTS : 0);
      if (ret < 0) {
        if (errno == EINTR) continue;
        throw_errno_msg("io_uring_enter", errno);
      }
      to_submit_ -= static_cast<unsigned>(ret);
      break;
    }

    unsigned head = *cq_head_;
    const unsigned tail =
        std::atomic_ref<unsigned>(*cq_tail_).load(std::memory_order_acquire);
    while (head != tail) {
      const io_uring_cqe& cqe = cqes_[head & cq_mask_];
      out.push_back({cqe.user_data, cqe.res});
      ++head;
    }
    std::atomic_ref<unsigned>(*cq_head_).store(head,
                                               std::memory_order_release);
  }

 private:
  UringRing() = default;

  int ring_fd_ = -1;
  unsigned sq_entries_ = 0;
  void* sq_ptr_ = nullptr;
  std::size_t sq_size_ = 0;
  void* cq_ptr_ = nullptr;
  std::size_t cq_size_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sqes_size_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  unsigned to_submit_ = 0;
};

/// Rings are cheap to park and ~10us to create; concurrent batches each
/// borrow one (single-threaded use per ring) and return it.
class RingPool {
 public:
  explicit RingPool(unsigned depth) : depth_(depth) {}

  std::unique_ptr<UringRing> acquire() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!pool_.empty()) {
        auto ring = std::move(pool_.back());
        pool_.pop_back();
        return ring;
      }
    }
    return UringRing::create(depth_);
  }

  void release(std::unique_ptr<UringRing> ring) {
    if (ring == nullptr) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (pool_.size() < 8) pool_.push_back(std::move(ring));
  }

 private:
  const unsigned depth_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<UringRing>> pool_;
};

#endif  // FBFS_HAVE_URING_ABI

class RealBackend final : public IoBackend {
 public:
  RealBackend(Device& device, const BackendOptions& options)
      : device_(device),
        opts_(options),
        align_(options.alignment == 0 ? 4096 : options.alignment),
        queue_depth_(std::clamp(options.queue_depth, 1u, 256u)),
        pool_(align_, /*max_cached=*/2 * queue_depth_ + 4)
#if FBFS_HAVE_URING_ABI
        ,
        rings_(queue_depth_)
#endif
  {
    direct_ok_ = opts_.direct_io && probe_direct();
#if FBFS_HAVE_URING_ABI
    if (opts_.use_uring) {
      auto probe = rings_.acquire();
      uring_ok_ = probe != nullptr;
      rings_.release(std::move(probe));
    }
#endif
    if (opts_.direct_io && !direct_ok_) {
      FB_LOG_WARN << "device " << device_.root_dir()
                  << ": filesystem refuses O_DIRECT, falling back to "
                     "buffered I/O + posix_fadvise(DONTNEED)";
    }
  }

  BackendKind kind() const override { return BackendKind::kReal; }

  std::string describe() const override {
    std::string out = "real(";
    out += direct_ok_ ? "direct" : "buffered";
    out += uring_ok_ ? "+uring qd=" + std::to_string(queue_depth_) : "+sync";
    out += ")";
    return out;
  }

  void open_file(const std::string& path, bool truncate, int* fd,
                 int* direct_fd) override {
    int flags = O_RDWR | O_CLOEXEC;
    if (truncate) flags |= O_CREAT | O_TRUNC;
    *fd = ::open(path.c_str(), flags, 0644);
    if (*fd < 0) throw_errno_msg("open " + path, errno);
    *direct_fd = -1;
#ifdef O_DIRECT
    if (direct_ok_) {
      // The buffered open above already created the file; this one must
      // not truncate (the two fds alias one inode).
      *direct_fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC | O_DIRECT, 0644);
      // A per-file refusal (probe passed, this open failed) silently
      // degrades this File to the buffered path.
    }
#endif
  }

  std::size_t read_at(File& file, std::uint64_t offset, void* dst,
                      std::size_t bytes) override {
    if (bytes == 0) return 0;
    const auto start = steady_clock::now();
    const std::size_t total =
        direct_fd(file) >= 0 ? direct_read(file, offset, dst, bytes)
                             : buffered_read(file, offset, dst, bytes);
    if (total > 0) {
      account_measured(device_, /*is_write=*/false, file_id(file), offset,
                       total, elapsed_ns(start));
    }
    return total;
  }

  void write_at(File& file, std::uint64_t offset, const void* src,
                std::size_t bytes) override {
    const auto start = steady_clock::now();
    const bool aligned_op = offset % align_ == 0 && bytes % align_ == 0;
    if (direct_fd(file) >= 0 && aligned_op) {
      direct_write(file, offset, src, bytes);
    } else {
      buffered_write(file, offset, src, bytes);
    }
    account_measured(device_, /*is_write=*/true, file_id(file), offset, bytes,
                     elapsed_ns(start));
  }

  void read_batch(std::span<ReadRequest> requests) override;

  void sync(File& file) override {
    if (::fdatasync(fd(file)) != 0) {
      throw_errno_msg("fdatasync " + file.path(), errno);
    }
  }

 private:
  bool probe_direct() {
#ifdef O_DIRECT
    const std::string probe = device_.root_dir() + "/.fbfs_direct_probe";
    const int fd = ::open(probe.c_str(),
                          O_CREAT | O_RDWR | O_CLOEXEC | O_DIRECT, 0644);
    ::unlink(probe.c_str());
    if (fd < 0) return false;
    ::close(fd);
    return true;
#else
    return false;
#endif
  }

  std::size_t buffered_pread_loop(File& file, char* out, std::size_t bytes,
                                  std::uint64_t offset) {
    std::size_t total = 0;
    while (total < bytes) {
      const ssize_t n = ::pread(fd(file), out + total, bytes - total,
                                static_cast<off_t>(offset + total));
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno_msg("pread " + file.path(), errno);
      }
      if (n == 0) break;
      total += static_cast<std::size_t>(n);
    }
    return total;
  }

  std::size_t buffered_read(File& file, std::uint64_t offset, void* dst,
                            std::size_t bytes) {
    const std::size_t total =
        buffered_pread_loop(file, static_cast<char*>(dst), bytes, offset);
    drop_cache(file, offset, total);
    return total;
  }

  /// Direct pread loop; an unaligned count is the EOF tail (see file
  /// header) and ends the read. EINVAL mid-stream degrades to the
  /// buffered fd for the remainder.
  std::size_t direct_pread_loop(File& file, char* out, std::size_t bytes,
                                std::uint64_t offset) {
    std::size_t total = 0;
    while (total < bytes) {
      const ssize_t n = ::pread(direct_fd(file), out + total, bytes - total,
                                static_cast<off_t>(offset + total));
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EINVAL) {
          return total + buffered_pread_loop(file, out + total, bytes - total,
                                             offset + total);
        }
        throw_errno_msg("pread(O_DIRECT) " + file.path(), errno);
      }
      if (n == 0) break;
      total += static_cast<std::size_t>(n);
      if (static_cast<std::size_t>(n) % align_ != 0) break;
    }
    return total;
  }

  std::size_t direct_read(File& file, std::uint64_t offset, void* dst,
                          std::size_t bytes) {
    const std::uint64_t mask = align_ - 1;
    const std::uint64_t astart = offset & ~mask;
    const std::uint64_t aend = (offset + bytes + mask) & ~mask;
    const std::size_t span = static_cast<std::size_t>(aend - astart);
    const bool in_place =
        astart == offset && span == bytes &&
        reinterpret_cast<std::uintptr_t>(dst) % align_ == 0;
    if (in_place) {
      return direct_pread_loop(file, static_cast<char*>(dst), bytes, offset);
    }
    AlignedBuffer buf = pool_.acquire(span);
    const std::size_t got = direct_pread_loop(
        file, reinterpret_cast<char*>(buf.data()), span, astart);
    const std::size_t skip = static_cast<std::size_t>(offset - astart);
    const std::size_t logical = got > skip ? std::min(bytes, got - skip) : 0;
    if (logical > 0) std::memcpy(dst, buf.data() + skip, logical);
    pool_.release(std::move(buf));
    return logical;
  }

  void buffered_pwrite_loop(File& file, const char* in, std::size_t bytes,
                            std::uint64_t offset) {
    std::size_t total = 0;
    while (total < bytes) {
      const ssize_t n = ::pwrite(fd(file), in + total, bytes - total,
                                 static_cast<off_t>(offset + total));
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno_msg("pwrite " + file.path(), errno);
      }
      total += static_cast<std::size_t>(n);
    }
  }

  void buffered_write(File& file, std::uint64_t offset, const void* src,
                      std::size_t bytes) {
    buffered_pwrite_loop(file, static_cast<const char*>(src), bytes, offset);
    // Starts writeback and drops the clean pages: keeps the page cache
    // from absorbing the write stream (the cache-bypass approximation on
    // filesystems without O_DIRECT) and keeps later direct reads cheap.
    drop_cache(file, offset, bytes);
  }

  void direct_write(File& file, std::uint64_t offset, const void* src,
                    std::size_t bytes) {
    const char* in = static_cast<const char*>(src);
    AlignedBuffer bounce;
    if (reinterpret_cast<std::uintptr_t>(src) % align_ != 0) {
      bounce = pool_.acquire(bytes);
      std::memcpy(bounce.data(), src, bytes);
      in = reinterpret_cast<const char*>(bounce.data());
    }
    std::size_t total = 0;
    while (total < bytes) {
      const ssize_t n = ::pwrite(direct_fd(file), in + total, bytes - total,
                                 static_cast<off_t>(offset + total));
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EINVAL) {
          buffered_pwrite_loop(file,
                               static_cast<const char*>(src) + total,
                               bytes - total, offset + total);
          total = bytes;
          break;
        }
        throw_errno_msg("pwrite(O_DIRECT) " + file.path(), errno);
      }
      total += static_cast<std::size_t>(n);
      if (total < bytes && static_cast<std::size_t>(n) % align_ != 0) {
        // Kernel stopped at an unaligned boundary; finish buffered.
        buffered_pwrite_loop(file,
                             static_cast<const char*>(src) + total,
                             bytes - total, offset + total);
        total = bytes;
      }
    }
    if (!bounce.empty()) pool_.release(std::move(bounce));
  }

  void drop_cache(File& file, std::uint64_t offset, std::size_t bytes) {
    if (bytes == 0) return;
    ::posix_fadvise(fd(file), static_cast<off_t>(offset),
                    static_cast<off_t>(bytes), POSIX_FADV_DONTNEED);
  }

  void sync_read_batch(std::span<ReadRequest> requests) {
    for (ReadRequest& r : requests) {
      r.got = read_at(*r.file, r.offset, r.dst, r.bytes);
    }
  }

  Device& device_;
  const BackendOptions opts_;
  const std::size_t align_;
  const unsigned queue_depth_;
  AlignedBufferPool pool_;
  bool direct_ok_ = false;
  bool uring_ok_ = false;
#if FBFS_HAVE_URING_ABI
  RingPool rings_;
#endif
};

#if FBFS_HAVE_URING_ABI

/// Per-request in-flight state for a ring batch. Direct requests read
/// an aligned superspan (bounced unless the caller's buffer already
/// qualifies); buffered requests read straight into the caller's dst.
struct BatchSlot {
  ReadRequest* req = nullptr;
  AlignedBuffer bounce;             // empty => reading in place
  char* target = nullptr;           // where sub-reads land
  int fd = -1;
  bool direct = false;
  std::uint64_t start = 0;          // first byte to read at target[0]
  std::size_t span = 0;             // total bytes wanted at `start`
  std::size_t done = 0;             // bytes transferred so far
  bool finished = false;
};

#endif  // FBFS_HAVE_URING_ABI

void RealBackend::read_batch(std::span<ReadRequest> requests) {
  if (requests.empty()) return;
#if FBFS_HAVE_URING_ABI
  if (!uring_ok_ || requests.size() == 1) {
    sync_read_batch(requests);
    return;
  }
  auto ring = rings_.acquire();
  if (ring == nullptr) {
    sync_read_batch(requests);
    return;
  }
  const auto batch_start = steady_clock::now();

  std::vector<BatchSlot> slots;
  slots.reserve(requests.size());
  const std::uint64_t mask = align_ - 1;
  for (ReadRequest& r : requests) {
    r.got = 0;
    if (r.bytes == 0) continue;
    BatchSlot s;
    s.req = &r;
    s.direct = direct_fd(*r.file) >= 0;
    if (s.direct) {
      s.fd = direct_fd(*r.file);
      s.start = r.offset & ~mask;
      const std::uint64_t aend = (r.offset + r.bytes + mask) & ~mask;
      s.span = static_cast<std::size_t>(aend - s.start);
      const bool in_place =
          s.start == r.offset && s.span == r.bytes &&
          reinterpret_cast<std::uintptr_t>(r.dst) % align_ == 0;
      if (in_place) {
        s.target = static_cast<char*>(r.dst);
      } else {
        s.bounce = pool_.acquire(s.span);
        s.target = reinterpret_cast<char*>(s.bounce.data());
      }
    } else {
      s.fd = fd(*r.file);
      s.start = r.offset;
      s.span = r.bytes;
      s.target = static_cast<char*>(r.dst);
    }
    slots.push_back(std::move(s));
  }

  auto finalize = [&](BatchSlot& s) {
    s.finished = true;
    ReadRequest& r = *s.req;
    if (!s.bounce.empty()) {
      const std::size_t skip = static_cast<std::size_t>(r.offset - s.start);
      const std::size_t logical =
          s.done > skip ? std::min(r.bytes, s.done - skip) : 0;
      if (logical > 0) std::memcpy(r.dst, s.bounce.data() + skip, logical);
      r.got = logical;
      pool_.release(std::move(s.bounce));
    } else {
      r.got = std::min(s.done, r.bytes);
    }
    if (!s.direct) drop_cache(*r.file, r.offset, r.got);
  };

  // Fill the ring up to queue_depth, reap, resubmit partial reads until
  // every slot has drained. On a hard error: stop feeding, drain what
  // is in flight (the kernel still owns those buffers), then throw.
  std::vector<UringRing::Completion> completions;
  std::size_t next = 0;    // next slot to enter the ring
  unsigned in_flight = 0;
  std::string error;
  try {
    while (next < slots.size() || in_flight > 0) {
      while (error.empty() && next < slots.size() &&
             in_flight < queue_depth_ && ring->can_push()) {
        BatchSlot& s = slots[next];
        ring->push_read(s.fd, s.target + s.done,
                        static_cast<unsigned>(s.span - s.done),
                        s.start + s.done, next);
        ++next;
        ++in_flight;
      }
      if (in_flight == 0) break;
      ring->submit_and_wait(/*min_complete=*/1, completions);
      for (const auto& c : completions) {
        BatchSlot& s = slots[c.user_data];
        --in_flight;
        if (!error.empty()) {
          // Draining after a failure: just retire the slot.
          if (!s.finished) finalize(s);
          continue;
        }
        if (c.res < 0) {
          if (c.res == -EINTR || c.res == -EAGAIN) {
            ring->push_read(s.fd, s.target + s.done,
                            static_cast<unsigned>(s.span - s.done),
                            s.start + s.done, c.user_data);
            ++in_flight;
            continue;
          }
          if (c.res == -EINVAL && s.direct) {
            // Direct refusal inside the ring: finish this slot via the
            // buffered fd, synchronously.
            s.done += buffered_pread_loop(*s.req->file, s.target + s.done,
                                          s.span - s.done, s.start + s.done);
            finalize(s);
            continue;
          }
          error = std::string("io_uring read ") + s.req->file->path() + ": " +
                  std::strerror(-c.res);
          finalize(s);
          continue;
        }
        const auto n = static_cast<std::size_t>(c.res);
        s.done += n;
        const bool eof = n == 0 || (s.direct && n % align_ != 0);
        if (s.done >= s.span || eof) {
          finalize(s);
        } else {
          ring->push_read(s.fd, s.target + s.done,
                          static_cast<unsigned>(s.span - s.done),
                          s.start + s.done, c.user_data);
          ++in_flight;
        }
      }
    }
  } catch (...) {
    rings_.release(std::move(ring));
    throw;
  }
  rings_.release(std::move(ring));
  if (!error.empty()) throw IoError(error);

  // Split the batch's wall time across its requests proportionally to
  // bytes, so per-op latency and busy_ns stay meaningful.
  const std::uint64_t total_ns = elapsed_ns(batch_start);
  std::uint64_t total_got = 0;
  for (const ReadRequest& r : requests) total_got += r.got;
  for (const ReadRequest& r : requests) {
    if (r.got == 0) continue;
    const std::uint64_t share =
        total_got == 0 ? 0
                       : static_cast<std::uint64_t>(
                             static_cast<double>(total_ns) *
                             static_cast<double>(r.got) /
                             static_cast<double>(total_got));
    account_measured(device_, /*is_write=*/false, file_id(*r.file), r.offset,
                     r.got, share);
  }
#else
  sync_read_batch(requests);
#endif
}

}  // namespace

std::unique_ptr<IoBackend> make_real_backend(Device& device,
                                             const BackendOptions& options) {
  return std::make_unique<RealBackend>(device, options);
}

}  // namespace fbfs::io
