#include "storage/storage_plan.hpp"

#include "common/check.hpp"

namespace fbfs::io {

const char* to_string(Role role) {
  switch (role) {
    case Role::kEdges:
      return "edges";
    case Role::kState:
      return "state";
    case Role::kUpdates:
      return "updates";
    case Role::kStay:
      return "stay";
  }
  return "?";
}

BackendOptions backend_options_from_config(const Config& config) {
  BackendOptions opts;
  opts.kind = backend_kind_from_string(
      config.get_enum_or("storage.backend", {"modelled", "real"}, "modelled"));
  opts.direct_io = config.get_bool_or("storage.direct_io", opts.direct_io);
  opts.use_uring = config.get_bool_or("storage.uring", opts.use_uring);
  opts.queue_depth = static_cast<unsigned>(
      config.get_u64_or("storage.queue_depth", opts.queue_depth));
  opts.alignment = static_cast<std::size_t>(
      config.get_bytes_or("storage.alignment", opts.alignment));
  return opts;
}

BackendOptions backend_options_from_config(const Config& config, Role role) {
  BackendOptions opts = backend_options_from_config(config);
  const std::string key = std::string("storage.backend.") + to_string(role);
  if (config.has(key)) {
    opts.kind = backend_kind_from_string(
        config.get_enum(key, {"modelled", "real"}));
  }
  return opts;
}

StoragePlan StoragePlan::single(Device& device) {
  StoragePlan plan;
  plan.devices_.fill(&device);
  return plan;
}

StoragePlan StoragePlan::dual(Device& main, Device& aux) {
  StoragePlan plan;
  plan.devices_.fill(&main);
  plan.assign(Role::kUpdates, aux);
  plan.assign(Role::kStay, aux);
  return plan;
}

StoragePlan& StoragePlan::assign(Role role, Device& device) {
  devices_[static_cast<std::size_t>(role)] = &device;
  return *this;
}

Device& StoragePlan::device(Role role) const {
  Device* dev = devices_[static_cast<std::size_t>(role)];
  FB_CHECK_MSG(dev != nullptr, "storage plan has no device for role "
                                   << to_string(role));
  return *dev;
}

std::array<IoStatsSnapshot, kNumRoles> StoragePlan::stats_snapshot() const {
  std::array<IoStatsSnapshot, kNumRoles> out;
  for (std::size_t r = 0; r < kNumRoles; ++r) {
    out[r] = device(static_cast<Role>(r)).stats().snapshot();
  }
  return out;
}

bool StoragePlan::dedicated(Role role) const {
  const Device* dev = devices_[static_cast<std::size_t>(role)];
  for (std::size_t r = 0; r < kNumRoles; ++r) {
    if (r == static_cast<std::size_t>(role)) continue;
    if (devices_[r] == dev) return false;
  }
  return true;
}

}  // namespace fbfs::io
