// StoragePlan: which Device serves which stream role.
//
// The paper's dual-disk placement (§IV-E) puts the dominant edge read
// stream on one disk and the introduced write streams (stay files,
// update streams) on another, so they do not fight over one spindle.
// Instead of threading individual Device& parameters through the
// partitioner and engines — ad-hoc and impossible to extend when the
// stay stream lands (PR 4) — a StoragePlan names the four stream roles
// and maps each to a Device. Engines ask the plan, never a bare Device.
//
// Devices are borrowed: the plan holds pointers, the caller keeps the
// Devices alive for the plan's lifetime (same convention as
// ParallelBuildOptions::shard_devices).
#pragma once

#include <array>
#include <cstddef>

#include "common/config.hpp"
#include "storage/device.hpp"
#include "storage/io_stats.hpp"

namespace fbfs::io {

enum class Role : std::size_t {
  kEdges = 0,    // edge files: graph input, partition files, CSR source
  kState = 1,    // per-partition vertex state files
  kUpdates = 2,  // scatter->gather update streams
  kStay = 3,     // trimmed "stay" edge files (PR 4's AsyncWriter output)
};
inline constexpr std::size_t kNumRoles = 4;

const char* to_string(Role role);

/// Backend selection from the `storage.*` config keys: `storage.backend`
/// (modelled | real), `storage.direct_io`, `storage.uring`,
/// `storage.queue_depth`, `storage.alignment` — defaults are
/// BackendOptions{} (modelled; tuning keys only matter for real).
BackendOptions backend_options_from_config(const Config& config);

/// Same, then applies the per-role override `storage.backend.<role>`
/// (e.g. `storage.backend.updates = real` puts only the update streams
/// on a measured device while everything else stays modelled). Feed the
/// result to the Device constructed for that role before handing it to
/// StoragePlan::assign.
BackendOptions backend_options_from_config(const Config& config, Role role);

class StoragePlan {
 public:
  /// Everything on one device (the paper's single-disk baseline).
  static StoragePlan single(Device& device);

  /// The paper's dual-disk placement: the read-dominated roles (edges,
  /// state) on `main`, the introduced write streams (updates, stay) on
  /// `aux`.
  static StoragePlan dual(Device& main, Device& aux);

  /// Re-points one role (e.g. state onto an SSD).
  StoragePlan& assign(Role role, Device& device);

  Device& device(Role role) const;
  Device& edges() const { return device(Role::kEdges); }
  Device& state() const { return device(Role::kState); }
  Device& updates() const { return device(Role::kUpdates); }
  Device& stay() const { return device(Role::kStay); }

  /// True when `role` shares its device with no other role (the streams
  /// genuinely do not contend).
  bool dedicated(Role role) const;

  /// One IoStats snapshot per role, taken from each role's device. Two
  /// snapshots bracket an engine phase; their per-role deltas are the
  /// phase's traffic. When roles share a device the shared counters
  /// appear under every role mapped to it — attribution is exact only
  /// for dedicated() roles.
  std::array<IoStatsSnapshot, kNumRoles> stats_snapshot() const;

 private:
  StoragePlan() = default;

  std::array<Device*, kNumRoles> devices_{};
};

}  // namespace fbfs::io
