// Buffered sequential streams over Device files.
//
// StreamWriter / StreamReader move raw bytes through a private buffer so
// the device sees few, large, sequential transfers (the access pattern
// every engine in this repo is built around). RecordWriter<T> /
// RecordReader<T> are the typed views the engines actually use: an edge
// or update file is a flat array of trivially-copyable records.
//
// Readers keep a private cursor over positional reads, so any number of
// readers can stream one File concurrently.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "storage/device.hpp"

namespace fbfs::io {

class StreamWriter {
 public:
  /// Buffers up to `buffer_bytes` before each device append.
  StreamWriter(File& file, std::size_t buffer_bytes)
      : file_(&file), buffer_(buffer_bytes == 0 ? 1 : buffer_bytes) {}

  ~StreamWriter() {
    // Callers should flush() (it can throw); last-chance best effort.
    if (fill_ > 0) {
      try {
        flush();
      } catch (const IoError&) {
      }
    }
  }

  StreamWriter(const StreamWriter&) = delete;
  StreamWriter& operator=(const StreamWriter&) = delete;

  void append(std::span<const std::byte> data) {
    append_raw(data.data(), data.size());
  }

  void append_raw(const void* src, std::size_t bytes) {
    const auto* in = static_cast<const std::byte*>(src);
    // Writes at least one buffer large bypass staging entirely: flush the
    // buffered prefix, then hand the payload to the device as one
    // transfer instead of memcpy-ing it through the buffer a piece at a
    // time. Byte stream and ordering are unchanged; only the copy and
    // the operation count shrink.
    if (bytes >= buffer_.size()) {
      flush();
      file_->append(in, bytes);
      logical_bytes_ += bytes;
      return;
    }
    while (bytes > 0) {
      const std::size_t room = buffer_.size() - fill_;
      const std::size_t take = bytes < room ? bytes : room;
      std::memcpy(buffer_.data() + fill_, in, take);
      fill_ += take;
      in += take;
      bytes -= take;
      if (fill_ == buffer_.size()) flush();
    }
  }

  /// Pushes buffered bytes to the device.
  void flush() {
    if (fill_ == 0) return;
    file_->append(buffer_.data(), fill_);
    logical_bytes_ += fill_;
    fill_ = 0;
  }

  /// Total bytes accepted, flushed or not.
  std::uint64_t bytes_appended() const { return logical_bytes_ + fill_; }

 private:
  File* file_;
  std::vector<std::byte> buffer_;
  std::size_t fill_ = 0;
  std::uint64_t logical_bytes_ = 0;
};

class StreamReader {
 public:
  /// Streams from `offset` with `buffer_bytes` read-ahead granularity.
  StreamReader(File& file, std::size_t buffer_bytes, std::uint64_t offset = 0)
      : file_(&file),
        buffer_(buffer_bytes == 0 ? 1 : buffer_bytes),
        offset_(offset) {}

  StreamReader(const StreamReader&) = delete;
  StreamReader& operator=(const StreamReader&) = delete;

  /// Reads up to `bytes`; returns bytes delivered (short only at EOF).
  std::size_t read(void* dst, std::size_t bytes) {
    auto* out = static_cast<std::byte*>(dst);
    std::size_t total = 0;
    while (total < bytes) {
      if (pos_ == avail_) {
        avail_ = file_->read_at(offset_, buffer_.data(), buffer_.size());
        offset_ += avail_;
        pos_ = 0;
        if (avail_ == 0) break;  // end of file
      }
      const std::size_t have = avail_ - pos_;
      const std::size_t want = bytes - total;
      const std::size_t take = want < have ? want : have;
      std::memcpy(out + total, buffer_.data() + pos_, take);
      pos_ += take;
      total += take;
    }
    return total;
  }

  /// Device offset of the next byte this reader will deliver.
  std::uint64_t position() const { return offset_ - (avail_ - pos_); }

 private:
  File* file_;
  std::vector<std::byte> buffer_;
  std::uint64_t offset_;       // next device offset to fetch
  std::size_t pos_ = 0;        // consumed within buffer_
  std::size_t avail_ = 0;      // valid bytes in buffer_
};

/// Typed append stream of trivially-copyable records.
template <typename T>
class RecordWriter {
 public:
  static_assert(std::is_trivially_copyable_v<T>);

  RecordWriter(File& file, std::size_t buffer_bytes)
      : bytes_(file, buffer_bytes < sizeof(T) ? sizeof(T) : buffer_bytes) {}

  void append(const T& record) { bytes_.append_raw(&record, sizeof(T)); }

  void append_batch(std::span<const T> records) {
    bytes_.append_raw(records.data(), records.size() * sizeof(T));
  }
  void append_batch(const std::vector<T>& records) {
    append_batch(std::span<const T>(records));
  }

  void flush() { bytes_.flush(); }

  std::uint64_t records_appended() const {
    return bytes_.bytes_appended() / sizeof(T);
  }

 private:
  StreamWriter bytes_;
};

/// Typed sequential reader over any byte stream with the StreamReader
/// interface — `read(void*, size_t)` (short only at end of stream) and a
/// `(File&, std::size_t, std::uint64_t, ...)` constructor; trailing
/// `extra` arguments are forwarded to the stream (PrefetchReader's ring
/// depth). The file length past the start offset must be a whole number
/// of records: a truncated trailing record is a CHECK failure at EOF,
/// never silently dropped.
template <typename T, typename ByteStream>
class BasicRecordReader {
 public:
  static_assert(std::is_trivially_copyable_v<T>);

  template <typename... Extra>
  explicit BasicRecordReader(File& file, std::size_t buffer_bytes,
                             std::uint64_t offset = 0, Extra... extra)
      : bytes_(file, buffer_bytes < sizeof(T) ? sizeof(T) : buffer_bytes,
               offset, extra...),
        batch_((buffer_bytes < sizeof(T) ? sizeof(T) : buffer_bytes) /
               sizeof(T)) {
    FB_CHECK_MSG(offset % sizeof(T) == 0,
                 "record stream offset not record-aligned: " << offset);
  }

  /// Next record into `out`; false at end of stream.
  bool next(T& out) {
    if (cursor_ == loaded_) {
      load();
      if (loaded_ == 0) return false;
    }
    out = batch_[cursor_++];
    return true;
  }

  /// A view of up to one buffer of records; empty at end of stream. The
  /// span is valid until the next call. Records already delivered by
  /// next() are not repeated: a partially-consumed buffer yields its
  /// remainder first.
  std::span<const T> next_batch() {
    if (cursor_ == loaded_) load();
    const std::span<const T> out(batch_.data() + cursor_, loaded_ - cursor_);
    cursor_ = loaded_;
    return out;
  }

 private:
  void load() {
    const std::size_t got =
        bytes_.read(batch_.data(), batch_.size() * sizeof(T));
    // The byte stream returns short only at EOF, so a non-multiple here
    // is a partial trailing record: surface the data loss instead of
    // rounding it away.
    FB_CHECK_MSG(got % sizeof(T) == 0,
                 "record stream ends mid-record: "
                     << got % sizeof(T) << " stray tail bytes after "
                     << records_delivered_ + got / sizeof(T)
                     << " whole records of size " << sizeof(T));
    loaded_ = got / sizeof(T);
    cursor_ = 0;
    records_delivered_ += loaded_;
  }

  ByteStream bytes_;
  std::vector<T> batch_;
  std::size_t cursor_ = 0;
  std::size_t loaded_ = 0;
  std::uint64_t records_delivered_ = 0;
};

template <typename T>
using RecordReader = BasicRecordReader<T, StreamReader>;

}  // namespace fbfs::io
