// Shared building blocks of the streaming engines.
//
// xstream::run (the untrimmed X-Stream baseline) and core::run (the
// FastBFS trimming engine) execute the same synchronous rounds over the
// same on-device layout: per-partition state files, per-partition
// update streams shuffled in place, a final id-order state collection.
// Everything the two loops share verbatim — the init pass, the update
// fan-out, the gather (+ apply) phase, record stream helpers, file
// naming, per-round stats — lives here, so the engines differ only in
// their scatter loop (core adds the stay stream; engine headers say
// "change both or neither" about the round semantics, and sharing the
// code is how that stays true).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/bitmap.hpp"
#include "common/check.hpp"
#include "graph/partitioner.hpp"
#include "graph/program.hpp"
#include "storage/reader_factory.hpp"
#include "storage/storage_plan.hpp"
#include "storage/stream.hpp"

namespace fbfs::xstream {

/// Byte traffic of one stream role over one iteration.
struct RoleIo {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

struct IterationStats {
  std::uint32_t iteration = 0;             // 0-based round index
  std::uint32_t partitions_scattered = 0;  // partitions not skipped
  std::uint32_t partitions_skipped = 0;    // no active source in range
  std::uint64_t updates_emitted = 0;
  std::uint64_t activated = 0;  // vertices active entering the next round
  double seconds = 0.0;
  /// Per-role device-counter deltas over this round, indexed by
  /// io::Role — how trimming's read-volume cut shows up per iteration.
  /// Exact per role when the plan's roles are dedicated(); roles that
  /// share a device all surface the shared device's counters.
  std::array<RoleIo, io::kNumRoles> io{};

  const RoleIo& role_io(io::Role role) const {
    return io[static_cast<std::size_t>(role)];
  }
};

/// On-device file names (rounds overwrite in place).
std::string state_file_name(const graph::PartitionedGraph& pg,
                            std::uint32_t p);
std::string update_file_name(const graph::PartitionedGraph& pg,
                             std::uint32_t p);

namespace detail {

void log_iteration(const char* program, const IterationStats& stats);

template <typename T>
std::vector<T> read_records(io::Device& device, const std::string& name,
                            const io::ReaderOptions& opts,
                            std::uint64_t expected) {
  auto reader = io::open_record_reader<T>(device, name, opts);
  std::vector<T> out;
  out.reserve(expected);
  for (auto batch = reader->next_batch(); !batch.empty();
       batch = reader->next_batch()) {
    out.insert(out.end(), batch.begin(), batch.end());
  }
  FB_CHECK_MSG(out.size() == expected,
               name << " holds " << out.size() << " records, expected "
                    << expected);
  return out;
}

template <typename T>
void write_records(io::Device& device, const std::string& name,
                   std::span<const T> records, std::size_t buffer_bytes) {
  auto file = device.open(name, /*truncate=*/true);
  io::RecordWriter<T> writer(*file, buffer_bytes);
  writer.append_batch(records);
  writer.flush();
}

/// Fills stats.io with the per-role deltas accumulated since `before`
/// (a plan.stats_snapshot() taken at the start of the round).
inline void capture_role_deltas(
    const io::StoragePlan& plan,
    const std::array<io::IoStatsSnapshot, io::kNumRoles>& before,
    IterationStats& stats) {
  const auto now = plan.stats_snapshot();
  for (std::size_t r = 0; r < io::kNumRoles; ++r) {
    stats.io[r].bytes_read = now[r].bytes_read - before[r].bytes_read;
    stats.io[r].bytes_written = now[r].bytes_written - before[r].bytes_written;
  }
}

/// The init pass: one scan per partition builds local out-degrees off
/// the partition's own edge file, runs program.init over its vertex
/// range, writes its state file, and marks the initially-active
/// vertices in `active`.
template <graph::GraphProgram P>
void init_partition_states(const graph::PartitionedGraph& pg,
                           const io::StoragePlan& plan,
                           const io::ReaderOptions& reader,
                           std::size_t write_buffer_bytes, const P& program,
                           AtomicBitmap& active) {
  using State = typename P::State;
  const graph::PartitionLayout& layout = pg.layout;
  for (std::uint32_t p = 0; p < layout.num_partitions(); ++p) {
    const graph::VertexId begin = layout.begin(p);
    std::vector<std::uint32_t> degrees(layout.size(p), 0);
    auto edges = io::open_record_reader<graph::Edge>(
        plan.edges(), pg.partition_file(p), reader);
    for (auto batch = edges->next_batch(); !batch.empty();
         batch = edges->next_batch()) {
      for (const graph::Edge& e : batch) {
        FB_CHECK_MSG(layout.owner(e.src) == p,
                     "edge source " << e.src << " misfiled into partition "
                                    << p << " of " << pg.meta.name);
        ++degrees[e.src - begin];
      }
    }
    std::vector<State> states(layout.size(p));
    for (std::uint64_t i = 0; i < states.size(); ++i) {
      const graph::VertexId v = begin + static_cast<graph::VertexId>(i);
      bool is_active = false;
      program.init(v, degrees[i], states[i], is_active);
      if (is_active) active.set(v);
    }
    write_records<State>(plan.state(), state_file_name(pg, p), states,
                         write_buffer_bytes);
  }
}

/// P update writers held open across one scatter phase; writer q
/// receives every update addressed into partition q, in source-partition
/// order.
template <typename Update>
struct UpdateFanout {
  std::vector<std::unique_ptr<io::File>> files;
  std::vector<std::unique_ptr<io::RecordWriter<Update>>> writers;

  void append(std::uint32_t q, const Update& u) { writers[q]->append(u); }

  /// Flushes all writers and records each partition's pending update
  /// count; returns the total emitted this phase.
  std::uint64_t close(std::vector<std::uint64_t>& pending_updates) {
    std::uint64_t total = 0;
    for (std::uint32_t q = 0; q < writers.size(); ++q) {
      writers[q]->flush();
      pending_updates[q] = writers[q]->records_appended();
      total += pending_updates[q];
    }
    return total;
  }
};

template <typename Update>
UpdateFanout<Update> open_update_fanout(const graph::PartitionedGraph& pg,
                                        const io::StoragePlan& plan,
                                        std::size_t write_buffer_bytes) {
  const std::uint32_t num_partitions = pg.layout.num_partitions();
  const std::size_t update_buffer = std::max<std::size_t>(
      sizeof(Update), write_buffer_bytes / num_partitions);
  UpdateFanout<Update> fanout;
  for (std::uint32_t q = 0; q < num_partitions; ++q) {
    fanout.files.push_back(
        plan.updates().open(update_file_name(pg, q), /*truncate=*/true));
    fanout.writers.push_back(std::make_unique<io::RecordWriter<Update>>(
        *fanout.files[q], update_buffer));
  }
  return fanout;
}

/// Gather (+ apply): partitions with no pending updates keep their
/// state file untouched unless the program applies every round.
template <graph::GraphProgram P>
void gather_partitions(const graph::PartitionedGraph& pg,
                       const io::StoragePlan& plan,
                       const io::ReaderOptions& reader,
                       std::size_t write_buffer_bytes, const P& program,
                       const std::vector<std::uint64_t>& pending_updates,
                       AtomicBitmap& next_active) {
  using State = typename P::State;
  using Update = typename P::Update;
  const graph::PartitionLayout& layout = pg.layout;
  for (std::uint32_t q = 0; q < layout.num_partitions(); ++q) {
    if (pending_updates[q] == 0 && !P::kNeedsApply) continue;
    const graph::VertexId begin = layout.begin(q);
    std::vector<State> states = read_records<State>(
        plan.state(), state_file_name(pg, q), reader, layout.size(q));
    if (pending_updates[q] > 0) {
      auto updates = io::open_record_reader<Update>(
          plan.updates(), update_file_name(pg, q), reader);
      for (auto batch = updates->next_batch(); !batch.empty();
           batch = updates->next_batch()) {
        for (const Update& u : batch) {
          FB_CHECK_MSG(layout.owner(u.dst) == q,
                       "update target " << u.dst
                                        << " misrouted into partition " << q
                                        << " of " << pg.meta.name);
          if (program.gather(u, states[u.dst - begin])) {
            next_active.set(u.dst);
          }
        }
      }
    }
    if constexpr (P::kNeedsApply) {
      for (std::uint64_t i = 0; i < states.size(); ++i) {
        program.apply(begin + static_cast<graph::VertexId>(i), states[i]);
      }
    }
    write_records<State>(plan.state(), state_file_name(pg, q), states,
                         write_buffer_bytes);
  }
}

/// Reads the final per-partition state files back in id order.
template <graph::GraphProgram P>
std::vector<typename P::State> collect_states(
    const graph::PartitionedGraph& pg, const io::StoragePlan& plan,
    const io::ReaderOptions& reader) {
  using State = typename P::State;
  std::vector<State> out;
  out.reserve(pg.layout.num_vertices());
  for (std::uint32_t p = 0; p < pg.layout.num_partitions(); ++p) {
    const std::vector<State> states = read_records<State>(
        plan.state(), state_file_name(pg, p), reader, pg.layout.size(p));
    out.insert(out.end(), states.begin(), states.end());
  }
  return out;
}

/// Removes the run's state and update files from their role devices.
void remove_run_files(const graph::PartitionedGraph& pg,
                      const io::StoragePlan& plan);

}  // namespace detail
}  // namespace fbfs::xstream
