// Shared building blocks of the streaming engines.
//
// xstream::run (the untrimmed X-Stream baseline) and core::run (the
// FastBFS trimming engine) execute the same synchronous rounds over the
// same on-device layout: per-partition state files, per-partition
// update streams shuffled in place, a final id-order state collection.
// Everything the two loops share verbatim — the init pass, the update
// fan-out, the gather (+ apply) phase, record stream helpers, file
// naming, per-round stats — lives here, so the engines differ only in
// their scatter loop (core adds the stay stream; engine headers say
// "change both or neither" about the round semantics, and sharing the
// code is how that stays true).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/bitmap.hpp"
#include "common/check.hpp"
#include "common/parallel.hpp"
#include "graph/partitioner.hpp"
#include "graph/program.hpp"
#include "metrics/collector.hpp"
#include "metrics/iteration_stats.hpp"
#include "storage/codec.hpp"
#include "storage/reader_factory.hpp"
#include "storage/storage_plan.hpp"
#include "storage/stream.hpp"

namespace fbfs::xstream {

/// Per-round stats are the hoisted metrics records now (one struct for
/// every engine; src/metrics/iteration_stats.hpp). The aliases keep the
/// engines' historical spelling — xstream::IterationStats predates the
/// metrics layer and the tests/benches use it.
using RoleIo = metrics::RoleIo;
using IterationStats = metrics::IterationStats;

/// On-device file names (rounds overwrite in place).
std::string state_file_name(const graph::PartitionedGraph& pg,
                            std::uint32_t p);
std::string update_file_name(const graph::PartitionedGraph& pg,
                             std::uint32_t p);

namespace detail {

void log_iteration(const char* program, const IterationStats& stats);

/// Engine-written record files (states, updates, stays) all carry the
/// update-codec header now (storage/codec.hpp), so reads and writes of
/// whole files go through the codec layer; the partitioner's edge files
/// predate the engines and stay headerless.
template <typename T>
std::vector<T> read_records(io::Device& device, const std::string& name,
                            const io::ReaderOptions& opts,
                            std::uint64_t expected) {
  return io::codec::read_all<T>(device, name, opts, expected);
}

template <typename T>
void write_records(io::Device& device, const std::string& name,
                   std::span<const T> records, std::size_t buffer_bytes) {
  io::codec::CodecWriter<T> writer(device, name, buffer_bytes);
  writer.append_batch(records);
  writer.close();
}

/// State-observer hook of init_partition_states / gather_partitions:
/// the default observes nothing and costs nothing (the hook is guarded
/// by `if constexpr` on the observer type, so non-masked instantiations
/// compile exactly as before).
struct NoStateObserver {};

/// Engine-side mirror of a masked program's per-vertex masks
/// (graph::MaskedProgram — MultiBfs). The engines keep vertex State on
/// device between phases, but trimming, bottom-up claiming, and the
/// direction model need O(1) access to every vertex's seen/frontier
/// mask each round; the tracker shadows them in flat arrays, refreshed
/// by the observer hook whenever a partition's states are (re)written.
/// Observed partitions cover disjoint vertex ranges, so concurrent
/// observe_range calls (the parallel init pass) never touch the same
/// slot; `saturated` is the trim/claim bitmap — a vertex every query
/// has seen can never gather anything new, its out-edges are dead and
/// bottom-up rounds skip its in-edge runs. Saturation is monotone, so
/// bits are only ever added.
///
/// Partitions gather_partitions skips (no pending updates) keep stale
/// mirror entries — exactly: their states did not change.
template <graph::GraphProgram P>
struct MaskStateTracker {
  const P& program;
  std::vector<std::uint64_t> frontier;
  std::vector<std::uint64_t> seen;
  AtomicBitmap saturated;

  MaskStateTracker(const P& program, std::uint64_t num_vertices)
      : program(program),
        frontier(num_vertices, 0),
        seen(num_vertices, 0),
        saturated(num_vertices) {}

  void observe_range(graph::VertexId begin,
                     std::span<const typename P::State> states) {
    const std::uint64_t full = program.full_mask();
    for (std::uint64_t i = 0; i < states.size(); ++i) {
      const std::uint64_t v = begin + i;
      frontier[v] = program.frontier_mask(states[i]);
      seen[v] = program.seen_mask(states[i]);
      if (seen[v] == full) saturated.set(v);
    }
  }

  struct RoundMasks {
    /// Aggregate popcount of the frontier masks over the round's active
    /// vertices — the direction model's per-query frontier density.
    std::uint64_t frontier_bits = 0;
    /// OR of those masks: which queries still have any frontier at all.
    std::uint64_t active_mask = 0;
  };
  RoundMasks round_masks(const AtomicBitmap& active) const {
    RoundMasks out;
    for (std::uint64_t w = 0; w < active.num_words(); ++w) {
      std::uint64_t bits = active.word(w);
      while (bits != 0) {
        const std::uint64_t v =
            w * 64 + static_cast<std::uint64_t>(std::countr_zero(bits));
        bits &= bits - 1;
        out.frontier_bits +=
            static_cast<std::uint64_t>(std::popcount(frontier[v]));
        out.active_mask |= frontier[v];
      }
    }
    return out;
  }
};

/// The init pass: one scan per partition builds local out-degrees off
/// the partition's own edge file, runs program.init over its vertex
/// range, writes its state file, and marks the initially-active
/// vertices in `active`. Partitions are independent (own files, atomic
/// bitmap), so with a pool they run concurrently, one task each.
/// `observer` (masked programs) sees each partition's states once they
/// are final.
template <graph::GraphProgram P, typename Observer = NoStateObserver>
void init_partition_states(const graph::PartitionedGraph& pg,
                           const io::StoragePlan& plan,
                           const io::ReaderOptions& reader,
                           std::size_t write_buffer_bytes, const P& program,
                           AtomicBitmap& active, const ExecContext& exec = {},
                           Observer* observer = nullptr) {
  using State = typename P::State;
  const graph::PartitionLayout& layout = pg.layout;
  const auto init_one = [&](std::uint32_t p) {
    const graph::VertexId begin = layout.begin(p);
    std::vector<std::uint32_t> degrees(layout.size(p), 0);
    auto edges = io::open_record_reader<graph::Edge>(
        plan.edges(), pg.partition_file(p), reader);
    for (auto batch = edges->next_batch(); !batch.empty();
         batch = edges->next_batch()) {
      for (const graph::Edge& e : batch) {
        FB_CHECK_MSG(layout.owner(e.src) == p,
                     "edge source " << e.src << " misfiled into partition "
                                    << p << " of " << pg.meta.name);
        ++degrees[e.src - begin];
      }
    }
    std::vector<State> states(layout.size(p));
    for (std::uint64_t i = 0; i < states.size(); ++i) {
      const graph::VertexId v = begin + static_cast<graph::VertexId>(i);
      bool is_active = false;
      program.init(v, degrees[i], states[i], is_active);
      if (is_active) active.set(v);
    }
    write_records<State>(plan.state(), state_file_name(pg, p), states,
                         write_buffer_bytes);
    if constexpr (!std::is_same_v<Observer, NoStateObserver>) {
      if (observer != nullptr) {
        observer->observe_range(begin, std::span<const State>(states));
      }
    }
  };
  if (!exec.parallel() || layout.num_partitions() == 1) {
    for (std::uint32_t p = 0; p < layout.num_partitions(); ++p) init_one(p);
    return;
  }
  std::vector<std::future<void>> tasks;
  tasks.reserve(layout.num_partitions());
  for (std::uint32_t p = 0; p < layout.num_partitions(); ++p) {
    tasks.push_back(exec.pool->submit([&init_one, p] { init_one(p); }));
  }
  join_all(tasks);
}

/// P update writers held open across one scatter phase; writer q
/// receives every update addressed into partition q, in source-partition
/// order. Parallel scatter workers flush their staged per-destination
/// buffers through append_batch_locked, a short critical section per
/// writer. Each writer is a CodecWriter: raw policy streams exactly as
/// the old RecordWriter fan-out did, the other policies pick each
/// partition's cheapest on-disk format at close().
template <typename Update>
struct UpdateFanout {
  std::vector<std::unique_ptr<io::codec::CodecWriter<Update>>> writers;
  std::vector<std::unique_ptr<std::mutex>> locks;

  void append(std::uint32_t q, const Update& u) { writers[q]->append(u); }

  void append_batch(std::uint32_t q, std::span<const Update> batch) {
    writers[q]->append_batch(batch);
  }

  void append_batch_locked(std::uint32_t q, std::span<const Update> batch) {
    if (batch.empty()) return;
    std::lock_guard<std::mutex> guard(*locks[q]);
    writers[q]->append_batch(batch);
  }

  struct CloseStats {
    /// Updates a decoder will deliver — the gather-phase view the stop
    /// rule and pending counts key on (the bitmap format collapses
    /// byte-identical duplicates, so this can be below the staged
    /// count; nonzero iff anything was staged either way).
    std::uint64_t updates = 0;
    /// Bytes written (headers included), bucketed by chosen format.
    std::array<std::uint64_t, io::codec::kNumFormats> file_bytes{};
  };

  /// Closes all writers (encoding the non-raw ones) and records each
  /// partition's pending update count.
  CloseStats close(std::vector<std::uint64_t>& pending_updates) {
    CloseStats out;
    for (std::uint32_t q = 0; q < writers.size(); ++q) {
      const auto r = writers[q]->close();
      pending_updates[q] = r.records;
      out.updates += r.records;
      out.file_bytes[static_cast<std::size_t>(r.format)] += r.file_bytes;
    }
    return out;
  }
};

/// `allow_bitmap` is the per-program licence for the duplicate-
/// collapsing bitmap format — pass graph::kIdempotentGatherV<P>.
template <typename Update>
UpdateFanout<Update> open_update_fanout(
    const graph::PartitionedGraph& pg, const io::StoragePlan& plan,
    std::size_t write_buffer_bytes,
    io::codec::Policy policy = io::codec::Policy::kRaw,
    bool allow_bitmap = false) {
  const std::uint32_t num_partitions = pg.layout.num_partitions();
  const std::size_t update_buffer = std::max<std::size_t>(
      sizeof(Update), write_buffer_bytes / num_partitions);
  UpdateFanout<Update> fanout;
  for (std::uint32_t q = 0; q < num_partitions; ++q) {
    io::codec::EncodeOptions opts;
    opts.policy = policy;
    opts.allow_bitmap = allow_bitmap;
    opts.range_begin = pg.layout.begin(q);
    opts.range_end = pg.layout.end(q);
    fanout.writers.push_back(
        std::make_unique<io::codec::CodecWriter<Update>>(
            plan.updates(), update_file_name(pg, q), update_buffer, opts));
    fanout.locks.push_back(std::make_unique<std::mutex>());
  }
  return fanout;
}

/// Edge-observer hook of scatter_partition. xstream passes this no-op;
/// core's StayTrimSink counts dead edges and stages survivors for the
/// stay stream. ChunkState carries whatever the sink accumulates per
/// chunk; flush(ChunkState&) is only ever called in input order — from
/// the serial loop, or inside the parallel scatter's ordered hand-off —
/// so a sink may keep plain (non-atomic) members touched only there.
struct NullTrimSink {
  struct ChunkState {};
  ChunkState make_chunk_state() const { return {}; }
  void observe(const graph::Edge&, bool /*src_active*/, ChunkState&) const {}
  void flush(ChunkState&) {}
};

/// One scatter pass's counters. `emitted` counts updates program.scatter
/// produced; `sieved` counts the ones that never reached the shuffle
/// writers (scatter declined, or the staging sieve collapsed them onto
/// an earlier same-destination update). Records staged = emitted minus
/// the sieve's share of sieved.
struct ScatterResult {
  std::uint64_t scanned = 0;
  std::uint64_t emitted = 0;
  std::uint64_t sieved = 0;
  /// Edges that actually probed program state: a top-down scan probes
  /// every edge it scans (probed == scanned); a bottom-up pull skips
  /// the rest of a vertex's in-edge run once the vertex is claimed, so
  /// probed is the short-circuit's savings made visible.
  std::uint64_t probed = 0;
  /// Edges never READ at all: bottom-up blocks whose whole destination
  /// range was already claimed are skipped without touching their bytes
  /// (the frontier-density-aware reader). scanned + skipped covers the
  /// input file.
  std::uint64_t skipped = 0;
};

/// One worker's staging state for a scatter window: per-destination-
/// partition update buckets, plus (when sieving) a dst -> bucket-slot
/// map over the CURRENT window. A window is one staging-buffer
/// lifetime — a serial reader batch or a parallel chunk, both exactly
/// `reader.buffer_bytes / sizeof(Edge)` records — so the sieve sees
/// identical windows at every thread count and the update files stay
/// byte-identical. Within a window the first update to a destination
/// claims the slot; a later non-dominated update is folded into the
/// champion IN that slot via program.sieve_merge (file position = first
/// sighting, value = the fold: min-folds replace, mask folds OR), and
/// either way the later record is dropped. Exact only for
/// SieveCapable programs — the sieve flag is dead for the rest.
template <graph::GraphProgram P>
struct ScatterStage {
  using Update = typename P::Update;

  const P& program;
  const graph::PartitionLayout& layout;
  bool sieve;
  std::vector<std::vector<Update>> buckets;
  std::unordered_map<graph::VertexId, std::uint32_t> window;
  std::uint64_t emitted = 0;
  std::uint64_t sieved = 0;

  ScatterStage(const P& program, const graph::PartitionLayout& layout,
               bool sieve)
      : program(program),
        layout(layout),
        sieve(sieve),
        buckets(layout.num_partitions()) {}

  void stage(const Update& u) {
    ++emitted;
    std::vector<Update>& bucket = buckets[layout.owner(u.dst)];
    if constexpr (graph::SieveCapable<P>) {
      if (sieve) {
        const auto [it, inserted] = window.try_emplace(
            graph::VertexId(u.dst), static_cast<std::uint32_t>(bucket.size()));
        if (!inserted) {
          Update& champion = bucket[it->second];
          if (!program.dominates(champion, u)) program.sieve_merge(champion, u);
          ++sieved;
          return;
        }
      }
    }
    bucket.push_back(u);
  }

  /// Scatter `batch` into the buckets and show every edge to `trim`.
  template <typename TrimSink>
  void process(std::span<const graph::Edge> batch, graph::VertexId part_begin,
               const std::vector<typename P::State>& states,
               const AtomicBitmap& active, TrimSink& trim,
               typename TrimSink::ChunkState& chunk) {
    for (const graph::Edge& e : batch) {
      const bool src_active = P::kScatterAllVertices || active.test(e.src);
      if (src_active) {
        Update u;
        if (program.scatter(e, states[e.src - part_begin], u)) {
          stage(u);
        } else {
          ++sieved;
        }
      }
      trim.observe(e, src_active, chunk);
    }
  }

  /// Serial window retirement: append + clear, ready for the next batch.
  template <typename Fanout>
  void flush_serial(Fanout& fanout) {
    for (std::uint32_t q = 0; q < buckets.size(); ++q) {
      if (!buckets[q].empty()) {
        fanout.append_batch(q, buckets[q]);
        buckets[q].clear();
      }
    }
    window.clear();
  }

  /// Parallel retirement: the stage is per-chunk, appended once under
  /// the ordered hand-off and then discarded.
  template <typename Fanout>
  void flush_locked(Fanout& fanout) {
    for (std::uint32_t q = 0; q < buckets.size(); ++q) {
      fanout.append_batch_locked(q, buckets[q]);
    }
  }
};

/// One partition's scatter: scans `num_records` edges from
/// `input_name` starting at byte `base_offset` (0 for headerless edge
/// partition files, codec::kHeaderBytes for raw codec streams), runs
/// program.scatter for every active-source edge (or every edge, for
/// kScatterAllVertices programs), routes emitted updates into the
/// fan-out — sieving dominated duplicates at the staging buffers when
/// `sieve_updates` and the program allows — and shows every edge + its
/// activity to `trim`.
///
/// With a collector, the fan-out flushes are timed as shuffle-flush
/// latencies and the scan feeds the live op counters. The counting
/// itself is plain local increments either way; only the flush to the
/// LiveOps atomics is gated on the collector, so a null collector costs
/// one pointer test per batch/chunk — no clock reads, no atomics.
///
/// Serial (no pool): one streaming reader honouring `reader` (including
/// prefetch mode), retiring each delivered batch immediately — the
/// single-threaded engines' exact behaviour. Parallel: the stream is
/// cut into fixed-size record chunks fanned over the pool; each chunk
/// task re-reads its own slice through a plain positional reader,
/// stages updates in per-destination-partition buffers, then retires
/// through an OrderedGate in chunk order. Because every update file
/// only sees its own updates, in scan order, and survivors append in
/// scan order too, update files and stay files are byte-identical at
/// every thread count.
template <graph::GraphProgram P, typename TrimSink>
ScatterResult scatter_partition(
    const ExecContext& exec, io::Device& input_dev,
    const std::string& input_name, std::uint64_t base_offset,
    std::uint64_t num_records, const graph::PartitionLayout& layout,
    graph::VertexId part_begin, const std::vector<typename P::State>& states,
    const AtomicBitmap& active, const P& program,
    const io::ReaderOptions& reader, bool sieve_updates,
    UpdateFanout<typename P::Update>& fanout, TrimSink& trim,
    metrics::Collector* collector = nullptr) {
  if (!exec.parallel()) {
    io::ReaderOptions opts = reader;
    opts.offset = base_offset;
    // Prefetch mode sizes its ring to a real device's queue depth (the
    // fetcher submits all free slots as one ring batch); on the
    // modelled device this keeps the historical double-buffering.
    opts.match_device(input_dev);
    auto edges =
        io::open_record_reader<graph::Edge>(input_dev, input_name, opts);
    ScatterStage<P> stage(program, layout, sieve_updates);
    auto chunk = trim.make_chunk_state();
    std::uint64_t scanned = 0;
    for (auto batch = edges->next_batch(); !batch.empty();
         batch = edges->next_batch()) {
      scanned += batch.size();
      stage.process(batch, part_begin, states, active, trim, chunk);
      {
        metrics::ScopedPhase flush_timer(collector,
                                         metrics::Phase::kShuffleFlush);
        stage.flush_serial(fanout);
        trim.flush(chunk);
      }
    }
    if (collector != nullptr) {
      collector->live().add_edges_scanned(scanned);
      collector->live().add_edges_probed(scanned);
      collector->live().add_updates(stage.emitted, stage.sieved);
    }
    return {scanned, stage.emitted, stage.sieved, scanned};
  }

  const std::uint64_t chunk_records = std::max<std::uint64_t>(
      1, reader.buffer_bytes / sizeof(graph::Edge));
  const std::uint64_t num_chunks =
      (num_records + chunk_records - 1) / chunk_records;
  // On a real-backend device a task owns a run of consecutive chunks
  // and submits their positional reads as ONE ring batch (queue_depth
  // reads in flight per submission). The modelled timeline is serial,
  // so groups stay size 1 there and the per-chunk read/charge sequence
  // is exactly the historical one.
  const std::uint64_t group_chunks =
      input_dev.backend_kind() == io::BackendKind::kReal
          ? std::max<std::uint64_t>(1, input_dev.backend_options().queue_depth)
          : 1;
  const std::uint64_t num_groups =
      num_chunks == 0 ? 0 : (num_chunks + group_chunks - 1) / group_chunks;
  OrderedGate gate;
  std::atomic<std::uint64_t> scanned{0};
  std::atomic<std::uint64_t> emitted{0};
  std::atomic<std::uint64_t> sieved{0};
  std::vector<std::future<void>> groups;
  groups.reserve(num_groups);
  for (std::uint64_t g = 0; g < num_groups; ++g) {
    groups.push_back(exec.pool->submit([&, g] {
      const std::uint64_t first_chunk = g * group_chunks;
      const std::uint64_t n_chunks =
          std::min(group_chunks, num_chunks - first_chunk);
      // Completes tickets `from` .. end-of-group so the ordered
      // hand-off chain stays alive when this task throws; join_all
      // surfaces the failure.
      const auto abandon_from = [&](std::uint64_t from) {
        for (std::uint64_t c = from; c < first_chunk + n_chunks; ++c) {
          gate.wait_turn(c);
          gate.complete(c);
        }
      };
      // Each chunk is still one positional read on its own File (the
      // modelled head/seek accounting cannot tell batched submission
      // from the old per-chunk readers); the group's reads go down as a
      // single read_batch.
      std::vector<std::unique_ptr<io::File>> files;
      std::vector<std::vector<graph::Edge>> buffers(n_chunks);
      try {
        std::vector<io::ReadRequest> requests;
        files.reserve(n_chunks);
        requests.reserve(n_chunks);
        for (std::uint64_t k = 0; k < n_chunks; ++k) {
          const std::uint64_t first = (first_chunk + k) * chunk_records;
          const std::uint64_t count =
              std::min(chunk_records, num_records - first);
          buffers[k].resize(static_cast<std::size_t>(count));
          files.push_back(input_dev.open(input_name));
          requests.push_back(
              {files.back().get(),
               base_offset + first * sizeof(graph::Edge), buffers[k].data(),
               static_cast<std::size_t>(count * sizeof(graph::Edge)), 0});
        }
        input_dev.read_batch(requests);
        for (std::uint64_t k = 0; k < n_chunks; ++k) {
          FB_CHECK_MSG(requests[k].got == requests[k].bytes,
                       input_name << " ends inside chunk " << first_chunk + k
                                  << " (" << (requests[k].bytes -
                                              requests[k].got)
                                  << " bytes short)");
        }
      } catch (...) {
        abandon_from(first_chunk);
        throw;
      }
      for (std::uint64_t k = 0; k < n_chunks; ++k) {
        const std::uint64_t c = first_chunk + k;
        const std::uint64_t count = buffers[k].size();
        ScatterStage<P> stage(program, layout, sieve_updates);
        auto chunk = trim.make_chunk_state();
        try {
          stage.process(std::span<const graph::Edge>(buffers[k]), part_begin,
                        states, active, trim, chunk);
        } catch (...) {
          abandon_from(c);
          throw;
        }
        gate.wait_turn(c);
        try {
          metrics::ScopedPhase flush_timer(collector,
                                           metrics::Phase::kShuffleFlush);
          stage.flush_locked(fanout);
          trim.flush(chunk);
        } catch (...) {
          gate.complete(c);
          abandon_from(c + 1);
          throw;
        }
        gate.complete(c);
        scanned.fetch_add(count, std::memory_order_relaxed);
        emitted.fetch_add(stage.emitted, std::memory_order_relaxed);
        sieved.fetch_add(stage.sieved, std::memory_order_relaxed);
        if (collector != nullptr) {
          collector->live().add_edges_scanned(count);
          collector->live().add_edges_probed(count);
          collector->live().add_updates(stage.emitted, stage.sieved);
        }
      }
    }));
  }
  join_all(groups);
  const std::uint64_t total = scanned.load(std::memory_order_relaxed);
  return {total, emitted.load(std::memory_order_relaxed),
          sieved.load(std::memory_order_relaxed), total};
}

/// scatter_partition over an in-memory edge span — core's path for stay
/// files whose codec format is not raw (the whole file decodes up
/// front; a compressed stream has no per-chunk byte offsets to slice).
/// Windowing, ordering, and the sieve all match scatter_partition
/// exactly: serial slices and parallel chunks are both
/// `reader.buffer_bytes / sizeof(Edge)` records, and parallel chunks
/// retire through the same ordered hand-off.
template <graph::GraphProgram P, typename TrimSink>
ScatterResult scatter_span(
    const ExecContext& exec, std::span<const graph::Edge> edges,
    const graph::PartitionLayout& layout, graph::VertexId part_begin,
    const std::vector<typename P::State>& states, const AtomicBitmap& active,
    const P& program, const io::ReaderOptions& reader, bool sieve_updates,
    UpdateFanout<typename P::Update>& fanout, TrimSink& trim,
    metrics::Collector* collector = nullptr) {
  const std::uint64_t num_records = edges.size();
  const std::uint64_t chunk_records = std::max<std::uint64_t>(
      1, reader.buffer_bytes / sizeof(graph::Edge));

  if (!exec.parallel()) {
    ScatterStage<P> stage(program, layout, sieve_updates);
    auto chunk = trim.make_chunk_state();
    for (std::uint64_t first = 0; first < num_records;
         first += chunk_records) {
      const std::uint64_t count =
          std::min(chunk_records, num_records - first);
      stage.process(edges.subspan(first, count), part_begin, states, active,
                    trim, chunk);
      {
        metrics::ScopedPhase flush_timer(collector,
                                         metrics::Phase::kShuffleFlush);
        stage.flush_serial(fanout);
        trim.flush(chunk);
      }
    }
    if (collector != nullptr) {
      collector->live().add_edges_scanned(num_records);
      collector->live().add_edges_probed(num_records);
      collector->live().add_updates(stage.emitted, stage.sieved);
    }
    return {num_records, stage.emitted, stage.sieved, num_records};
  }

  const std::uint64_t num_chunks =
      num_records == 0 ? 0 : (num_records + chunk_records - 1) / chunk_records;
  OrderedGate gate;
  std::atomic<std::uint64_t> emitted{0};
  std::atomic<std::uint64_t> sieved{0};
  std::vector<std::future<void>> chunks;
  chunks.reserve(num_chunks);
  for (std::uint64_t c = 0; c < num_chunks; ++c) {
    chunks.push_back(exec.pool->submit([&, c] {
      const std::uint64_t first = c * chunk_records;
      const std::uint64_t count =
          std::min(chunk_records, num_records - first);
      ScatterStage<P> stage(program, layout, sieve_updates);
      auto chunk = trim.make_chunk_state();
      try {
        stage.process(edges.subspan(first, count), part_begin, states, active,
                      trim, chunk);
      } catch (...) {
        gate.wait_turn(c);
        gate.complete(c);
        throw;
      }
      gate.wait_turn(c);
      try {
        metrics::ScopedPhase flush_timer(collector,
                                         metrics::Phase::kShuffleFlush);
        stage.flush_locked(fanout);
        trim.flush(chunk);
      } catch (...) {
        gate.complete(c);
        throw;
      }
      gate.complete(c);
      emitted.fetch_add(stage.emitted, std::memory_order_relaxed);
      sieved.fetch_add(stage.sieved, std::memory_order_relaxed);
      if (collector != nullptr) {
        collector->live().add_edges_scanned(count);
        collector->live().add_edges_probed(count);
        collector->live().add_updates(stage.emitted, stage.sieved);
      }
    }));
  }
  join_all(chunks);
  return {num_records, emitted.load(std::memory_order_relaxed),
          sieved.load(std::memory_order_relaxed), num_records};
}

/// One partition's bottom-up pull: scans partition q's TRANSPOSED
/// (in-edge, dst-sorted) file and lets still-unclaimed destinations
/// probe the frontier. Because the file is sorted by destination, a
/// vertex's in-edges form one contiguous run; once a run's vertex is
/// claimed the rest of the run is skipped without touching program
/// state — `probed` counts only the edges that got as far as the
/// bitmap probes, which is where the direction optimisation's savings
/// live.
///
/// Two program families, selected by `if constexpr`:
///
///   * PullCapable (single-query BFS): `claimed` is the engine's
///     visited bitmap; the first successful pull claims the vertex for
///     the round.
///   * MaskedProgram (MultiBfs): `claimed` is the saturation bitmap and
///     the caller additionally passes the MaskStateTracker's flat
///     frontier/seen mask arrays. Each edge pulls
///     `frontier[src] & ~delivered-so-far` — the accumulator starts at
///     the destination's seen mask, so a dst's pulled masks never
///     overlap and their union is exactly what top-down would deliver
///     fresh — and the run is claimed once the accumulator saturates.
///
/// Granularity and the byte-skipping reader: the file is processed in
/// the transposed view's fixed blocks (graph::kTransposedBlockRecords
/// records; `blocks` holds each block's dst range). A block whose whole
/// dst range is already claimed is SKIPPED — its records are counted in
/// ScatterResult::skipped and its bytes are never read (the
/// frontier-density-aware reader; conservative, since the range test
/// also covers ids with no in-edges in the block). Needed blocks are
/// coalesced into read units of at most `reader.buffer_bytes` and read
/// with one positional request each (replacing the streaming reader —
/// read-ahead does not fit a skip-seek scan).
///
/// Determinism contract, mirroring scatter_partition: the run-tracking
/// state (current destination, claimed flag, delivered-mask
/// accumulator) resets at every BLOCK boundary — fixed at view build
/// time — so serial and parallel runs window identically and a run
/// straddling a boundary re-emits deterministically (byte-identical
/// records for PullCapable, disjoint-mask records with the same union
/// for masked programs; both exact under the idempotent gather). The
/// staging sieve stays off here: claiming already dedupes within a
/// block.
template <graph::GraphProgram P>
  requires(graph::PullCapable<P> || graph::MaskedProgram<P>)
ScatterResult pull_partition(
    const ExecContext& exec, io::Device& input_dev,
    const std::string& input_name, std::uint64_t num_records,
    std::span<const graph::TransposedBlock> blocks,
    const graph::PartitionLayout& layout, std::uint32_t partition,
    const AtomicBitmap& active, const AtomicBitmap& claimed_set,
    const P& program, std::uint32_t round, const io::ReaderOptions& reader,
    std::span<const std::uint64_t> frontier_masks,
    std::span<const std::uint64_t> seen_masks,
    UpdateFanout<typename P::Update>& fanout,
    metrics::Collector* collector = nullptr) {
  constexpr bool kMasked = graph::MaskedProgram<P>;
  constexpr std::uint64_t kBlock = graph::kTransposedBlockRecords;
  const graph::VertexId range_begin = layout.begin(partition);
  const graph::VertexId range_end = layout.end(partition);
  FB_CHECK_MSG(blocks.size() == (num_records + kBlock - 1) / kBlock,
               input_name << " block index covers " << blocks.size()
                          << " blocks for " << num_records << " records");
  [[maybe_unused]] std::uint64_t full = 0;
  if constexpr (kMasked) full = program.full_mask();

  const auto block_count = [&](std::uint64_t b) {
    return b + 1 == blocks.size() ? num_records - b * kBlock : kBlock;
  };
  const auto block_skippable = [&](std::uint64_t b) {
    return claimed_set.all_in_range(
        blocks[b].first_dst, static_cast<std::uint64_t>(blocks[b].last_dst) + 1);
  };

  // One block's pull loop; all run state is local, so every block is
  // self-contained whatever read unit delivered it.
  const auto process_block = [&](std::span<const graph::Edge> window,
                                 ScatterStage<P>& stage,
                                 std::uint64_t& probed) {
    graph::VertexId last_dst = 0;
    bool have_run = false;
    bool claimed = false;
    [[maybe_unused]] std::uint64_t delivered = 0;
    for (const graph::Edge& e : window) {
      FB_CHECK_MSG(e.dst >= range_begin && e.dst < range_end,
                   input_name << " holds edge to " << e.dst
                              << " outside partition " << partition);
      if (!have_run || e.dst != last_dst) {
        FB_CHECK_MSG(!have_run || e.dst > last_dst,
                     input_name << " is not sorted by destination at "
                                << e.dst);
        have_run = true;
        last_dst = e.dst;
        claimed = claimed_set.test(e.dst);
        if constexpr (kMasked) delivered = claimed ? 0 : seen_masks[e.dst];
      }
      if (claimed) continue;
      ++probed;
      if (!active.test(e.src)) continue;
      typename P::Update u;
      if constexpr (kMasked) {
        const std::uint64_t mask = frontier_masks[e.src] & ~delivered;
        if (program.pull_masked(e, round, mask, u)) {
          stage.stage(u);
          delivered |= mask;
          if (delivered == full) claimed = true;
        }
      } else {
        if (program.pull(e, round, u)) {
          stage.stage(u);
          claimed = true;
        }
      }
    }
  };

  // The skip/read schedule, decided once up front (the claimed set is
  // frozen for the round): contiguous needed blocks coalesce into read
  // units of at most unit_blocks, each one positional read.
  struct ReadUnit {
    std::uint64_t first_block = 0;
    std::uint64_t num_blocks = 0;
  };
  const std::uint64_t unit_blocks = std::max<std::uint64_t>(
      1, reader.buffer_bytes / (kBlock * sizeof(graph::Edge)));
  std::vector<ReadUnit> units;
  std::uint64_t skipped = 0;
  for (std::uint64_t b = 0; b < blocks.size(); ++b) {
    if (block_skippable(b)) {
      skipped += block_count(b);
      continue;
    }
    if (!units.empty() &&
        units.back().first_block + units.back().num_blocks == b &&
        units.back().num_blocks < unit_blocks) {
      ++units.back().num_blocks;
    } else {
      units.push_back({b, 1});
    }
  }

  // Reads units[first_unit .. first_unit+n) into per-unit buffers as
  // ONE batched submission — every unit keeps its own File and one
  // positional read covering exactly its coalesced blocks, so the
  // modelled backend (whose read_batch is an in-order read_at loop over
  // fresh file ids) charges exactly what the old per-unit readers did,
  // while a real backend pushes the whole group down one ring
  // submission.
  const auto read_unit_group =
      [&](std::size_t first_unit, std::size_t n,
          std::vector<std::vector<graph::Edge>>& buffers) {
        buffers.assign(n, {});
        std::vector<std::unique_ptr<io::File>> files;
        std::vector<io::ReadRequest> requests;
        files.reserve(n);
        requests.reserve(n);
        for (std::size_t k = 0; k < n; ++k) {
          const ReadUnit& unit = units[first_unit + k];
          std::uint64_t unit_records = 0;
          for (std::uint64_t b = 0; b < unit.num_blocks; ++b) {
            unit_records += block_count(unit.first_block + b);
          }
          buffers[k].resize(static_cast<std::size_t>(unit_records));
          files.push_back(input_dev.open(input_name));
          requests.push_back(
              {files.back().get(),
               unit.first_block * kBlock * sizeof(graph::Edge),
               buffers[k].data(),
               static_cast<std::size_t>(unit_records * sizeof(graph::Edge)),
               0});
        }
        input_dev.read_batch(requests);
        for (std::size_t k = 0; k < n; ++k) {
          FB_CHECK_MSG(requests[k].got == requests[k].bytes,
                       input_name << " ends inside its block index ("
                                  << (requests[k].bytes - requests[k].got)
                                  << " bytes short)");
        }
      };

  // Pulls one delivered unit, re-windowing on the block boundaries the
  // view fixed at build time.
  const auto process_unit = [&](const ReadUnit& unit,
                                std::span<const graph::Edge> records,
                                ScatterStage<P>& stage, std::uint64_t& scanned,
                                std::uint64_t& probed) {
    std::size_t off = 0;
    for (std::uint64_t b = 0; b < unit.num_blocks; ++b) {
      const std::size_t n =
          static_cast<std::size_t>(block_count(unit.first_block + b));
      process_block(records.subspan(off, n), stage, probed);
      off += n;
    }
    scanned += records.size();
  };

  // Group size: a real device keeps queue_depth unit reads in flight
  // per submission; the modelled timeline is serial, so groups stay
  // size 1 and the historical read/flush interleaving (and with it the
  // charge sequence on a shared update device) is untouched.
  const std::size_t group_units =
      input_dev.backend_kind() == io::BackendKind::kReal
          ? std::max<std::size_t>(1, input_dev.backend_options().queue_depth)
          : 1;

  if (!exec.parallel()) {
    ScatterStage<P> stage(program, layout, /*sieve=*/false);
    std::uint64_t scanned = 0;
    std::uint64_t probed = 0;
    std::vector<std::vector<graph::Edge>> buffers;
    for (std::size_t g = 0; g < units.size(); g += group_units) {
      const std::size_t n = std::min(group_units, units.size() - g);
      read_unit_group(g, n, buffers);
      for (std::size_t k = 0; k < n; ++k) {
        process_unit(units[g + k], buffers[k], stage, scanned, probed);
        {
          metrics::ScopedPhase flush_timer(collector,
                                           metrics::Phase::kShuffleFlush);
          stage.flush_serial(fanout);
        }
      }
    }
    if (collector != nullptr) {
      collector->live().add_edges_scanned(scanned);
      collector->live().add_edges_probed(probed);
      collector->live().add_updates(stage.emitted, 0);
    }
    return {scanned, stage.emitted, 0, probed, skipped};
  }

  // Parallel: one task per unit group, retiring unit-by-unit through
  // the ordered hand-off in file order — same records, same per-block
  // windows, so the update files match the serial bytes.
  const std::size_t num_groups =
      units.empty() ? 0 : (units.size() + group_units - 1) / group_units;
  OrderedGate gate;
  std::atomic<std::uint64_t> scanned_total{0};
  std::atomic<std::uint64_t> emitted{0};
  std::atomic<std::uint64_t> probed_total{0};
  std::vector<std::future<void>> tasks;
  tasks.reserve(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    tasks.push_back(exec.pool->submit([&, g] {
      const std::size_t first_unit = g * group_units;
      const std::size_t n = std::min(group_units, units.size() - first_unit);
      const auto abandon_from = [&](std::size_t from) {
        for (std::size_t c = from; c < first_unit + n; ++c) {
          gate.wait_turn(c);
          gate.complete(c);
        }
      };
      std::vector<std::vector<graph::Edge>> buffers;
      try {
        read_unit_group(first_unit, n, buffers);
      } catch (...) {
        abandon_from(first_unit);
        throw;
      }
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t c = first_unit + k;
        ScatterStage<P> stage(program, layout, /*sieve=*/false);
        std::uint64_t scanned = 0;
        std::uint64_t probed = 0;
        try {
          process_unit(units[c], buffers[k], stage, scanned, probed);
        } catch (...) {
          abandon_from(c);
          throw;
        }
        gate.wait_turn(c);
        try {
          metrics::ScopedPhase flush_timer(collector,
                                           metrics::Phase::kShuffleFlush);
          stage.flush_locked(fanout);
        } catch (...) {
          gate.complete(c);
          abandon_from(c + 1);
          throw;
        }
        gate.complete(c);
        scanned_total.fetch_add(scanned, std::memory_order_relaxed);
        emitted.fetch_add(stage.emitted, std::memory_order_relaxed);
        probed_total.fetch_add(probed, std::memory_order_relaxed);
        if (collector != nullptr) {
          collector->live().add_edges_scanned(scanned);
          collector->live().add_edges_probed(probed);
          collector->live().add_updates(stage.emitted, 0);
        }
      }
    }));
  }
  join_all(tasks);
  return {scanned_total.load(std::memory_order_relaxed),
          emitted.load(std::memory_order_relaxed), 0,
          probed_total.load(std::memory_order_relaxed), skipped};
}

/// Gather (+ apply): partitions with no pending updates keep their
/// state file untouched unless the program applies every round.
///
/// With a pool, each partition's vertex range is split into contiguous
/// per-worker subranges: every worker scans the full (in-memory) update
/// batch and folds only the updates addressed into its own subrange, so
/// no state cell is ever touched by two workers and each cell still
/// sees its updates in file order. The fold result is bit-identical to
/// the serial loop for any gather, ordered or not — partitioning by
/// destination preserves per-cell order — though the engine contract
/// (program.hpp) additionally requires gathers to be order-free exact
/// reductions. Apply splits over the same subranges.
///
/// `observer` (masked programs — see MaskStateTracker) sees each
/// touched partition's states after gather + apply; skipped partitions
/// keep their previous (still accurate) mirror entries.
template <graph::GraphProgram P, typename Observer = NoStateObserver>
void gather_partitions(const graph::PartitionedGraph& pg,
                       const io::StoragePlan& plan,
                       const io::ReaderOptions& reader,
                       std::size_t write_buffer_bytes, const P& program,
                       const std::vector<std::uint64_t>& pending_updates,
                       AtomicBitmap& next_active, const ExecContext& exec = {},
                       metrics::Collector* collector = nullptr,
                       Observer* observer = nullptr) {
  using State = typename P::State;
  using Update = typename P::Update;
  const graph::PartitionLayout& layout = pg.layout;
  for (std::uint32_t q = 0; q < layout.num_partitions(); ++q) {
    if (pending_updates[q] == 0 && !P::kNeedsApply) continue;
    const graph::VertexId begin = layout.begin(q);
    std::vector<State> states = read_records<State>(
        plan.state(), state_file_name(pg, q), reader, layout.size(q));
    if (pending_updates[q] > 0) {
      metrics::ScopedPhase gather_timer(collector, metrics::Phase::kGather);
      if (!exec.parallel()) {
        auto updates = io::codec::open_reader<Update>(
            plan.updates(), update_file_name(pg, q), reader);
        for (auto batch = updates->next_batch(); !batch.empty();
             batch = updates->next_batch()) {
          for (const Update& u : batch) {
            FB_CHECK_MSG(layout.owner(u.dst) == q,
                         "update target " << u.dst
                                          << " misrouted into partition " << q
                                          << " of " << pg.meta.name);
            if (program.gather(u, states[u.dst - begin])) {
              next_active.set(u.dst);
            }
          }
        }
      } else {
        const std::vector<Update> updates = read_records<Update>(
            plan.updates(), update_file_name(pg, q), reader,
            pending_updates[q]);
        parallel_for_ranges(
            *exec.pool, states.size(), exec.threads(),
            [&](const IndexRange& r) {
              // The worker owning the range start audits routing for
              // the whole batch (once, not per worker).
              const bool audit = r.begin == 0;
              for (const Update& u : updates) {
                if (audit) {
                  FB_CHECK_MSG(layout.owner(u.dst) == q,
                               "update target "
                                   << u.dst << " misrouted into partition "
                                   << q << " of " << pg.meta.name);
                }
                const std::uint64_t i = u.dst - begin;
                if (i < r.begin || i >= r.end) continue;
                if (program.gather(u, states[i])) {
                  next_active.set(u.dst);
                }
              }
            });
      }
    }
    if constexpr (P::kNeedsApply) {
      metrics::ScopedPhase apply_timer(collector, metrics::Phase::kApply);
      const auto apply_range = [&](const IndexRange& r) {
        for (std::uint64_t i = r.begin; i < r.end; ++i) {
          program.apply(begin + static_cast<graph::VertexId>(i), states[i]);
        }
      };
      if (!exec.parallel()) {
        apply_range({0, states.size()});
      } else {
        parallel_for_ranges(*exec.pool, states.size(), exec.threads(),
                            apply_range);
      }
    }
    write_records<State>(plan.state(), state_file_name(pg, q), states,
                         write_buffer_bytes);
    if constexpr (!std::is_same_v<Observer, NoStateObserver>) {
      if (observer != nullptr) {
        observer->observe_range(begin, std::span<const State>(states));
      }
    }
  }
}

/// Reads the final per-partition state files back in id order.
template <graph::GraphProgram P>
std::vector<typename P::State> collect_states(
    const graph::PartitionedGraph& pg, const io::StoragePlan& plan,
    const io::ReaderOptions& reader) {
  using State = typename P::State;
  std::vector<State> out;
  out.reserve(pg.layout.num_vertices());
  for (std::uint32_t p = 0; p < pg.layout.num_partitions(); ++p) {
    const std::vector<State> states = read_records<State>(
        plan.state(), state_file_name(pg, p), reader, pg.layout.size(p));
    out.insert(out.end(), states.begin(), states.end());
  }
  return out;
}

/// Removes the run's state and update files from their role devices.
void remove_run_files(const graph::PartitionedGraph& pg,
                      const io::StoragePlan& plan);

}  // namespace detail
}  // namespace fbfs::xstream
