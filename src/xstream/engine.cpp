#include "xstream/engine.hpp"

#include "common/log.hpp"
#include "xstream/detail.hpp"

namespace fbfs::xstream {

EngineOptions engine_options_from_config(const Config& config) {
  EngineOptions opts;
  opts.reader = io::reader_options_from_config(config);
  opts.write_buffer_bytes = static_cast<std::size_t>(
      config.get_bytes_or("xstream.write_buffer", opts.write_buffer_bytes));
  opts.max_iterations = static_cast<std::uint32_t>(
      config.get_u64_or("xstream.max_iterations", opts.max_iterations));
  opts.num_threads = config.get_threads_or("engine.num_threads", 1);
  opts.update_codec = io::codec::parse_policy(config.get_enum_or(
      "updates.codec", {"auto", "raw", "bitmap", "varint"},
      io::codec::to_string(opts.update_codec)));
  opts.sieve_updates = config.get_bool_or("updates.sieve", opts.sieve_updates);
  return opts;
}

std::uint32_t partition_count_from_config(const Config& config,
                                          std::uint32_t fallback) {
  return static_cast<std::uint32_t>(
      config.get_u64_or("xstream.partition_count", fallback));
}

std::string state_file_name(const graph::PartitionedGraph& pg,
                            std::uint32_t p) {
  return pg.meta.name + ".P" +
         std::to_string(pg.layout.num_partitions()) + ".state" +
         std::to_string(p);
}

std::string update_file_name(const graph::PartitionedGraph& pg,
                             std::uint32_t p) {
  return pg.meta.name + ".P" +
         std::to_string(pg.layout.num_partitions()) + ".upd" +
         std::to_string(p);
}

namespace detail {

void log_iteration(const char* program, const IterationStats& stats) {
  FB_LOG_DEBUG << program << " round " << stats.iteration << ": "
               << stats.partitions_scattered << " partitions scattered ("
               << stats.partitions_skipped << " skipped), "
               << stats.updates_emitted << " updates, " << stats.activated
               << " active next, " << stats.seconds << " s";
}

void remove_run_files(const graph::PartitionedGraph& pg,
                      const io::StoragePlan& plan) {
  for (std::uint32_t p = 0; p < pg.layout.num_partitions(); ++p) {
    plan.state().remove(state_file_name(pg, p));
    if (plan.updates().exists(update_file_name(pg, p))) {
      plan.updates().remove(update_file_name(pg, p));
    }
  }
}

}  // namespace detail

}  // namespace fbfs::xstream
