#include "xstream/engine.hpp"

#include "common/log.hpp"
#include "xstream/detail.hpp"

namespace fbfs::xstream {

EngineOptions engine_options_from_config(const Config& config) {
  return engine::options_from_config(config, engine::Kind::kXstream);
}

std::uint32_t partition_count_from_config(const Config& config,
                                          std::uint32_t fallback) {
  return engine::partition_count_from_config(config, engine::Kind::kXstream,
                                             fallback);
}

std::string state_file_name(const graph::PartitionedGraph& pg,
                            std::uint32_t p) {
  return pg.meta.name + ".P" +
         std::to_string(pg.layout.num_partitions()) + ".state" +
         std::to_string(p);
}

std::string update_file_name(const graph::PartitionedGraph& pg,
                             std::uint32_t p) {
  return pg.meta.name + ".P" +
         std::to_string(pg.layout.num_partitions()) + ".upd" +
         std::to_string(p);
}

namespace detail {

void log_iteration(const char* program, const IterationStats& stats) {
  FB_LOG_DEBUG << program << " round " << stats.iteration << ": "
               << stats.partitions_scattered << " partitions scattered ("
               << stats.partitions_skipped << " skipped), "
               << stats.updates_emitted << " updates, " << stats.activated
               << " active next, " << stats.seconds << " s";
}

void remove_run_files(const graph::PartitionedGraph& pg,
                      const io::StoragePlan& plan) {
  for (std::uint32_t p = 0; p < pg.layout.num_partitions(); ++p) {
    plan.state().remove(state_file_name(pg, p));
    if (plan.updates().exists(update_file_name(pg, p))) {
      plan.updates().remove(update_file_name(pg, p));
    }
  }
}

}  // namespace detail

}  // namespace fbfs::xstream
