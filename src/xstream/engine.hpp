// The streaming-partition scatter/gather engine (ROADMAP item 2): the
// X-Stream baseline FastBFS's trimming core (PR 4) plugs into.
//
// The graph lives on disk as P partition edge files (partitioner.hpp:
// partition p owns the vertex range [begin(p), end(p)) and holds the
// out-edges of its sources). Vertex state also lives on disk, one State
// record file per partition, so resident memory per phase is one
// partition's states plus stream buffers — the out-of-core regime of
// the paper. Each round:
//
//   scatter  for each partition with an active source (every partition,
//            for kScatterAllVertices programs): load its state file,
//            stream its edge file through a factory reader
//            (plain/prefetch per EngineOptions), and append each
//            emitted Update to the update stream of the partition
//            owning the target — the shuffle happens in place via P
//            open RecordWriters on the updates device;
//   gather   for each partition with pending updates (or kNeedsApply):
//            load its state file, stream its update file, fold updates
//            into states, run apply over the partition when the
//            program needs it, and write the state file back.
//
// Round accounting and stop rules are EXACTLY inmem::run's (see that
// header; change both or neither) — that contract plus order-free
// gathers is why both engines produce bit-identical states at any
// partition count and either reader mode.
//
// Devices come from a StoragePlan: edges / state / updates are separate
// roles, so the paper's dual-disk placement is one plan away.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/bitmap.hpp"
#include "common/check.hpp"
#include "common/config.hpp"
#include "common/stopwatch.hpp"
#include "graph/partitioner.hpp"
#include "graph/program.hpp"
#include "storage/reader_factory.hpp"
#include "storage/storage_plan.hpp"
#include "storage/stream.hpp"

namespace fbfs::xstream {

struct EngineOptions {
  /// Edge, update, and state streams all honour this mode/buffer.
  io::ReaderOptions reader;
  /// Split across the P update writers during scatter; whole for the
  /// state write-back.
  std::size_t write_buffer_bytes = 1 << 20;
  std::uint32_t max_iterations = 1'000'000;
  /// Leave the final state files (and the last update files) on their
  /// devices instead of removing them after the run.
  bool keep_files = false;
};

/// Reads `io.reader` / `io.reader_buffer` (reader_factory),
/// `xstream.write_buffer` (byte size), `xstream.max_iterations`.
EngineOptions engine_options_from_config(const Config& config);

/// Reads `xstream.partition_count`, falling back to `fallback`.
std::uint32_t partition_count_from_config(const Config& config,
                                          std::uint32_t fallback);

/// On-device file names (rounds overwrite in place).
std::string state_file_name(const graph::PartitionedGraph& pg,
                            std::uint32_t p);
std::string update_file_name(const graph::PartitionedGraph& pg,
                             std::uint32_t p);

struct IterationStats {
  std::uint32_t iteration = 0;            // 0-based round index
  std::uint32_t partitions_scattered = 0;  // partitions not skipped
  std::uint64_t updates_emitted = 0;
  std::uint64_t activated = 0;  // vertices active entering the next round
  double seconds = 0.0;
};

template <graph::GraphProgram P>
struct RunResult {
  std::vector<typename P::State> states;  // all vertices, in id order
  std::uint32_t iterations = 0;
  std::uint64_t updates_emitted = 0;
  std::vector<IterationStats> per_iteration;
};

namespace detail {

void log_iteration(const char* program, const IterationStats& stats);

template <typename T>
std::vector<T> read_records(io::Device& device, const std::string& name,
                            const io::ReaderOptions& opts,
                            std::uint64_t expected) {
  auto reader = io::open_record_reader<T>(device, name, opts);
  std::vector<T> out;
  out.reserve(expected);
  for (auto batch = reader->next_batch(); !batch.empty();
       batch = reader->next_batch()) {
    out.insert(out.end(), batch.begin(), batch.end());
  }
  FB_CHECK_MSG(out.size() == expected,
               name << " holds " << out.size() << " records, expected "
                    << expected);
  return out;
}

template <typename T>
void write_records(io::Device& device, const std::string& name,
                   std::span<const T> records, std::size_t buffer_bytes) {
  auto file = device.open(name, /*truncate=*/true);
  io::RecordWriter<T> writer(*file, buffer_bytes);
  writer.append_batch(records);
  writer.flush();
}

}  // namespace detail

template <graph::GraphProgram P>
RunResult<P> run(const graph::PartitionedGraph& pg,
                 const io::StoragePlan& plan, const P& program,
                 const EngineOptions& options = {}) {
  using State = typename P::State;
  using Update = typename P::Update;
  FB_CHECK_MSG(!P::kRequiresUndirected || pg.meta.undirected,
               P::kName << " requires a symmetric edge list, but "
                        << pg.meta.name
                        << " is directed (symmetrize_edge_list)");
  const graph::PartitionLayout& layout = pg.layout;
  const std::uint32_t num_partitions = layout.num_partitions();
  const std::uint64_t n = layout.num_vertices();

  RunResult<P> result;
  AtomicBitmap active(n);
  AtomicBitmap next_active(n);

  // ---- init: one pass per partition builds local out-degrees off the
  // partition's own edge file, then writes its state file.
  for (std::uint32_t p = 0; p < num_partitions; ++p) {
    const graph::VertexId begin = layout.begin(p);
    std::vector<std::uint32_t> degrees(layout.size(p), 0);
    auto edges = io::open_record_reader<graph::Edge>(
        plan.edges(), pg.partition_file(p), options.reader);
    for (auto batch = edges->next_batch(); !batch.empty();
         batch = edges->next_batch()) {
      for (const graph::Edge& e : batch) {
        FB_CHECK_MSG(layout.owner(e.src) == p,
                     "edge source " << e.src << " misfiled into partition "
                                    << p << " of " << pg.meta.name);
        ++degrees[e.src - begin];
      }
    }
    std::vector<State> states(layout.size(p));
    for (std::uint64_t i = 0; i < states.size(); ++i) {
      const graph::VertexId v = begin + static_cast<graph::VertexId>(i);
      bool is_active = false;
      program.init(v, degrees[i], states[i], is_active);
      if (is_active) active.set(v);
    }
    detail::write_records<State>(plan.state(), state_file_name(pg, p),
                                 states, options.write_buffer_bytes);
  }

  const auto range_has_active = [&](std::uint32_t p) {
    if (P::kScatterAllVertices) return true;
    for (graph::VertexId v = layout.begin(p); v < layout.end(p); ++v) {
      if (active.test(v)) return true;
    }
    return false;
  };

  // ---- rounds. Stop rules mirror inmem::run exactly.
  std::vector<std::uint64_t> pending_updates(num_partitions, 0);
  while (result.iterations < options.max_iterations) {
    Stopwatch round_clock;
    IterationStats stats;
    stats.iteration = result.iterations;

    // Scatter: P update writers stay open across all source partitions;
    // writer q receives every update addressed into partition q, in
    // source-partition order.
    {
      const std::size_t update_buffer = std::max<std::size_t>(
          sizeof(Update), options.write_buffer_bytes / num_partitions);
      std::vector<std::unique_ptr<io::File>> update_files;
      std::vector<std::unique_ptr<io::RecordWriter<Update>>> update_writers;
      for (std::uint32_t q = 0; q < num_partitions; ++q) {
        update_files.push_back(
            plan.updates().open(update_file_name(pg, q), /*truncate=*/true));
        update_writers.push_back(std::make_unique<io::RecordWriter<Update>>(
            *update_files[q], update_buffer));
      }
      for (std::uint32_t p = 0; p < num_partitions; ++p) {
        if (!range_has_active(p)) continue;
        ++stats.partitions_scattered;
        const graph::VertexId begin = layout.begin(p);
        const std::vector<State> states = detail::read_records<State>(
            plan.state(), state_file_name(pg, p), options.reader,
            layout.size(p));
        auto edges = io::open_record_reader<graph::Edge>(
            plan.edges(), pg.partition_file(p), options.reader);
        for (auto batch = edges->next_batch(); !batch.empty();
             batch = edges->next_batch()) {
          for (const graph::Edge& e : batch) {
            if (!P::kScatterAllVertices && !active.test(e.src)) continue;
            Update u;
            if (program.scatter(e, states[e.src - begin], u)) {
              update_writers[layout.owner(u.dst)]->append(u);
            }
          }
        }
      }
      for (std::uint32_t q = 0; q < num_partitions; ++q) {
        update_writers[q]->flush();
        pending_updates[q] = update_writers[q]->records_appended();
        stats.updates_emitted += pending_updates[q];
      }
    }
    if (stats.updates_emitted == 0 && !P::kScatterAllVertices) break;
    result.updates_emitted += stats.updates_emitted;

    // Gather (+ apply): partitions with no pending updates keep their
    // state file untouched unless the program applies every round.
    next_active.reset();
    for (std::uint32_t q = 0; q < num_partitions; ++q) {
      if (pending_updates[q] == 0 && !P::kNeedsApply) continue;
      const graph::VertexId begin = layout.begin(q);
      std::vector<State> states = detail::read_records<State>(
          plan.state(), state_file_name(pg, q), options.reader,
          layout.size(q));
      if (pending_updates[q] > 0) {
        auto updates = io::open_record_reader<Update>(
            plan.updates(), update_file_name(pg, q), options.reader);
        for (auto batch = updates->next_batch(); !batch.empty();
             batch = updates->next_batch()) {
          for (const Update& u : batch) {
            FB_CHECK_MSG(layout.owner(u.dst) == q,
                         "update target " << u.dst
                                          << " misrouted into partition "
                                          << q << " of " << pg.meta.name);
            if (program.gather(u, states[u.dst - begin])) {
              next_active.set(u.dst);
            }
          }
        }
      }
      if constexpr (P::kNeedsApply) {
        for (std::uint64_t i = 0; i < states.size(); ++i) {
          program.apply(begin + static_cast<graph::VertexId>(i), states[i]);
        }
      }
      detail::write_records<State>(plan.state(), state_file_name(pg, q),
                                   states, options.write_buffer_bytes);
    }

    ++result.iterations;
    std::swap(active, next_active);
    stats.activated = active.count_set();
    stats.seconds = round_clock.seconds();
    detail::log_iteration(P::kName, stats);
    result.per_iteration.push_back(stats);
    if (!P::kScatterAllVertices && !active.any()) break;
  }

  // ---- collect the final states (id order) and tidy the devices.
  result.states.reserve(n);
  for (std::uint32_t p = 0; p < num_partitions; ++p) {
    const std::vector<State> states = detail::read_records<State>(
        plan.state(), state_file_name(pg, p), options.reader,
        layout.size(p));
    result.states.insert(result.states.end(), states.begin(), states.end());
  }
  if (!options.keep_files) {
    for (std::uint32_t p = 0; p < num_partitions; ++p) {
      plan.state().remove(state_file_name(pg, p));
      if (plan.updates().exists(update_file_name(pg, p))) {
        plan.updates().remove(update_file_name(pg, p));
      }
    }
  }
  return result;
}

}  // namespace fbfs::xstream
