// The streaming-partition scatter/gather engine (ROADMAP item 2): the
// X-Stream baseline FastBFS's trimming core (src/core) plugs into.
//
// The graph lives on disk as P partition edge files (partitioner.hpp:
// partition p owns the vertex range [begin(p), end(p)) and holds the
// out-edges of its sources). Vertex state also lives on disk, one State
// record file per partition, so resident memory per phase is one
// partition's states plus stream buffers — the out-of-core regime of
// the paper. Each round:
//
//   scatter  for each partition with an active source (every partition,
//            for kScatterAllVertices programs): load its state file,
//            stream its edge file through a factory reader
//            (plain/prefetch per EngineOptions), and append each
//            emitted Update to the update stream of the partition
//            owning the target — the shuffle happens in place via P
//            open RecordWriters on the updates device;
//   gather   for each partition with pending updates (or kNeedsApply):
//            load its state file, stream its update file, fold updates
//            into states, run apply over the partition when the
//            program needs it, and write the state file back.
//
// Round accounting and stop rules are EXACTLY inmem::run's (see that
// header; change both or neither) — that contract plus order-free
// gathers is why both engines produce bit-identical states at any
// partition count and either reader mode. The init pass, the update
// fan-out, and the whole gather phase are shared with core::run through
// xstream/detail.hpp; this engine's own code is just the plain scatter
// loop.
//
// Devices come from a StoragePlan: edges / state / updates are separate
// roles, so the paper's dual-disk placement is one plan away.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bitmap.hpp"
#include "common/check.hpp"
#include "common/config.hpp"
#include "common/parallel.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "engine/types.hpp"
#include "graph/partitioner.hpp"
#include "graph/program.hpp"
#include "metrics/collector.hpp"
#include "metrics/device_usage.hpp"
#include "storage/codec.hpp"
#include "storage/reader_factory.hpp"
#include "storage/storage_plan.hpp"
#include "xstream/detail.hpp"

namespace fbfs::xstream {

/// The unified engine surface (engine/types.hpp — shared-key precedence
/// is documented there, once). This engine ignores the core-only
/// trim/direction fields; the trim/direction counters of its results
/// stay default-zero.
using EngineOptions = engine::Options;

template <graph::GraphProgram P>
using RunResult = engine::RunResult<P>;

/// engine::options_from_config(config, Kind::kXstream): `io.reader` /
/// `io.reader_buffer`, `xstream.write_buffer` > `engine.write_buffer`,
/// `xstream.max_iterations` > `engine.max_iterations`,
/// `engine.num_threads`, `updates.codec`, `updates.sieve`.
EngineOptions engine_options_from_config(const Config& config);

/// Reads `xstream.partition_count` > `engine.partition_count` >
/// `fallback`.
std::uint32_t partition_count_from_config(const Config& config,
                                          std::uint32_t fallback);

template <graph::GraphProgram P>
RunResult<P> run(const graph::PartitionedGraph& pg,
                 const io::StoragePlan& plan, const P& program,
                 const EngineOptions& options = {}) {
  using State = typename P::State;
  using Update = typename P::Update;
  FB_CHECK_MSG(!P::kRequiresUndirected || pg.meta.undirected,
               P::kName << " requires a symmetric edge list, but "
                        << pg.meta.name
                        << " is directed (symmetrize_edge_list)");
  const graph::PartitionLayout& layout = pg.layout;
  const std::uint32_t num_partitions = layout.num_partitions();
  const std::uint64_t n = layout.num_vertices();

  RunResult<P> result;
  AtomicBitmap active(n);
  AtomicBitmap next_active(n);

  const unsigned num_threads = resolve_thread_count(options.num_threads);
  std::optional<ThreadPool> pool;
  if (num_threads > 1) pool.emplace(num_threads);
  const ExecContext exec{pool ? &*pool : nullptr};

  detail::init_partition_states(pg, plan, options.reader,
                                options.write_buffer_bytes, program, active,
                                exec);

  // ---- rounds. Stop rules mirror inmem::run exactly.
  metrics::Collector* const collector = options.collector;
  std::vector<std::uint64_t> pending_updates(num_partitions, 0);
  while (result.iterations < options.max_iterations) {
    Stopwatch round_clock;
    IterationStats stats;
    stats.iteration = result.iterations;
    const metrics::RoleSnapshots io_before = plan.stats_snapshot();

    // Scatter.
    {
      Stopwatch scatter_clock;
      auto fanout = detail::open_update_fanout<Update>(
          pg, plan, options.write_buffer_bytes, options.update_codec,
          graph::kIdempotentGatherV<P>);
      detail::NullTrimSink no_trim;
      for (std::uint32_t p = 0; p < num_partitions; ++p) {
        if (!P::kScatterAllVertices &&
            !active.any_in_range(layout.begin(p), layout.end(p))) {
          ++stats.partitions_skipped;
          if (collector != nullptr) collector->live().add_partition_skipped();
          continue;
        }
        ++stats.partitions_scattered;
        if (collector != nullptr) collector->live().add_partition_scattered();
        metrics::ScopedPhase scatter_timer(collector,
                                           metrics::Phase::kScatter);
        const std::vector<State> states = detail::read_records<State>(
            plan.state(), state_file_name(pg, p), options.reader,
            layout.size(p));
        const detail::ScatterResult scattered = detail::scatter_partition<P>(
            exec, plan.edges(), pg.partition_file(p), /*base_offset=*/0,
            pg.edges_per_partition[p], layout, layout.begin(p), states,
            active, program, options.reader, options.sieve_updates, fanout,
            no_trim, collector);
        FB_CHECK_MSG(scattered.scanned == pg.edges_per_partition[p],
                     pg.partition_file(p)
                         << " scanned " << scattered.scanned
                         << " edges, expected " << pg.edges_per_partition[p]);
        stats.edges_scanned += scattered.scanned;
        stats.edges_probed += scattered.probed;
        stats.updates_sieved += scattered.sieved;
      }
      {
        metrics::ScopedPhase flush_timer(collector,
                                         metrics::Phase::kShuffleFlush);
        const auto closed = fanout.close(pending_updates);
        stats.updates_emitted = closed.updates;
        stats.update_codec_bytes = closed.file_bytes;
      }
      stats.scatter_seconds = scatter_clock.seconds();
    }
    if (stats.updates_emitted == 0 && !P::kScatterAllVertices) break;
    result.updates_emitted += stats.updates_emitted;

    next_active.reset();
    {
      Stopwatch gather_clock;
      detail::gather_partitions(pg, plan, options.reader,
                                options.write_buffer_bytes, program,
                                pending_updates, next_active, exec, collector);
      stats.gather_seconds = gather_clock.seconds();
    }

    ++result.iterations;
    std::swap(active, next_active);
    stats.activated = active.count_set();
    stats.seconds = round_clock.seconds();
    metrics::capture_iteration_io(plan, io_before, stats);
    detail::log_iteration(P::kName, stats);
    result.per_iteration.push_back(stats);
    if (collector != nullptr) collector->end_iteration(stats);
    if (!P::kScatterAllVertices && !active.any()) break;
  }

  // ---- collect the final states (id order) and tidy the devices.
  result.states = detail::collect_states<P>(pg, plan, options.reader);
  if (!options.keep_files) {
    detail::remove_run_files(pg, plan);
  }
  return result;
}

}  // namespace fbfs::xstream
