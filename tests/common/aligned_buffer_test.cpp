// AlignedBuffer / AlignedBufferPool contracts the real backend's
// O_DIRECT bounce path leans on: alignment of the returned address,
// size round-up, and the pool's tightest-fit reuse with a bounded
// cache.
#include "common/aligned_buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

namespace fbfs {
namespace {

TEST(AlignedBuffer, AllocatesAlignedAndRoundsSizeUp) {
  for (const std::size_t alignment : {std::size_t{512}, std::size_t{4096}}) {
    const AlignedBuffer buf = AlignedBuffer::allocate(1000, alignment);
    ASSERT_FALSE(buf.empty());
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % alignment, 0u);
    EXPECT_EQ(buf.size() % alignment, 0u);
    EXPECT_GE(buf.size(), 1000u);
    EXPECT_EQ(buf.alignment(), alignment);
  }
  // Zero bytes still yields one aligned block (O_DIRECT probes use it).
  const AlignedBuffer zero = AlignedBuffer::allocate(0, 4096);
  EXPECT_EQ(zero.size(), 4096u);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer a = AlignedBuffer::allocate(4096, 4096);
  std::memset(a.data(), 0x5a, a.size());
  AlignedBuffer b = std::move(a);
  EXPECT_TRUE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_EQ(static_cast<unsigned char>(b.data()[0]), 0x5au);
  a = std::move(b);
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(a.empty());
}

TEST(AlignedBufferPool, ReusesTightestFitAndCapsTheCache) {
  AlignedBufferPool pool(4096, /*max_cached=*/2);
  AlignedBuffer small = pool.acquire(4096);
  AlignedBuffer large = pool.acquire(1 << 20);
  const std::byte* large_ptr = large.data();
  pool.release(std::move(large));
  pool.release(std::move(small));
  EXPECT_EQ(pool.cached(), 2u);

  // A mid-size request skips the too-small buffer and reuses the large
  // one (tightest fit that still fits).
  AlignedBuffer again = pool.acquire(64 << 10);
  EXPECT_EQ(again.data(), large_ptr);
  EXPECT_EQ(pool.cached(), 1u);
  pool.release(std::move(again));

  // Over the cap the smallest cached buffer is evicted, keeping the
  // buffers the peak workload actually needs.
  pool.release(AlignedBuffer::allocate(8192, 4096));
  EXPECT_EQ(pool.cached(), 2u);
  const AlignedBuffer kept = pool.acquire(1 << 20);
  EXPECT_EQ(kept.data(), large_ptr);
}

TEST(AlignedBufferPool, ConcurrentAcquireReleaseIsSafe) {
  AlignedBufferPool pool(4096);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&pool] {
      for (int i = 0; i < 200; ++i) {
        AlignedBuffer buf = pool.acquire(4096 * (1 + i % 4));
        buf.data()[0] = std::byte{0xff};
        pool.release(std::move(buf));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_LE(pool.cached(), 16u);
}

}  // namespace
}  // namespace fbfs
