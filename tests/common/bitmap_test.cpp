#include "common/bitmap.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace fbfs {
namespace {

TEST(AtomicBitmap, SetTestClear) {
  AtomicBitmap bm(130);  // crosses a word boundary
  EXPECT_EQ(bm.size(), 130u);
  EXPECT_FALSE(bm.any());
  for (std::uint64_t i = 0; i < bm.size(); ++i) EXPECT_FALSE(bm.test(i));

  bm.set(0);
  bm.set(63);
  bm.set(64);
  bm.set(129);
  EXPECT_TRUE(bm.test(0));
  EXPECT_TRUE(bm.test(63));
  EXPECT_TRUE(bm.test(64));
  EXPECT_TRUE(bm.test(129));
  EXPECT_FALSE(bm.test(1));
  EXPECT_EQ(bm.count_set(), 4u);
  EXPECT_TRUE(bm.any());

  bm.clear(63);
  EXPECT_FALSE(bm.test(63));
  EXPECT_EQ(bm.count_set(), 3u);

  bm.reset();
  EXPECT_EQ(bm.count_set(), 0u);
  EXPECT_FALSE(bm.any());
}

TEST(AtomicBitmap, TestAndSetReturnsPrevious) {
  AtomicBitmap bm(10);
  EXPECT_FALSE(bm.test_and_set(3));
  EXPECT_TRUE(bm.test_and_set(3));
  EXPECT_TRUE(bm.test(3));
}

// The BFS-claim contract: when several threads race test_and_set on the
// same bits, each bit is won exactly once.
TEST(AtomicBitmap, ConcurrentClaimIsExclusive) {
  constexpr std::uint64_t kBits = 1 << 14;
  constexpr int kThreads = 4;
  AtomicBitmap bm(kBits);
  std::atomic<std::uint64_t> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::uint64_t local = 0;
      for (std::uint64_t i = 0; i < kBits; ++i) {
        if (!bm.test_and_set(i)) ++local;
      }
      wins.fetch_add(local);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wins.load(), kBits);
  EXPECT_EQ(bm.count_set(), kBits);
}

}  // namespace
}  // namespace fbfs
