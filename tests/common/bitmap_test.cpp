#include "common/bitmap.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace fbfs {
namespace {

TEST(AtomicBitmap, SetTestClear) {
  AtomicBitmap bm(130);  // crosses a word boundary
  EXPECT_EQ(bm.size(), 130u);
  EXPECT_FALSE(bm.any());
  for (std::uint64_t i = 0; i < bm.size(); ++i) EXPECT_FALSE(bm.test(i));

  bm.set(0);
  bm.set(63);
  bm.set(64);
  bm.set(129);
  EXPECT_TRUE(bm.test(0));
  EXPECT_TRUE(bm.test(63));
  EXPECT_TRUE(bm.test(64));
  EXPECT_TRUE(bm.test(129));
  EXPECT_FALSE(bm.test(1));
  EXPECT_EQ(bm.count_set(), 4u);
  EXPECT_TRUE(bm.any());

  bm.clear(63);
  EXPECT_FALSE(bm.test(63));
  EXPECT_EQ(bm.count_set(), 3u);

  bm.reset();
  EXPECT_EQ(bm.count_set(), 0u);
  EXPECT_FALSE(bm.any());
}

// The bottom-up direction's "partition fully visited?" probe, checked
// against a bit-by-bit scan over the same mask-sensitive boundaries as
// any_in_range below.
TEST(AtomicBitmap, AllInRangeMatchesBitwiseScan) {
  AtomicBitmap full(200);
  for (std::uint64_t i = 0; i < 200; ++i) full.set(i);
  EXPECT_TRUE(full.all_in_range(0, 200));
  EXPECT_TRUE(full.all_in_range(0, 0));    // empty ranges are vacuously
  EXPECT_TRUE(full.all_in_range(200, 200));  // full

  for (const std::uint64_t hole :
       {0ull, 63ull, 64ull, 127ull, 128ull, 199ull}) {
    AtomicBitmap bm(200);
    for (std::uint64_t i = 0; i < 200; ++i) {
      if (i != hole) bm.set(i);
    }
    for (std::uint64_t begin = 0; begin <= 200; ++begin) {
      for (const std::uint64_t end :
           {begin, begin + 1, begin + 63, begin + 64, begin + 65,
            std::uint64_t{200}}) {
        if (end < begin || end > 200) continue;
        const bool want = hole < begin || hole >= end;
        ASSERT_EQ(bm.all_in_range(begin, end), want)
            << "hole=" << hole << " [" << begin << "," << end << ")";
      }
    }
  }
}

TEST(AtomicBitmap, TestAndSetReturnsPrevious) {
  AtomicBitmap bm(10);
  EXPECT_FALSE(bm.test_and_set(3));
  EXPECT_TRUE(bm.test_and_set(3));
  EXPECT_TRUE(bm.test(3));
}

// The engines' partition probe. Boundary words are where the masking
// can go wrong: ranges starting/ending mid-word, on word edges, and
// spanning full interior words must all agree with a bit-by-bit scan.
TEST(AtomicBitmap, AnyInRangeMatchesBitwiseScan) {
  AtomicBitmap bm(200);
  EXPECT_FALSE(bm.any_in_range(0, 200));
  EXPECT_FALSE(bm.any_in_range(0, 0));
  EXPECT_FALSE(bm.any_in_range(200, 200));

  for (const std::uint64_t bit : {0ull, 63ull, 64ull, 127ull, 128ull, 199ull}) {
    AtomicBitmap one(200);
    one.set(bit);
    for (std::uint64_t begin = 0; begin <= 200; ++begin) {
      for (const std::uint64_t end :
           {begin, begin + 1, begin + 63, begin + 64, begin + 65,
            std::uint64_t{200}}) {
        if (end < begin || end > 200) continue;
        const bool want = bit >= begin && bit < end;
        EXPECT_EQ(one.any_in_range(begin, end), want)
            << "bit=" << bit << " [" << begin << "," << end << ")";
      }
    }
  }
}

TEST(AtomicBitmap, AnyInRangeWithinOneWord) {
  AtomicBitmap bm(64);
  bm.set(10);
  EXPECT_TRUE(bm.any_in_range(10, 11));
  EXPECT_TRUE(bm.any_in_range(0, 64));
  EXPECT_FALSE(bm.any_in_range(0, 10));
  EXPECT_FALSE(bm.any_in_range(11, 64));
  EXPECT_FALSE(bm.any_in_range(10, 10));
}

TEST(AtomicBitmap, OrWithAccumulates) {
  AtomicBitmap retired(130);
  AtomicBitmap frontier(130);
  retired.set(5);
  frontier.set(63);
  frontier.set(64);
  frontier.set(129);
  retired.or_with(frontier);
  EXPECT_TRUE(retired.test(5));
  EXPECT_TRUE(retired.test(63));
  EXPECT_TRUE(retired.test(64));
  EXPECT_TRUE(retired.test(129));
  EXPECT_EQ(retired.count_set(), 4u);
  // The source is untouched.
  EXPECT_FALSE(frontier.test(5));
  EXPECT_EQ(frontier.count_set(), 3u);
}

// The BFS-claim contract: when several threads race test_and_set on the
// same bits, each bit is won exactly once.
TEST(AtomicBitmap, ConcurrentClaimIsExclusive) {
  constexpr std::uint64_t kBits = 1 << 14;
  constexpr int kThreads = 4;
  AtomicBitmap bm(kBits);
  std::atomic<std::uint64_t> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::uint64_t local = 0;
      for (std::uint64_t i = 0; i < kBits; ++i) {
        if (!bm.test_and_set(i)) ++local;
      }
      wins.fetch_add(local);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wins.load(), kBits);
  EXPECT_EQ(bm.count_set(), kBits);
}

}  // namespace
}  // namespace fbfs
