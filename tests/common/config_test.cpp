#include "common/config.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/parallel.hpp"
#include "common/temp_dir.hpp"

namespace fbfs {
namespace {

TEST(Config, ParsesKeyValueLinesWithCommentsAndWhitespace) {
  const Config cfg = Config::parse_string(
      "# a comment\n"
      "\n"
      "  edges = 1024  \n"
      "ratio=0.25\n"
      "name =  rmat18 with spaces \n"
      "   # indented comment\n"
      "partitions = 16 # trailing comment\n"
      "flag = true\n");
  EXPECT_EQ(cfg.size(), 5u);
  EXPECT_EQ(cfg.get_u64("edges"), 1024u);
  EXPECT_EQ(cfg.get_u64("partitions"), 16u);
  EXPECT_DOUBLE_EQ(cfg.get_f64("ratio"), 0.25);
  EXPECT_EQ(cfg.get_str("name"), "rmat18 with spaces");
  EXPECT_TRUE(cfg.get_bool("flag"));
  EXPECT_TRUE(cfg.has("edges"));
  EXPECT_FALSE(cfg.has("missing"));
}

TEST(Config, LaterAssignmentWins) {
  const Config cfg = Config::parse_string("k = 1\nk = 2\n");
  EXPECT_EQ(cfg.get_u64("k"), 2u);
}

TEST(Config, FallbacksOnlyApplyWhenAbsent) {
  Config cfg;
  cfg.set_u64("present", 7);
  EXPECT_EQ(cfg.get_u64_or("present", 99), 7u);
  EXPECT_EQ(cfg.get_u64_or("absent", 99), 99u);
  EXPECT_DOUBLE_EQ(cfg.get_f64_or("absent", 0.5), 0.5);
  EXPECT_EQ(cfg.get_str_or("absent", "x"), "x");
  EXPECT_TRUE(cfg.get_bool_or("absent", true));
}

TEST(Config, FileRoundTripPreservesEverything) {
  TempDir dir("config");
  const std::string path = dir.str() + "/run.cache";

  Config cfg;
  cfg.set_u64("rmat18.fastbfs.bytes_read", 123456789012ull);
  cfg.set_f64("rmat18.fastbfs.seconds", 1.5e-3);
  cfg.set_f64("precise", 0.1234567890123456789);
  cfg.set_str("label", "two disks");
  cfg.set_bool("cached", true);
  cfg.write_file(path);

  const Config back = Config::parse_file(path);
  EXPECT_EQ(back.size(), cfg.size());
  EXPECT_EQ(back.get_u64("rmat18.fastbfs.bytes_read"), 123456789012ull);
  EXPECT_DOUBLE_EQ(back.get_f64("rmat18.fastbfs.seconds"), 1.5e-3);
  EXPECT_DOUBLE_EQ(back.get_f64("precise"), 0.1234567890123456789);
  EXPECT_EQ(back.get_str("label"), "two disks");
  EXPECT_TRUE(back.get_bool("cached"));
  // Atomic write: no .tmp remnant.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(Config, KeysAreSorted) {
  Config cfg;
  cfg.set_u64("b", 1);
  cfg.set_u64("a", 2);
  cfg.set_u64("c", 3);
  const auto keys = cfg.keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
  EXPECT_EQ(keys[2], "c");
}

TEST(ConfigDeath, MissingKeyAndMalformedValueAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Config cfg;
  cfg.set_str("text", "not-a-number");
  EXPECT_DEATH(cfg.get_u64("absent"), "missing config key: absent");
  EXPECT_DEATH(cfg.get_u64("text"), "not a u64");
  EXPECT_DEATH(Config::parse_string("no equals sign"), "has no '='");
}

TEST(Config, EnumsAcceptOnlyListedValues) {
  const Config cfg = Config::parse_string(
      "io.reader = prefetch\n"
      "mode = fast\n");
  EXPECT_EQ(cfg.get_enum("io.reader", {"plain", "prefetch"}), "prefetch");
  EXPECT_EQ(cfg.get_enum_or("absent", {"plain", "prefetch"}, "plain"),
            "plain");
}

TEST(ConfigDeath, EnumErrorsListTheValidValues) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Config cfg = Config::parse_string("mode = fast\n");
  EXPECT_DEATH(cfg.get_enum("mode", {"slow", "steady"}),
               "invalid value 'fast'; valid values: slow, steady");
  EXPECT_DEATH(cfg.get_enum("absent", {"a", "b"}), "missing config key");
  // A bad fallback is a programming error, not a config error.
  EXPECT_DEATH(cfg.get_enum_or("absent", {"a", "b"}, "c"),
               "fallback .* is invalid");
}

TEST(Config, ByteSizesAcceptBinarySuffixes) {
  const Config cfg = Config::parse_string(
      "plain = 4096\n"
      "kib = 64K\n"
      "mib = 4MiB\n"
      "gib = 2 GB\n"
      "zero = 0\n");
  EXPECT_EQ(cfg.get_bytes("plain"), 4096u);
  EXPECT_EQ(cfg.get_bytes("kib"), 64u * 1024);
  EXPECT_EQ(cfg.get_bytes("mib"), 4u * 1024 * 1024);
  EXPECT_EQ(cfg.get_bytes("gib"), 2ull * 1024 * 1024 * 1024);
  EXPECT_EQ(cfg.get_bytes("zero"), 0u);
  EXPECT_EQ(cfg.get_bytes_or("absent", 1 << 20), 1u << 20);
}

TEST(ConfigDeath, ByteSizeErrorsListTheValidSuffixes) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Config cfg = Config::parse_string(
      "bad_unit = 4 MiBs\n"
      "negative = -1K\n"
      "no_number = MiB\n");
  EXPECT_DEATH(cfg.get_bytes("bad_unit"), "optional suffix B, K/KB/KiB");
  EXPECT_DEATH(cfg.get_bytes("negative"), "not a byte size");
  EXPECT_DEATH(cfg.get_bytes("no_number"), "not a byte size");
}

TEST(Config, ThreadCountsResolveToConcreteWorkers) {
  const Config cfg = Config::parse_string(
      "explicit = 4\n"
      "auto = 0\n");
  EXPECT_EQ(cfg.get_threads("explicit"), 4u);
  // 0 = hardware concurrency, resolved to at least one worker.
  EXPECT_GE(cfg.get_threads("auto"), 1u);
  EXPECT_EQ(cfg.get_threads("auto"), resolve_thread_count(0));
  EXPECT_EQ(cfg.get_threads_or("absent", 3), 3u);
  EXPECT_GE(cfg.get_threads_or("absent", 0), 1u);  // fallback resolves too
  EXPECT_EQ(cfg.get_threads("explicit"), cfg.get_threads_or("explicit", 9));
}

TEST(ConfigDeath, ThreadCountNonsenseIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Config cfg = Config::parse_string(
      "huge = 100000\n"
      "text = many\n"
      "negative = -2\n");
  EXPECT_DEATH(cfg.get_threads("huge"), "not a sane thread count");
  EXPECT_DEATH(cfg.get_threads("text"), "not a u64");
  EXPECT_DEATH(cfg.get_threads("negative"), "not a u64");
  EXPECT_DEATH(cfg.get_threads("absent"), "missing config key");
}

}  // namespace
}  // namespace fbfs
