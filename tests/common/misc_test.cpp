// units, stopwatch, temp_dir, log level plumbing, CHECK macros.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "common/check.hpp"
#include "common/log.hpp"
#include "common/stopwatch.hpp"
#include "common/temp_dir.hpp"
#include "common/units.hpp"

namespace fbfs {
namespace {

TEST(Units, ConstantsAndFormatting) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_EQ(kGiB, 1024u * 1024u * 1024u);
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(4 * kKiB), "4.0 KiB");
  EXPECT_EQ(format_bytes(32 * kMiB + kMiB / 2), "32.5 MiB");
  EXPECT_EQ(format_bytes(2 * kGiB), "2.00 GiB");
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_GE(sw.seconds(), 0.010);
  EXPECT_GE(sw.elapsed_ns(), 10'000'000u);
  sw.restart();
  EXPECT_LT(sw.seconds(), 0.010);
}

TEST(TempDir, CreatesUniqueDirectoryAndRemovesIt) {
  std::filesystem::path kept;
  {
    TempDir a("misc");
    TempDir b("misc");
    EXPECT_NE(a.path(), b.path());
    EXPECT_TRUE(std::filesystem::is_directory(a.path()));
    // Contents go too.
    std::filesystem::create_directories(a.path() / "sub");
    kept = a.path();
  }
  EXPECT_FALSE(std::filesystem::exists(kept));
}

TEST(Log, ParsesLevels) {
  LogLevel level = LogLevel::info;
  EXPECT_TRUE(parse_log_level("debug", level));
  EXPECT_EQ(level, LogLevel::debug);
  EXPECT_TRUE(parse_log_level("warn", level));
  EXPECT_EQ(level, LogLevel::warn);
  EXPECT_TRUE(parse_log_level("off", level));
  EXPECT_EQ(level, LogLevel::off);
  EXPECT_FALSE(parse_log_level("verbose", level));
  EXPECT_EQ(level, LogLevel::off);  // untouched on failure
}

TEST(Log, EnvControlsLevel) {
  const LogLevel before = log_level();
  ::setenv("FASTBFS_LOG", "error", 1);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::error);
  EXPECT_FALSE(log_enabled(LogLevel::info));
  EXPECT_TRUE(log_enabled(LogLevel::error));

  // Unknown values leave the level alone.
  ::setenv("FASTBFS_LOG", "nonsense", 1);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::error);

  ::unsetenv("FASTBFS_LOG");
  set_log_level(before);
}

TEST(Log, DisabledLevelsDoNotEvaluateOperands) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::error);
  int evaluations = 0;
  FB_LOG_DEBUG << "never " << ++evaluations;
  EXPECT_EQ(evaluations, 0);
  set_log_level(before);
}

TEST(CheckDeath, MacrosAbortWithContext) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(FB_CHECK(1 == 2), "CHECK failed");
  EXPECT_DEATH(FB_CHECK_MSG(false, "ctx " << 42), "ctx 42");
  EXPECT_DEATH(FB_CHECK_EQ(3, 4), "3 vs 4");
  // Passing checks are silent.
  FB_CHECK(true);
  FB_CHECK_MSG(true, "unused");
  FB_CHECK_LE(1, 1);
}

}  // namespace
}  // namespace fbfs
