// Work-batching helpers the parallel engines are built on: range
// splitting, pool fan-out with exception propagation, and the
// OrderedGate that keeps chunked output byte-deterministic.
#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fbfs {
namespace {

TEST(SplitRange, CoversEveryIndexOnceInOrder) {
  for (const std::uint64_t n : {0ull, 1ull, 7ull, 64ull, 1000ull}) {
    for (const unsigned pieces : {1u, 2u, 3u, 8u, 200u}) {
      const std::vector<IndexRange> ranges = split_range(n, pieces);
      std::uint64_t expected_begin = 0;
      for (const IndexRange& r : ranges) {
        EXPECT_EQ(r.begin, expected_begin);
        EXPECT_GT(r.end, r.begin);  // empty subranges are dropped
        expected_begin = r.end;
      }
      EXPECT_EQ(expected_begin, n) << n << " over " << pieces;
      EXPECT_LE(ranges.size(), pieces);
      // Near-equal: sizes differ by at most one.
      if (!ranges.empty()) {
        const std::uint64_t smallest = ranges.back().size();
        const std::uint64_t largest = ranges.front().size();
        EXPECT_LE(largest - smallest, 1u);
      }
    }
  }
}

TEST(ParallelForRanges, SumsMatchAndExceptionsPropagate) {
  ThreadPool pool(4);
  std::vector<std::uint64_t> values(10'000);
  std::iota(values.begin(), values.end(), 0);
  std::atomic<std::uint64_t> sum{0};
  parallel_for_ranges(pool, values.size(), 8, [&](const IndexRange& r) {
    std::uint64_t local = 0;
    for (std::uint64_t i = r.begin; i < r.end; ++i) local += values[i];
    sum.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 10'000ull * 9'999 / 2);

  // A throwing range surfaces after all ranges ran (no task outlives
  // its captures), and the other ranges still completed.
  std::atomic<unsigned> ran{0};
  EXPECT_THROW(
      parallel_for_ranges(pool, 100, 4,
                          [&](const IndexRange& r) {
                            ran.fetch_add(1);
                            if (r.begin == 0) {
                              throw std::runtime_error("range failed");
                            }
                          }),
      std::runtime_error);
  EXPECT_EQ(ran.load(), 4u);
}

TEST(OrderedGate, RetiresTicketsInSubmissionOrderOnThePool) {
  // The scatter hand-off shape: chunk tasks do unordered work, then
  // append to a shared log strictly in ticket order. FIFO task pop is
  // what makes blocking in wait_turn deadlock-free.
  ThreadPool pool(4);
  constexpr std::uint64_t kTickets = 200;
  OrderedGate gate;
  std::vector<std::uint64_t> log;
  std::vector<std::future<void>> tasks;
  tasks.reserve(kTickets);
  for (std::uint64_t c = 0; c < kTickets; ++c) {
    tasks.push_back(pool.submit([&gate, &log, c] {
      gate.wait_turn(c);
      log.push_back(c);  // gate-serialised: no lock needed
      gate.complete(c);
    }));
  }
  join_all(tasks);
  ASSERT_EQ(log.size(), kTickets);
  for (std::uint64_t c = 0; c < kTickets; ++c) EXPECT_EQ(log[c], c);
}

TEST(ResolveThreadCount, ZeroMeansHardwareConcurrency) {
  EXPECT_EQ(resolve_thread_count(1), 1u);
  EXPECT_EQ(resolve_thread_count(7), 7u);
  EXPECT_GE(resolve_thread_count(0), 1u);
  EXPECT_EQ(resolve_thread_count(kMaxEngineThreads), kMaxEngineThreads);
}

TEST(ResolveThreadCountDeath, RejectsAbsurdCounts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(resolve_thread_count(kMaxEngineThreads + 1),
               "exceeds the sanity cap");
}

}  // namespace
}  // namespace fbfs
