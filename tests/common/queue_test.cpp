// Queue contracts, including the threaded handoffs the TSan CI job
// exercises.
#include "common/queue.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

namespace fbfs {
namespace {

TEST(SpscQueue, FifoWithinCapacity) {
  SpscQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_TRUE(q.try_push(4));
  EXPECT_FALSE(q.try_push(5));  // full
  EXPECT_EQ(q.try_pop(), 1);
  EXPECT_EQ(q.try_pop(), 2);
  EXPECT_TRUE(q.try_push(5));
  EXPECT_EQ(q.try_pop(), 3);
  EXPECT_EQ(q.try_pop(), 4);
  EXPECT_EQ(q.try_pop(), 5);
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(SpscQueue, ProducerConsumerPreservesOrder) {
  constexpr int kItems = 200'000;
  SpscQueue<int> q(64);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) q.push(i);
    q.close();
  });
  int expected = 0;
  int item = 0;
  while (q.pop(item)) {
    ASSERT_EQ(item, expected);
    ++expected;
  }
  EXPECT_EQ(expected, kItems);
  producer.join();
}

TEST(SpscQueue, CloseDrainsThenStops) {
  SpscQueue<int> q(8);
  q.push(1);
  q.push(2);
  q.close();
  int item = 0;
  EXPECT_TRUE(q.pop(item));
  EXPECT_EQ(item, 1);
  EXPECT_TRUE(q.pop(item));
  EXPECT_EQ(item, 2);
  EXPECT_FALSE(q.pop(item));
}

TEST(MpscQueue, TryPushRespectsCapacity) {
  MpscQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.try_pop(), 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(MpscQueue, ManyProducersOneConsumer) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50'000;
  MpscQueue<int> q(128);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) q.push(i);
    });
  }
  std::thread closer([&] {
    for (std::thread& t : producers) t.join();
    q.close();
  });

  long long sum = 0;
  long long count = 0;
  int item = 0;
  while (q.pop(item)) {
    sum += item;
    ++count;
  }
  closer.join();
  EXPECT_EQ(count, static_cast<long long>(kProducers) * kPerProducer);
  const long long per_producer =
      static_cast<long long>(kPerProducer) * (kPerProducer + 1) / 2;
  EXPECT_EQ(sum, kProducers * per_producer);
}

TEST(MpscQueue, CloseWakesBlockedConsumer) {
  MpscQueue<int> q(4);
  std::thread consumer([&] {
    int item = 0;
    EXPECT_FALSE(q.pop(item));  // blocks until close
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(SpscQueue, MoveOnlyPayload) {
  SpscQueue<std::unique_ptr<int>> q(2);
  q.push(std::make_unique<int>(42));
  auto out = q.try_pop();
  ASSERT_TRUE(out.has_value());
  ASSERT_TRUE(*out != nullptr);
  EXPECT_EQ(**out, 42);
}

}  // namespace
}  // namespace fbfs
