#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace fbfs {
namespace {

// Reference values computed with an independent implementation of
// splitmix64 seeding + xoshiro256** (Blackman & Vigna reference code).
TEST(Rng, KnownAnswerSeed42) {
  Rng rng(42);
  EXPECT_EQ(rng.next_u64(), 0x15780b2e0c2ec716ull);
  EXPECT_EQ(rng.next_u64(), 0x6104d9866d113a7eull);
  EXPECT_EQ(rng.next_u64(), 0xae17533239e499a1ull);
  EXPECT_EQ(rng.next_u64(), 0xecb8ad4703b360a1ull);
  EXPECT_EQ(rng.next_u64(), 0xfde6dc7fe2ec5e64ull);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  Rng c(8);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    any_diff |= va != c.next_u64();
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowStaysInRangeAndHitsAllResidues) {
  Rng rng(3);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    ++seen[v];
  }
  for (int count : seen) EXPECT_GT(count, 0);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextDoubleUniformish) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 20'000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20'000, 0.5, 0.02);
}

TEST(Zipf, FrequenciesSkewTowardsSmallRanks) {
  Rng rng(11);
  const std::uint64_t n = 1000;
  ZipfSampler zipf(n, 1.1);  // theta > 1: the YCSB closed form can't do this
  std::vector<std::uint64_t> count(n, 0);
  const int samples = 100'000;
  for (int i = 0; i < samples; ++i) {
    const std::uint64_t v = zipf.sample(rng);
    ASSERT_LT(v, n);
    ++count[v];
  }
  // Rank 0 dominates and the head outweighs the tail by a wide margin.
  EXPECT_GT(count[0], count[1]);
  EXPECT_GT(count[0], samples / 10);
  std::uint64_t head = 0, tail = 0;
  for (std::uint64_t k = 0; k < 10; ++k) head += count[k];
  for (std::uint64_t k = n - 500; k < n; ++k) tail += count[k];
  EXPECT_GT(head, tail * 4);
}

TEST(Zipf, NearUniformForTinyTheta) {
  Rng rng(13);
  ZipfSampler zipf(4, 0.01);
  std::vector<std::uint64_t> count(4, 0);
  for (int i = 0; i < 40'000; ++i) ++count[zipf.sample(rng)];
  for (std::uint64_t c : count) {
    EXPECT_NEAR(static_cast<double>(c), 10'000.0, 1'000.0);
  }
}

}  // namespace
}  // namespace fbfs
