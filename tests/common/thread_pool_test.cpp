#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace fbfs {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, FuturesCarryResults) {
  ThreadPool pool(2);
  auto a = pool.submit([] { return 21 * 2; });
  auto b = pool.submit([] { return std::string("stay"); });
  EXPECT_EQ(a.get(), 42);
  EXPECT_EQ(b.get(), "stay");
}

TEST(ThreadPool, FuturesCarryExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleIsARoundBarrier) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 24; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 24);
  // A second round on the same pool works too.
  for (int i = 0; i < 8; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
  }
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
}  // namespace fbfs
