// The codec/sieve acceptance matrix for the FastBFS trimming engine:
// every program, on a small R-MAT, must stay BIT-IDENTICAL to the
// in-memory reference under every update-codec policy (the stay codec
// follows it, as the config default does) x sieve on/off x serial and
// parallel scatter — all with trimming ON, so encoded stay files are
// written, committed, and re-scanned mid-matrix.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/temp_dir.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "inmem/engine.hpp"
#include "storage/codec.hpp"

namespace fbfs {
namespace {

using graph::BfsProgram;
using graph::GraphMeta;
using graph::PageRankProgram;
using graph::SsspProgram;
using graph::VertexId;
using graph::WccProgram;
using io::codec::Policy;

GraphMeta rmat_meta(io::Device& dev) {
  const graph::RmatSource source({.scale = 9, .edge_factor = 8, .seed = 7});
  return graph::write_generated(
      dev, "rmat", source.num_vertices(), source.seed(), source.undirected(),
      [&](const graph::EdgeSink& sink) { source.generate(sink); });
}

constexpr Policy kPolicies[] = {Policy::kRaw, Policy::kBitmap,
                                Policy::kVarint, Policy::kAuto};

template <graph::GraphProgram P>
void expect_codec_equivalent(io::Device& dev, const GraphMeta& meta,
                             const P& program,
                             std::uint32_t max_iterations = 1'000'000) {
  const auto reference =
      inmem::run_graph(dev, meta, program, {.max_iterations = max_iterations});
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const graph::PartitionedGraph pg = graph::partition_edge_list(plan, meta, 3);
  for (const Policy policy : kPolicies) {
    for (const bool sieve : {false, true}) {
      for (const std::uint32_t threads : {1u, 4u}) {
        SCOPED_TRACE(std::string(P::kName) + ", codec=" +
                     io::codec::to_string(policy) +
                     (sieve ? ", sieve" : ", no-sieve") + ", T=" +
                     std::to_string(threads));
        core::EngineOptions options;
        options.max_iterations = max_iterations;
        options.trim = true;
        options.update_codec = policy;
        options.stay_codec = policy;  // what the config default resolves to
        options.sieve_updates = sieve;
        options.num_threads = threads;
        const auto streamed = core::run(pg, plan, program, options);

        ASSERT_EQ(streamed.iterations, reference.iterations);
        ASSERT_EQ(streamed.states.size(), reference.states.size());
        ASSERT_EQ(
            std::memcmp(streamed.states.data(), reference.states.data(),
                        streamed.states.size() * sizeof(typename P::State)),
            0);
        for (VertexId v = 0; v < streamed.states.size(); ++v) {
          const auto want = program.output(v, reference.states[v]);
          const auto got = program.output(v, streamed.states[v]);
          ASSERT_EQ(std::memcmp(&want, &got, sizeof(want)), 0)
              << "vertex " << v;
        }
        if (P::kTrimmable && streamed.iterations > 1) {
          // The matrix is pointless if nothing trimmed: encoded stay
          // files must actually have been written and re-read.
          ASSERT_GT(streamed.trims_started, 0u);
        }
      }
    }
  }
}

TEST(CoreCodecEquivalence, BfsUnderEveryCodecAndSieve) {
  TempDir dir("core_codec_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  expect_codec_equivalent(dev, rmat_meta(dev), BfsProgram{.root = 0});
}

TEST(CoreCodecEquivalence, WccUnderEveryCodecAndSieve) {
  TempDir dir("core_codec_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta sym =
      graph::symmetrize_edge_list(dev, rmat_meta(dev), "rmat_sym");
  expect_codec_equivalent(dev, sym, WccProgram{});
}

TEST(CoreCodecEquivalence, SsspUnderEveryCodecAndSieve) {
  TempDir dir("core_codec_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  expect_codec_equivalent(dev, rmat_meta(dev), SsspProgram{.root = 0});
}

TEST(CoreCodecEquivalence, PageRankUnderEveryCodecAndSieve) {
  // Untrimmable and sieve-incapable: every knob must be a clean no-op.
  TempDir dir("core_codec_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta meta = rmat_meta(dev);
  expect_codec_equivalent(dev, meta,
                          PageRankProgram{.num_vertices = meta.num_vertices},
                          /*max_iterations=*/5);
}

TEST(CoreCodecEquivalence, EncodedStaysSurviveZeroGraceCancellation) {
  // Zero grace cancels any stream not already committed at the next
  // scan of its partition, mixing raw re-reads of the previous input
  // with encoded stay files mid-run — the fallback path must dispatch
  // per-partition on the format that actually committed.
  TempDir dir("core_codec_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta meta = rmat_meta(dev);
  const auto reference = inmem::run_graph(dev, meta, BfsProgram{});
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const graph::PartitionedGraph pg = graph::partition_edge_list(plan, meta, 3);
  for (const Policy policy : {Policy::kVarint, Policy::kAuto}) {
    for (const std::uint32_t threads : {1u, 4u}) {
      SCOPED_TRACE(std::string("codec=") + io::codec::to_string(policy) +
                   ", T=" + std::to_string(threads));
      core::EngineOptions options;
      options.trim = true;
      options.grace_timeout_seconds = 0.0;
      options.update_codec = policy;
      options.stay_codec = policy;
      options.sieve_updates = true;
      options.num_threads = threads;
      const auto streamed = core::run(pg, plan, BfsProgram{}, options);
      ASSERT_EQ(streamed.iterations, reference.iterations);
      ASSERT_EQ(std::memcmp(streamed.states.data(), reference.states.data(),
                            streamed.states.size() *
                                sizeof(BfsProgram::State)),
                0);
    }
  }
}

TEST(CoreCodecEquivalence, StayCodecShrinksStayBytesOnBfs) {
  // Varint stays must genuinely shrink the stay stream relative to raw
  // (8 B/edge down to ~5 B/edge of sorted deltas) without changing the
  // survivor count or a bit of the answer.
  TempDir dir("core_codec_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta meta = rmat_meta(dev);
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const graph::PartitionedGraph pg = graph::partition_edge_list(plan, meta, 3);

  const auto stay_bytes = [](const auto& result) {
    std::uint64_t total = 0;
    for (const auto& it : result.per_iteration) {
      total += it.role_io(io::Role::kStay).bytes_written;
    }
    return total;
  };

  core::EngineOptions raw;
  raw.trim = true;
  const auto raw_run = core::run(pg, plan, BfsProgram{}, raw);
  core::EngineOptions varint = raw;
  varint.stay_codec = Policy::kVarint;
  const auto varint_run = core::run(pg, plan, BfsProgram{}, varint);

  ASSERT_EQ(raw_run.iterations, varint_run.iterations);
  ASSERT_EQ(std::memcmp(raw_run.states.data(), varint_run.states.data(),
                        raw_run.states.size() * sizeof(BfsProgram::State)),
            0);
  ASSERT_GT(raw_run.trims_committed, 0u);
  ASSERT_EQ(raw_run.stay_edges_written, varint_run.stay_edges_written);
  ASSERT_GT(stay_bytes(raw_run), 0u);
  EXPECT_LT(stay_bytes(varint_run), stay_bytes(raw_run));
}

}  // namespace
}  // namespace fbfs
