// The acceptance suite for the FastBFS engine: every program, on every
// generator family, must produce BIT-IDENTICAL results from core::run
// and the in-memory reference — at multiple partition counts, with
// trimming off, trimming on, and trimming on with a zero grace timeout
// (the swap is refused whenever the stream has not already committed,
// exercising the cancellation/fallback path mid-matrix), each at
// T∈{1,2,4} worker threads. Trimming and threading are pure I/O-volume/
// wall-clock optimisations; if either changes a bit, it is a bug.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/temp_dir.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "inmem/engine.hpp"

namespace fbfs {
namespace {

using graph::BfsProgram;
using graph::GraphMeta;
using graph::PageRankProgram;
using graph::SsspProgram;
using graph::VertexId;
using graph::WccProgram;

GraphMeta materialize(io::Device& dev, const std::string& name,
                      const graph::ChunkedEdgeSource& source) {
  return graph::write_generated(
      dev, name, source.num_vertices(), source.seed(), source.undirected(),
      [&](const graph::EdgeSink& sink) { source.generate(sink); });
}

GraphMeta rmat_meta(io::Device& dev) {
  return materialize(dev, "rmat",
                     graph::RmatSource({.scale = 9, .edge_factor = 8,
                                        .seed = 7}));
}

GraphMeta er_meta(io::Device& dev) {
  return materialize(dev, "er",
                     graph::ErdosRenyiSource({.num_vertices = 1000,
                                              .num_edges = 8000, .seed = 11}));
}

GraphMeta grid_meta(io::Device& dev) {
  return materialize(dev, "grid",
                     graph::Grid2dSource({.width = 24, .height = 24}));
}

struct TrimConfig {
  const char* tag;
  bool trim;
  double grace_seconds;
};

constexpr TrimConfig kTrimConfigs[] = {
    {"trim-off", false, 5.0},
    {"trim-on", true, 5.0},
    // Zero grace: every pending stream still active at the next scan of
    // its partition is cancelled and the previous input reused.
    {"trim-on-zero-grace", true, 0.0},
};

template <graph::GraphProgram P>
void expect_equivalent(io::Device& dev, const GraphMeta& meta,
                       const P& program,
                       std::uint32_t max_iterations = 1'000'000) {
  const auto reference =
      inmem::run_graph(dev, meta, program, {.max_iterations = max_iterations});
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  for (const std::uint32_t parts : {2u, 5u}) {
    const graph::PartitionedGraph pg =
        graph::partition_edge_list(plan, meta, parts);
    for (const TrimConfig& cfg : kTrimConfigs) {
      for (const std::uint32_t threads : {1u, 2u, 4u}) {
        SCOPED_TRACE(std::string(P::kName) + " on " + meta.name + ", P=" +
                     std::to_string(parts) + ", " + cfg.tag + ", T=" +
                     std::to_string(threads));
        core::EngineOptions options;
        options.max_iterations = max_iterations;
        options.trim = cfg.trim;
        options.grace_timeout_seconds = cfg.grace_seconds;
        options.num_threads = threads;
        const auto streamed = core::run(pg, plan, program, options);

        ASSERT_EQ(streamed.iterations, reference.iterations);
        ASSERT_EQ(streamed.updates_emitted, reference.updates_emitted);
        ASSERT_EQ(streamed.states.size(), reference.states.size());
        ASSERT_EQ(
            std::memcmp(streamed.states.data(), reference.states.data(),
                        streamed.states.size() * sizeof(typename P::State)),
            0);
        for (VertexId v = 0; v < streamed.states.size(); ++v) {
          const auto want = program.output(v, reference.states[v]);
          const auto got = program.output(v, streamed.states[v]);
          ASSERT_EQ(std::memcmp(&want, &got, sizeof(want)), 0)
              << "vertex " << v;
        }
        if (!cfg.trim || !P::kTrimmable) {
          ASSERT_EQ(streamed.trims_started, 0u);
        } else if (streamed.iterations > 1) {
          // The eager default really trims on multi-round trimmable runs.
          ASSERT_GT(streamed.trims_started, 0u);
        }
      }
    }
  }
}

// ---------------------------------------------------------------- BFS

TEST(CoreEquivalence, BfsOnRmat) {
  TempDir dir("core_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  expect_equivalent(dev, rmat_meta(dev), BfsProgram{.root = 0});
}

TEST(CoreEquivalence, BfsOnErdosRenyi) {
  TempDir dir("core_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  expect_equivalent(dev, er_meta(dev), BfsProgram{.root = 3});
}

TEST(CoreEquivalence, BfsOnGrid) {
  TempDir dir("core_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  expect_equivalent(dev, grid_meta(dev), BfsProgram{.root = 0});
}

// ---------------------------------------------------------------- WCC

TEST(CoreEquivalence, WccOnRmatSymmetrized) {
  TempDir dir("core_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta sym =
      graph::symmetrize_edge_list(dev, rmat_meta(dev), "rmat_sym");
  expect_equivalent(dev, sym, WccProgram{});
}

TEST(CoreEquivalence, WccOnErdosRenyiSymmetrized) {
  TempDir dir("core_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta sym =
      graph::symmetrize_edge_list(dev, er_meta(dev), "er_sym");
  expect_equivalent(dev, sym, WccProgram{});
}

TEST(CoreEquivalence, WccOnGrid) {
  // The lattice generator already emits both directions.
  TempDir dir("core_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  expect_equivalent(dev, grid_meta(dev), WccProgram{});
}

// --------------------------------------------------------------- SSSP

TEST(CoreEquivalence, SsspOnRmat) {
  TempDir dir("core_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  expect_equivalent(dev, rmat_meta(dev), SsspProgram{.root = 0});
}

TEST(CoreEquivalence, SsspOnErdosRenyi) {
  TempDir dir("core_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  expect_equivalent(dev, er_meta(dev), SsspProgram{.root = 3});
}

TEST(CoreEquivalence, SsspOnGrid) {
  TempDir dir("core_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  expect_equivalent(dev, grid_meta(dev), SsspProgram{.root = 0});
}

// ----------------------------------------------------------- PageRank

TEST(CoreEquivalence, PageRankOnRmat) {
  TempDir dir("core_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta meta = rmat_meta(dev);
  expect_equivalent(dev, meta,
                    PageRankProgram{.num_vertices = meta.num_vertices},
                    /*max_iterations=*/5);
}

TEST(CoreEquivalence, PageRankOnErdosRenyi) {
  TempDir dir("core_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta meta = er_meta(dev);
  expect_equivalent(dev, meta,
                    PageRankProgram{.num_vertices = meta.num_vertices},
                    /*max_iterations=*/5);
}

TEST(CoreEquivalence, PageRankOnGrid) {
  TempDir dir("core_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta meta = grid_meta(dev);
  expect_equivalent(dev, meta,
                    PageRankProgram{.num_vertices = meta.num_vertices},
                    /*max_iterations=*/5);
}

// --------------------------------------------------- device placement

TEST(CoreEquivalence, DualPlanRoutesStayTrafficToAux) {
  // dual() puts updates AND stay on the aux device; trimming must not
  // change a byte, and the stay stream must actually land on aux.
  TempDir dir("core_equiv");
  io::Device main_dev(dir.str() + "/main", io::DeviceModel::unthrottled());
  io::Device aux_dev(dir.str() + "/aux", io::DeviceModel::unthrottled());
  const GraphMeta meta = rmat_meta(main_dev);
  const auto reference = inmem::run_graph(main_dev, meta, BfsProgram{});

  const io::StoragePlan plan = io::StoragePlan::dual(main_dev, aux_dev);
  const graph::PartitionedGraph pg =
      graph::partition_edge_list(plan, meta, 4);
  const auto streamed = core::run(pg, plan, BfsProgram{}, {});
  ASSERT_EQ(streamed.states.size(), reference.states.size());
  EXPECT_EQ(std::memcmp(streamed.states.data(), reference.states.data(),
                        streamed.states.size() *
                            sizeof(BfsProgram::State)),
            0);
  EXPECT_EQ(streamed.iterations, reference.iterations);
  EXPECT_GT(streamed.trims_started, 0u);
  EXPECT_GT(aux_dev.stats().bytes_written(), 0u);
}

}  // namespace
}  // namespace fbfs
