// Mechanics of the FastBFS engine: trim life cycle (stream → grace →
// swap/cancel), trim triggers, selective scheduling, fault fallback,
// config plumbing, and file hygiene. Bit-identity against the reference
// engine across the full matrix lives in core_equivalence_test.cpp.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/temp_dir.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "inmem/engine.hpp"
#include "xstream/engine.hpp"

namespace fbfs {
namespace {

using graph::BfsProgram;
using graph::GraphMeta;
using graph::PartitionedGraph;
using graph::WccProgram;
using graph::partition_edge_list;

GraphMeta chain_graph(io::Device& dev, std::uint64_t n) {
  // 0 -> 1 -> ... -> n-1.
  return graph::write_generated(
      dev, "chain", n, 1, /*undirected=*/false,
      [&](const graph::EdgeSink& sink) {
        for (graph::VertexId v = 0; v + 1 < n; ++v) {
          sink({v, v + 1});
        }
      });
}

GraphMeta rmat_graph(io::Device& dev) {
  const graph::RmatSource source({.scale = 9, .edge_factor = 8, .seed = 7});
  return graph::write_generated(
      dev, "rmat", source.num_vertices(), source.seed(), source.undirected(),
      [&](const graph::EdgeSink& sink) { source.generate(sink); });
}

/// Four devices, one per role — byte attribution is exact for all of
/// them (StoragePlan::dedicated).
struct DedicatedRig {
  TempDir dir;
  io::Device edges, state, updates, stay;
  io::StoragePlan plan;

  explicit DedicatedRig(const io::DeviceModel& model =
                            io::DeviceModel::unthrottled())
      : dir("core"),
        edges(dir.str() + "/edges", model),
        state(dir.str() + "/state", model),
        updates(dir.str() + "/updates", model),
        stay(dir.str() + "/stay", model),
        plan(io::StoragePlan::single(edges)
                 .assign(io::Role::kState, state)
                 .assign(io::Role::kUpdates, updates)
                 .assign(io::Role::kStay, stay)) {}
};

std::uint64_t edge_input_bytes_read(
    const std::vector<core::IterationStats>& rounds) {
  std::uint64_t total = 0;
  for (const auto& r : rounds) {
    total += r.role_io(io::Role::kEdges).bytes_read +
             r.role_io(io::Role::kStay).bytes_read;
  }
  return total;
}

TEST(CoreEngine, EngineOptionsComeFromConfigKeys) {
  const Config config = Config::parse_string(
      "core.write_buffer = 256K\n"
      "core.max_iterations = 12\n"
      "core.trim = false\n"
      "core.selective = false\n"
      "core.trim_start_round = 3\n"
      "core.trim_min_frontier_fraction = 0.25\n"
      "core.trim_min_dead_fraction = 0.5\n"
      "core.grace_timeout = 1.5\n"
      "core.stay_buffer = 64K\n"
      "core.stay_pool_buffers = 8\n"
      "core.partition_count = 6\n"
      "engine.num_threads = 2\n"
      "updates.codec = varint\n"
      "updates.sieve = true\n");

  const core::EngineOptions opts = core::engine_options_from_config(config);
  EXPECT_EQ(opts.write_buffer_bytes, 256u * 1024);
  EXPECT_EQ(opts.max_iterations, 12u);
  EXPECT_FALSE(opts.trim);
  EXPECT_FALSE(opts.selective);
  EXPECT_EQ(opts.trim_start_round, 3u);
  EXPECT_DOUBLE_EQ(opts.trim_min_frontier_fraction, 0.25);
  EXPECT_DOUBLE_EQ(opts.trim_min_dead_fraction, 0.5);
  EXPECT_DOUBLE_EQ(opts.grace_timeout_seconds, 1.5);
  EXPECT_EQ(opts.stay_buffer_bytes, 64u * 1024);
  EXPECT_EQ(opts.stay_pool_buffers, 8u);
  EXPECT_EQ(opts.num_threads, 2u);
  EXPECT_EQ(opts.update_codec, io::codec::Policy::kVarint);
  EXPECT_TRUE(opts.sieve_updates);
  // The stay codec follows the resolved updates.codec unless its own
  // key overrides it.
  EXPECT_EQ(opts.stay_codec, io::codec::Policy::kVarint);
  const core::EngineOptions overridden = core::engine_options_from_config(
      Config::parse_string("updates.codec = auto\n"
                           "updates.stay_codec = raw\n"));
  EXPECT_EQ(overridden.update_codec, io::codec::Policy::kAuto);
  EXPECT_EQ(overridden.stay_codec, io::codec::Policy::kRaw);
  EXPECT_EQ(core::engine_options_from_config(Config{}).num_threads, 1u);
  EXPECT_EQ(core::engine_options_from_config(Config{}).update_codec,
            io::codec::Policy::kRaw);
  EXPECT_EQ(core::engine_options_from_config(Config{}).stay_codec,
            io::codec::Policy::kRaw);
  EXPECT_EQ(core::partition_count_from_config(config, 2), 6u);
  EXPECT_EQ(core::partition_count_from_config(Config{}, 2), 2u);
}

TEST(CoreEngine, TrimmingCutsEdgeInputBytes) {
  // The paper's headline mechanism: on a BFS over R-MAT, dropping dead
  // edges from the per-partition inputs must shrink the bytes the edge
  // scans read (edges role + stay role, both dedicated here).
  DedicatedRig rig;
  const GraphMeta meta = rmat_graph(rig.edges);
  const PartitionedGraph pg = partition_edge_list(rig.plan, meta, 4);

  core::EngineOptions trimmed;
  trimmed.trim = true;
  const auto with_trim = core::run(pg, rig.plan, BfsProgram{}, trimmed);

  core::EngineOptions untrimmed;
  untrimmed.trim = false;
  const auto without = core::run(pg, rig.plan, BfsProgram{}, untrimmed);

  ASSERT_GT(with_trim.trims_started, 0u);
  ASSERT_GT(with_trim.trims_committed, 0u);
  EXPECT_EQ(without.trims_started, 0u);
  EXPECT_LT(edge_input_bytes_read(with_trim.per_iteration),
            edge_input_bytes_read(without.per_iteration));
  // Same answer either way.
  ASSERT_EQ(with_trim.states.size(), without.states.size());
  EXPECT_EQ(std::memcmp(with_trim.states.data(), without.states.data(),
                        with_trim.states.size() * sizeof(BfsProgram::State)),
            0);
}

TEST(CoreEngine, NonTrimmableProgramsNeverTrim) {
  DedicatedRig rig;
  const GraphMeta sym = graph::symmetrize_edge_list(
      rig.edges, rmat_graph(rig.edges), "rmat_sym");
  const PartitionedGraph pg = partition_edge_list(rig.plan, sym, 4);
  core::EngineOptions options;
  options.trim = true;  // requested, but WCC re-activates sources
  const auto result = core::run(pg, rig.plan, WccProgram{}, options);
  EXPECT_EQ(result.trims_started, 0u);
  EXPECT_EQ(rig.stay.stats().bytes_written(), 0u);
}

TEST(CoreEngine, TrimTriggersGateEagerTrimming) {
  DedicatedRig rig;
  const GraphMeta meta = chain_graph(rig.edges, 40);
  const PartitionedGraph pg = partition_edge_list(rig.plan, meta, 2);

  // A chain's frontier is one vertex: a 10% frontier gate never opens.
  core::EngineOptions gated;
  gated.trim_min_frontier_fraction = 0.10;
  const auto fraction_gated = core::run(pg, rig.plan, BfsProgram{}, gated);
  EXPECT_EQ(fraction_gated.trims_started, 0u);

  // A start round beyond the run's rounds never trims either.
  core::EngineOptions late;
  late.trim_start_round = 1000;
  const auto started_late = core::run(pg, rig.plan, BfsProgram{}, late);
  EXPECT_EQ(started_late.trims_started, 0u);

  // A dead-fraction threshold waits until a scan has SEEN enough dead
  // edges; partition 0 of the chain accumulates them round by round.
  core::EngineOptions dead_gate;
  dead_gate.trim_min_dead_fraction = 0.5;
  const auto dead_gated = core::run(pg, rig.plan, BfsProgram{}, dead_gate);
  EXPECT_GT(dead_gated.trims_started, 0u);
  EXPECT_EQ(dead_gated.per_iteration.front().trims_started, 0u);
}

TEST(CoreEngine, SelectiveSchedulingSkipsQuietPartitions) {
  DedicatedRig rig;
  const GraphMeta meta = chain_graph(rig.edges, 40);
  const PartitionedGraph pg = partition_edge_list(rig.plan, meta, 4);

  core::EngineOptions selective;
  const auto with_skip = core::run(pg, rig.plan, BfsProgram{}, selective);
  std::uint64_t skipped = 0;
  for (const auto& r : with_skip.per_iteration) skipped += r.partitions_skipped;
  // A chain frontier lives in one partition at a time.
  EXPECT_GT(skipped, 0u);

  core::EngineOptions scan_all;
  scan_all.selective = false;
  const auto without = core::run(pg, rig.plan, BfsProgram{}, scan_all);
  for (const auto& r : without.per_iteration) {
    EXPECT_EQ(r.partitions_skipped, 0u);
  }
  ASSERT_EQ(with_skip.states.size(), without.states.size());
  EXPECT_EQ(std::memcmp(with_skip.states.data(), without.states.data(),
                        with_skip.states.size() * sizeof(BfsProgram::State)),
            0);
}

TEST(CoreEngine, StayWriteFaultFallsBackToPreviousInput) {
  // A dying stay disk mid-iteration must auto-cancel the stream, leave
  // the previous input intact, and not change a single output bit.
  DedicatedRig rig;
  const GraphMeta meta = rmat_graph(rig.edges);
  const auto reference = inmem::run_graph(rig.edges, meta, BfsProgram{});
  const PartitionedGraph pg = partition_edge_list(rig.plan, meta, 4);
  const std::string part0 = pg.partition_file(0);
  const std::uint64_t part0_bytes = rig.edges.file_size(part0);

  rig.stay.inject_write_faults(1'000'000);
  core::EngineOptions options;
  options.stay_buffer_bytes = 4096;  // force mid-scan flushes into faults
  const auto result = core::run(pg, rig.plan, BfsProgram{}, options);

  EXPECT_GT(result.trims_started, 0u);
  EXPECT_EQ(result.trims_committed, 0u);
  EXPECT_GT(result.trims_failed, 0u);
  // Previous inputs untouched: the partition files still feed the run.
  EXPECT_EQ(rig.edges.file_size(part0), part0_bytes);
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_FALSE(rig.stay.exists(core::stay_file_name(pg, p)));
    EXPECT_FALSE(rig.stay.exists(core::stay_file_name(pg, p) + ".wip"));
  }
  // Bit-identical to the reference despite the degradation.
  ASSERT_EQ(result.states.size(), reference.states.size());
  EXPECT_EQ(std::memcmp(result.states.data(), reference.states.data(),
                        result.states.size() * sizeof(BfsProgram::State)),
            0);
}

TEST(CoreEngine, GraceTimeoutCancelsAndFallsBack) {
  // A stay device too slow to commit between consecutive scans of the
  // same partition: with a zero grace the swap is always refused, every
  // trim resolves as cancelled, and the previous input carries the run.
  TempDir dir("core");
  io::DeviceModel crawl;
  crawl.name = "crawl";
  // ~0.8 s modelled per 16 KiB survivor chunk, plus a 1.5 s seek on the
  // first write to every fresh .wip: rounds on the unthrottled main
  // device finish in microseconds, so no stream started in round r can
  // commit before round r+1 resolves it — even when the survivor chunk
  // is tiny and even on a loaded machine.
  crawl.write_mb_s = 0.02;
  crawl.seek_ns = 1'500'000'000;
  io::Device fast(dir.str() + "/main", io::DeviceModel::unthrottled());
  io::Device slow_stay(dir.str() + "/stay", crawl);
  io::StoragePlan plan =
      io::StoragePlan::single(fast).assign(io::Role::kStay, slow_stay);

  const GraphMeta meta = rmat_graph(fast);
  const auto reference = inmem::run_graph(fast, meta, BfsProgram{});
  const PartitionedGraph pg = partition_edge_list(plan, meta, 2);

  core::EngineOptions options;
  options.grace_timeout_seconds = 0.0;
  const auto result = core::run(pg, plan, BfsProgram{}, options);

  EXPECT_GT(result.trims_started, 0u);
  EXPECT_GT(result.trims_cancelled, 0u);
  ASSERT_EQ(result.states.size(), reference.states.size());
  EXPECT_EQ(std::memcmp(result.states.data(), reference.states.data(),
                        result.states.size() * sizeof(BfsProgram::State)),
            0);
}

TEST(CoreEngine, MultiThreadedForcedCancellationIsBitIdentical) {
  // The satellite case trim-on x multi-thread x forced cancellation:
  // chunk workers feed the stay stream through the ordered hand-off,
  // the crawling stay device never commits before the next scan, the
  // zero grace cancels every stream — and the fallback to the previous
  // input still cannot change a bit.
  TempDir dir("core");
  io::DeviceModel crawl;
  crawl.name = "crawl";
  crawl.write_mb_s = 0.02;
  crawl.seek_ns = 1'500'000'000;
  io::Device fast(dir.str() + "/main", io::DeviceModel::unthrottled());
  io::Device slow_stay(dir.str() + "/stay", crawl);
  io::StoragePlan plan =
      io::StoragePlan::single(fast).assign(io::Role::kStay, slow_stay);

  const GraphMeta meta = rmat_graph(fast);
  const auto reference = inmem::run_graph(fast, meta, BfsProgram{});
  const PartitionedGraph pg = partition_edge_list(plan, meta, 2);

  core::EngineOptions options;
  options.grace_timeout_seconds = 0.0;
  options.num_threads = 4;
  const auto result = core::run(pg, plan, BfsProgram{}, options);

  EXPECT_GT(result.trims_started, 0u);
  EXPECT_GT(result.trims_cancelled, 0u);
  ASSERT_EQ(result.states.size(), reference.states.size());
  EXPECT_EQ(std::memcmp(result.states.data(), reference.states.data(),
                        result.states.size() * sizeof(BfsProgram::State)),
            0);
}

TEST(CoreEngine, MultiThreadedStayWriteFaultFallsBack) {
  // Same dying-stay-disk scenario as above, but with chunk workers
  // appending survivors: the append failure surfaces inside the ordered
  // hand-off, the stream auto-cancels, and the outputs stay exact.
  DedicatedRig rig;
  const GraphMeta meta = rmat_graph(rig.edges);
  const auto reference = inmem::run_graph(rig.edges, meta, BfsProgram{});
  const PartitionedGraph pg = partition_edge_list(rig.plan, meta, 4);

  rig.stay.inject_write_faults(1'000'000);
  core::EngineOptions options;
  options.stay_buffer_bytes = 4096;  // force mid-scan flushes into faults
  options.num_threads = 4;
  const auto result = core::run(pg, rig.plan, BfsProgram{}, options);

  EXPECT_GT(result.trims_started, 0u);
  EXPECT_EQ(result.trims_committed, 0u);
  EXPECT_GT(result.trims_failed, 0u);
  ASSERT_EQ(result.states.size(), reference.states.size());
  EXPECT_EQ(std::memcmp(result.states.data(), reference.states.data(),
                        result.states.size() * sizeof(BfsProgram::State)),
            0);
}

TEST(CoreEngine, StayFilesAreByteIdenticalAcrossThreadCounts) {
  // The ordered stay hand-off's contract checked on the files
  // themselves: with a generous grace every trim commits, and the stay
  // files a kept run leaves behind must match byte-for-byte between the
  // serial engine and 4 workers.
  auto run_kept = [](std::uint32_t threads, DedicatedRig& rig,
                     std::vector<std::vector<std::byte>>& stay_bytes) {
    const GraphMeta meta = rmat_graph(rig.edges);
    const PartitionedGraph pg = partition_edge_list(rig.plan, meta, 2);
    core::EngineOptions options;
    options.keep_files = true;
    options.num_threads = threads;
    const auto result = core::run(pg, rig.plan, BfsProgram{}, options);
    EXPECT_GT(result.trims_committed, 0u);
    for (std::uint32_t p = 0; p < 2; ++p) {
      const std::string name = core::stay_file_name(pg, p);
      std::vector<std::byte> bytes;
      if (rig.stay.exists(name)) {
        bytes.resize(rig.stay.file_size(name));
        auto file = rig.stay.open(name, /*truncate=*/false);
        EXPECT_EQ(file->read_at(0, bytes.data(), bytes.size()), bytes.size());
      }
      stay_bytes.push_back(std::move(bytes));
    }
  };
  DedicatedRig serial_rig, threaded_rig;
  std::vector<std::vector<std::byte>> serial_bytes, threaded_bytes;
  run_kept(1, serial_rig, serial_bytes);
  run_kept(4, threaded_rig, threaded_bytes);
  ASSERT_EQ(serial_bytes.size(), threaded_bytes.size());
  for (std::size_t p = 0; p < serial_bytes.size(); ++p) {
    EXPECT_FALSE(serial_bytes[p].empty()) << "stay file " << p;
    EXPECT_EQ(serial_bytes[p], threaded_bytes[p]) << "stay file " << p;
  }
}

TEST(CoreEngine, CleansUpRunFilesUnlessKept) {
  DedicatedRig rig;
  const GraphMeta meta = rmat_graph(rig.edges);
  const PartitionedGraph pg = partition_edge_list(rig.plan, meta, 2);

  const auto scrubbed = core::run(pg, rig.plan, BfsProgram{}, {});
  ASSERT_GT(scrubbed.trims_committed, 0u);
  for (std::uint32_t p = 0; p < 2; ++p) {
    EXPECT_FALSE(rig.state.exists(xstream::state_file_name(pg, p)));
    EXPECT_FALSE(rig.updates.exists(xstream::update_file_name(pg, p)));
    EXPECT_FALSE(rig.stay.exists(core::stay_file_name(pg, p)));
  }

  core::EngineOptions keep;
  keep.keep_files = true;
  const auto kept = core::run(pg, rig.plan, BfsProgram{}, keep);
  ASSERT_GT(kept.trims_committed, 0u);
  bool any_stay = false;
  for (std::uint32_t p = 0; p < 2; ++p) {
    EXPECT_TRUE(rig.state.exists(xstream::state_file_name(pg, p)));
    any_stay = any_stay || rig.stay.exists(core::stay_file_name(pg, p));
  }
  EXPECT_TRUE(any_stay);
}

TEST(CoreEngine, StayFileNameEncodesPartitioning) {
  DedicatedRig rig;
  const GraphMeta meta = chain_graph(rig.edges, 8);
  const PartitionedGraph pg = partition_edge_list(rig.plan, meta, 4);
  EXPECT_EQ(core::stay_file_name(pg, 2), "chain.P4.stay2");
}

}  // namespace
}  // namespace fbfs
