// The direction-strategy suite (ROADMAP item 4): the cost model is a
// pure function pinned against hand-computed byte counts, and the
// engine-level matrix direction x threads x trim must stay BIT-IDENTICAL
// to the in-memory reference. Bottom-up runs may legitimately finish one
// counted round earlier than the reference: the reference's final round
// emits updates to already-visited neighbours (a counted round that
// activates nobody), while bottom-up has nobody left to probe and emits
// nothing (an uncounted round). States must still match bit for bit.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/temp_dir.hpp"
#include "core/direction.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "inmem/engine.hpp"

namespace fbfs {
namespace {

using core::DirectionCosts;
using core::DirectionInputs;
using engine::Direction;
using graph::BfsProgram;
using graph::GraphMeta;
using graph::VertexId;
using graph::WccProgram;

// ------------------------------------------------------- cost model

DirectionInputs synthetic_inputs(double frontier_fraction) {
  // A fabricated mid-traversal snapshot: every partition still has work
  // in both modes, half the graph unvisited.
  DirectionInputs in;
  in.num_vertices = 1000;
  in.total_edges = 16000;
  in.frontier = static_cast<std::uint64_t>(frontier_fraction * 1000);
  in.unvisited = 500;
  in.topdown_scan_edges = 16000;
  in.bottomup_scan_edges = 16000;
  in.edge_bytes = 8;
  in.update_bytes = 8;
  return in;
}

TEST(DirectionCostModel, CostsMatchTheModelledFormula) {
  const DirectionInputs in = synthetic_inputs(0.25);
  const DirectionCosts costs = core::model_direction_costs(in);
  // topdown: scan every input edge once, then write+read the update
  // stream the frontier fans out (frontier_fraction x total edges).
  EXPECT_DOUBLE_EQ(costs.frontier_fraction, 0.25);
  EXPECT_DOUBLE_EQ(costs.topdown_bytes, 16000.0 * 8 + 0.25 * 16000 * 16);
  // bottomup: scan the in-edge files, at most one update per unvisited
  // vertex through the same write+read round trip.
  EXPECT_DOUBLE_EQ(costs.bottomup_bytes, 16000.0 * 8 + 500.0 * 16);
}

TEST(DirectionCostModel, ForcedModesPassThrough) {
  const DirectionInputs in = synthetic_inputs(0.5);
  EXPECT_EQ(core::decide_direction(Direction::kTopDown, in, 1.0, 0.1),
            Direction::kTopDown);
  EXPECT_EQ(core::decide_direction(Direction::kBottomUp, in, 1.0, 0.1),
            Direction::kBottomUp);
  // Forced calls still report both costs, so stats stay comparable.
  DirectionCosts costs;
  core::decide_direction(Direction::kTopDown, in, 1.0, 0.1, &costs);
  EXPECT_GT(costs.topdown_bytes, 0.0);
  EXPECT_GT(costs.bottomup_bytes, 0.0);
}

TEST(DirectionCostModel, SyntheticFrontierScheduleFlipsExactlyMidRun) {
  // With the synthetic snapshot above, modelled bytes favour bottom-up
  // for any frontier fraction above 1/32 — so the beta = 0.1 growth
  // gate is what keeps the sliver rounds top-down, and the byte
  // comparison is what flips the bulky ones.
  const struct {
    double fraction;
    Direction want;
  } schedule[] = {
      {0.001, Direction::kTopDown},  // sliver: beta gate
      {0.05, Direction::kTopDown},   // bytes favour bottom-up; beta says no
      {0.25, Direction::kBottomUp},  // bulky frontier: flip
      {0.45, Direction::kBottomUp},
      {0.08, Direction::kTopDown},  // shrinking again: back under beta
      {0.003, Direction::kTopDown},
  };
  for (const auto& round : schedule) {
    DirectionCosts costs;
    EXPECT_EQ(core::decide_direction(Direction::kAuto,
                                     synthetic_inputs(round.fraction), 1.0,
                                     0.1, &costs),
              round.want)
        << "frontier fraction " << round.fraction;
    EXPECT_DOUBLE_EQ(costs.frontier_fraction, round.fraction);
  }
}

TEST(DirectionCostModel, MaskedBatchesGateOnTheMeanPerQueryFraction) {
  // A 64-query batch: 250 frontier VERTICES look dense (0.25 of V), but
  // the masks say each query holds a sliver — 320 total frontier bits
  // over 64 queries is 5 bits per query, 0.005 of V. The beta gate must
  // read the per-query mean and refuse the flip, while the byte terms
  // keep pricing update records by the vertex fraction.
  DirectionInputs in = synthetic_inputs(0.25);
  in.frontier_bits = 320;
  in.active_queries = 64;
  DirectionCosts costs;
  EXPECT_EQ(core::decide_direction(Direction::kAuto, in, 1.0, 0.1, &costs),
            Direction::kTopDown);
  EXPECT_DOUBLE_EQ(costs.frontier_fraction, 320.0 / (1000.0 * 64.0));
  // Byte terms unchanged from the single-query snapshot at the same
  // vertex fraction.
  const DirectionCosts single = core::model_direction_costs(
      synthetic_inputs(0.25));
  EXPECT_DOUBLE_EQ(costs.topdown_bytes, single.topdown_bytes);
  EXPECT_DOUBLE_EQ(costs.bottomup_bytes, single.bottomup_bytes);

  // Saturated masks: every live query holds a quarter of V — now the
  // gate clears and the byte model flips, exactly like a single dense
  // query.
  in.frontier_bits = 250ull * 64;
  EXPECT_EQ(core::decide_direction(Direction::kAuto, in, 1.0, 0.1, &costs),
            Direction::kBottomUp);
  EXPECT_DOUBLE_EQ(costs.frontier_fraction, 0.25);

  // active_queries = 0 (the single-query default) must leave the gate
  // on the vertex fraction even when frontier_bits is stale-nonzero.
  in.active_queries = 0;
  EXPECT_EQ(core::model_direction_costs(in).frontier_fraction, 0.25);
}

TEST(DirectionCostModel, AlphaScalesTheFlipThreshold) {
  // At 0.25 frontier, topdown ~= 192000 bytes vs bottomup ~= 136000:
  // a ratio of ~1.41. alpha above that must refuse the flip.
  const DirectionInputs in = synthetic_inputs(0.25);
  EXPECT_EQ(core::decide_direction(Direction::kAuto, in, 1.0, 0.1),
            Direction::kBottomUp);
  EXPECT_EQ(core::decide_direction(Direction::kAuto, in, 2.0, 0.1),
            Direction::kTopDown);
}

// ------------------------------------------------ engine equivalence

GraphMeta materialize(io::Device& dev, const std::string& name,
                      const graph::ChunkedEdgeSource& source) {
  return graph::write_generated(
      dev, name, source.num_vertices(), source.seed(), source.undirected(),
      [&](const graph::EdgeSink& sink) { source.generate(sink); });
}

GraphMeta rmat_meta(io::Device& dev) {
  return materialize(dev, "rmat",
                     graph::RmatSource({.scale = 9, .edge_factor = 8,
                                        .seed = 7}));
}

GraphMeta er_meta(io::Device& dev) {
  return materialize(dev, "er",
                     graph::ErdosRenyiSource({.num_vertices = 1000,
                                              .num_edges = 8000, .seed = 11}));
}

GraphMeta grid_meta(io::Device& dev) {
  return materialize(dev, "grid",
                     graph::Grid2dSource({.width = 24, .height = 24}));
}

constexpr Direction kDirections[] = {Direction::kTopDown,
                                     Direction::kBottomUp, Direction::kAuto};

void expect_direction_matrix(io::Device& dev, const GraphMeta& meta,
                             const BfsProgram& program) {
  const auto reference = inmem::run_graph(dev, meta, program, {});
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const graph::PartitionedGraph pg = graph::partition_edge_list(plan, meta, 4);
  for (const Direction direction : kDirections) {
    for (const bool trim : {false, true}) {
      for (const std::uint32_t threads : {1u, 4u}) {
        SCOPED_TRACE(std::string("direction=") + engine::to_string(direction) +
                     ", trim=" + (trim ? "on" : "off") + ", T=" +
                     std::to_string(threads) + " on " + meta.name);
        core::EngineOptions options;
        options.trim = trim;
        options.num_threads = threads;
        options.direction = direction;
        const auto streamed = core::run(pg, plan, program, options);

        // States are the invariant: bit-identical, every cell.
        ASSERT_EQ(streamed.states.size(), reference.states.size());
        ASSERT_EQ(std::memcmp(streamed.states.data(), reference.states.data(),
                              streamed.states.size() *
                                  sizeof(BfsProgram::State)),
                  0);
        if (direction == Direction::kTopDown) {
          ASSERT_EQ(streamed.iterations, reference.iterations);
          ASSERT_EQ(streamed.updates_emitted, reference.updates_emitted);
          ASSERT_EQ(streamed.bottomup_rounds, 0u);
        } else {
          // Bottom-up may skip the reference's no-activation final
          // round (see the file comment) and emits at most one update
          // per claimed vertex, never more than the scatter fan-out.
          ASSERT_GE(streamed.iterations + 1, reference.iterations);
          ASSERT_LE(streamed.iterations, reference.iterations);
          ASSERT_LE(streamed.updates_emitted, reference.updates_emitted);
        }
        if (direction == Direction::kBottomUp) {
          ASSERT_EQ(streamed.bottomup_rounds, streamed.iterations);
        }
      }
    }
  }
}

TEST(DirectionEquivalence, BfsMatrixOnRmat) {
  TempDir dir("direction");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  expect_direction_matrix(dev, rmat_meta(dev), BfsProgram{.root = 0});
}

TEST(DirectionEquivalence, BfsMatrixOnErdosRenyi) {
  TempDir dir("direction");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  expect_direction_matrix(dev, er_meta(dev), BfsProgram{.root = 3});
}

TEST(DirectionEquivalence, BfsMatrixOnGrid) {
  TempDir dir("direction");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  expect_direction_matrix(dev, grid_meta(dev), BfsProgram{.root = 0});
}

TEST(DirectionEquivalence, AutoReducesWorkOnRmat) {
  // The acceptance-criteria shape at test scale: on a low-diameter
  // R-MAT graph, auto must actually flip mid-traversal and come out
  // ahead of pure top-down on both probes and update records.
  TempDir dir("direction");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta meta = rmat_meta(dev);
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const graph::PartitionedGraph pg = graph::partition_edge_list(plan, meta, 4);

  core::EngineOptions options;
  const auto topdown = core::run(pg, plan, BfsProgram{}, options);
  options.direction = Direction::kAuto;
  const auto automatic = core::run(pg, plan, BfsProgram{}, options);

  ASSERT_EQ(std::memcmp(automatic.states.data(), topdown.states.data(),
                        topdown.states.size() * sizeof(BfsProgram::State)),
            0);
  EXPECT_GT(automatic.bottomup_rounds, 0u);
  std::uint64_t topdown_probed = 0, auto_probed = 0;
  for (const auto& s : topdown.per_iteration) topdown_probed += s.edges_probed;
  for (const auto& s : automatic.per_iteration) auto_probed += s.edges_probed;
  EXPECT_LT(auto_probed, topdown_probed);
  EXPECT_LT(automatic.updates_emitted, topdown.updates_emitted);
}

TEST(DirectionEquivalence, AutoNeverFlipsOnHighDiameterGrid) {
  // The 24x24 lattice's frontier never reaches ~4.2% of the vertices,
  // far under beta = 0.1: the model must keep every round top-down and
  // the run must be indistinguishable from a forced top-down one.
  TempDir dir("direction");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta meta = grid_meta(dev);
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const graph::PartitionedGraph pg = graph::partition_edge_list(plan, meta, 4);

  core::EngineOptions options;
  const auto topdown = core::run(pg, plan, BfsProgram{}, options);
  options.direction = Direction::kAuto;
  const auto automatic = core::run(pg, plan, BfsProgram{}, options);

  EXPECT_EQ(automatic.bottomup_rounds, 0u);
  EXPECT_EQ(automatic.iterations, topdown.iterations);
  EXPECT_EQ(automatic.updates_emitted, topdown.updates_emitted);
  ASSERT_EQ(std::memcmp(automatic.states.data(), topdown.states.data(),
                        topdown.states.size() * sizeof(BfsProgram::State)),
            0);
}

TEST(DirectionEquivalence, NonPullProgramDegradesToTopDown) {
  // WCC has no pull hook: a forced bottom-up run must silently run the
  // plain top-down loop and still match the reference exactly.
  TempDir dir("direction");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta sym =
      graph::symmetrize_edge_list(dev, er_meta(dev), "er_sym");
  const auto reference = inmem::run_graph(dev, sym, WccProgram{}, {});
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const graph::PartitionedGraph pg = graph::partition_edge_list(plan, sym, 4);

  core::EngineOptions options;
  options.direction = Direction::kBottomUp;
  const auto streamed = core::run(pg, plan, WccProgram{}, options);
  EXPECT_EQ(streamed.bottomup_rounds, 0u);
  EXPECT_EQ(streamed.iterations, reference.iterations);
  ASSERT_EQ(std::memcmp(streamed.states.data(), reference.states.data(),
                        streamed.states.size() * sizeof(WccProgram::State)),
            0);
}

TEST(DirectionEquivalence, TrimTotalsReconcileWithIterationRows) {
  // The run-level trim counters must equal the per-iteration rows plus
  // the end-of-run epilogue row — on the zero-grace config too, where
  // cancellations dominate. (core::run CHECKs this internally; this
  // test keeps the contract visible from the outside.)
  TempDir dir("direction");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta meta = rmat_meta(dev);
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const graph::PartitionedGraph pg = graph::partition_edge_list(plan, meta, 4);
  for (const double grace : {5.0, 0.0}) {
    core::EngineOptions options;
    options.grace_timeout_seconds = grace;
    options.direction = Direction::kAuto;
    const auto result = core::run(pg, plan, BfsProgram{}, options);
    EXPECT_GT(result.trims_started, 0u);
    metrics::IterationStats sum = result.epilogue;
    for (const auto& s : result.per_iteration) {
      sum.trims_started += s.trims_started;
      sum.trims_committed += s.trims_committed;
      sum.trims_cancelled += s.trims_cancelled;
      sum.trims_failed += s.trims_failed;
      sum.stay_edges_written += s.stay_edges_written;
    }
    EXPECT_EQ(sum.trims_started, result.trims_started);
    EXPECT_EQ(sum.trims_committed, result.trims_committed);
    EXPECT_EQ(sum.trims_cancelled, result.trims_cancelled);
    EXPECT_EQ(sum.trims_failed, result.trims_failed);
    EXPECT_EQ(sum.stay_edges_written, result.stay_edges_written);
  }
}

}  // namespace
}  // namespace fbfs
