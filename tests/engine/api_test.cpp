// The unified engine surface (engine/types.hpp + engine/api.hpp): name
// round-trips, the shared-key precedence the header documents, and the
// Kind dispatch helper producing bit-identical states from all three
// engines.
#include "engine/api.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/temp_dir.hpp"
#include "graph/generators.hpp"

namespace fbfs {
namespace {

using engine::Direction;
using engine::Kind;
using graph::BfsProgram;
using graph::GraphMeta;

TEST(EngineNames, KindRoundTripsAndAcceptsTheFastbfsAlias) {
  for (const Kind kind : {Kind::kInmem, Kind::kXstream, Kind::kCore}) {
    EXPECT_EQ(engine::parse_kind(engine::to_string(kind)), kind);
  }
  EXPECT_EQ(engine::parse_kind("fastbfs"), Kind::kCore);
}

TEST(EngineNames, DirectionRoundTrips) {
  for (const Direction d :
       {Direction::kTopDown, Direction::kBottomUp, Direction::kAuto}) {
    EXPECT_EQ(engine::parse_direction(engine::to_string(d)), d);
  }
}

TEST(EngineOptions, SharedKeysResolveUnderDocumentedPrecedence) {
  // <engine>.key beats engine.key beats the built-in default.
  const Config config = Config::parse_string(
      "engine.write_buffer = 128K\n"
      "xstream.write_buffer = 64K\n"
      "engine.max_iterations = 9\n"
      "engine.partition_count = 3\n"
      "core.partition_count = 6\n");
  EXPECT_EQ(engine::options_from_config(config, Kind::kXstream)
                .write_buffer_bytes,
            64u * 1024);
  EXPECT_EQ(engine::options_from_config(config, Kind::kCore)
                .write_buffer_bytes,
            128u * 1024);  // no core.write_buffer: generic engine.* applies
  EXPECT_EQ(engine::options_from_config(config, Kind::kInmem).max_iterations,
            9u);
  EXPECT_EQ(engine::partition_count_from_config(config, Kind::kCore, 2), 6u);
  EXPECT_EQ(engine::partition_count_from_config(config, Kind::kXstream, 2),
            3u);
  // inmem has no partitions: always the caller's fallback.
  EXPECT_EQ(engine::partition_count_from_config(config, Kind::kInmem, 2), 2u);
}

TEST(EngineOptions, DirectionKeysParseForCoreOnly) {
  const Config config = Config::parse_string(
      "core.direction = auto\n"
      "core.direction_alpha = 1.5\n"
      "core.direction_beta = 0.05\n");
  const engine::Options core = engine::options_from_config(config, Kind::kCore);
  EXPECT_EQ(core.direction, Direction::kAuto);
  EXPECT_DOUBLE_EQ(core.direction_alpha, 1.5);
  EXPECT_DOUBLE_EQ(core.direction_beta, 0.05);
  // Defaults: forced top-down, Beamer-style gates.
  const engine::Options defaults = engine::options_from_config({}, Kind::kCore);
  EXPECT_EQ(defaults.direction, Direction::kTopDown);
  EXPECT_DOUBLE_EQ(defaults.direction_alpha, 1.0);
  EXPECT_DOUBLE_EQ(defaults.direction_beta, 0.1);
  // core.* keys are never read for the other kinds.
  EXPECT_EQ(engine::options_from_config(config, Kind::kXstream).direction,
            Direction::kTopDown);
}

TEST(EngineDispatch, AllThreeKindsProduceBitIdenticalStates) {
  TempDir dir("engine_api");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const graph::ErdosRenyiSource source(
      {.num_vertices = 500, .num_edges = 4000, .seed = 13});
  const GraphMeta meta = graph::write_generated(
      dev, "er", source.num_vertices(), source.seed(), source.undirected(),
      [&](const graph::EdgeSink& sink) { source.generate(sink); });
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const graph::PartitionedGraph pg = graph::partition_edge_list(plan, meta, 3);

  const BfsProgram program{.root = 1};
  const auto reference = engine::run(Kind::kInmem, pg, plan, program);
  for (const Kind kind : {Kind::kXstream, Kind::kCore}) {
    SCOPED_TRACE(engine::to_string(kind));
    const auto result = engine::run(kind, pg, plan, program);
    ASSERT_EQ(result.states.size(), reference.states.size());
    ASSERT_EQ(result.iterations, reference.iterations);
    ASSERT_EQ(std::memcmp(result.states.data(), reference.states.data(),
                          result.states.size() * sizeof(BfsProgram::State)),
              0);
  }
}

}  // namespace
}  // namespace fbfs
