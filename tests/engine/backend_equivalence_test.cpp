// ISSUE 10 acceptance: the engines must not care which IoBackend is
// underneath. Every run here executes twice — once on the modelled
// token bucket, once on the real backend (actual O_DIRECT/io_uring I/O
// on a temp directory) — and must produce BIT-IDENTICAL final states
// AND leave bit-identical files on disk (states, update streams, stay
// files, partitions), across engines x threads x trim x direction,
// plus the batched multi-source front door. One arm runs the real
// backend on tmpfs, where O_DIRECT is refused, pinning the buffered
// fallback end to end.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/temp_dir.hpp"
#include "engine/api.hpp"
#include "engine/batch.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"

namespace fbfs {
namespace {

using engine::Direction;
using engine::Kind;
using graph::BfsProgram;
using graph::GraphMeta;
using graph::WccProgram;

GraphMeta er_meta(io::Device& dev) {
  const graph::ErdosRenyiSource source(
      {.num_vertices = 500, .num_edges = 4000, .seed = 13});
  return graph::write_generated(
      dev, "er", source.num_vertices(), source.seed(), source.undirected(),
      [&](const graph::EdgeSink& sink) { source.generate(sink); });
}

/// Everything a run leaves behind: the collected states plus every file
/// on the device, byte for byte.
struct RunArtifacts {
  std::uint32_t iterations = 0;
  std::vector<std::byte> states;
  std::map<std::string, std::vector<std::byte>> files;
};

std::map<std::string, std::vector<std::byte>> slurp_files(io::Device& dev) {
  std::map<std::string, std::vector<std::byte>> out;
  for (const std::string& name : dev.list_files()) {
    auto f = dev.open(name);
    std::vector<std::byte> bytes(f->size());
    if (!bytes.empty()) {
      EXPECT_EQ(f->read_at(0, bytes.data(), bytes.size()), bytes.size())
          << name;
    }
    out.emplace(name, std::move(bytes));
  }
  return out;
}

template <graph::GraphProgram P>
RunArtifacts run_on_backend(const std::string& root,
                            const io::BackendOptions& backend,
                            Kind kind, const P& program,
                            const engine::Options& options) {
  io::Device dev(root, io::DeviceModel::unthrottled(), backend);
  GraphMeta meta = er_meta(dev);
  if (P::kRequiresUndirected) {
    meta = graph::symmetrize_edge_list(dev, meta, "er_sym");
  }
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const graph::PartitionedGraph pg = graph::partition_edge_list(plan, meta, 3);
  const auto result = engine::run(kind, pg, plan, program, options);

  RunArtifacts art;
  art.iterations = result.iterations;
  art.states.resize(result.states.size() * sizeof(typename P::State));
  std::memcpy(art.states.data(), result.states.data(), art.states.size());
  art.files = slurp_files(dev);
  return art;
}

void expect_identical(const RunArtifacts& modelled, const RunArtifacts& real) {
  ASSERT_EQ(modelled.iterations, real.iterations);
  ASSERT_EQ(modelled.states.size(), real.states.size());
  EXPECT_EQ(std::memcmp(modelled.states.data(), real.states.data(),
                        modelled.states.size()),
            0)
      << "final states differ between backends";
  ASSERT_EQ(modelled.files.size(), real.files.size());
  auto it = real.files.begin();
  for (const auto& [name, bytes] : modelled.files) {
    ASSERT_EQ(it->first, name) << "file sets differ";
    EXPECT_EQ(it->second == bytes, true)
        << "file " << name << " differs between backends ("
        << bytes.size() << " vs " << it->second.size() << " bytes)";
    ++it;
  }
}

template <graph::GraphProgram P>
void expect_backend_equivalent(const P& program, Kind kind,
                               const engine::Options& options,
                               const io::BackendOptions& real_backend = {
                                   .kind = io::BackendKind::kReal}) {
  TempDir dir("backend_equiv");
  const RunArtifacts modelled = run_on_backend(
      dir.str() + "/modelled", io::BackendOptions{}, kind, program, options);
  const RunArtifacts real = run_on_backend(dir.str() + "/real", real_backend,
                                           kind, program, options);
  expect_identical(modelled, real);
}

engine::Options opts(std::uint32_t threads, bool trim,
                     Direction direction = Direction::kTopDown) {
  engine::Options o;
  o.num_threads = threads;
  o.trim = trim;
  o.direction = direction;
  return o;
}

TEST(BackendEquivalence, XstreamAcrossThreads) {
  for (const std::uint32_t threads : {1u, 4u}) {
    SCOPED_TRACE("T=" + std::to_string(threads));
    expect_backend_equivalent(BfsProgram{.root = 1}, Kind::kXstream,
                              opts(threads, /*trim=*/false));
  }
}

TEST(BackendEquivalence, CoreAcrossThreadsTrimAndDirection) {
  for (const std::uint32_t threads : {1u, 4u}) {
    for (const bool trim : {false, true}) {
      for (const Direction direction :
           {Direction::kTopDown, Direction::kAuto}) {
        SCOPED_TRACE("T=" + std::to_string(threads) +
                     (trim ? " trim-on " : " trim-off ") +
                     engine::to_string(direction));
        expect_backend_equivalent(BfsProgram{.root = 1}, Kind::kCore,
                                  opts(threads, trim, direction));
      }
    }
  }
}

TEST(BackendEquivalence, CoreWccParallelTrimmed) {
  expect_backend_equivalent(WccProgram{}, Kind::kCore,
                            opts(4, /*trim=*/true));
}

TEST(BackendEquivalence, RealQueueDepthOneStillMatches) {
  // qd=1 forces the ring to degenerate to one-in-flight submissions.
  expect_backend_equivalent(
      BfsProgram{.root = 1}, Kind::kCore, opts(4, /*trim=*/true),
      {.kind = io::BackendKind::kReal, .queue_depth = 1});
}

TEST(BackendEquivalence, RealWithoutUringStillMatches) {
  expect_backend_equivalent(
      BfsProgram{.root = 1}, Kind::kCore, opts(4, /*trim=*/true),
      {.kind = io::BackendKind::kReal, .use_uring = false});
}

TEST(BackendEquivalence, RunBatchMultiSourceAcrossBackends) {
  const std::vector<graph::VertexId> sources = {0, 1, 7};
  TempDir dir("backend_equiv");
  engine::BatchRunResult results[2];
  for (int which = 0; which < 2; ++which) {
    const io::BackendOptions backend =
        which == 0 ? io::BackendOptions{}
                   : io::BackendOptions{.kind = io::BackendKind::kReal};
    io::Device dev(dir.str() + (which == 0 ? "/modelled" : "/real"),
                   io::DeviceModel::unthrottled(), backend);
    const GraphMeta meta = er_meta(dev);
    const io::StoragePlan plan = io::StoragePlan::single(dev);
    const graph::PartitionedGraph pg =
        graph::partition_edge_list(plan, meta, 3);
    results[which] =
        engine::run_batch(Kind::kCore, pg, plan, sources, opts(2, true));
  }
  ASSERT_EQ(results[0].per_query.size(), sources.size());
  ASSERT_EQ(results[1].per_query.size(), sources.size());
  for (std::size_t q = 0; q < sources.size(); ++q) {
    ASSERT_EQ(results[0].per_query[q].size(), results[1].per_query[q].size());
    EXPECT_EQ(std::memcmp(results[0].per_query[q].data(),
                          results[1].per_query[q].data(),
                          results[0].per_query[q].size() *
                              sizeof(BfsProgram::State)),
              0)
        << "query " << q;
  }
}

TEST(BackendEquivalence, RealOnTmpfsExercisesTheBufferedFallback) {
  namespace fs = std::filesystem;
  if (!fs::exists("/dev/shm")) GTEST_SKIP() << "/dev/shm not available";
  const fs::path root =
      fs::path("/dev/shm") / ("fbfs_equiv_" + std::to_string(::getpid()));
  struct Cleanup {
    fs::path p;
    ~Cleanup() {
      std::error_code ec;
      fs::remove_all(p, ec);
    }
  } cleanup{root};

  TempDir dir("backend_equiv");
  const engine::Options options = opts(4, /*trim=*/true);
  const RunArtifacts modelled =
      run_on_backend(dir.str() + "/modelled", io::BackendOptions{},
                     Kind::kCore, BfsProgram{.root = 1}, options);
  const RunArtifacts real =
      run_on_backend(root.string(), {.kind = io::BackendKind::kReal},
                     Kind::kCore, BfsProgram{.root = 1}, options);
  expect_identical(modelled, real);

  // And the fallback really was in play (tmpfs refuses O_DIRECT).
  io::Device probe(root.string(), io::DeviceModel::unthrottled(),
                   {.kind = io::BackendKind::kReal});
  if (probe.backend_description().find("buffered") == std::string::npos) {
    GTEST_SKIP() << "filesystem unexpectedly accepts O_DIRECT: "
                 << probe.backend_description();
  }
}

}  // namespace
}  // namespace fbfs
