// Batched multi-source traversal (graph::MultiBfs + engine::run_batch):
// the mask mechanics (init/gather fold/stale-frontier clear/
// idempotence/unpack), the subset-dominance sieve hooks, batch
// splitting and the batch.max_width config key, and the acceptance
// matrix — B in {1, 7, 64} sources on three graph shapes through
// xstream and core x threads x trim x direction, every query memcmp'd
// against its own standalone in-memory BFS.
#include "engine/batch.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/temp_dir.hpp"
#include "graph/generators.hpp"
#include "graph/multi_bfs.hpp"

namespace fbfs {
namespace {

using engine::Direction;
using engine::Kind;
using graph::BfsProgram;
using graph::kUnreachedLevel;
using graph::MultiBfs;
using graph::VertexId;

using Msbfs = engine::MultiBfs64;

// ------------------------------------------------------ mask mechanics

TEST(MultiBfsMechanics, InitSetsOnlyRootBitsAndLevels) {
  Msbfs program;
  program.width = 3;
  program.roots = {5, 9, 5};  // queries 0 and 2 share a root
  EXPECT_EQ(program.full_mask(), 0b111u);

  Msbfs::State s;
  bool active = false;
  program.init(5, 0, s, active);
  EXPECT_TRUE(active);
  EXPECT_EQ(s.seen, 0b101u);
  EXPECT_EQ(s.frontier, 0b101u);
  EXPECT_EQ(s.levels[0], 0u);
  EXPECT_EQ(s.levels[1], kUnreachedLevel);
  EXPECT_EQ(s.levels[2], 0u);

  program.init(7, 0, s, active);
  EXPECT_FALSE(active);
  EXPECT_EQ(s.seen, 0u);
  for (std::uint32_t b = 0; b < 3; ++b) {
    EXPECT_EQ(s.levels[b], kUnreachedLevel);
  }
}

TEST(MultiBfsMechanics, FullMaskSaturatesAtSixtyFour) {
  Msbfs program;
  program.width = 64;
  EXPECT_EQ(program.full_mask(), ~std::uint64_t{0});
  program.width = 1;
  EXPECT_EQ(program.full_mask(), 1u);
}

TEST(MultiBfsMechanics, GatherFoldsFreshBitsAndSetsLevels) {
  Msbfs program;
  program.width = 4;

  Msbfs::State s{};
  for (auto& l : s.levels) l = kUnreachedLevel;
  // Round-1 update brings queries {0, 2}.
  EXPECT_TRUE(program.gather({.dst = 3, .level = 1, .mask = 0b0101}, s));
  EXPECT_EQ(s.seen, 0b0101u);
  EXPECT_EQ(s.frontier, 0b0101u);
  EXPECT_EQ(s.mark, 1u);
  EXPECT_EQ(s.levels[0], 1u);
  EXPECT_EQ(s.levels[2], 1u);
  EXPECT_EQ(s.levels[1], kUnreachedLevel);

  // Same round, another update: bit 1 is fresh, bit 0 is not.
  EXPECT_TRUE(program.gather({.dst = 3, .level = 1, .mask = 0b0011}, s));
  EXPECT_EQ(s.seen, 0b0111u);
  EXPECT_EQ(s.frontier, 0b0111u);
  EXPECT_EQ(s.levels[1], 1u);

  // Duplicate delivery is a no-op (idempotent gather) and must not
  // touch the state at all — direction equivalence depends on it.
  const Msbfs::State before = s;
  EXPECT_FALSE(program.gather({.dst = 3, .level = 1, .mask = 0b0111}, s));
  EXPECT_EQ(std::memcmp(&before, &s, sizeof(s)), 0);
}

TEST(MultiBfsMechanics, NewRoundClearsTheStaleFrontier) {
  Msbfs program;
  program.width = 4;
  Msbfs::State s{};
  for (auto& l : s.levels) l = kUnreachedLevel;
  ASSERT_TRUE(program.gather({.dst = 3, .level = 1, .mask = 0b0001}, s));
  EXPECT_EQ(s.frontier, 0b0001u);

  // First arrival of round 2 resets frontier to the new arrivals only;
  // seen keeps accumulating.
  EXPECT_TRUE(program.gather({.dst = 3, .level = 2, .mask = 0b1000}, s));
  EXPECT_EQ(s.frontier, 0b1000u);
  EXPECT_EQ(s.seen, 0b1001u);
  EXPECT_EQ(s.mark, 2u);
  EXPECT_EQ(s.levels[3], 2u);
  EXPECT_EQ(s.levels[0], 1u);

  // A redundant later-round update with no fresh bits must NOT clear
  // the frontier (the early-out precedes the mark check).
  EXPECT_FALSE(program.gather({.dst = 3, .level = 3, .mask = 0b1001}, s));
  EXPECT_EQ(s.frontier, 0b1000u);
  EXPECT_EQ(s.mark, 2u);
}

TEST(MultiBfsMechanics, ScatterAndPullCarryTheFrontierMask) {
  Msbfs program;
  program.width = 2;
  Msbfs::State src{};
  src.frontier = 0b10;
  src.mark = 4;
  Msbfs::Update u;
  ASSERT_TRUE(program.scatter({.src = 1, .dst = 2}, src, u));
  EXPECT_EQ(u.dst, 2u);
  EXPECT_EQ(u.level, 5u);
  EXPECT_EQ(u.mask, 0b10u);

  // pull_masked reconstructs the same update from the round number and
  // the caller-restricted mask; an empty mask declines.
  Msbfs::Update pulled;
  ASSERT_TRUE(program.pull_masked({.src = 1, .dst = 2}, 4, 0b10, pulled));
  EXPECT_EQ(std::memcmp(&pulled, &u, sizeof(u)), 0);
  EXPECT_FALSE(program.pull_masked({.src = 1, .dst = 2}, 4, 0, pulled));
}

TEST(MultiBfsSieve, DominatesIsMaskSubsetAndMergeIsOr) {
  Msbfs program;
  program.width = 8;
  const Msbfs::Update champ{.dst = 2, .level = 3, .mask = 0b0110};
  // Subset of the champion's mask at the same level: redundant.
  EXPECT_TRUE(program.dominates(champ, {.dst = 2, .level = 3, .mask = 0b0100}));
  // New bits: not dominated.
  EXPECT_FALSE(
      program.dominates(champ, {.dst = 2, .level = 3, .mask = 0b1000}));
  // An earlier-level update is never dominated by a later one.
  EXPECT_FALSE(
      program.dominates(champ, {.dst = 2, .level = 2, .mask = 0b0110}));

  Msbfs::Update merged = champ;
  program.sieve_merge(merged, {.dst = 2, .level = 3, .mask = 0b1001});
  EXPECT_EQ(merged.mask, 0b1111u);
  EXPECT_EQ(merged.level, 3u);
}

TEST(MultiBfsMechanics, UnpackQueryProjectsOneColumn) {
  Msbfs program;
  program.width = 2;
  std::vector<Msbfs::State> states(3);
  for (auto& s : states) {
    for (auto& l : s.levels) l = kUnreachedLevel;
  }
  states[0].levels[0] = 0;
  states[1].levels[0] = 1;
  states[2].levels[1] = 4;
  const std::vector<BfsProgram::State> q0 = program.unpack_query(0, states);
  ASSERT_EQ(q0.size(), 3u);
  EXPECT_EQ(q0[0].level, 0u);
  EXPECT_EQ(q0[1].level, 1u);
  EXPECT_EQ(q0[2].level, kUnreachedLevel);
  const std::vector<BfsProgram::State> q1 = program.unpack_query(1, states);
  EXPECT_EQ(q1[2].level, 4u);
  EXPECT_EQ(q1[0].level, kUnreachedLevel);
}

// ------------------------------------------------- batch front door

TEST(BatchOptions, ConfigKeyParsesAndClamps) {
  EXPECT_EQ(engine::batch_options_from_config({}).max_width, 64u);
  EXPECT_EQ(engine::batch_options_from_config(
                Config::parse_string("batch.max_width = 7\n"))
                .max_width,
            7u);
  // Out-of-range values clamp to the mask width.
  EXPECT_EQ(engine::batch_options_from_config(
                Config::parse_string("batch.max_width = 200\n"))
                .max_width,
            64u);
  EXPECT_EQ(engine::batch_options_from_config(
                Config::parse_string("batch.max_width = 0\n"))
                .max_width,
            1u);
}

struct TestGraph {
  std::string name;
  graph::GraphMeta meta;
  graph::PartitionedGraph pg;
  std::vector<VertexId> sources;  // 64 deterministic picks
  // reference[i] = inmem BFS-from-sources[i] states.
  std::vector<std::vector<BfsProgram::State>> reference;
};

TestGraph make_test_graph(io::Device& dev, const io::StoragePlan& plan,
                          const std::string& name,
                          const graph::ChunkedEdgeSource& source) {
  TestGraph g;
  g.name = name;
  g.meta = graph::write_generated(
      dev, name, source.num_vertices(), source.seed(), source.undirected(),
      [&](const graph::EdgeSink& sink) { source.generate(sink); });
  g.pg = graph::partition_edge_list(plan, g.meta, 4);
  const std::uint64_t n = g.meta.num_vertices;
  for (std::uint32_t i = 0; i < graph::kMaxBatchQueries; ++i) {
    g.sources.push_back(static_cast<VertexId>((i * 37 + 1) % n));
  }
  for (const VertexId s : g.sources) {
    g.reference.push_back(
        engine::run(Kind::kInmem, g.pg, plan, BfsProgram{.root = s}).states);
  }
  return g;
}

void expect_queries_match(const TestGraph& g,
                          const engine::BatchRunResult& batch,
                          std::size_t count) {
  ASSERT_EQ(batch.per_query.size(), count);
  for (std::size_t i = 0; i < count; ++i) {
    SCOPED_TRACE("query " + std::to_string(i) + " root " +
                 std::to_string(g.sources[i]));
    const auto& got = batch.per_query[i];
    const auto& want = g.reference[i];
    ASSERT_EQ(got.size(), want.size());
    EXPECT_EQ(std::memcmp(got.data(), want.data(),
                          got.size() * sizeof(BfsProgram::State)),
              0);
  }
}

// The acceptance matrix. One fixture builds the three graph shapes
// once; each test point packs B sources and memcmps every query
// against its standalone inmem run.
class BatchEquivalence : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new TempDir("msbfs_equiv");
    dev_ = new io::Device(dir_->str(), io::DeviceModel::unthrottled());
    plan_ = new io::StoragePlan(io::StoragePlan::single(*dev_));
    graphs_ = new std::vector<TestGraph>();
    graphs_->push_back(make_test_graph(
        *dev_, *plan_, "rmat",
        graph::RmatSource({.scale = 8, .edge_factor = 8, .seed = 11})));
    graphs_->push_back(make_test_graph(
        *dev_, *plan_, "er",
        graph::ErdosRenyiSource(
            {.num_vertices = 400, .num_edges = 2400, .seed = 23})));
    graphs_->push_back(make_test_graph(
        *dev_, *plan_, "grid",
        graph::Grid2dSource({.width = 18, .height = 18})));
  }
  static void TearDownTestSuite() {
    delete graphs_;
    graphs_ = nullptr;
    delete plan_;
    plan_ = nullptr;
    delete dev_;
    dev_ = nullptr;
    delete dir_;
    dir_ = nullptr;
  }

  static TempDir* dir_;
  static io::Device* dev_;
  static io::StoragePlan* plan_;
  static std::vector<TestGraph>* graphs_;
};

TempDir* BatchEquivalence::dir_ = nullptr;
io::Device* BatchEquivalence::dev_ = nullptr;
io::StoragePlan* BatchEquivalence::plan_ = nullptr;
std::vector<TestGraph>* BatchEquivalence::graphs_ = nullptr;

engine::Options matrix_options(std::uint32_t threads, bool trim,
                               Direction direction) {
  engine::Options options;
  options.num_threads = threads;
  options.trim = trim;
  options.direction = direction;
  // Sieve + codec auto on throughout: the matrix must hold with the
  // mask-subset sieve and whatever format the codec picks.
  options.sieve_updates = true;
  options.update_codec = io::codec::Policy::kAuto;
  return options;
}

TEST_F(BatchEquivalence, XstreamMatchesPerQueryInmemRuns) {
  for (const TestGraph& g : *graphs_) {
    for (const std::uint32_t width : {1u, 7u, 64u}) {
      for (const std::uint32_t threads : {1u, 4u}) {
        SCOPED_TRACE(g.name + " B=" + std::to_string(width) +
                     " threads=" + std::to_string(threads));
        const engine::BatchRunResult batch = engine::run_batch(
            Kind::kXstream, g.pg, *plan_,
            std::span<const VertexId>(g.sources.data(), width),
            matrix_options(threads, /*trim=*/false, Direction::kTopDown));
        expect_queries_match(g, batch, width);
      }
    }
  }
}

TEST_F(BatchEquivalence, CoreMatchesAcrossThreadsTrimAndDirection) {
  for (const TestGraph& g : *graphs_) {
    for (const std::uint32_t width : {1u, 7u, 64u}) {
      for (const std::uint32_t threads : {1u, 4u}) {
        for (const bool trim : {false, true}) {
          for (const Direction direction :
               {Direction::kTopDown, Direction::kBottomUp,
                Direction::kAuto}) {
            SCOPED_TRACE(g.name + " B=" + std::to_string(width) +
                         " threads=" + std::to_string(threads) +
                         " trim=" + std::to_string(trim) + " dir=" +
                         engine::to_string(direction));
            const engine::BatchRunResult batch = engine::run_batch(
                Kind::kCore, g.pg, *plan_,
                std::span<const VertexId>(g.sources.data(), width),
                matrix_options(threads, trim, direction));
            expect_queries_match(g, batch, width);
          }
        }
      }
    }
  }
}

TEST_F(BatchEquivalence, WideSourceListsSplitAcrossTraversals) {
  const TestGraph& g = (*graphs_)[0];
  // All 64 sources through width-24 traversals: ceil(64/24) = 3 runs,
  // source order preserved across the splits.
  const engine::BatchRunResult batch = engine::run_batch(
      Kind::kCore, g.pg, *plan_, g.sources,
      matrix_options(/*threads=*/1, /*trim=*/true, Direction::kTopDown),
      {.max_width = 24});
  EXPECT_EQ(batch.traversals.size(), 3u);
  expect_queries_match(g, batch, g.sources.size());
}

}  // namespace
}  // namespace fbfs
