// CSR invariants: exact degree/offset bookkeeping, edge-list order kept
// within each source's bucket, and the device-built CSR matching the
// in-memory one.
#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/temp_dir.hpp"
#include "graph/generators.hpp"

namespace fbfs::graph {
namespace {

TEST(Csr, HandGraphDegreesAndNeighbours) {
  const std::vector<Edge> edges = {{0, 2}, {1, 0}, {0, 1}, {3, 3}, {0, 2}};
  const Csr csr(4, edges);
  EXPECT_EQ(csr.num_vertices(), 4u);
  EXPECT_EQ(csr.num_edges(), 5u);
  EXPECT_EQ(csr.out_degree(0), 3u);
  EXPECT_EQ(csr.out_degree(1), 1u);
  EXPECT_EQ(csr.out_degree(2), 0u);
  EXPECT_EQ(csr.out_degree(3), 1u);
  // Stable: 0's targets keep their edge-list order, duplicates kept.
  const auto n0 = csr.neighbors(0);
  EXPECT_EQ(std::vector<VertexId>(n0.begin(), n0.end()),
            (std::vector<VertexId>{2, 1, 2}));
  EXPECT_TRUE(csr.neighbors(2).empty());
}

TEST(Csr, EmptyGraph) {
  const Csr csr(3, {});
  EXPECT_EQ(csr.num_vertices(), 3u);
  EXPECT_EQ(csr.num_edges(), 0u);
  EXPECT_EQ(csr.out_degree(1), 0u);
}

TEST(Csr, BuiltFromDeviceMatchesInMemoryBuild) {
  TempDir dir("csr");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const ErdosRenyiSource source(
      {.num_vertices = 2'000, .num_edges = 16'000, .seed = 5});
  const GraphMeta meta = write_generated(
      dev, "er", source.num_vertices(), source.seed(), source.undirected(),
      [&](const EdgeSink& sink) { source.generate(sink); });

  const Csr from_device = build_csr(dev, meta);
  const Csr from_memory(meta.num_vertices, read_all_edges(dev, meta));
  ASSERT_EQ(from_device.num_edges(), from_memory.num_edges());
  std::uint64_t degree_sum = 0;
  for (VertexId v = 0; v < meta.num_vertices; ++v) {
    ASSERT_EQ(from_device.out_degree(v), from_memory.out_degree(v));
    const auto a = from_device.neighbors(v);
    const auto b = from_memory.neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << v;
    degree_sum += a.size();
  }
  EXPECT_EQ(degree_sum, meta.num_edges);
}

}  // namespace
}  // namespace fbfs::graph
