// Edge-list files and their .meta sidecar: roundtrip, checksum, and the
// size cross-checks that keep a stale sidecar from silently lying.
#include "graph/edge_list.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/temp_dir.hpp"
#include "storage/stream.hpp"

namespace fbfs::graph {
namespace {

io::Device make_device(const TempDir& dir) {
  return io::Device(dir.str(), io::DeviceModel::unthrottled());
}

TEST(EdgeList, WriteGeneratedRoundTripsThroughTheSidecar) {
  TempDir dir("edge_list");
  io::Device dev = make_device(dir);

  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}, {3, 3}, {0, 2}};
  const GraphMeta written = write_generated(
      dev, "tri", /*num_vertices=*/4, /*seed=*/42, /*undirected=*/false,
      [&](const EdgeSink& sink) {
        for (const Edge& e : edges) sink(e);
      });
  EXPECT_EQ(written.num_vertices, 4u);
  EXPECT_EQ(written.num_edges, edges.size());
  EXPECT_EQ(written.record_size, sizeof(Edge));
  EXPECT_EQ(written.seed, 42u);
  EXPECT_FALSE(written.undirected);
  EXPECT_EQ(dev.file_size("tri.edges"), edges.size() * sizeof(Edge));

  const GraphMeta loaded = load_meta(dev, "tri");
  EXPECT_EQ(loaded.name, written.name);
  EXPECT_EQ(loaded.num_vertices, written.num_vertices);
  EXPECT_EQ(loaded.num_edges, written.num_edges);
  EXPECT_EQ(loaded.record_size, written.record_size);
  EXPECT_EQ(loaded.seed, written.seed);
  EXPECT_EQ(loaded.undirected, written.undirected);
  EXPECT_EQ(loaded.checksum, written.checksum);

  EXPECT_EQ(read_all_edges(dev, loaded), edges);
}

TEST(EdgeList, ChecksumIsOrderIndependent) {
  TempDir dir("edge_list");
  io::Device dev = make_device(dir);
  const std::vector<Edge> fwd = {{0, 1}, {1, 2}, {2, 3}};
  const std::vector<Edge> rev = {{2, 3}, {0, 1}, {1, 2}};
  const auto emit = [](const std::vector<Edge>& edges) {
    return [&edges](const EdgeSink& sink) {
      for (const Edge& e : edges) sink(e);
    };
  };
  const GraphMeta a = write_generated(dev, "fwd", 4, 1, false, emit(fwd));
  const GraphMeta b = write_generated(dev, "rev", 4, 1, false, emit(rev));
  EXPECT_EQ(a.checksum, b.checksum);

  const GraphMeta c = write_generated(dev, "other", 4, 1, false,
                                      emit({{0, 1}, {1, 2}, {3, 2}}));
  EXPECT_NE(a.checksum, c.checksum);
}

TEST(EdgeListDeath, SidecarCatchesAnEdgeFileOfTheWrongSize) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TempDir dir("edge_list");
  io::Device dev = make_device(dir);
  write_generated(dev, "g", 4, 1, false, [](const EdgeSink& sink) {
    sink({0, 1});
    sink({1, 2});
  });
  {
    auto f = dev.open("g.edges");  // append a whole stray record
    const Edge stray{3, 0};
    f->append(&stray, sizeof(stray));
  }
  EXPECT_DEATH((void)load_meta(dev, "g"), "");
}

TEST(EdgeListDeath, ReadAllEdgesCatchesCorruptRecords) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TempDir dir("edge_list");
  io::Device dev = make_device(dir);
  const GraphMeta meta =
      write_generated(dev, "g", 4, 1, false, [](const EdgeSink& sink) {
        sink({0, 1});
        sink({1, 2});
      });
  {
    auto f = dev.open("g.edges");  // flip one destination in place
    const Edge swapped{0, 3};
    f->write_at(0, &swapped, sizeof(swapped));
  }
  EXPECT_DEATH((void)read_all_edges(dev, meta), "");
}

TEST(EdgeListDeath, GeneratorsMayNotEmitOutOfRangeVertices) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TempDir dir("edge_list");
  io::Device dev = make_device(dir);
  EXPECT_DEATH((void)write_generated(dev, "bad", 2, 1, false,
                                     [](const EdgeSink& sink) {
                                       sink({0, 2});  // dst == num_vertices
                                     }),
               "");
}

}  // namespace
}  // namespace fbfs::graph
