// Generator contracts: exact edge counts, in-range endpoints, seed
// determinism, and — the pipeline's backbone — byte-identical output
// from the serial path and the parallel builder at every thread count
// and shard placement.
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/temp_dir.hpp"

namespace fbfs::graph {
namespace {

io::Device make_device(const TempDir& dir) {
  return io::Device(dir.str(), io::DeviceModel::unthrottled());
}

std::vector<Edge> collect(const ChunkedEdgeSource& source) {
  std::vector<Edge> edges;
  edges.reserve(source.num_edges());
  source.generate([&](const Edge& e) { edges.push_back(e); });
  return edges;
}

void expect_counts_and_bounds(const ChunkedEdgeSource& source) {
  const std::vector<Edge> edges = collect(source);
  ASSERT_EQ(edges.size(), source.num_edges());
  for (const Edge& e : edges) {
    ASSERT_LT(e.src, source.num_vertices());
    ASSERT_LT(e.dst, source.num_vertices());
  }
  // Same seed, same stream.
  EXPECT_EQ(collect(source), edges);
}

TEST(Generators, EveryGeneratorHitsItsExactCountInBounds) {
  expect_counts_and_bounds(RmatSource({.scale = 10, .edge_factor = 8,
                                       .seed = 7}));
  expect_counts_and_bounds(ErdosRenyiSource(
      {.num_vertices = 5'000, .num_edges = 40'000, .seed = 7}));
  expect_counts_and_bounds(Grid2dSource({.width = 37, .height = 11}));
  expect_counts_and_bounds(TwitterLikeSource({.num_vertices = 4'096,
                                              .num_edges = 60'000,
                                              .seed = 7}));
  expect_counts_and_bounds(FriendsterLikeSource(
      {.num_vertices = 4'096, .num_undirected_edges = 30'000, .seed = 7}));
}

TEST(Generators, DifferentSeedsGiveDifferentStreams) {
  const auto a = collect(ErdosRenyiSource(
      {.num_vertices = 1'000, .num_edges = 5'000, .seed = 1}));
  const auto b = collect(ErdosRenyiSource(
      {.num_vertices = 1'000, .num_edges = 5'000, .seed = 2}));
  EXPECT_NE(a, b);
}

TEST(Generators, GridHasEveryLatticeEdgeInBothDirections) {
  const Grid2dParams params{.width = 5, .height = 4};
  const Grid2dSource source(params);
  // 2 * ((W-1)*H + W*(H-1)) directed edges.
  EXPECT_EQ(source.num_edges(), 2u * ((5 - 1) * 4 + 5 * (4 - 1)));
  const std::vector<Edge> edges = collect(source);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : edges) {
    const auto dx = e.src % params.width > e.dst % params.width
                        ? e.src % params.width - e.dst % params.width
                        : e.dst % params.width - e.src % params.width;
    const auto dy = e.src / params.width > e.dst / params.width
                        ? e.src / params.width - e.dst / params.width
                        : e.dst / params.width - e.src / params.width;
    EXPECT_EQ(dx + dy, 1u) << e.src << "->" << e.dst;  // lattice neighbours
    seen.insert({e.src, e.dst});
  }
  EXPECT_EQ(seen.size(), edges.size());  // no duplicates
  for (const Edge& e : edges) {
    EXPECT_TRUE(seen.count({e.dst, e.src}));  // reciprocal present
  }
}

TEST(Generators, FriendsterEmitsEachUndirectedEdgeAsAnAdjacentPair) {
  const FriendsterLikeSource source(
      {.num_vertices = 2'048, .num_undirected_edges = 10'000, .seed = 3});
  ASSERT_TRUE(source.undirected());
  const std::vector<Edge> edges = collect(source);
  ASSERT_EQ(edges.size() % 2, 0u);
  for (std::size_t i = 0; i < edges.size(); i += 2) {
    EXPECT_EQ(edges[i].src, edges[i + 1].dst);
    EXPECT_EQ(edges[i].dst, edges[i + 1].src);
  }
}

TEST(ParallelBuild, EveryThreadCountMatchesTheSerialFileByteForByte) {
  TempDir dir("parallel");
  io::Device dev = make_device(dir);
  TempDir shard_dir_a("shard_a");
  TempDir shard_dir_b("shard_b");
  io::Device shard_a = make_device(shard_dir_a);
  io::Device shard_b = make_device(shard_dir_b);

  // > kChunkTargetEdges several times over, so the chunking is real.
  const ErdosRenyiSource source(
      {.num_vertices = 50'000, .num_edges = 300'000, .seed = 11});
  const GraphMeta serial = write_generated(
      dev, "serial", source.num_vertices(), source.seed(), source.undirected(),
      [&](const EdgeSink& sink) { source.generate(sink); });
  const std::vector<Edge> expect = read_all_edges(dev, serial);

  for (const unsigned threads : {1u, 2u, 4u}) {
    ParallelBuildOptions options;
    options.threads = threads;
    if (threads == 4) options.shard_devices = {&shard_a, &shard_b};
    const std::string name = "par" + std::to_string(threads);
    const ParallelBuildReport report =
        build_edge_list_parallel(dev, name, source, options);
    EXPECT_GT(report.num_chunks, 1u);
    EXPECT_EQ(report.meta.checksum, serial.checksum);
    EXPECT_EQ(report.meta.num_edges, serial.num_edges);
    EXPECT_EQ(read_all_edges(dev, report.meta), expect) << name;
    // Shards are cleaned up after the merge.
    for (const std::string& file : dev.list_files()) {
      EXPECT_EQ(file.find(".gshard"), std::string::npos) << file;
    }
  }
}

TEST(ParallelBuild, SocialSourceWithMixedChunkKindsStaysDeterministic) {
  TempDir dir("parallel");
  io::Device dev = make_device(dir);
  // Twitter-like has two chunk kinds (power-law main chunks + fringe
  // chain chunks); the parallel path must interleave them exactly as
  // the serial stream does.
  const TwitterLikeSource source(
      {.num_vertices = 8'192, .num_edges = 150'000, .seed = 5});
  const GraphMeta serial = write_generated(
      dev, "serial", source.num_vertices(), source.seed(), source.undirected(),
      [&](const EdgeSink& sink) { source.generate(sink); });

  ParallelBuildOptions options;
  options.threads = 3;
  const ParallelBuildReport report =
      build_edge_list_parallel(dev, "par", source, options);
  EXPECT_EQ(report.meta.checksum, serial.checksum);
  EXPECT_EQ(read_all_edges(dev, report.meta), read_all_edges(dev, serial));
}

}  // namespace
}  // namespace fbfs::graph
