// Range-partitioner properties: the layout tiles the vertex space
// exactly, every edge lands in exactly the partition owning its source,
// and the concatenation of the partition files is the input as a
// multiset (via the order-independent sidecar checksum).
#include "graph/partitioner.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/temp_dir.hpp"
#include "graph/generators.hpp"
#include "storage/stream.hpp"

namespace fbfs::graph {
namespace {

io::Device make_device(const TempDir& dir) {
  return io::Device(dir.str(), io::DeviceModel::unthrottled());
}

TEST(PartitionLayout, TilesTheVertexSpaceForAwkwardShapes) {
  for (const std::uint64_t v : {1ull, 2ull, 7ull, 100ull, 1017ull}) {
    for (const std::uint32_t p : {1u, 2u, 3u, 7u, 16u}) {
      if (p > v) continue;
      const PartitionLayout layout(v, p);
      EXPECT_EQ(layout.begin(0), 0u);
      EXPECT_EQ(layout.end(p - 1), v);
      std::uint64_t covered = 0;
      for (std::uint32_t i = 0; i < p; ++i) {
        ASSERT_EQ(layout.begin(i), covered) << v << "/" << p;
        ASSERT_GE(layout.size(i), v / p);       // balanced:
        ASSERT_LE(layout.size(i), v / p + 1);   // sizes differ by <= 1
        covered += layout.size(i);
      }
      ASSERT_EQ(covered, v);
      for (VertexId vertex = 0; vertex < v; ++vertex) {
        const std::uint32_t owner = layout.owner(vertex);
        ASSERT_LT(owner, p);
        ASSERT_GE(vertex, layout.begin(owner));
        ASSERT_LT(vertex, layout.end(owner));
      }
    }
  }
}

TEST(Partitioner, EveryEdgeLandsInExactlyItsOwnersFile) {
  TempDir dir("partition");
  io::Device dev = make_device(dir);
  const ErdosRenyiSource source(
      {.num_vertices = 10'000, .num_edges = 80'000, .seed = 9});
  const GraphMeta meta = write_generated(
      dev, "er", source.num_vertices(), source.seed(), source.undirected(),
      [&](const EdgeSink& sink) { source.generate(sink); });

  const std::uint32_t P = 7;
  const PartitionedGraph pg = partition_edge_list(dev, meta, P);

  std::uint64_t total = 0;
  std::uint64_t checksum = 0;
  for (std::uint32_t p = 0; p < P; ++p) {
    auto f = dev.open(pg.partition_file(p));
    ASSERT_EQ(f->size(), pg.edges_per_partition[p] * sizeof(Edge));
    io::RecordReader<Edge> reader(*f, 1 << 16);
    Edge e;
    std::uint64_t count = 0;
    while (reader.next(e)) {
      ASSERT_GE(e.src, pg.layout.begin(p));  // ownership: src in range
      ASSERT_LT(e.src, pg.layout.end(p));
      checksum += edge_digest(e);
      ++count;
    }
    ASSERT_EQ(count, pg.edges_per_partition[p]);
    total += count;
  }
  // Union of the partitions == the input, as a multiset.
  EXPECT_EQ(total, meta.num_edges);
  EXPECT_EQ(checksum, meta.checksum);
}

TEST(Partitioner, SinglePartitionReproducesTheInputFile) {
  TempDir dir("partition");
  io::Device dev = make_device(dir);
  const GraphMeta meta = write_generated(
      dev, "tiny", 4, 1, false, [](const EdgeSink& sink) {
        sink({0, 1});
        sink({3, 2});
        sink({1, 1});
      });
  const PartitionedGraph pg = partition_edge_list(dev, meta, 1);
  EXPECT_EQ(pg.edges_per_partition[0], meta.num_edges);
  auto f = dev.open(pg.partition_file(0));
  io::RecordReader<Edge> reader(*f, 64);
  std::vector<Edge> back;
  Edge e;
  while (reader.next(e)) back.push_back(e);
  EXPECT_EQ(back, (std::vector<Edge>{{0, 1}, {3, 2}, {1, 1}}));
}

TEST(Partitioner, DegreeStatsMatchAHandComputedGraph)  {
  TempDir dir("partition");
  io::Device dev = make_device(dir);
  // Out-degrees: v0 -> 3, v2 -> 1, v1/v3/v4 -> 0.
  const GraphMeta meta = write_generated(
      dev, "hand", 5, 1, false, [](const EdgeSink& sink) {
        sink({0, 1});
        sink({0, 2});
        sink({0, 0});
        sink({2, 4});
      });

  const std::vector<std::uint32_t> degrees = compute_out_degrees(dev, meta);
  EXPECT_EQ(degrees, (std::vector<std::uint32_t>{3, 0, 1, 0, 0}));

  const DegreeStats stats = compute_out_degree_stats(dev, meta);
  EXPECT_EQ(stats.max_degree, 3u);
  EXPECT_EQ(stats.max_degree_vertex, 0u);
  EXPECT_EQ(stats.vertices_with_edges, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 4.0 / 5.0);
}

TEST(TransposedView, HoldsEveryEdgeDstSortedInItsOwnersFile) {
  TempDir dir("partition");
  io::Device dev = make_device(dir);
  const ErdosRenyiSource source(
      {.num_vertices = 2'000, .num_edges = 16'000, .seed = 5});
  const GraphMeta meta = write_generated(
      dev, "er", source.num_vertices(), source.seed(), source.undirected(),
      [&](const EdgeSink& sink) { source.generate(sink); });
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const std::uint32_t P = 5;
  const PartitionedGraph pg = partition_edge_list(plan, meta, P);
  const TransposedView view = build_transposed_view(plan, pg);

  std::uint64_t total = 0;
  std::uint64_t checksum = 0;
  for (std::uint32_t q = 0; q < P; ++q) {
    auto f = dev.open(transposed_file(pg, q));
    ASSERT_EQ(f->size(), view.in_edges_per_partition[q] * sizeof(Edge));
    io::RecordReader<Edge> reader(*f, 1 << 16);
    Edge e;
    std::uint64_t count = 0;
    VertexId last_dst = 0;
    while (reader.next(e)) {
      ASSERT_GE(e.dst, pg.layout.begin(q));  // ownership: dst in range
      ASSERT_LT(e.dst, pg.layout.end(q));
      ASSERT_GE(e.dst, last_dst);  // dst-sorted: in-edges form runs
      last_dst = e.dst;
      checksum += edge_digest(e);
      ++count;
    }
    ASSERT_EQ(count, view.in_edges_per_partition[q]);
    total += count;
  }
  // Union of the transposed files == the input, as a multiset.
  EXPECT_EQ(total, meta.num_edges);
  EXPECT_EQ(checksum, meta.checksum);
}

TEST(TransposedView, CacheHitsAndRejectsDamagedFiles) {
  TempDir dir("partition");
  io::Device dev = make_device(dir);
  const GraphMeta meta = write_generated(
      dev, "tiny", 6, 1, false, [](const EdgeSink& sink) {
        sink({0, 5});
        sink({5, 0});
        sink({1, 3});
        sink({4, 3});
      });
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const PartitionedGraph pg = partition_edge_list(plan, meta, 2);
  const TransposedView first = build_transposed_view(plan, pg);
  ASSERT_TRUE(dev.exists(transposed_meta_file(pg)));
  // Destinations {5, 0, 3, 3}; partition 0 owns vertices 0-2.
  EXPECT_EQ(first.in_edges_per_partition,
            (std::vector<std::uint64_t>{1, 3}));

  // A second build is a cache load: same counts, no bytes rewritten.
  const std::uint64_t written_before = dev.stats().bytes_written();
  const TransposedView cached = build_transposed_view(plan, pg);
  EXPECT_EQ(cached.in_edges_per_partition, first.in_edges_per_partition);
  EXPECT_EQ(dev.stats().bytes_written(), written_before);

  // Damage one transposed file: the sidecar no longer matches its size,
  // so the next build must rebuild rather than trust the cache.
  dev.remove(transposed_file(pg, 1));
  const TransposedView rebuilt = build_transposed_view(plan, pg);
  EXPECT_EQ(rebuilt.in_edges_per_partition, first.in_edges_per_partition);
  EXPECT_TRUE(dev.exists(transposed_file(pg, 1)));
}

TEST(TransposedView, BlockIndexCoversEveryRecordWithOrderedDstRanges) {
  TempDir dir("partition");
  io::Device dev = make_device(dir);
  // Big enough that partitions span several 4096-record blocks plus a
  // partial tail block.
  const ErdosRenyiSource source(
      {.num_vertices = 1'000, .num_edges = 30'000, .seed = 17});
  const GraphMeta meta = write_generated(
      dev, "er", source.num_vertices(), source.seed(), source.undirected(),
      [&](const EdgeSink& sink) { source.generate(sink); });
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const std::uint32_t P = 3;
  const PartitionedGraph pg = partition_edge_list(plan, meta, P);
  const TransposedView view = build_transposed_view(plan, pg);

  ASSERT_EQ(view.blocks.size(), P);
  for (std::uint32_t q = 0; q < P; ++q) {
    const std::uint64_t records = view.in_edges_per_partition[q];
    const std::uint64_t want_blocks =
        (records + kTransposedBlockRecords - 1) / kTransposedBlockRecords;
    ASSERT_EQ(view.blocks[q].size(), want_blocks);
    // Re-read the file and check every block's recorded range is exact
    // — not merely containing, since pull's skip decision trusts it.
    auto f = dev.open(transposed_file(pg, q));
    io::RecordReader<Edge> reader(*f, 1 << 16);
    Edge e;
    std::uint64_t i = 0;
    VertexId seen_first = 0;
    VertexId seen_last = 0;
    while (reader.next(e)) {
      const std::uint64_t b = i / kTransposedBlockRecords;
      if (i % kTransposedBlockRecords == 0) {
        seen_first = e.dst;
        if (b > 0) {  // close out the previous block
          EXPECT_EQ(view.blocks[q][b - 1].last_dst, seen_last);
          // dst-sorted file: consecutive blocks' ranges never regress.
          EXPECT_GE(view.blocks[q][b].first_dst,
                    view.blocks[q][b - 1].last_dst);
        }
        EXPECT_EQ(view.blocks[q][b].first_dst, seen_first);
      }
      seen_last = e.dst;
      ++i;
    }
    if (records > 0) {
      EXPECT_EQ(view.blocks[q].back().last_dst, seen_last);
    }
  }
}

TEST(TransposedView, CachedLoadKeepsBlocksAndDamagedIndexRebuilds) {
  TempDir dir("partition");
  io::Device dev = make_device(dir);
  const ErdosRenyiSource source(
      {.num_vertices = 500, .num_edges = 9'000, .seed = 3});
  const GraphMeta meta = write_generated(
      dev, "er", source.num_vertices(), source.seed(), source.undirected(),
      [&](const EdgeSink& sink) { source.generate(sink); });
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const PartitionedGraph pg = partition_edge_list(plan, meta, 2);
  const TransposedView first = build_transposed_view(plan, pg);

  // Cache hit: identical blocks, no bytes rewritten.
  const std::uint64_t written_before = dev.stats().bytes_written();
  const TransposedView cached = build_transposed_view(plan, pg);
  EXPECT_EQ(dev.stats().bytes_written(), written_before);
  ASSERT_EQ(cached.blocks.size(), first.blocks.size());
  for (std::size_t q = 0; q < first.blocks.size(); ++q) {
    ASSERT_EQ(cached.blocks[q].size(), first.blocks[q].size());
    EXPECT_EQ(std::memcmp(cached.blocks[q].data(), first.blocks[q].data(),
                          first.blocks[q].size() * sizeof(TransposedBlock)),
              0);
  }

  // A missing index file invalidates the cache (the transposed files
  // themselves are intact) and the rebuild restores it.
  ASSERT_TRUE(dev.exists(transposed_index_file(pg, 1)));
  dev.remove(transposed_index_file(pg, 1));
  const TransposedView rebuilt = build_transposed_view(plan, pg);
  EXPECT_TRUE(dev.exists(transposed_index_file(pg, 1)));
  ASSERT_EQ(rebuilt.blocks.size(), first.blocks.size());
  for (std::size_t q = 0; q < first.blocks.size(); ++q) {
    ASSERT_EQ(rebuilt.blocks[q].size(), first.blocks[q].size());
    EXPECT_EQ(std::memcmp(rebuilt.blocks[q].data(), first.blocks[q].data(),
                          first.blocks[q].size() * sizeof(TransposedBlock)),
              0);
  }
}

}  // namespace
}  // namespace fbfs::graph
