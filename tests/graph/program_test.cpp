// GraphProgram semantics, independent of any engine: the scatter /
// gather / apply contracts each program promises, and the bit-identity
// rule — gather must be an order-free fold, because the engines deliver
// updates in different orders.
#include "graph/program.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace fbfs::graph {
namespace {

TEST(Programs, BfsScatterCarriesNextLevelAndGatherTakesTheMin) {
  const BfsProgram bfs{.root = 3};
  BfsProgram::State s;
  bool active = false;
  bfs.init(3, 7, s, active);
  EXPECT_TRUE(active);
  EXPECT_EQ(s.level, 0u);
  bfs.init(2, 7, s, active);
  EXPECT_FALSE(active);
  EXPECT_EQ(s.level, kUnreachedLevel);

  BfsProgram::Update u;
  ASSERT_TRUE(bfs.scatter({3, 2}, {.level = 4}, u));
  EXPECT_EQ(u.dst, 2u);
  EXPECT_EQ(u.level, 5u);

  BfsProgram::State dst{.level = kUnreachedLevel};
  EXPECT_TRUE(bfs.gather({2, 5}, dst));   // first reach activates
  EXPECT_EQ(dst.level, 5u);
  EXPECT_FALSE(bfs.gather({2, 9}, dst));  // worse level is a no-op
  EXPECT_EQ(dst.level, 5u);
  EXPECT_TRUE(bfs.gather({2, 1}, dst));
  EXPECT_EQ(dst.level, 1u);
}

TEST(Programs, SievePredicatesAreMinFoldsForTheScalarPrograms) {
  // dominates(a, b) must mean "after delivering a, b is redundant" and
  // sieve_merge(champion, u) must leave the champion equivalent to
  // delivering both — the sieve's exactness contract (SieveCapable).
  const BfsProgram bfs;
  EXPECT_TRUE(bfs.dominates({2, 3}, {2, 3}));   // equal level: redundant
  EXPECT_TRUE(bfs.dominates({2, 3}, {2, 7}));   // worse level: redundant
  EXPECT_FALSE(bfs.dominates({2, 3}, {2, 1}));  // better level survives
  BfsProgram::Update bfs_champ{2, 3};
  bfs.sieve_merge(bfs_champ, {2, 1});  // min-fold: the winner replaces
  EXPECT_EQ(bfs_champ.level, 1u);

  const WccProgram wcc;
  EXPECT_TRUE(wcc.dominates({5, 2}, {5, 9}));
  EXPECT_FALSE(wcc.dominates({5, 2}, {5, 1}));
  WccProgram::Update wcc_champ{5, 2};
  wcc.sieve_merge(wcc_champ, {5, 1});
  EXPECT_EQ(wcc_champ.label, 1u);

  const SsspProgram sssp;
  EXPECT_TRUE(sssp.dominates({4, 1.5f}, {4, 2.5f}));
  EXPECT_FALSE(sssp.dominates({4, 1.5f}, {4, 0.5f}));
  SsspProgram::Update sssp_champ{4, 1.5f};
  sssp.sieve_merge(sssp_champ, {4, 0.5f});
  EXPECT_EQ(sssp_champ.dist, 0.5f);
}

TEST(Programs, WccEveryVertexStartsActiveWithItsOwnLabel) {
  const WccProgram wcc;
  WccProgram::State s;
  bool active = false;
  wcc.init(17, 0, s, active);
  EXPECT_TRUE(active);
  EXPECT_EQ(s.label, 17u);
  EXPECT_TRUE(WccProgram::kRequiresUndirected);

  WccProgram::State dst{.label = 9};
  EXPECT_FALSE(wcc.gather({1, 9}, dst));  // equal label: no reactivation
  EXPECT_TRUE(wcc.gather({1, 2}, dst));
  EXPECT_EQ(dst.label, 2u);
}

TEST(Programs, SsspWeightsAreDeterministicPerEdgeAndBounded) {
  const Edge e{11, 29};
  const float w = edge_weight(e);
  EXPECT_EQ(w, edge_weight(e));  // pure function of the edge
  EXPECT_GE(w, 1.0f);
  EXPECT_LT(w, 2.0f);
  EXPECT_NE(edge_weight({11, 29}), edge_weight({29, 11}));

  const SsspProgram sssp{.root = 0};
  SsspProgram::Update u;
  ASSERT_TRUE(sssp.scatter(e, {.dist = 2.5f}, u));
  EXPECT_EQ(u.dst, 29u);
  EXPECT_EQ(u.dist, 2.5f + w);
}

TEST(Programs, PageRankGatherIsOrderFree) {
  // The fixed-point accumulator is what buys bit-identical PageRank
  // across engines: fold the same multiset of updates in shuffled
  // orders and the state must match exactly.
  const PageRankProgram pr{.num_vertices = 1000};
  std::vector<PageRankProgram::Update> updates;
  std::mt19937 rng(7);
  for (int i = 0; i < 500; ++i) {
    PageRankProgram::State src;
    bool active = false;
    pr.init(0, 1 + rng() % 40, src, active);
    PageRankProgram::Update u;
    ASSERT_TRUE(pr.scatter({0, 1}, src, u));
    updates.push_back(u);
  }
  const auto fold = [&](const std::vector<PageRankProgram::Update>& us) {
    PageRankProgram::State s{};
    for (const auto& u : us) pr.gather(u, s);
    pr.apply(1, s);
    return s.rank;
  };
  const float baseline = fold(updates);
  for (int round = 0; round < 5; ++round) {
    std::shuffle(updates.begin(), updates.end(), rng);
    ASSERT_EQ(fold(updates), baseline);
  }
}

TEST(Programs, PageRankApplyResetsTheAccumulator) {
  const PageRankProgram pr{.num_vertices = 4};
  PageRankProgram::State s;
  bool active = false;
  pr.init(0, 2, s, active);
  EXPECT_TRUE(active);
  EXPECT_FLOAT_EQ(s.rank, 0.25f);

  // No inputs: rank decays to the teleport share.
  pr.apply(0, s);
  EXPECT_FLOAT_EQ(s.rank, 0.15f / 4);
  EXPECT_EQ(s.accum, 0u);
}

}  // namespace
}  // namespace fbfs::graph
