// The in-memory reference engine against hand-computable ground truth:
// if this engine is wrong, every equivalence test downstream is
// comparing the streaming engine to garbage.
#include "inmem/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/temp_dir.hpp"
#include "graph/generators.hpp"

namespace fbfs::inmem {
namespace {

using graph::BfsProgram;
using graph::Csr;
using graph::Edge;
using graph::kUnreachedLevel;
using graph::PageRankProgram;
using graph::SsspProgram;
using graph::VertexId;
using graph::WccProgram;

TEST(InMem, BfsLevelsOnAHandGraph) {
  //      0 -> 1 -> 2 -> 3      4 -> 0 (4 unreachable from 0)
  //      0 ------> 2
  const Csr csr(5, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {4, 0}, {0, 2}});
  const auto result = run(csr, BfsProgram{.root = 0});
  ASSERT_EQ(result.states.size(), 5u);
  EXPECT_EQ(result.states[0].level, 0u);
  EXPECT_EQ(result.states[1].level, 1u);
  EXPECT_EQ(result.states[2].level, 1u);  // direct edge beats the chain
  EXPECT_EQ(result.states[3].level, 2u);
  EXPECT_EQ(result.states[4].level, kUnreachedLevel);
  // Counted rounds: {0} reaches {1,2}; {1,2} reaches {3}; the round
  // scattering {3} emits nothing (no out-edges) and is uncounted.
  EXPECT_EQ(result.iterations, 2u);
}

TEST(InMem, BfsOnGridMatchesManhattanDistance) {
  TempDir dir("inmem");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const graph::Grid2dSource source({.width = 9, .height = 7});
  const graph::GraphMeta meta = graph::write_generated(
      dev, "grid", source.num_vertices(), source.seed(), source.undirected(),
      [&](const graph::EdgeSink& sink) { source.generate(sink); });
  const auto result = run_graph(dev, meta, BfsProgram{.root = 0});
  // Vertex (x, y) is x + 9 * y; the lattice distance from the corner is
  // x + y.
  for (std::uint32_t y = 0; y < 7; ++y) {
    for (std::uint32_t x = 0; x < 9; ++x) {
      ASSERT_EQ(result.states[x + 9 * y].level, x + y) << x << "," << y;
    }
  }
  // Diameter 14 (= 8 + 6) rounds activate the far corner; its own
  // scatter still emits (lattice vertices always have neighbours), so
  // one more round runs, finds nothing new, and stops.
  EXPECT_EQ(result.iterations, 9u + 7 - 1);
}

TEST(InMem, WccFindsTheComponents) {
  // Components {0,1,2}, {3,4}, {5} — symmetric edge list.
  const Csr csr(6, std::vector<Edge>{{0, 1}, {1, 0}, {1, 2}, {2, 1},
                                     {3, 4}, {4, 3}});
  const auto result = run(csr, WccProgram{});
  EXPECT_EQ(result.states[0].label, 0u);
  EXPECT_EQ(result.states[1].label, 0u);
  EXPECT_EQ(result.states[2].label, 0u);
  EXPECT_EQ(result.states[3].label, 3u);
  EXPECT_EQ(result.states[4].label, 3u);
  EXPECT_EQ(result.states[5].label, 5u);
}

TEST(InMem, SsspPicksTheLighterOfTwoRoutes) {
  // 0 -> 1 -> 3 vs 0 -> 2 -> 3: derived weights decide; the test
  // computes the same weights the program derives.
  const std::vector<Edge> edges = {{0, 1}, {1, 3}, {0, 2}, {2, 3}};
  const Csr csr(4, edges);
  const auto result = run(csr, SsspProgram{.root = 0});
  const float via1 =
      graph::edge_weight({0, 1}) + graph::edge_weight({1, 3});
  const float via2 =
      graph::edge_weight({0, 2}) + graph::edge_weight({2, 3});
  EXPECT_EQ(result.states[0].dist, 0.0f);
  EXPECT_EQ(result.states[1].dist, graph::edge_weight({0, 1}));
  EXPECT_EQ(result.states[3].dist, std::min(via1, via2));
}

TEST(InMem, PageRankOnACycleIsUniformAndConserved) {
  // On a directed cycle every vertex has in/out degree 1: the uniform
  // distribution is the fixed point, and no rank mass leaks.
  const std::uint64_t n = 64;
  std::vector<Edge> edges;
  for (VertexId v = 0; v < n; ++v) {
    edges.push_back({v, static_cast<VertexId>((v + 1) % n)});
  }
  const Csr csr(n, edges);
  const auto result =
      run(csr, PageRankProgram{.num_vertices = n}, {.max_iterations = 10});
  EXPECT_EQ(result.iterations, 10u);  // fixed rounds, no early stop
  double sum = 0.0;
  for (const auto& s : result.states) {
    EXPECT_NEAR(s.rank, 1.0 / static_cast<double>(n), 1e-6);
    sum += s.rank;
  }
  EXPECT_NEAR(sum, 1.0, 1e-4);
}

TEST(InMem, PageRankStarConcentratesRankInTheHub) {
  // Leaves 1..4 all point at 0; 0 points at 1. The hub must outrank
  // every leaf, and leaves 2..4 (no in-edges) sit at the teleport floor.
  const Csr csr(5, std::vector<Edge>{{1, 0}, {2, 0}, {3, 0}, {4, 0}, {0, 1}});
  const auto result =
      run(csr, PageRankProgram{.num_vertices = 5}, {.max_iterations = 20});
  const float floor = 0.15f / 5;
  EXPECT_GT(result.states[0].rank, result.states[1].rank);
  EXPECT_GT(result.states[1].rank, result.states[2].rank);
  EXPECT_NEAR(result.states[2].rank, floor, 1e-6);
  EXPECT_NEAR(result.states[3].rank, result.states[2].rank, 1e-9);
}

TEST(InMem, IsolatedRootConvergesImmediately) {
  const Csr csr(3, std::vector<Edge>{{1, 2}});
  const auto result = run(csr, BfsProgram{.root = 0});
  EXPECT_EQ(result.iterations, 0u);
  EXPECT_EQ(result.updates_emitted, 0u);
  EXPECT_EQ(result.states[0].level, 0u);
  EXPECT_EQ(result.states[1].level, kUnreachedLevel);
}

TEST(InMemDeath, WccOnADirectedGraphIsRefused) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TempDir dir("inmem");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const graph::GraphMeta meta = graph::write_generated(
      dev, "directed", 3, 1, /*undirected=*/false,
      [](const graph::EdgeSink& sink) { sink({0, 1}); });
  EXPECT_DEATH(run_graph(dev, meta, WccProgram{}),
               "requires a symmetric edge list");
}

}  // namespace
}  // namespace fbfs::inmem
