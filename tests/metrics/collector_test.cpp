// Collector contracts: config plumbing, phase drains at iteration
// boundaries, the zero-cost-when-disabled promise (counted via a
// replacement global operator new), and — the one that matters most —
// collection not perturbing engine results: states bit-identical with
// metrics on and off, for all three engines.
#include "metrics/collector.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/temp_dir.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "inmem/engine.hpp"
#include "metrics/run_stats.hpp"
#include "xstream/engine.hpp"

// ---- allocation counter: every path through the replaced operator new
// bumps the counter, so a zero delta proves a code region heap-allocated
// nothing on this thread or any other. The replacement pairs
// malloc-backed new with free-backed delete, which is well-formed for
// replaced global allocators; GCC's heuristic cannot see the pairing
// across inlining and misfires.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace fbfs {
namespace {

using graph::BfsProgram;
using graph::GraphMeta;
using graph::PartitionedGraph;
using graph::partition_edge_list;

GraphMeta rmat_graph(io::Device& dev) {
  const graph::RmatSource source({.scale = 8, .edge_factor = 8, .seed = 11});
  return graph::write_generated(
      dev, "rmat", source.num_vertices(), source.seed(), source.undirected(),
      [&](const graph::EdgeSink& sink) { source.generate(sink); });
}

TEST(Collector, OptionsComeFromConfigKeys) {
  const Config config = Config::parse_string(
      "metrics.histogram_shards = 8\n"
      "metrics.sampler_interval = 0.5\n"
      "metrics.live_ops = false\n");
  const metrics::CollectorOptions opts =
      metrics::collector_options_from_config(config);
  EXPECT_EQ(opts.histogram_shards, 8u);
  EXPECT_DOUBLE_EQ(opts.sampler_interval_seconds, 0.5);
  EXPECT_FALSE(opts.live_ops);
  // Defaults: 16 shards, sampler off.
  const metrics::CollectorOptions defaults =
      metrics::collector_options_from_config(Config{});
  EXPECT_EQ(defaults.histogram_shards, 16u);
  EXPECT_DOUBLE_EQ(defaults.sampler_interval_seconds, 0.0);
  EXPECT_TRUE(defaults.live_ops);
}

TEST(Collector, EndIterationDrainsPhaseShardsIntoRows) {
  metrics::Collector collector({.histogram_shards = 2});
  collector.record_phase_ns(metrics::Phase::kScatter, 100);
  collector.record_phase_ns(metrics::Phase::kScatter, 200);
  collector.record_phase_ns(metrics::Phase::kGather, 50);
  metrics::IterationStats stats;
  stats.iteration = 0;
  stats.updates_emitted = 7;
  collector.end_iteration(stats);

  // Second iteration starts from drained shards.
  collector.record_phase_ns(metrics::Phase::kScatter, 900);
  stats.iteration = 1;
  collector.end_iteration(stats);

  const metrics::RunStats& run = collector.run_stats();
  ASSERT_EQ(run.iterations.size(), 2u);
  const auto& first = run.iterations[0];
  EXPECT_EQ(first.phase_hist(metrics::Phase::kScatter).count(), 2u);
  EXPECT_EQ(first.phase_hist(metrics::Phase::kScatter).sum(), 300u);
  EXPECT_EQ(first.phase_hist(metrics::Phase::kGather).count(), 1u);
  EXPECT_TRUE(first.phase_hist(metrics::Phase::kApply).empty());
  const auto& second = run.iterations[1];
  EXPECT_EQ(second.phase_hist(metrics::Phase::kScatter).count(), 1u);
  EXPECT_EQ(second.phase_hist(metrics::Phase::kScatter).min(), 900u);
  // The exact-merge aggregate over rows.
  EXPECT_EQ(run.phase_total(metrics::Phase::kScatter).count(), 3u);
  EXPECT_EQ(run.phase_total(metrics::Phase::kScatter).sum(), 1200u);
  EXPECT_EQ(run.ops.iterations, 2u);
  EXPECT_EQ(run.updates_emitted(), 14u);
}

TEST(Collector, NullCollectorHooksAllocateNothing) {
  // The exact hook pattern the engine hot loops use, with the collector
  // absent: ScopedPhase plus guarded live-op flushes. Zero heap
  // allocations, process-wide, across the whole region.
  metrics::Collector* collector = nullptr;
  std::uint64_t local_edges = 0;
  const std::uint64_t before =
      g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10'000; ++i) {
    metrics::ScopedPhase scatter(collector, metrics::Phase::kScatter);
    local_edges += 3;
    if (collector != nullptr) {
      collector->live().add_edges_scanned(local_edges);
      collector->live().add_updates(1, 2);
    }
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(local_edges, 30'000u);
}

TEST(Collector, HotPathRecordingAllocatesNothing) {
  // With a live collector the recording path is atomics only —
  // allocation happens at construction and end_iteration, never inside
  // a phase.
  metrics::Collector collector({.histogram_shards = 4});
  const std::uint64_t before =
      g_allocations.load(std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    metrics::ScopedPhase scatter(&collector, metrics::Phase::kScatter);
    collector.live().add_edges_scanned(5);
    collector.live().add_updates(2, 1);
    collector.record_phase_ns(metrics::Phase::kShuffleFlush, i);
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(collector.live().snapshot().edges_scanned, 50'000u);
}

TEST(Collector, SamplerThreadStartsLogsAndJoins) {
  // Construction starts it, destruction stops it; recording races it
  // harmlessly (TSan covers this configuration in CI).
  metrics::Collector collector(
      {.histogram_shards = 2, .sampler_interval_seconds = 0.01});
  for (int i = 0; i < 100; ++i) {
    collector.live().add_edges_scanned(1'000);
    collector.record_phase_ns(metrics::Phase::kScatter, 500);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(Collector, XstreamStatesAreBitIdenticalWithMetricsOnAndOff) {
  TempDir dir("collector");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const GraphMeta meta = rmat_graph(dev);
  const PartitionedGraph pg = partition_edge_list(plan, meta, 4);

  xstream::EngineOptions plain;
  const auto off = xstream::run(pg, plan, BfsProgram{}, plain);

  metrics::Collector collector;
  xstream::EngineOptions instrumented;
  instrumented.collector = &collector;
  const auto on = xstream::run(pg, plan, BfsProgram{}, instrumented);

  ASSERT_EQ(on.states.size(), off.states.size());
  EXPECT_EQ(std::memcmp(on.states.data(), off.states.data(),
                        off.states.size() * sizeof(off.states[0])),
            0);
  EXPECT_EQ(on.iterations, off.iterations);
  EXPECT_EQ(on.updates_emitted, off.updates_emitted);

  // And the collector saw the run the engine reports: one row per
  // round, live totals matching the engine's own counters.
  const metrics::RunStats& run = collector.run_stats();
  ASSERT_EQ(run.iterations.size(), on.per_iteration.size());
  EXPECT_EQ(run.ops.updates_emitted, on.updates_emitted);
  EXPECT_EQ(run.updates_emitted(), on.updates_emitted);
  std::uint64_t scattered = 0;
  for (const auto& row : on.per_iteration) {
    scattered += row.partitions_scattered;
  }
  EXPECT_EQ(run.ops.partitions_scattered, scattered);
  EXPECT_GT(run.phase_total(metrics::Phase::kScatter).count(), 0u);
  EXPECT_GT(run.phase_total(metrics::Phase::kShuffleFlush).count(), 0u);
  EXPECT_GT(run.phase_total(metrics::Phase::kGather).count(), 0u);
  EXPECT_TRUE(run.phase_total(metrics::Phase::kTrimResolve).empty());
}

TEST(Collector, CoreTrimmingStatesAreBitIdenticalWithMetricsOnAndOff) {
  // The trimming engine, parallel, with the collector attached: same
  // states as the uninstrumented run, and the trim-resolve phase shows
  // up in the histograms.
  TempDir dir("collector");
  io::Device main_dev(dir.str() + "/main", io::DeviceModel::unthrottled());
  io::Device aux_dev(dir.str() + "/aux", io::DeviceModel::unthrottled());
  const io::StoragePlan plan = io::StoragePlan::dual(main_dev, aux_dev);
  const GraphMeta meta = rmat_graph(main_dev);
  const PartitionedGraph pg = partition_edge_list(plan, meta, 4);

  core::EngineOptions plain;
  plain.num_threads = 2;
  const auto off = core::run(pg, plan, BfsProgram{}, plain);

  metrics::Collector collector;
  core::EngineOptions instrumented = plain;
  instrumented.collector = &collector;
  const auto on = core::run(pg, plan, BfsProgram{}, instrumented);

  ASSERT_EQ(on.states.size(), off.states.size());
  EXPECT_EQ(std::memcmp(on.states.data(), off.states.data(),
                        off.states.size() * sizeof(off.states[0])),
            0);
  EXPECT_EQ(on.trims_committed, off.trims_committed);
  EXPECT_EQ(on.stay_edges_written, off.stay_edges_written);

  const metrics::RunStats& run = collector.run_stats();
  ASSERT_EQ(run.iterations.size(), on.per_iteration.size());
  std::uint32_t resolved = 0;
  for (const auto& row : run.iterations) {
    resolved += row.stats.trims_committed + row.stats.trims_cancelled +
                row.stats.trims_failed;
  }
  if (resolved > 0) {
    EXPECT_GE(run.phase_total(metrics::Phase::kTrimResolve).count(),
              resolved);
  }
}

TEST(Collector, InmemRunFeedsCollectorAndRenderersWork) {
  const graph::RmatSource source({.scale = 7, .edge_factor = 8, .seed = 3});
  std::vector<graph::Edge> edges;
  source.generate([&](const graph::Edge& e) { edges.push_back(e); });
  const graph::Csr csr(source.num_vertices(), edges);

  metrics::Collector collector;
  inmem::RunOptions options;
  options.collector = &collector;
  const auto result = inmem::run(csr, BfsProgram{}, options);

  const metrics::RunStats& run = collector.run_stats();
  EXPECT_EQ(run.iterations.size(), result.iterations);
  EXPECT_EQ(run.ops.updates_emitted, result.updates_emitted);
  EXPECT_EQ(run.phase_total(metrics::Phase::kScatter).count(),
            run.iterations.size());

  // Renderers: the table prints one row per round, the JSON carries the
  // totals and per-phase digests.
  std::ostringstream table;
  run.print(table);
  EXPECT_NE(table.str().find("iter"), std::string::npos);
  metrics::Json json;
  json.open("run");
  run.write_json(json);
  json.close();
  const std::string text = json.str();
  EXPECT_NE(text.find("\"updates_emitted\""), std::string::npos);
  EXPECT_NE(text.find("\"phase_scatter\""), std::string::npos);
  EXPECT_NE(text.find("\"modelled_iowait\""), std::string::npos);
}

}  // namespace
}  // namespace fbfs
