// Device-usage capture: per-role deltas, distinct-device totals (shared
// devices counted once), the modelled-busy-time contract against the
// DeviceModel, the iowait ratio, and the /proc/stat sampler.
#include "metrics/device_usage.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/temp_dir.hpp"
#include "metrics/cpu_util.hpp"
#include "storage/device.hpp"
#include "storage/storage_plan.hpp"

namespace fbfs::metrics {
namespace {

/// Throttled model with no wall-clock delay: bytes, seeks, and the
/// MODELLED busy time stay exact while tests run at full speed.
io::DeviceModel test_model() {
  io::DeviceModel m;
  m.name = "test";
  m.read_mb_s = 100.0;
  m.write_mb_s = 50.0;
  m.seek_ns = 1'000'000;
  m.time_scale = 0.0;
  return m;
}

TEST(DeviceUsage, DedicatedPlanAttributesRolesExactly) {
  TempDir dir("device_usage");
  io::Device edges(dir.str() + "/edges", test_model());
  io::Device state(dir.str() + "/state", test_model());
  io::Device updates(dir.str() + "/updates", test_model());
  io::Device stay(dir.str() + "/stay", test_model());
  const io::StoragePlan plan = io::StoragePlan::single(edges)
                                   .assign(io::Role::kState, state)
                                   .assign(io::Role::kUpdates, updates)
                                   .assign(io::Role::kStay, stay);

  const RoleSnapshots before = plan.stats_snapshot();
  const std::vector<std::byte> buf(4096, std::byte{1});
  {
    auto f = edges.open("a", /*truncate=*/true);
    f->append(buf.data(), buf.size());
    std::vector<std::byte> rd(buf.size());
    f->read_at(0, rd.data(), rd.size());
  }
  {
    auto f = updates.open("b", /*truncate=*/true);
    f->append(buf.data(), 100);
  }

  IterationStats stats;
  capture_iteration_io(plan, before, stats);

  const RoleIo& e = stats.role_io(io::Role::kEdges);
  EXPECT_EQ(e.bytes_written, buf.size());
  EXPECT_EQ(e.bytes_read, buf.size());
  EXPECT_EQ(e.write_ops, 1u);
  EXPECT_EQ(e.read_ops, 1u);
  EXPECT_EQ(e.seeks, 2u);  // fresh head, then a rewind to offset 0
  const RoleIo& u = stats.role_io(io::Role::kUpdates);
  EXPECT_EQ(u.bytes_written, 100u);
  EXPECT_EQ(u.bytes_read, 0u);
  EXPECT_EQ(stats.role_io(io::Role::kState).bytes_moved(), 0u);
  EXPECT_EQ(stats.role_io(io::Role::kStay).bytes_moved(), 0u);

  // Dedicated roles: the distinct-device totals are plain sums.
  EXPECT_EQ(stats.device_bytes_read, buf.size());
  EXPECT_EQ(stats.device_bytes_written, buf.size() + 100);
  EXPECT_EQ(stats.device_model_busy_ns,
            e.model_busy_ns + u.model_busy_ns);
  EXPECT_EQ(stats.max_device_busy_ns,
            std::max(e.busy_ns, u.busy_ns));
}

TEST(DeviceUsage, SharedDeviceIsCountedOnceInTotals) {
  TempDir dir("device_usage");
  io::Device only(dir.str(), test_model());
  const io::StoragePlan plan = io::StoragePlan::single(only);

  const RoleSnapshots before = plan.stats_snapshot();
  const std::vector<std::byte> buf(2048, std::byte{2});
  only.open("x", /*truncate=*/true)->append(buf.data(), buf.size());

  IterationStats stats;
  capture_iteration_io(plan, before, stats);

  // Every role surfaces the shared device's counters...
  for (std::size_t r = 0; r < io::kNumRoles; ++r) {
    EXPECT_EQ(stats.io[r].bytes_written, buf.size()) << "role " << r;
  }
  // ...but the device totals count the device once, not four times.
  EXPECT_EQ(stats.device_bytes_written, buf.size());
  EXPECT_EQ(stats.device_model_busy_ns,
            stats.role_io(io::Role::kEdges).model_busy_ns);
  EXPECT_EQ(stats.max_device_busy_ns, stats.device_busy_ns);
}

TEST(DeviceUsage, DualPlanDedupesByDeviceNotByRole) {
  // Seek-only model at scale 1: each append charges exactly seek_ns of
  // SCALED busy time, so the busy totals and the bottleneck max are
  // pinned to known values.
  io::DeviceModel model;
  model.name = "seek-only";
  model.seek_ns = 1'000;
  model.time_scale = 1.0;
  TempDir dir("device_usage");
  io::Device main_dev(dir.str() + "/main", model);
  io::Device aux_dev(dir.str() + "/aux", model);
  const io::StoragePlan plan = io::StoragePlan::dual(main_dev, aux_dev);

  const RoleSnapshots before = plan.stats_snapshot();
  const std::vector<std::byte> buf(1024, std::byte{3});
  {
    auto f = main_dev.open("m", /*truncate=*/true);
    f->append(buf.data(), buf.size());  // seek
    f->append(buf.data(), 512);         // sequential: free
  }
  aux_dev.open("a", /*truncate=*/true)->append(buf.data(), 512);  // seek

  IterationStats stats;
  capture_iteration_io(plan, before, stats);
  EXPECT_EQ(stats.device_bytes_written, buf.size() + 512 + 512);
  EXPECT_EQ(stats.device_busy_ns, 2'000u);      // one seek per device
  EXPECT_EQ(stats.max_device_busy_ns, 1'000u);  // neither dominates
  EXPECT_EQ(stats.device_busy_ns,
            main_dev.stats().busy_ns() + aux_dev.stats().busy_ns());
}

TEST(DeviceUsage, ModelledBusyTimePinsToTheDeviceModel) {
  // The IoStats busy-time contract (the Fig. 6 input): every charge
  // adds exactly the DeviceModel's service time for that operation to
  // model_busy_ns, and time_scale scales only the wall-clock share
  // (busy_ns) — at scale 0 the modelled account is still exact.
  TempDir dir("device_usage");
  const io::DeviceModel model = test_model();
  io::Device dev(dir.str(), model);

  auto f = dev.open("pin", /*truncate=*/true);
  const std::vector<std::byte> buf(8192, std::byte{4});
  f->append(buf.data(), 8192);       // fresh head: seek + transfer
  f->append(buf.data(), 4096);       // sequential append: transfer only
  std::vector<std::byte> rd(1024);
  f->read_at(0, rd.data(), 1024);    // rewind: seek + transfer

  const std::uint64_t expected = model.write_service_ns(8192, true) +
                                 model.write_service_ns(4096, false) +
                                 model.read_service_ns(1024, true);
  EXPECT_EQ(dev.stats().model_busy_ns(), expected);
  EXPECT_EQ(dev.stats().busy_ns(), 0u);  // time_scale 0: no wall share
  EXPECT_GT(expected, model.seek_ns * 2);
}

TEST(DeviceUsage, ModelledIowaitRatioIsClampedShare) {
  IterationStats stats;
  EXPECT_DOUBLE_EQ(stats.modelled_iowait(), 0.0);  // no wall time yet
  stats.seconds = 2.0;
  stats.max_device_busy_ns = 1'000'000'000;  // 1 s busy of 2 s wall
  EXPECT_DOUBLE_EQ(stats.modelled_iowait(), 0.5);
  stats.max_device_busy_ns = 5'000'000'000;  // oversubscribed: clamp
  EXPECT_DOUBLE_EQ(stats.modelled_iowait(), 1.0);
}

TEST(CpuUtil, UsageBetweenSamplesIsAShare) {
  CpuTimes a;
  a.busy_ticks = 100;
  a.idle_ticks = 100;
  a.iowait_ticks = 10;
  a.total_ticks = 210;
  CpuTimes b = a;
  b.busy_ticks += 30;
  b.idle_ticks += 50;
  b.iowait_ticks += 20;
  b.total_ticks += 100;
  const CpuUsage usage = cpu_usage_between(a, b);
  EXPECT_TRUE(usage.valid);
  EXPECT_DOUBLE_EQ(usage.busy, 0.3);
  EXPECT_DOUBLE_EQ(usage.iowait, 0.2);

  EXPECT_FALSE(cpu_usage_between(a, a).valid);  // empty interval
  EXPECT_FALSE(cpu_usage_between(b, a).valid);  // regression
}

TEST(CpuUtil, ProcStatSamplesOnLinux) {
  // The repo only targets Linux; /proc/stat must parse, and ticks are
  // cumulative so a second sample never regresses.
  const auto first = sample_cpu_times();
  ASSERT_TRUE(first.has_value());
  EXPECT_GT(first->total_ticks, 0u);
  const auto second = sample_cpu_times();
  ASSERT_TRUE(second.has_value());
  EXPECT_GE(second->total_ticks, first->total_ticks);
}

}  // namespace
}  // namespace fbfs::metrics
