// Invariants of the log2 histogram: exact merge (count/sum/min/max and
// every bucket preserved), monotone percentiles, and sharded concurrent
// recording equal to serial recording of the same multiset. CI runs
// this label under TSan — the sharded recorder is the one metrics piece
// hot threads hit concurrently.
#include "metrics/latency_histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"

namespace fbfs::metrics {
namespace {

TEST(LatencyHistogram, BucketOfIsBitWidth) {
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_of((std::uint64_t{1} << 63)), 64u);
  EXPECT_EQ(
      LatencyHistogram::bucket_of(std::numeric_limits<std::uint64_t>::max()),
      64u);
  // Every bucket's upper bound maps back into its own bucket.
  for (std::size_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::bucket_upper(b)),
              b);
  }
}

TEST(LatencyHistogram, RecordKeepsExactMoments) {
  LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.min(), 0u);  // empty histogram reads 0, not the sentinel
  for (const std::uint64_t v : {7u, 3u, 100u, 3u, 0u}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 113u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 113.0 / 5.0);
  EXPECT_EQ(h.bucket_count(0), 1u);  // {0}
  EXPECT_EQ(h.bucket_count(2), 2u);  // {3, 3}
  EXPECT_EQ(h.bucket_count(3), 1u);  // {7}
  EXPECT_EQ(h.bucket_count(7), 1u);  // {100}
}

TEST(LatencyHistogram, MergeEqualsSerialRecording) {
  // The mergeability invariant: merge(a, b) must carry exactly the
  // counters one histogram fed both streams would carry — per bucket,
  // not just in aggregate.
  Rng rng(42);
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram serial;
  for (int i = 0; i < 10'000; ++i) {
    // Spread across many buckets: random bit width, random value.
    const std::uint64_t v =
        rng.next_u64() >> (rng.next_u64() % 64);
    if (i % 2 == 0) {
      a.record(v);
    } else {
      b.record(v);
    }
    serial.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), serial.count());
  EXPECT_EQ(a.sum(), serial.sum());
  EXPECT_EQ(a.min(), serial.min());
  EXPECT_EQ(a.max(), serial.max());
  for (std::size_t bu = 0; bu < LatencyHistogram::kNumBuckets; ++bu) {
    EXPECT_EQ(a.bucket_count(bu), serial.bucket_count(bu)) << "bucket " << bu;
  }
  // Merging an empty histogram changes nothing, either way around.
  LatencyHistogram empty;
  const std::uint64_t before = a.sum();
  a.merge(empty);
  EXPECT_EQ(a.sum(), before);
  empty.merge(a);
  EXPECT_EQ(empty.sum(), a.sum());
  EXPECT_EQ(empty.min(), a.min());
}

TEST(LatencyHistogram, PercentilesAreMonotoneAndClamped) {
  Rng rng(7);
  LatencyHistogram h;
  for (int i = 0; i < 5'000; ++i) h.record(rng.next_u64() % 1'000'000);
  std::uint64_t last = 0;
  for (double p = 0.0; p <= 1.0; p += 0.01) {
    const std::uint64_t q = h.percentile(p);
    EXPECT_GE(q, last) << "p=" << p;
    EXPECT_GE(q, h.min());
    EXPECT_LE(q, h.max());
    last = q;
  }
  EXPECT_EQ(h.percentile(1.0), h.max());
}

TEST(LatencyHistogram, SingleValueHistogramIsExactEverywhere) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(12'345);
  for (const double p : {0.0, 0.01, 0.5, 0.95, 1.0}) {
    EXPECT_EQ(h.percentile(p), 12'345u) << "p=" << p;
  }
  EXPECT_EQ(h.percentile(0.5), h.min());
}

TEST(LatencyHistogram, EmptyHistogramIsInert) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.summary(), "n=0");
}

TEST(LatencyHistogram, FormatNsPicksUnits) {
  EXPECT_EQ(format_ns(0), "0ns");
  EXPECT_EQ(format_ns(999), "999ns");
  EXPECT_NE(format_ns(1'500).find("us"), std::string::npos);
  EXPECT_NE(format_ns(2'500'000).find("ms"), std::string::npos);
  EXPECT_NE(format_ns(3'000'000'000).find("s"), std::string::npos);
}

TEST(ShardedHistogram, ShardCountIsPow2Clamped) {
  EXPECT_EQ(ShardedHistogram(0).shard_count(), 1u);
  EXPECT_EQ(ShardedHistogram(1).shard_count(), 1u);
  EXPECT_EQ(ShardedHistogram(3).shard_count(), 4u);
  EXPECT_EQ(ShardedHistogram(16).shard_count(), 16u);
  EXPECT_EQ(ShardedHistogram(10'000).shard_count(), 256u);
}

TEST(ShardedHistogram, ConcurrentRecordingEqualsSerialTotals) {
  // 8 threads record deterministic per-thread streams; the drained
  // snapshot must equal a serial histogram of the union — exactly, per
  // bucket. TSan covers the relaxed-atomic recording path here.
  constexpr unsigned kThreads = 8;
  constexpr int kPerThread = 25'000;
  ShardedHistogram sharded(kThreads);
  LatencyHistogram serial;
  for (unsigned t = 0; t < kThreads; ++t) {
    Rng rng(100 + t);
    for (int i = 0; i < kPerThread; ++i) {
      serial.record(rng.next_u64() >> (rng.next_u64() % 64));
    }
  }
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sharded, t] {
      Rng rng(100 + t);
      for (int i = 0; i < kPerThread; ++i) {
        sharded.record(rng.next_u64() >> (rng.next_u64() % 64));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const LatencyHistogram merged = sharded.drain();
  EXPECT_EQ(merged.count(), serial.count());
  EXPECT_EQ(merged.sum(), serial.sum());
  EXPECT_EQ(merged.min(), serial.min());
  EXPECT_EQ(merged.max(), serial.max());
  for (std::size_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    EXPECT_EQ(merged.bucket_count(b), serial.bucket_count(b))
        << "bucket " << b;
  }
}

TEST(ShardedHistogram, DrainResetsForTheNextPhase) {
  ShardedHistogram sharded(4);
  sharded.record(10);
  sharded.record(20);
  const LatencyHistogram first = sharded.drain();
  EXPECT_EQ(first.count(), 2u);
  EXPECT_EQ(first.sum(), 30u);
  EXPECT_TRUE(sharded.snapshot().empty());
  // Recording after a drain starts a fresh phase, min/max included.
  sharded.record(5);
  const LatencyHistogram second = sharded.drain();
  EXPECT_EQ(second.count(), 1u);
  EXPECT_EQ(second.min(), 5u);
  EXPECT_EQ(second.max(), 5u);
}

}  // namespace
}  // namespace fbfs::metrics
