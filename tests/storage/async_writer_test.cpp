// AsyncWriter acceptance tests for DESIGN invariant 6:
//  * a completed write is durable and byte-identical to the append
//    sequence, across block boundaries and buffer sizes;
//  * cancellation leaves the previous version of the target file intact
//    and readable;
//  * an injected device write failure auto-cancels the affected stream
//    without killing the writer thread or sibling streams.
#include "storage/async_writer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/temp_dir.hpp"
#include "common/units.hpp"
#include "storage/stream.hpp"

namespace fbfs::io {
namespace {

std::vector<std::byte> make_payload(std::size_t bytes, std::uint64_t seed) {
  fbfs::Rng rng(seed);
  std::vector<std::byte> payload(bytes);
  for (auto& b : payload) b = static_cast<std::byte>(rng.next_below(256));
  return payload;
}

std::vector<std::byte> read_all(Device& dev, const std::string& name) {
  auto f = dev.open(name);
  std::vector<std::byte> data(f->size());
  StreamReader reader(*f, 1 << 16);
  const std::size_t got = reader.read(data.data(), data.size());
  EXPECT_EQ(got, data.size());
  return data;
}

void write_file(Device& dev, const std::string& name,
                std::span<const std::byte> data) {
  auto f = dev.open(name, true);
  f->append(data.data(), data.size());
  f->sync();
}

Device make_device(const TempDir& dir) {
  return Device(dir.str(), DeviceModel::unthrottled());
}

TEST(AsyncWriter, StagedCompletionIsByteIdenticalAcrossBufferSizes) {
  TempDir dir("aw");
  Device dev = make_device(dir);
  fbfs::Rng rng(11);
  const std::vector<std::byte> payload = make_payload(100'003, 42);

  for (const std::size_t buffer_bytes : {7ul, 64ul, 4096ul}) {
    AsyncWriter writer(buffer_bytes, 4);
    const auto id = writer.begin_staged(dev, "stay.bin");
    std::size_t off = 0;
    while (off < payload.size()) {
      // Ragged chunks, most larger than one pool buffer.
      const std::size_t n = std::min<std::size_t>(
          1 + rng.next_below(3 * buffer_bytes + 11), payload.size() - off);
      ASSERT_TRUE(writer.append(
          id, std::span<const std::byte>(payload.data() + off, n)));
      off += n;
    }
    EXPECT_EQ(writer.bytes_accepted(id), payload.size());
    writer.finish(id);
    ASSERT_TRUE(writer.wait_complete(id, 60.0)) << "buffer=" << buffer_bytes;
    EXPECT_EQ(writer.state(id), AsyncWriter::StreamState::completed);
    writer.release(id);

    EXPECT_FALSE(dev.exists("stay.bin.wip"));
    EXPECT_EQ(read_all(dev, "stay.bin"), payload) << "buffer=" << buffer_bytes;
  }
}

TEST(AsyncWriter, CancellationLeavesThePreviousFileIntact) {
  TempDir dir("aw");
  Device dev = make_device(dir);
  const std::vector<std::byte> previous = make_payload(50'000, 7);
  write_file(dev, "stay.bin", previous);

  AsyncWriter writer(1 << 10, 4);
  const auto id = writer.begin_staged(dev, "stay.bin");
  const std::vector<std::byte> replacement = make_payload(80'000, 8);
  ASSERT_TRUE(writer.append(id, replacement));

  writer.cancel(id);
  EXPECT_EQ(writer.state(id), AsyncWriter::StreamState::cancelled);
  // Cancelled streams reject further appends (producers notice and stop).
  EXPECT_FALSE(writer.append(id, replacement));
  EXPECT_FALSE(writer.wait_complete(id, 60.0));
  writer.release(id);

  // The previous version is untouched and readable; the .wip is gone.
  EXPECT_EQ(read_all(dev, "stay.bin"), previous);
  EXPECT_FALSE(dev.exists("stay.bin.wip"));
}

TEST(AsyncWriter, WriteFaultAutoCancelsOnlyTheAffectedStream) {
  TempDir dir1("aw1");
  TempDir dir2("aw2");
  Device bad = make_device(dir1);
  Device good = make_device(dir2);
  const std::vector<std::byte> old_stay = make_payload(10'000, 3);
  write_file(bad, "stay.bin", old_stay);
  bad.inject_write_faults(100);  // the disk "dies"

  AsyncWriter writer(256, 4);
  const auto doomed = writer.begin_staged(bad, "stay.bin");
  const auto healthy = writer.begin_staged(good, "out.bin");
  const std::vector<std::byte> payload = make_payload(20'000, 4);

  // Interleave appends; the doomed stream's flushes hit the fault.
  std::size_t off = 0;
  while (off < payload.size()) {
    const std::size_t n = std::min<std::size_t>(1000, payload.size() - off);
    writer.append(doomed, std::span<const std::byte>(payload.data() + off, n));
    ASSERT_TRUE(writer.append(
        healthy, std::span<const std::byte>(payload.data() + off, n)));
    off += n;
  }
  writer.finish(doomed);
  writer.finish(healthy);

  EXPECT_FALSE(writer.wait_complete(doomed, 60.0));
  EXPECT_EQ(writer.state(doomed), AsyncWriter::StreamState::failed);
  ASSERT_TRUE(writer.wait_complete(healthy, 60.0));
  writer.release(doomed);
  writer.release(healthy);

  // The sibling committed byte-identically; the faulted target's previous
  // version survives.
  EXPECT_EQ(read_all(good, "out.bin"), payload);
  EXPECT_EQ(read_all(bad, "stay.bin"), old_stay);
  EXPECT_FALSE(bad.exists("stay.bin.wip"));

  // The writer thread survived: a fresh stream on the recovered device
  // completes normally.
  bad.inject_write_faults(0);
  const auto retry = writer.begin_staged(bad, "stay.bin");
  ASSERT_TRUE(writer.append(retry, payload));
  writer.finish(retry);
  ASSERT_TRUE(writer.wait_complete(retry, 60.0));
  writer.release(retry);
  EXPECT_EQ(read_all(bad, "stay.bin"), payload);
}

TEST(AsyncWriter, GraceTimeoutThenCancelOnASlowDevice) {
  // The engine's trim pattern: bounded wait for the writer, cancel on
  // timeout, fall back to the previous file.
  TempDir dir("aw");
  DeviceModel slow;
  slow.name = "slow";
  slow.write_mb_s = 10.0;  // 1 MiB ~ 0.105 s modelled
  slow.read_mb_s = 0.0;
  slow.time_scale = 1.0;
  Device dev(dir.str(), slow);
  const std::vector<std::byte> previous = make_payload(1000, 9);
  write_file(dev, "stay.bin", previous);  // ~0.1 ms, cheap

  AsyncWriter writer(1 << 20, 4);
  const auto id = writer.begin_staged(dev, "stay.bin");
  const std::vector<std::byte> big = make_payload(2 * kMiB, 10);
  ASSERT_TRUE(writer.append(id, big));
  writer.finish(id);

  // Far shorter than the ~0.2 s the device needs.
  EXPECT_FALSE(writer.wait_complete(id, 0.02));
  writer.cancel(id);
  EXPECT_FALSE(writer.wait_complete(id, 60.0));
  writer.release(id);

  EXPECT_EQ(read_all(dev, "stay.bin"), previous);
  EXPECT_FALSE(dev.exists("stay.bin.wip"));
}

TEST(AsyncWriter, DirectModeStreamsIntoAnOpenFile) {
  // The micro-benchmark shape: begin(file), append chunks, finish, wait.
  TempDir dir("aw");
  Device dev = make_device(dir);
  auto f = dev.open("direct.bin", true);
  const std::vector<std::byte> chunk = make_payload(4096, 12);

  AsyncWriter writer(1 << 16, 4);
  const auto id = writer.begin(f.get());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(writer.append(id, chunk));
  }
  writer.finish(id);
  ASSERT_TRUE(writer.wait_complete(id, 60.0));
  writer.release(id);

  EXPECT_EQ(f->size(), 16u * chunk.size());
  const std::vector<std::byte> back = read_all(dev, "direct.bin");
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(std::equal(chunk.begin(), chunk.end(),
                           back.begin() + i * chunk.size()))
        << "chunk " << i;
  }
}

TEST(AsyncWriter, ManyStreamsShareATinyPool) {
  // 8 streams through 2 buffers of 512 bytes: completion requires the
  // writer thread to keep recycling buffers under backpressure.
  TempDir dir("aw");
  Device dev = make_device(dir);
  AsyncWriter writer(512, 2);

  constexpr int kStreams = 8;
  std::vector<AsyncWriter::StreamId> ids;
  std::vector<std::vector<std::byte>> payloads;
  for (int s = 0; s < kStreams; ++s) {
    ids.push_back(writer.begin_staged(dev, "part-" + std::to_string(s)));
    payloads.push_back(make_payload(8000 + 17 * s, 100 + s));
  }
  // Round-robin appends so every stream contends for the pool.
  for (std::size_t off = 0; off < 9000; off += 300) {
    for (int s = 0; s < kStreams; ++s) {
      if (off >= payloads[s].size()) continue;
      const std::size_t n =
          std::min<std::size_t>(300, payloads[s].size() - off);
      ASSERT_TRUE(writer.append(
          ids[s], std::span<const std::byte>(payloads[s].data() + off, n)));
    }
  }
  for (int s = 0; s < kStreams; ++s) writer.finish(ids[s]);
  for (int s = 0; s < kStreams; ++s) {
    ASSERT_TRUE(writer.wait_complete(ids[s], 60.0)) << "stream " << s;
    writer.release(ids[s]);
  }
  for (int s = 0; s < kStreams; ++s) {
    EXPECT_EQ(read_all(dev, "part-" + std::to_string(s)), payloads[s]);
  }
}

TEST(AsyncWriter, ReleaseAutoCancelsAnActiveStream) {
  TempDir dir("aw");
  Device dev = make_device(dir);
  AsyncWriter writer(1 << 10, 2);
  const auto id = writer.begin_staged(dev, "stay.bin");
  const std::vector<std::byte> data = make_payload(5000, 5);
  ASSERT_TRUE(writer.append(id, data));
  writer.release(id);  // never finished: auto-cancel

  EXPECT_FALSE(dev.exists("stay.bin"));
  EXPECT_FALSE(dev.exists("stay.bin.wip"));

  // The slot is gone but the writer still serves new streams.
  const auto id2 = writer.begin_staged(dev, "stay.bin");
  ASSERT_TRUE(writer.append(id2, data));
  writer.finish(id2);
  ASSERT_TRUE(writer.wait_complete(id2, 60.0));
  writer.release(id2);
  EXPECT_EQ(read_all(dev, "stay.bin"), data);
}

TEST(AsyncWriter, CancelRacingCommitReportsTheDiskTruth) {
  // finish() then an immediate cancel() races the writer thread's
  // commit sequence. Whichever side wins, the reported terminal state
  // must match the disk: completed => the new bytes were renamed onto
  // the target; cancelled => the previous version is untouched. A
  // cancel that lands mid-commit is a no-op (the stream completes), so
  // "cancelled but the target was replaced" can never be observed.
  TempDir dir("aw");
  Device dev = make_device(dir);
  const std::vector<std::byte> previous = make_payload(64, 1);
  write_file(dev, "stay.bin", previous);

  AsyncWriter writer(256, 2);
  for (int round = 0; round < 50; ++round) {
    const std::vector<std::byte> fresh = make_payload(700, 100 + round);
    const auto id = writer.begin_staged(dev, "stay.bin");
    ASSERT_TRUE(writer.append(id, fresh));
    writer.finish(id);
    writer.cancel(id);  // races the in-flight commit
    writer.wait_complete(id, 60.0);
    const auto state = writer.state(id);
    writer.release(id);

    ASSERT_TRUE(state == AsyncWriter::StreamState::completed ||
                state == AsyncWriter::StreamState::cancelled);
    EXPECT_FALSE(dev.exists("stay.bin.wip"));
    if (state == AsyncWriter::StreamState::completed) {
      EXPECT_EQ(read_all(dev, "stay.bin"), fresh);
      write_file(dev, "stay.bin", previous);  // reset for the next round
    } else {
      EXPECT_EQ(read_all(dev, "stay.bin"), previous);
    }
  }
}

TEST(AsyncWriter, ReleaseAfterFaultLeavesNoStragglerHazard) {
  // A write fault acks the stream from the writer's data handler while
  // later chunks of the same stream may still sit in the work queue;
  // release() can then erase the slot before those are drained. The
  // stragglers must be discarded quietly and their buffers returned —
  // the writer thread keeps serving new streams afterwards.
  TempDir dir("aw");
  Device dev = make_device(dir);
  const std::vector<std::byte> data = make_payload(8'000, 3);
  for (int round = 0; round < 20; ++round) {
    AsyncWriter writer(128, 2);  // 8000 bytes => ~62 queued data items
    dev.inject_write_faults(1);
    const auto id = writer.begin_staged(dev, "stay.bin");
    writer.append(id, data);  // first flushed chunk trips the fault
    writer.wait_complete(id, 60.0);
    EXPECT_EQ(writer.state(id), AsyncWriter::StreamState::failed);
    writer.release(id);

    dev.inject_write_faults(0);
    const auto id2 = writer.begin_staged(dev, "stay.bin");
    ASSERT_TRUE(writer.append(id2, data));
    writer.finish(id2);
    ASSERT_TRUE(writer.wait_complete(id2, 60.0));
    writer.release(id2);
    EXPECT_EQ(read_all(dev, "stay.bin"), data);
  }
}

TEST(AsyncWriter, DestructorAbandonsActiveStreamsSafely) {
  TempDir dir("aw");
  Device dev = make_device(dir);
  const std::vector<std::byte> previous = make_payload(100, 1);
  write_file(dev, "stay.bin", previous);
  {
    AsyncWriter writer(256, 2);
    const auto id = writer.begin_staged(dev, "stay.bin");
    writer.append(id, make_payload(10'000, 2));
    // Neither finish nor release: the destructor must cancel and join.
  }
  EXPECT_EQ(read_all(dev, "stay.bin"), previous);
  EXPECT_FALSE(dev.exists("stay.bin.wip"));
}

}  // namespace
}  // namespace fbfs::io
