// The codec layer's own acceptance suite: varint boundary encodings,
// cross-format round-trip equivalence, the exact cost model's auto
// picks and degrade-to-raw rules, golden on-disk bytes pinning every
// format, and CHECK-fatal rejection of truncated or corrupted files.
#include "storage/codec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/temp_dir.hpp"

namespace fbfs::io::codec {
namespace {

// A stand-in update record — the codec must work from this header's
// concepts alone, with no dependency on graph/ types.
struct Upd {
  std::uint32_t dst;
  std::uint32_t level;
  bool operator==(const Upd&) const = default;
};
static_assert(RoutedRecord<Upd>);

// dst NOT first: the payload excision must handle interior offsets.
struct WideUpd {
  std::uint64_t weight;
  std::uint32_t dst;
  std::uint32_t hops;
  bool operator==(const WideUpd&) const = default;
};
static_assert(RoutedRecord<WideUpd>);
static_assert(dst_offset_of<WideUpd>() == 8);

// No dst field at all — state-file shaped, raw-only.
struct StateRec {
  double score;
  std::uint32_t flags;
  std::uint32_t pad;
  bool operator==(const StateRec&) const = default;
};
static_assert(!RoutedRecord<StateRec>);
static_assert(dst_offset_of<StateRec>() == kNoDstField);

Device make_device(const TempDir& dir) {
  return Device(dir.str(), DeviceModel::unthrottled());
}

std::vector<Upd> sorted(std::vector<Upd> v) {
  std::stable_sort(v.begin(), v.end(), [](const Upd& a, const Upd& b) {
    return a.dst != b.dst ? a.dst < b.dst : a.level < b.level;
  });
  return v;
}

// ------------------------------------------------------------- varint

TEST(Codec, VarintBoundaryValuesRoundTrip) {
  std::vector<std::uint64_t> values = {0, 1};
  for (unsigned bits = 7; bits < 64; bits += 7) {
    const std::uint64_t edge = 1ull << bits;  // first value needing +1 byte
    values.push_back(edge - 1);
    values.push_back(edge);
    values.push_back(edge + 1);
  }
  values.push_back(~0ull - 1);
  values.push_back(~0ull);

  for (const std::uint64_t v : values) {
    std::byte buf[10];
    const std::size_t put = put_varint(v, buf);
    ASSERT_EQ(put, varint_size(v)) << "value " << v;
    ASSERT_LE(put, 10u);
    std::size_t pos = 0;
    ASSERT_EQ(get_varint(std::span<const std::byte>(buf, put), pos), v);
    ASSERT_EQ(pos, put);
  }
  // The size function's exact stairs.
  EXPECT_EQ(varint_size(0x7f), 1u);
  EXPECT_EQ(varint_size(0x80), 2u);
  EXPECT_EQ(varint_size(0x3fff), 2u);
  EXPECT_EQ(varint_size(0x4000), 3u);
  EXPECT_EQ(varint_size(~0ull), 10u);
}

TEST(Codec, VarintsConcatenateCleanly) {
  const std::uint64_t values[] = {0, 300, 1, 0x123456789abcdef0ull, 127, 128};
  std::vector<std::byte> buf;
  for (const std::uint64_t v : values) {
    std::byte tmp[10];
    const std::size_t n = put_varint(v, tmp);
    buf.insert(buf.end(), tmp, tmp + n);
  }
  std::size_t pos = 0;
  for (const std::uint64_t v : values) {
    ASSERT_EQ(get_varint(buf, pos), v);
  }
  ASSERT_EQ(pos, buf.size());
}

TEST(CodecDeath, VarintTruncationAndOverwidthAreFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // High bit set on the last byte: the stream promises more.
  const std::byte truncated[] = {std::byte{0xff}};
  std::size_t pos = 0;
  EXPECT_DEATH(get_varint(std::span<const std::byte>(truncated, 1), pos),
               "truncated");
  // Eleven continuation bytes: wider than any uint64.
  std::vector<std::byte> wide(11, std::byte{0xff});
  wide.push_back(std::byte{0x01});
  pos = 0;
  EXPECT_DEATH(get_varint(wide, pos), "wider than 64 bits");
}

// ------------------------------------------------------ policy parsing

TEST(Codec, PolicyNamesRoundTrip) {
  for (const Policy p :
       {Policy::kRaw, Policy::kBitmap, Policy::kVarint, Policy::kAuto}) {
    EXPECT_EQ(parse_policy(to_string(p)), p);
  }
  EXPECT_STREQ(to_string(Format::kRaw), "raw");
  EXPECT_STREQ(to_string(Format::kBitmap), "bitmap");
  EXPECT_STREQ(to_string(Format::kVarint), "varint");
}

TEST(CodecDeath, UnknownPolicyNameIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(parse_policy("gzip"), "unknown update codec");
}

// ----------------------------------------------- cross-format fidelity

std::vector<Upd> random_updates(std::uint64_t n, std::uint32_t begin,
                                std::uint32_t end, std::uint64_t seed) {
  fbfs::Rng rng(seed);
  std::vector<Upd> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back({.dst = begin + static_cast<std::uint32_t>(
                              rng.next_below(end - begin)),
                   .level = static_cast<std::uint32_t>(rng.next_below(5))});
  }
  return out;
}

TEST(Codec, RawAndVarintPreserveTheExactMultiset) {
  TempDir dir("codec");
  Device dev = make_device(dir);
  const std::uint32_t begin = 960, end = 2000;
  const std::vector<Upd> updates = random_updates(500, begin, end, 42);
  const EncodeOptions base{.policy = Policy::kRaw,
                           .allow_bitmap = false,
                           .range_begin = begin,
                           .range_end = end};
  for (const Policy policy : {Policy::kRaw, Policy::kVarint, Policy::kAuto}) {
    for (const ReaderMode mode : {ReaderMode::kPlain, ReaderMode::kPrefetch}) {
      SCOPED_TRACE(std::string(to_string(policy)) + "/" + to_string(mode));
      EncodeOptions opts = base;
      opts.policy = policy;
      CodecWriter<Upd> writer(dev, "upd", 256, opts);
      for (const Upd& u : updates) writer.append(u);
      ASSERT_EQ(writer.records_appended(), updates.size());
      const auto result = writer.close();
      ASSERT_EQ(result.staged_records, updates.size());
      ASSERT_EQ(result.records, updates.size());  // no collapsing formats here

      ReaderOptions ropts;
      ropts.mode = mode;
      ropts.buffer_bytes = 64;  // tiny: force many decode batches
      const std::vector<Upd> back =
          read_all<Upd>(dev, "upd", ropts, updates.size());
      EXPECT_EQ(sorted(back), sorted(updates));
      if (policy == Policy::kRaw) {
        EXPECT_EQ(back, updates);  // raw also preserves append order
      }
    }
  }
}

TEST(Codec, BitmapCollapsesDuplicatesForIdenticalPayloads) {
  TempDir dir("codec");
  Device dev = make_device(dir);
  // BFS-round shape: every update carries the same level.
  std::vector<Upd> updates;
  for (const std::uint32_t dst : {17u, 3u, 64u, 3u, 17u, 120u, 3u}) {
    updates.push_back({.dst = dst, .level = 9});
  }
  const EncodeOptions opts{.policy = Policy::kBitmap,
                           .allow_bitmap = true,
                           .range_begin = 0,
                           .range_end = 128};
  CodecWriter<Upd> writer(dev, "upd", 1 << 12, opts);
  writer.append_batch(updates);
  const auto result = writer.close();
  ASSERT_EQ(result.format, Format::kBitmap);
  ASSERT_EQ(result.staged_records, 7u);
  ASSERT_EQ(result.records, 4u);  // {3, 17, 64, 120}

  const std::vector<Upd> back = read_all<Upd>(dev, "upd", {}, 4);
  const std::vector<Upd> want = {
      {3, 9}, {17, 9}, {64, 9}, {120, 9}};  // ascending destinations
  EXPECT_EQ(back, want);
}

TEST(Codec, InteriorDstOffsetRoundTripsEveryFormat) {
  TempDir dir("codec");
  Device dev = make_device(dir);
  std::vector<WideUpd> updates;
  fbfs::Rng rng(7);
  for (std::uint32_t i = 0; i < 200; ++i) {
    updates.push_back({.weight = rng.next_u64(),
                       .dst = 100 + static_cast<std::uint32_t>(
                                        rng.next_below(400)),
                       .hops = i});
  }
  for (const Policy policy : {Policy::kRaw, Policy::kVarint}) {
    SCOPED_TRACE(to_string(policy));
    const EncodeOptions opts{.policy = policy,
                             .allow_bitmap = false,
                             .range_begin = 100,
                             .range_end = 500};
    CodecWriter<WideUpd> writer(dev, "wide", 1 << 10, opts);
    writer.append_batch(updates);
    writer.close();
    std::vector<WideUpd> back =
        read_all<WideUpd>(dev, "wide", {}, updates.size());
    auto key = [](const WideUpd& a, const WideUpd& b) {
      return a.dst != b.dst ? a.dst < b.dst : a.hops < b.hops;
    };
    std::vector<WideUpd> want = updates;
    std::stable_sort(back.begin(), back.end(), key);
    std::stable_sort(want.begin(), want.end(), key);
    EXPECT_EQ(back, want);
  }
}

TEST(Codec, VarintKeepsEqualDestinationsInAppendOrder) {
  TempDir dir("codec");
  Device dev = make_device(dir);
  // Same dst, distinct payloads: the stable sort must keep append order
  // so the encoding (and any downstream fold trace) is deterministic.
  const std::vector<Upd> updates = {{5, 30}, {2, 10}, {5, 31}, {5, 32}};
  const EncodeOptions opts{.policy = Policy::kVarint,
                           .allow_bitmap = false,
                           .range_begin = 0,
                           .range_end = 8};
  CodecWriter<Upd> writer(dev, "upd", 1 << 10, opts);
  writer.append_batch(updates);
  ASSERT_EQ(writer.close().format, Format::kVarint);
  const std::vector<Upd> back = read_all<Upd>(dev, "upd", {}, 4);
  const std::vector<Upd> want = {{2, 10}, {5, 30}, {5, 31}, {5, 32}};
  EXPECT_EQ(back, want);
}

TEST(Codec, EmptyStreamsRoundTripUnderEveryPolicy) {
  TempDir dir("codec");
  Device dev = make_device(dir);
  for (const Policy policy :
       {Policy::kRaw, Policy::kBitmap, Policy::kVarint, Policy::kAuto}) {
    SCOPED_TRACE(to_string(policy));
    const EncodeOptions opts{.policy = policy,
                             .allow_bitmap = true,
                             .range_begin = 0,
                             .range_end = 64};
    CodecWriter<Upd> writer(dev, "empty", 1 << 10, opts);
    const auto result = writer.close();
    EXPECT_EQ(result.records, 0u);
    EXPECT_TRUE(read_all<Upd>(dev, "empty", {}, 0).empty());
  }
}

TEST(Codec, StateRecordsStreamRawUnderAnyPolicy) {
  TempDir dir("codec");
  Device dev = make_device(dir);
  std::vector<StateRec> states;
  for (std::uint32_t i = 0; i < 100; ++i) {
    states.push_back({.score = i * 0.5, .flags = i, .pad = 0});
  }
  for (const Policy policy : {Policy::kRaw, Policy::kAuto, Policy::kBitmap}) {
    SCOPED_TRACE(to_string(policy));
    CodecWriter<StateRec> writer(dev, "states", 128, {.policy = policy});
    writer.append_batch(states);
    const auto result = writer.close();
    EXPECT_EQ(result.format, Format::kRaw);
    // dst-less types always stream: header first, count from file size.
    EXPECT_EQ(probe(dev, "states").record_count, kCountFromFileSize);
    EXPECT_EQ(read_all<StateRec>(dev, "states", {}, states.size()), states);
  }
}

// ----------------------------------------------------- the cost model

TEST(Codec, AutoPicksBitmapForDenseIdenticalPayloadRounds) {
  // 1000 updates into a 1024-vertex range, all payloads equal: raw is
  // 8000 B, varint ~5000 B, bitmap is 4 + 128 = 132 B.
  std::vector<Upd> updates;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    updates.push_back({.dst = (i * 37) % 1024, .level = 4});
  }
  const EncodedBlob blob = encode_records<Upd>(
      updates, {.policy = Policy::kAuto, .allow_bitmap = true,
                .range_begin = 0, .range_end = 1024});
  EXPECT_EQ(blob.format, Format::kBitmap);
  EXPECT_EQ(blob.bytes.size(), kHeaderBytes + 4 + 128);
}

TEST(Codec, AutoPicksVarintWhenPayloadsDiffer) {
  // Same density, but distinct payloads kill bitmap eligibility; sorted
  // deltas over a 1024 range are 1-2 bytes each, so varint beats raw's
  // 8 B/record.
  std::vector<Upd> updates;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    updates.push_back({.dst = (i * 37) % 1024, .level = i});
  }
  const EncodedBlob blob = encode_records<Upd>(
      updates, {.policy = Policy::kAuto, .allow_bitmap = true,
                .range_begin = 0, .range_end = 1024});
  EXPECT_EQ(blob.format, Format::kVarint);
  EXPECT_LT(blob.bytes.size(), kHeaderBytes + updates.size() * sizeof(Upd));
}

TEST(Codec, AutoKeepsRawForSparseStreamsOverHugeRanges) {
  // Four updates spread across the full 2^32 range: every sorted delta
  // is >= 2^28, so its varint costs 5 bytes against the 4 raw dst bytes
  // it replaces, and the bitmap alone would be 512 MiB.
  const std::vector<Upd> updates = {
      {0x10000000u, 1}, {0x40000000u, 1}, {0x80000000u, 1}, {0xC0000000u, 1}};
  const EncodedBlob blob = encode_records<Upd>(
      updates, {.policy = Policy::kAuto, .allow_bitmap = true,
                .range_begin = 0, .range_end = 1ull << 32});
  EXPECT_EQ(blob.format, Format::kRaw);
}

TEST(Codec, ForcedFormatsDegradeToRawWhenIneligible) {
  const std::vector<Upd> mixed = {{1, 1}, {2, 2}};
  // Bitmap without the idempotence licence.
  EXPECT_EQ(encode_records<Upd>(mixed, {.policy = Policy::kBitmap,
                                        .allow_bitmap = false,
                                        .range_begin = 0, .range_end = 8})
                .format,
            Format::kRaw);
  // Bitmap licensed but payloads differ.
  EXPECT_EQ(encode_records<Upd>(mixed, {.policy = Policy::kBitmap,
                                        .allow_bitmap = true,
                                        .range_begin = 0, .range_end = 8})
                .format,
            Format::kRaw);
  // Any dst-keyed format without a range.
  EXPECT_EQ(encode_records<Upd>(mixed, {.policy = Policy::kVarint}).format,
            Format::kRaw);
}

TEST(CodecDeath, OutOfRangeDestinationIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::vector<Upd> updates = {{5, 1}};
  EXPECT_DEATH(encode_records<Upd>(updates, {.policy = Policy::kVarint,
                                             .range_begin = 0,
                                             .range_end = 4}),
               "outside the stream range");
}

// -------------------------------------------------------- golden bytes

std::vector<std::byte> header_bytes(const FileHeader& h) {
  std::vector<std::byte> out(kHeaderBytes);
  std::memcpy(out.data(), &h, kHeaderBytes);
  return out;
}

void append_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &v, 4);
}

void append_u64(std::vector<std::byte>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + 8);
  std::memcpy(out.data() + at, &v, 8);
}

TEST(Codec, GoldenRawBytes) {
  const std::vector<Upd> updates = {{5, 1}, {3, 1}};
  const EncodedBlob blob = encode_records<Upd>(
      updates, {.policy = Policy::kRaw, .range_begin = 0, .range_end = 8});

  FileHeader h;
  h.format = 0;
  h.record_size = 8;
  h.dst_offset = 0;
  h.record_count = 2;
  h.payload_bytes = 16;
  h.range_begin = 0;
  h.range_end = 8;
  std::vector<std::byte> want = header_bytes(h);
  append_u32(want, 5);  // records verbatim, append order
  append_u32(want, 1);
  append_u32(want, 3);
  append_u32(want, 1);
  EXPECT_EQ(blob.bytes, want);
}

TEST(Codec, GoldenBitmapBytes) {
  const std::vector<Upd> updates = {{5, 7}, {3, 7}, {5, 7}};
  const EncodedBlob blob = encode_records<Upd>(
      updates, {.policy = Policy::kBitmap, .allow_bitmap = true,
                .range_begin = 0, .range_end = 8});
  ASSERT_EQ(blob.format, Format::kBitmap);

  FileHeader h;
  h.format = 1;
  h.record_size = 8;
  h.dst_offset = 0;
  h.record_count = 2;       // {3, 5} after collapsing
  h.payload_bytes = 4 + 8;  // payload template + one bitmap word
  h.range_begin = 0;
  h.range_end = 8;
  std::vector<std::byte> want = header_bytes(h);
  append_u32(want, 7);                       // the shared level payload
  append_u64(want, (1u << 3) | (1u << 5));  // bits 3 and 5
  EXPECT_EQ(blob.bytes, want);
}

TEST(Codec, GoldenVarintBytes) {
  const std::vector<Upd> updates = {{133, 1}, {3, 2}};
  const EncodedBlob blob = encode_records<Upd>(
      updates, {.policy = Policy::kVarint, .range_begin = 0,
                .range_end = 256});
  ASSERT_EQ(blob.format, Format::kVarint);

  FileHeader h;
  h.format = 2;
  h.record_size = 8;
  h.dst_offset = 0;
  h.record_count = 2;
  h.payload_bytes = 1 + 4 + 2 + 4;  // delta 3 (1 B), delta 130 (2 B)
  h.range_begin = 0;
  h.range_end = 256;
  std::vector<std::byte> want = header_bytes(h);
  want.push_back(std::byte{0x03});  // dst 3 = base 0 + 3
  append_u32(want, 2);
  want.push_back(std::byte{0x82});  // dst 133 = 3 + 130 = [0x82, 0x01]
  want.push_back(std::byte{0x01});
  append_u32(want, 1);
  EXPECT_EQ(blob.bytes, want);
}

TEST(Codec, ProbeReportsTheWrittenHeader) {
  TempDir dir("codec");
  Device dev = make_device(dir);
  const std::vector<Upd> updates = {{9, 1}, {4, 1}};
  CodecWriter<Upd> writer(dev, "upd", 1 << 10,
                          {.policy = Policy::kVarint, .range_begin = 0,
                           .range_end = 16});
  writer.append_batch(updates);
  writer.close();
  const FileHeader h = probe(dev, "upd");
  EXPECT_EQ(h.magic, kMagic);
  EXPECT_EQ(h.version, kVersion);
  EXPECT_EQ(static_cast<Format>(h.format), Format::kVarint);
  EXPECT_EQ(h.record_size, sizeof(Upd));
  EXPECT_EQ(h.record_count, 2u);
  EXPECT_EQ(h.range_end, 16u);
}

// ----------------------------------------------- corruption rejection

void write_bytes(Device& dev, const std::string& name,
                 std::span<const std::byte> bytes) {
  auto f = dev.open(name, /*truncate=*/true);
  StreamWriter out(*f, 1 << 12);
  out.append_raw(bytes.data(), bytes.size());
  out.flush();
}

std::vector<std::byte> valid_file_bytes() {
  const std::vector<Upd> updates = {{5, 1}, {3, 1}};
  return encode_records<Upd>(updates, {.policy = Policy::kRaw,
                                       .range_begin = 0, .range_end = 8})
      .bytes;
}

TEST(CodecDeath, TruncatedHeaderIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TempDir dir("codec");
  Device dev = make_device(dir);
  const std::vector<std::byte> bytes = valid_file_bytes();
  write_bytes(dev, "short", std::span(bytes).first(10));
  EXPECT_DEATH(open_reader<Upd>(dev, "short", {}), "not a codec file");
}

TEST(CodecDeath, ForeignMagicIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TempDir dir("codec");
  Device dev = make_device(dir);
  std::vector<std::byte> bytes = valid_file_bytes();
  bytes[0] = std::byte{0x00};
  write_bytes(dev, "magic", bytes);
  EXPECT_DEATH(open_reader<Upd>(dev, "magic", {}), "codec magic");
}

TEST(CodecDeath, FutureVersionIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TempDir dir("codec");
  Device dev = make_device(dir);
  std::vector<std::byte> bytes = valid_file_bytes();
  const std::uint16_t version = kVersion + 1;
  std::memcpy(bytes.data() + 4, &version, 2);
  write_bytes(dev, "vers", bytes);
  EXPECT_DEATH(open_reader<Upd>(dev, "vers", {}), "codec version");
}

TEST(CodecDeath, UnknownFormatIdIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TempDir dir("codec");
  Device dev = make_device(dir);
  std::vector<std::byte> bytes = valid_file_bytes();
  const std::uint16_t format = 7;
  std::memcpy(bytes.data() + 6, &format, 2);
  write_bytes(dev, "fmt", bytes);
  EXPECT_DEATH(open_reader<Upd>(dev, "fmt", {}), "unknown codec format");
}

TEST(CodecDeath, RecordSizeMismatchIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TempDir dir("codec");
  Device dev = make_device(dir);
  write_bytes(dev, "upd", valid_file_bytes());
  EXPECT_DEATH(open_reader<WideUpd>(dev, "upd", {}), "records of size");
}

TEST(CodecDeath, DstKeyedFormatOnDstlessTypeIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TempDir dir("codec");
  Device dev = make_device(dir);
  struct Dstless {
    std::uint32_t a;
    std::uint32_t b;
  };
  static_assert(sizeof(Dstless) == sizeof(Upd));
  CodecWriter<Upd> writer(dev, "upd", 1 << 10,
                          {.policy = Policy::kVarint, .range_begin = 0,
                           .range_end = 16});
  writer.append({4, 1});
  ASSERT_EQ(writer.close().format, Format::kVarint);
  EXPECT_DEATH(open_reader<Dstless>(dev, "upd", {}), "dst offset");
}

TEST(CodecDeath, TruncatedVarintPayloadIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TempDir dir("codec");
  Device dev = make_device(dir);
  const std::vector<Upd> updates = {{5, 1}, {3, 1}};
  const EncodedBlob blob = encode_records<Upd>(
      updates, {.policy = Policy::kVarint, .range_begin = 0, .range_end = 8});
  ASSERT_EQ(blob.format, Format::kVarint);
  write_bytes(dev, "trunc",
              std::span(blob.bytes).first(blob.bytes.size() - 3));
  EXPECT_DEATH(read_all<Upd>(dev, "trunc", {}, 2), "truncated");
}

TEST(CodecDeath, RawTailBytesAreFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TempDir dir("codec");
  Device dev = make_device(dir);
  std::vector<std::byte> bytes = valid_file_bytes();
  bytes.push_back(std::byte{0xab});  // half a record
  write_bytes(dev, "tail", bytes);
  EXPECT_DEATH(read_all<Upd>(dev, "tail", {}, 2), "mid-record");
}

TEST(CodecDeath, WrongExpectedCountIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TempDir dir("codec");
  Device dev = make_device(dir);
  write_bytes(dev, "upd", valid_file_bytes());
  EXPECT_DEATH(read_all<Upd>(dev, "upd", {}, 3), "expected 3");
}

TEST(Codec, ReadAllWithoutExpectedCountTakesTheWholeFile) {
  TempDir dir("codec");
  Device dev = make_device(dir);
  write_bytes(dev, "upd", valid_file_bytes());
  const std::vector<Upd> got = read_all<Upd>(dev, "upd", {});
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].dst, 5u);
  EXPECT_EQ(got[1].dst, 3u);
}

TEST(CodecDeath, NonZeroReadOffsetIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TempDir dir("codec");
  Device dev = make_device(dir);
  write_bytes(dev, "upd", valid_file_bytes());
  ReaderOptions opts;
  opts.offset = 8;
  EXPECT_DEATH(open_reader<Upd>(dev, "upd", opts), "offset");
}

}  // namespace
}  // namespace fbfs::io::codec
