// Device / DeviceModel / IoStats contracts (DESIGN invariant 5 rests on
// exact byte accounting; the ISSUE's throttle-model checklist lives
// here).
#include "storage/device.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "common/stopwatch.hpp"
#include "common/temp_dir.hpp"
#include "storage/stream.hpp"

namespace fbfs::io {
namespace {

DeviceModel quiet(DeviceModel model) {
  model.time_scale = 0.0;  // accounting only, no sleeping
  return model;
}

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((i * 131 + seed) & 0xff);
  }
  return out;
}

TEST(DeviceModel, FactoriesMatchTheDesignTable) {
  const DeviceModel hdd = DeviceModel::hdd();
  EXPECT_EQ(hdd.name, "hdd");
  EXPECT_DOUBLE_EQ(hdd.read_mb_s, 110.0);
  EXPECT_DOUBLE_EQ(hdd.write_mb_s, 105.0);
  EXPECT_EQ(hdd.seek_ns, 8'000'000u);
  EXPECT_TRUE(hdd.throttled());

  const DeviceModel ssd = DeviceModel::ssd();
  EXPECT_DOUBLE_EQ(ssd.read_mb_s, 250.0);
  EXPECT_DOUBLE_EQ(ssd.write_mb_s, 200.0);
  EXPECT_EQ(ssd.seek_ns, 60'000u);

  const DeviceModel open = DeviceModel::unthrottled();
  EXPECT_FALSE(open.throttled());
  EXPECT_EQ(open.read_service_ns(1 << 20, true), 0u);
}

TEST(DeviceModel, ServiceTimeIsMonotoneInBytesAndSeekAddsLatency) {
  const DeviceModel hdd = DeviceModel::hdd();
  std::uint64_t prev = 0;
  for (std::uint64_t bytes : {0ull, 1ull, 512ull, 4096ull, 1ull << 20,
                              16ull << 20}) {
    const std::uint64_t ns = hdd.read_service_ns(bytes, false);
    EXPECT_GE(ns, prev) << bytes;
    EXPECT_EQ(hdd.read_service_ns(bytes, true), ns + hdd.seek_ns);
    prev = ns;
  }
  // 1 MB at 110 MB/s ≈ 9.09 ms; writes are slower at 105 MB/s.
  EXPECT_NEAR(static_cast<double>(hdd.read_service_ns(1'000'000, false)),
              1e9 / 110.0, 1e4);
  EXPECT_GT(hdd.write_service_ns(1'000'000, false),
            hdd.read_service_ns(1'000'000, false));
}

TEST(Device, ByteCountersAreExactForAKnownSequence) {
  TempDir dir("dev");
  Device dev(dir.str() + "/disk", quiet(DeviceModel::hdd()));

  const auto data = pattern(10'000);
  {
    auto f = dev.open("edges", /*truncate=*/true);
    StreamWriter writer(*f, 1024);
    writer.append(data);
    writer.flush();
    EXPECT_EQ(writer.bytes_appended(), data.size());
  }
  EXPECT_EQ(dev.stats().bytes_written(), data.size());
  // The append dwarfs the 1024-byte buffer, so it bypasses staging and
  // hits the device as a single large write.
  EXPECT_EQ(dev.stats().write_ops(), 1u);
  EXPECT_EQ(dev.stats().bytes_read(), 0u);

  {
    auto f = dev.open("edges");
    StreamReader reader(*f, 4096);
    std::vector<std::byte> back(data.size());
    EXPECT_EQ(reader.read(back.data(), back.size()), back.size());
    EXPECT_EQ(back, data);
    // EOF probe transfers nothing and must not be accounted.
    std::byte extra;
    EXPECT_EQ(reader.read(&extra, 1), 0u);
  }
  EXPECT_EQ(dev.stats().bytes_read(), data.size());
  EXPECT_EQ(dev.stats().read_ops(), 3u);  // 4096 + 4096 + 1808
  EXPECT_EQ(dev.stats().bytes_written(), data.size());  // unchanged
}

TEST(Device, UnthrottledCountsTheSameBytesAsThrottled) {
  TempDir dir("dev");
  const auto data = pattern(50'000);
  for (const DeviceModel& model :
       {quiet(DeviceModel::hdd()), quiet(DeviceModel::ssd()),
        quiet(DeviceModel::unthrottled())}) {
    Device dev(dir.str() + "/" + model.name, model);
    auto f = dev.open("blob", true);
    f->append(data.data(), data.size());
    std::vector<std::byte> back(data.size());
    EXPECT_EQ(f->read_at(0, back.data(), back.size()), back.size());
    EXPECT_EQ(dev.stats().bytes_written(), data.size()) << model.name;
    EXPECT_EQ(dev.stats().bytes_read(), data.size()) << model.name;
  }
}

TEST(Device, SeeksAreChargedOnNonSequentialAccessOnly) {
  TempDir dir("dev");
  Device dev(dir.str(), quiet(DeviceModel::hdd()));
  auto f = dev.open("seeky", true);
  const auto chunk = pattern(1000);

  f->append(chunk.data(), chunk.size());  // first op on the device: seek
  EXPECT_EQ(dev.stats().seeks(), 1u);
  f->append(chunk.data(), chunk.size());  // sequential continuation
  f->append(chunk.data(), chunk.size());
  EXPECT_EQ(dev.stats().seeks(), 1u);

  std::vector<std::byte> buf(1000);
  f->read_at(0, buf.data(), buf.size());  // head jumps back: seek
  EXPECT_EQ(dev.stats().seeks(), 2u);
  f->read_at(1000, buf.data(), buf.size());  // continues the read
  EXPECT_EQ(dev.stats().seeks(), 2u);
  f->read_at(0, buf.data(), buf.size());  // jumps again
  EXPECT_EQ(dev.stats().seeks(), 3u);

  auto g = dev.open("other", true);
  g->append(chunk.data(), chunk.size());  // different file: seek
  EXPECT_EQ(dev.stats().seeks(), 4u);

  // model_busy_ns is deterministic at time_scale 0: busy wall time stays
  // zero while the modelled service time is exactly reproducible.
  EXPECT_EQ(dev.stats().busy_ns(), 0u);
  const DeviceModel& m = dev.model();
  const std::uint64_t expected =
      m.write_service_ns(1000, true) + 2 * m.write_service_ns(1000, false) +
      m.read_service_ns(1000, true) + m.read_service_ns(1000, false) +
      m.read_service_ns(1000, true) + m.write_service_ns(1000, true);
  EXPECT_EQ(dev.stats().model_busy_ns(), expected);
}

TEST(Device, TwoDevicesAccountIndependently) {
  TempDir dir("dev");
  Device a(dir.str() + "/a", quiet(DeviceModel::hdd()));
  Device b(dir.str() + "/b", quiet(DeviceModel::hdd()));

  const auto data = pattern(100'000);
  auto fa = a.open("x", true);
  fa->append(data.data(), data.size());

  EXPECT_GT(a.stats().model_busy_ns(), 0u);
  EXPECT_EQ(a.stats().bytes_written(), data.size());
  // Load on A leaves B untouched in every counter.
  EXPECT_EQ(b.stats().model_busy_ns(), 0u);
  EXPECT_EQ(b.stats().bytes_written(), 0u);
  EXPECT_EQ(b.stats().seeks(), 0u);

  // And B's busy time under its own load equals its solo service time,
  // independent of A's concurrent traffic.
  auto fb = b.open("y", true);
  std::thread load_a([&] {
    for (int i = 0; i < 20; ++i) fa->append(data.data(), data.size());
  });
  fb->append(data.data(), data.size());
  load_a.join();
  EXPECT_EQ(b.stats().model_busy_ns(),
            b.model().write_service_ns(data.size(), true));
}

TEST(Device, ThrottledWritesActuallyTakeModelledTime) {
  TempDir dir("dev");
  DeviceModel slow;
  slow.name = "slow";
  slow.write_mb_s = 10.0;  // 100 ms per MB
  slow.time_scale = 1.0;
  Device dev(dir.str(), slow);

  const auto data = pattern(1'000'000);
  auto f = dev.open("x", true);
  fbfs::Stopwatch sw;
  f->append(data.data(), data.size());
  // Modelled 100 ms; only assert a generous lower bound to stay robust
  // on loaded CI machines.
  EXPECT_GE(sw.seconds(), 0.08);
  EXPECT_NEAR(static_cast<double>(dev.stats().busy_ns()), 1e8, 2e7);
}

TEST(Device, TimeScaleEnvKnobIsPickedUpByFactories) {
  ::setenv("FASTBFS_TIME_SCALE", "0", 1);
  const DeviceModel hdd = DeviceModel::hdd();
  EXPECT_DOUBLE_EQ(hdd.time_scale, 0.0);

  ::setenv("FASTBFS_TIME_SCALE", "0.25", 1);
  EXPECT_DOUBLE_EQ(DeviceModel::ssd().time_scale, 0.25);

  ::setenv("FASTBFS_TIME_SCALE", "bogus", 1);
  EXPECT_DOUBLE_EQ(DeviceModel::hdd().time_scale, 1.0);

  ::unsetenv("FASTBFS_TIME_SCALE");
  EXPECT_DOUBLE_EQ(DeviceModel::hdd().time_scale, 1.0);

  // Scale 0 on a throttled model: exact accounting, no wall-clock cost.
  TempDir dir("dev");
  ::setenv("FASTBFS_TIME_SCALE", "0", 1);
  Device dev(dir.str(), DeviceModel::hdd());
  ::unsetenv("FASTBFS_TIME_SCALE");
  const auto data = pattern(4'000'000);
  auto f = dev.open("x", true);
  fbfs::Stopwatch sw;
  f->append(data.data(), data.size());
  EXPECT_LT(sw.seconds(), 1.0);  // modelled would be ~38 ms + seek, x1
  EXPECT_EQ(dev.stats().bytes_written(), data.size());
  EXPECT_EQ(dev.stats().busy_ns(), 0u);
  EXPECT_GT(dev.stats().model_busy_ns(), 0u);
}

TEST(Device, FileManagementHelpers) {
  TempDir dir("dev");
  Device dev(dir.str(), quiet(DeviceModel::unthrottled()));
  EXPECT_FALSE(dev.exists("a"));
  {
    auto f = dev.open("a", true);
    const auto data = pattern(123);
    f->append(data.data(), data.size());
    EXPECT_EQ(f->size(), 123u);
  }
  EXPECT_TRUE(dev.exists("a"));
  EXPECT_EQ(dev.file_size("a"), 123u);

  dev.rename("a", "b");
  EXPECT_FALSE(dev.exists("a"));
  EXPECT_TRUE(dev.exists("b"));

  { auto f = dev.open("c", true); }
  const auto files = dev.list_files();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], "b");
  EXPECT_EQ(files[1], "c");

  dev.remove("c");
  EXPECT_FALSE(dev.exists("c"));
  EXPECT_THROW(dev.open("missing"), IoError);
}

TEST(Device, InjectedWriteFaultsThrowAndDrain) {
  TempDir dir("dev");
  Device dev(dir.str(), quiet(DeviceModel::unthrottled()));
  auto f = dev.open("x", true);
  const auto data = pattern(100);

  dev.inject_write_faults(2);
  EXPECT_EQ(dev.pending_write_faults(), 2u);
  EXPECT_THROW(f->append(data.data(), data.size()), IoError);
  EXPECT_THROW(f->write_at(0, data.data(), data.size()), IoError);
  EXPECT_EQ(dev.pending_write_faults(), 0u);

  // Faults consumed: writes work again, and the failed ops counted no
  // bytes.
  EXPECT_EQ(dev.stats().bytes_written(), 0u);
  f->append(data.data(), data.size());
  EXPECT_EQ(dev.stats().bytes_written(), data.size());
  EXPECT_EQ(f->size(), data.size());

  // Reads are never faulted.
  dev.inject_write_faults(1);
  std::vector<std::byte> back(100);
  EXPECT_EQ(f->read_at(0, back.data(), back.size()), back.size());
  EXPECT_EQ(back, data);
  EXPECT_EQ(dev.pending_write_faults(), 1u);

  // inject_write_faults(0) clears pending faults.
  dev.inject_write_faults(0);
  EXPECT_EQ(dev.pending_write_faults(), 0u);
  f->append(data.data(), data.size());
  EXPECT_EQ(f->size(), 2 * data.size());
}

}  // namespace
}  // namespace fbfs::io
