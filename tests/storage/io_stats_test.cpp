// Concurrency contract of the per-device accounting: parallel scatter
// workers share one Device, so IoStats counters and the plan-level
// snapshot must stay EXACT — not merely tear-free — under concurrent
// recorders and readers. CI runs this under TSan.
#include "storage/io_stats.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/temp_dir.hpp"
#include "storage/device.hpp"
#include "storage/storage_plan.hpp"

namespace fbfs::io {
namespace {

TEST(IoStats, ConcurrentRecordersKeepExactTotals) {
  IoStats stats;
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kOps = 20'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&stats] {
      for (std::uint64_t i = 0; i < kOps; ++i) {
        stats.record_read(3);
        stats.record_write(5);
        stats.record_seek();
        stats.record_busy(7, 11);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  constexpr std::uint64_t kTotalOps = kThreads * kOps;
  EXPECT_EQ(stats.bytes_read(), 3 * kTotalOps);
  EXPECT_EQ(stats.bytes_written(), 5 * kTotalOps);
  EXPECT_EQ(stats.read_ops(), kTotalOps);
  EXPECT_EQ(stats.write_ops(), kTotalOps);
  EXPECT_EQ(stats.seeks(), kTotalOps);
  EXPECT_EQ(stats.busy_ns(), 7 * kTotalOps);
  EXPECT_EQ(stats.model_busy_ns(), 11 * kTotalOps);
}

TEST(IoStats, SnapshotDeltaIsExactPerField) {
  // delta(since) is what the metrics layer brackets every round with;
  // all seven counters must subtract exactly, busy time included.
  IoStats stats;
  stats.record_read(100);
  stats.record_write(200);
  stats.record_seek();
  stats.record_busy(7, 11);
  const IoStatsSnapshot before = stats.snapshot();
  stats.record_read(30);
  stats.record_write(40);
  stats.record_write(5);
  stats.record_seek();
  stats.record_seek();
  stats.record_busy(13, 17);
  const IoStatsSnapshot d = stats.snapshot().delta(before);
  EXPECT_EQ(d.bytes_read, 30u);
  EXPECT_EQ(d.bytes_written, 45u);
  EXPECT_EQ(d.read_ops, 1u);
  EXPECT_EQ(d.write_ops, 2u);
  EXPECT_EQ(d.seeks, 2u);
  EXPECT_EQ(d.busy_ns, 13u);
  EXPECT_EQ(d.model_busy_ns, 17u);
  // An empty interval deltas to all zeros.
  const IoStatsSnapshot now = stats.snapshot();
  const IoStatsSnapshot zero = now.delta(now);
  EXPECT_EQ(zero.bytes_read + zero.bytes_written + zero.read_ops +
                zero.write_ops + zero.seeks + zero.busy_ns +
                zero.model_busy_ns,
            0u);
}

TEST(IoStats, SnapshotsRaceRecordersWithoutCorruption) {
  // snapshot() is what StoragePlan::stats_snapshot and the engines'
  // per-round deltas call while workers are mid-flight; every observed
  // value must be a sum some prefix of the operations produced (here:
  // a multiple of the per-op increment, and monotone).
  IoStats stats;
  std::atomic<bool> stop{false};
  std::thread recorder([&] {
    while (!stop.load(std::memory_order_relaxed)) stats.record_read(4);
  });
  std::uint64_t last = 0;
  for (int i = 0; i < 50'000; ++i) {
    const IoStatsSnapshot s = stats.snapshot();
    EXPECT_EQ(s.bytes_read % 4, 0u);
    EXPECT_GE(s.bytes_read, last);
    last = s.bytes_read;
  }
  stop.store(true, std::memory_order_relaxed);
  recorder.join();
  EXPECT_EQ(stats.bytes_read(), 4 * stats.read_ops());
}

TEST(IoStats, ConcurrentChunkReadersAccountExactly) {
  // The parallel scatter's device-level shape: several workers issuing
  // positional reads of disjoint slices of one file on one Device. The
  // device counters must add up to exactly the bytes moved, one op per
  // read_at.
  TempDir dir("io_stats");
  Device dev(dir.str(), DeviceModel::unthrottled());
  constexpr unsigned kThreads = 4;
  constexpr std::size_t kChunk = 64 * 1024;
  {
    auto file = dev.open("blob", /*truncate=*/true);
    const std::vector<std::byte> chunk(kChunk, std::byte{0x5a});
    for (unsigned t = 0; t < kThreads; ++t) {
      file->append(chunk.data(), chunk.size());
    }
  }
  const IoStatsSnapshot before = dev.stats().snapshot();

  auto file = dev.open("blob", /*truncate=*/false);
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      std::vector<std::byte> buf(kChunk);
      EXPECT_EQ(file->read_at(t * kChunk, buf.data(), buf.size()), kChunk);
      for (const std::byte b : buf) ASSERT_EQ(b, std::byte{0x5a});
    });
  }
  for (std::thread& r : readers) r.join();

  const IoStatsSnapshot after = dev.stats().snapshot();
  EXPECT_EQ(after.bytes_read - before.bytes_read, kThreads * kChunk);
  EXPECT_EQ(after.read_ops - before.read_ops, kThreads);
}

TEST(IoStats, PlanSnapshotIsSafeUnderConcurrentTraffic) {
  // StoragePlan::stats_snapshot reads every role's counters while
  // engine workers keep the devices busy; under TSan this proves the
  // snapshot path is race-free, and the final snapshot is exact.
  TempDir dir("io_stats");
  Device main_dev(dir.str() + "/main", DeviceModel::unthrottled());
  Device aux_dev(dir.str() + "/aux", DeviceModel::unthrottled());
  const StoragePlan plan = StoragePlan::dual(main_dev, aux_dev);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    const std::vector<std::byte> buf(4096, std::byte{1});
    auto file = aux_dev.open("traffic", /*truncate=*/true);
    while (!stop.load(std::memory_order_relaxed)) {
      file->append(buf.data(), buf.size());
    }
  });
  for (int i = 0; i < 10'000; ++i) {
    const auto roles = plan.stats_snapshot();
    for (const IoStatsSnapshot& s : roles) {
      EXPECT_EQ(s.bytes_written % 4096, 0u);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  const auto roles = plan.stats_snapshot();
  EXPECT_EQ(roles[static_cast<std::size_t>(Role::kUpdates)].bytes_written,
            aux_dev.stats().bytes_written());
}

}  // namespace
}  // namespace fbfs::io
