// The IoBackend seam (ISSUE 10): the real backend must honor every
// Device contract the modelled backend defines — exact byte/op
// accounting, read_at short only at end of file, identical fault
// injection — across all of its own fallback ladder (O_DIRECT ->
// buffered, io_uring -> synchronous preads). The O_DIRECT-refused path
// is exercised for real on tmpfs (/dev/shm), which genuinely rejects
// direct opens.
#include "storage/device.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/temp_dir.hpp"
#include "storage/reader_factory.hpp"
#include "storage/storage_plan.hpp"

namespace fbfs::io {
namespace {

DeviceModel quiet(DeviceModel model) {
  model.time_scale = 0.0;
  return model;
}

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((i * 131 + seed) & 0xff);
  }
  return out;
}

/// Every backend configuration a Device can run in, including each
/// fallback rung of the real backend.
struct BackendCase {
  const char* tag;
  BackendOptions options;
};

const BackendCase kBackendCases[] = {
    {"modelled", {.kind = BackendKind::kModelled}},
    {"real", {.kind = BackendKind::kReal}},
    {"real-no-direct",
     {.kind = BackendKind::kReal, .direct_io = false}},
    {"real-no-uring",
     {.kind = BackendKind::kReal, .use_uring = false}},
    {"real-sync-buffered",
     {.kind = BackendKind::kReal, .direct_io = false, .use_uring = false}},
    {"real-qd1", {.kind = BackendKind::kReal, .queue_depth = 1}},
};

TEST(BackendKindTest, RoundTripsAndRejectsUnknownNames) {
  EXPECT_EQ(backend_kind_from_string(to_string(BackendKind::kModelled)),
            BackendKind::kModelled);
  EXPECT_EQ(backend_kind_from_string(to_string(BackendKind::kReal)),
            BackendKind::kReal);
  EXPECT_THROW(backend_kind_from_string("ramdisk"), IoError);
}

TEST(BackendOptionsTest, ConfigKeysAndPerRoleOverride) {
  const Config config = Config::parse_string(
      "storage.backend = modelled\n"
      "storage.backend.updates = real\n"
      "storage.queue_depth = 16\n"
      "storage.alignment = 512\n"
      "storage.direct_io = false\n");
  const BackendOptions base = backend_options_from_config(config);
  EXPECT_EQ(base.kind, BackendKind::kModelled);
  EXPECT_EQ(base.queue_depth, 16u);
  EXPECT_EQ(base.alignment, 512u);
  EXPECT_FALSE(base.direct_io);
  EXPECT_TRUE(base.use_uring);
  // The per-role override flips only the named role.
  EXPECT_EQ(backend_options_from_config(config, Role::kUpdates).kind,
            BackendKind::kReal);
  EXPECT_EQ(backend_options_from_config(config, Role::kEdges).kind,
            BackendKind::kModelled);
  // Defaults: modelled with the real-backend tuning at its documented
  // defaults.
  const BackendOptions defaults = backend_options_from_config({});
  EXPECT_EQ(defaults.kind, BackendKind::kModelled);
  EXPECT_EQ(defaults.queue_depth, 8u);
  EXPECT_EQ(defaults.alignment, 4096u);
}

TEST(RealBackendTest, RoundTripsWithExactByteAccounting) {
  TempDir dir("iobackend");
  Device dev(dir.str(), quiet(DeviceModel::hdd()),
             {.kind = BackendKind::kReal});
  EXPECT_EQ(dev.backend_kind(), BackendKind::kReal);
  EXPECT_NE(dev.backend_description().find("real("), std::string::npos)
      << dev.backend_description();

  const auto data = pattern(100'000);
  auto f = dev.open("blob", /*truncate=*/true);
  f->append(data.data(), data.size());
  EXPECT_EQ(f->size(), data.size());
  std::vector<std::byte> back(data.size());
  ASSERT_EQ(f->read_at(0, back.data(), back.size()), back.size());
  EXPECT_EQ(back, data);
  f->sync();

  EXPECT_EQ(dev.stats().bytes_written(), data.size());
  EXPECT_EQ(dev.stats().bytes_read(), data.size());
  EXPECT_EQ(dev.stats().write_ops(), 1u);
  EXPECT_EQ(dev.stats().read_ops(), 1u);
  // Measured wall time lands in busy_ns and the latency histograms;
  // the model's prediction still lands in model_busy_ns, so a real run
  // is its own measured-vs-modelled comparison.
  EXPECT_GT(dev.stats().busy_ns(), 0u);
  EXPECT_GT(dev.stats().model_busy_ns(), 0u);
  EXPECT_EQ(dev.read_latency().count(), 1u);
  EXPECT_EQ(dev.write_latency().count(), 1u);
}

// ISSUE 10 satellite: read_at must loop partial reads to the full
// requested span — short results only ever mean end of file. O_DIRECT
// makes this interesting: a direct read stops at the last aligned
// boundary and the unaligned tail must be completed via the buffered
// fd.
TEST(RealBackendTest, ReadAtIsShortOnlyAtEndOfFile) {
  // 2 aligned blocks plus a 1808-byte tail: every boundary case in one
  // file.
  const auto data = pattern(2 * 4096 + 1808, /*seed=*/3);
  for (const BackendCase& bc : kBackendCases) {
    SCOPED_TRACE(bc.tag);
    TempDir dir("iobackend");
    Device dev(dir.str(), quiet(DeviceModel::unthrottled()), bc.options);
    auto f = dev.open("tail", true);
    f->append(data.data(), data.size());

    std::vector<std::byte> back(data.size() + 4096);
    // Full span, unaligned total length.
    ASSERT_EQ(f->read_at(0, back.data(), data.size()), data.size());
    EXPECT_EQ(std::memcmp(back.data(), data.data(), data.size()), 0);
    // Unaligned offset into the tail block.
    ASSERT_EQ(f->read_at(5000, back.data(), 2000), 2000u);
    EXPECT_EQ(std::memcmp(back.data(), data.data() + 5000, 2000), 0);
    // Span crossing end of file: exactly the remaining bytes.
    ASSERT_EQ(f->read_at(4096, back.data(), back.size()),
              data.size() - 4096);
    EXPECT_EQ(std::memcmp(back.data(), data.data() + 4096,
                          data.size() - 4096),
              0);
    // Wholly past end of file: zero, and never charged.
    const std::uint64_t read_ops = dev.stats().read_ops();
    EXPECT_EQ(f->read_at(data.size() + 10, back.data(), 100), 0u);
    EXPECT_EQ(dev.stats().read_ops(), read_ops);
    // Last byte alone.
    ASSERT_EQ(f->read_at(data.size() - 1, back.data(), 100), 1u);
    EXPECT_EQ(back[0], data.back());
  }
}

TEST(RealBackendTest, ReadBatchMatchesIndividualReads) {
  const auto data = pattern(256 * 1024 + 777, /*seed=*/9);
  for (const BackendCase& bc : kBackendCases) {
    SCOPED_TRACE(bc.tag);
    TempDir dir("iobackend");
    Device dev(dir.str(), quiet(DeviceModel::unthrottled()), bc.options);
    auto f = dev.open("batched", true);
    f->append(data.data(), data.size());

    // Aligned, unaligned, EOF-crossing, and past-EOF requests in one
    // submission.
    std::vector<std::vector<std::byte>> dst;
    dst.emplace_back(64 * 1024);
    dst.emplace_back(10'000);
    dst.emplace_back(8192);
    dst.emplace_back(4096);
    std::vector<ReadRequest> reqs = {
        {f.get(), 0, dst[0].data(), dst[0].size(), 0},
        {f.get(), 123'457, dst[1].data(), dst[1].size(), 0},
        {f.get(), data.size() - 1000, dst[2].data(), dst[2].size(), 0},
        {f.get(), data.size() + 4096, dst[3].data(), dst[3].size(), 0},
    };
    dev.read_batch(reqs);
    EXPECT_EQ(reqs[0].got, dst[0].size());
    EXPECT_EQ(std::memcmp(dst[0].data(), data.data(), reqs[0].got), 0);
    EXPECT_EQ(reqs[1].got, dst[1].size());
    EXPECT_EQ(std::memcmp(dst[1].data(), data.data() + 123'457, reqs[1].got),
              0);
    EXPECT_EQ(reqs[2].got, 1000u);
    EXPECT_EQ(std::memcmp(dst[2].data(), data.data() + data.size() - 1000,
                          1000),
              0);
    EXPECT_EQ(reqs[3].got, 0u);

    // Bytes accounted match exactly the bytes delivered.
    EXPECT_EQ(dev.stats().bytes_read(),
              reqs[0].got + reqs[1].got + reqs[2].got);

    // An empty batch is a no-op.
    std::vector<ReadRequest> none;
    dev.read_batch(none);
  }
}

TEST(RealBackendTest, DirectRefusedFallsBackToBuffered) {
  namespace fs = std::filesystem;
  const fs::path shm = "/dev/shm";
  if (!fs::exists(shm)) GTEST_SKIP() << "/dev/shm not available";
  const fs::path root =
      shm / ("fbfs_iobackend_" + std::to_string(::getpid()));
  struct Cleanup {
    fs::path p;
    ~Cleanup() {
      std::error_code ec;
      fs::remove_all(p, ec);
    }
  } cleanup{root};

  Device dev(root.string(), quiet(DeviceModel::unthrottled()),
             {.kind = BackendKind::kReal});
  if (dev.backend_description().find("buffered") == std::string::npos) {
    GTEST_SKIP() << "filesystem unexpectedly accepts O_DIRECT: "
                 << dev.backend_description();
  }
  // The buffered fallback still satisfies every read/write contract.
  const auto data = pattern(50'000, /*seed=*/5);
  auto f = dev.open("shm_blob", true);
  f->append(data.data(), data.size());
  std::vector<std::byte> back(data.size());
  ASSERT_EQ(f->read_at(0, back.data(), back.size()), back.size());
  EXPECT_EQ(back, data);
  EXPECT_EQ(dev.stats().bytes_read(), data.size());
  EXPECT_EQ(dev.stats().bytes_written(), data.size());
}

// Fault consumption lives in File, above the backend seam, so injected
// write faults behave identically whichever backend is underneath.
TEST(RealBackendTest, InjectedWriteFaultsBehaveLikeModelled) {
  const auto data = pattern(100);
  for (const BackendCase& bc : kBackendCases) {
    SCOPED_TRACE(bc.tag);
    TempDir dir("iobackend");
    Device dev(dir.str(), quiet(DeviceModel::unthrottled()), bc.options);
    auto f = dev.open("faulty", true);

    dev.inject_write_faults(2);
    EXPECT_THROW(f->append(data.data(), data.size()), IoError);
    EXPECT_THROW(f->write_at(0, data.data(), data.size()), IoError);
    EXPECT_EQ(dev.pending_write_faults(), 0u);
    EXPECT_EQ(dev.stats().bytes_written(), 0u);
    EXPECT_EQ(f->size(), 0u);

    f->append(data.data(), data.size());
    EXPECT_EQ(dev.stats().bytes_written(), data.size());
    EXPECT_EQ(f->size(), data.size());
  }
}

TEST(RealBackendTest, PrefetchRingDepthFollowsTheDeviceQueueDepth) {
  TempDir dir("iobackend");
  Device real(dir.str() + "/real", quiet(DeviceModel::unthrottled()),
              {.kind = BackendKind::kReal, .queue_depth = 4});
  Device modelled(dir.str() + "/model", quiet(DeviceModel::unthrottled()));

  ReaderOptions opts = ReaderOptions::prefetch(8 * 1024);
  EXPECT_EQ(opts.prefetch_depth, 2u);
  opts.match_device(real);
  EXPECT_EQ(opts.prefetch_depth, 4u);
  ReaderOptions unchanged = ReaderOptions::prefetch(8 * 1024);
  unchanged.match_device(modelled);
  EXPECT_EQ(unchanged.prefetch_depth, 2u);

  // An N-deep ring over the real backend streams the file intact.
  const auto data = pattern(100'000, /*seed=*/7);
  {
    auto f = real.open("stream", true);
    f->append(data.data(), data.size());
  }
  auto reader = open_stream_reader(real, "stream", opts);
  std::vector<std::byte> back(data.size());
  ASSERT_EQ(reader->read(back.data(), back.size()), back.size());
  EXPECT_EQ(back, data);
  std::byte probe;
  EXPECT_EQ(reader->read(&probe, 1), 0u);
}

}  // namespace
}  // namespace fbfs::io
