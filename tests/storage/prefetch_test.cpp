// PrefetchReader must be indistinguishable from StreamReader to its
// consumer: same bytes, same short-read-at-EOF behaviour, same
// position() — across buffer sizes, start offsets, slot counts, and
// device models. The randomized sweeps here are the contract.
#include "storage/prefetch.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/temp_dir.hpp"
#include "storage/stream.hpp"

namespace fbfs::io {
namespace {

struct EdgeRec {
  std::uint32_t src;
  std::uint32_t dst;
  bool operator==(const EdgeRec&) const = default;
};

DeviceModel quiet(DeviceModel model) {
  model.time_scale = 0.0;  // accounting only, no sleeping
  return model;
}

std::vector<std::byte> random_payload(std::size_t n, std::uint64_t seed) {
  fbfs::Rng rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next_below(256));
  return out;
}

TEST(Prefetch, MatchesStreamReaderAcrossBuffersOffsetsAndModels) {
  const auto payload = random_payload(50'021, 1);  // prime, never aligned

  const std::vector<DeviceModel> models = {
      DeviceModel::unthrottled(), quiet(DeviceModel::hdd()),
      quiet(DeviceModel::ssd())};
  for (const DeviceModel& model : models) {
    TempDir dir("prefetch");
    Device dev(dir.str(), model);
    auto f = dev.open("blob", true);
    f->append(payload.data(), payload.size());

    fbfs::Rng rng(7);
    for (const std::size_t buf : {1ul, 7ul, 4096ul, 1ul << 16}) {
      for (const std::size_t num_buffers : {2ul, 3ul}) {
        for (const std::uint64_t offset :
             {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{4096},
              payload.size() - 3, std::uint64_t{payload.size()}}) {
          StreamReader plain(*f, buf, offset);
          PrefetchReader ahead(*f, buf, offset, num_buffers);
          EXPECT_EQ(ahead.position(), offset);

          // Drain both with the same ragged request sizes; they must
          // agree byte for byte, request for request.
          std::vector<std::byte> a(8192), b(8192);
          for (;;) {
            const std::size_t want = 1 + rng.next_below(a.size());
            const std::size_t got_plain = plain.read(a.data(), want);
            const std::size_t got_ahead = ahead.read(b.data(), want);
            ASSERT_EQ(got_ahead, got_plain)
                << model.name << " buf=" << buf << " slots=" << num_buffers
                << " offset=" << offset;
            ASSERT_EQ(ahead.position(), plain.position());
            ASSERT_EQ(std::memcmp(a.data(), b.data(), got_plain), 0);
            if (got_plain == 0) break;
          }
          EXPECT_EQ(ahead.position(), payload.size());
        }
      }
    }
  }
}

TEST(Prefetch, ChargesExactlyTheFileBytesOnAFullScan) {
  TempDir dir("prefetch");
  Device dev(dir.str(), DeviceModel::unthrottled());
  const auto payload = random_payload(10'000, 2);
  auto f = dev.open("blob", true);
  f->append(payload.data(), payload.size());
  const std::uint64_t written = dev.stats().bytes_read();
  EXPECT_EQ(written, 0u);

  {
    PrefetchReader reader(*f, 1024);
    std::vector<std::byte> back(payload.size());
    std::size_t got = 0;
    while (got < back.size()) {
      got += reader.read(back.data() + got, 3000);
    }
    EXPECT_EQ(reader.read(back.data(), 1), 0u);
    EXPECT_EQ(back, payload);
  }
  // Read-ahead never re-reads and EOF probes transfer nothing, so the
  // device sees exactly the file once.
  EXPECT_EQ(dev.stats().bytes_read(), payload.size());
}

TEST(Prefetch, ReadAheadIsBoundedBySlotCount) {
  TempDir dir("prefetch");
  Device dev(dir.str(), DeviceModel::unthrottled());
  const auto payload = random_payload(1 << 16, 3);
  auto f = dev.open("blob", true);
  f->append(payload.data(), payload.size());

  PrefetchReader reader(*f, 1024, 0, 2);
  std::byte tiny[100];
  ASSERT_EQ(reader.read(tiny, sizeof(tiny)), sizeof(tiny));
  // The fetcher may hold every slot full, no more: with the first slot
  // still partially consumed it can stage at most num_buffers buffers.
  // Spin briefly to let it catch up to that bound, then check it.
  for (int i = 0; i < 1000 && dev.stats().bytes_read() < 2048; ++i) {
    std::this_thread::yield();
  }
  EXPECT_LE(dev.stats().bytes_read(), 2u * 1024u);
}

TEST(Prefetch, DestructorStopsAPartiallyDrainedReader) {
  TempDir dir("prefetch");
  Device dev(dir.str(), DeviceModel::unthrottled());
  const auto payload = random_payload(1 << 20, 4);
  auto f = dev.open("blob", true);
  f->append(payload.data(), payload.size());

  for (int i = 0; i < 50; ++i) {
    PrefetchReader reader(*f, 4096, 0, 3);
    std::byte buf[256];
    if (i % 2 == 0) {
      ASSERT_EQ(reader.read(buf, sizeof(buf)), sizeof(buf));
    }
    // Destructor races the fetcher in every iteration; TSan guards it.
  }
}

TEST(PrefetchRecord, MatchesRecordReaderOnTypedStreams) {
  TempDir dir("prefetch");
  Device dev(dir.str(), quiet(DeviceModel::hdd()));
  fbfs::Rng rng(5);
  std::vector<EdgeRec> edges(10'000);
  for (std::uint32_t i = 0; i < edges.size(); ++i) {
    edges[i] = {i, static_cast<std::uint32_t>(rng.next_below(1 << 20))};
  }
  auto f = dev.open("edges", true);
  RecordWriter<EdgeRec> writer(*f, 1 << 12);
  writer.append_batch(edges);
  writer.flush();

  for (const std::size_t buf : {sizeof(EdgeRec), 1000ul, 1ul << 16}) {
    for (const std::uint64_t offset :
         {std::uint64_t{0}, 9'000 * sizeof(EdgeRec)}) {
      RecordReader<EdgeRec> plain(*f, buf, offset);
      PrefetchRecordReader<EdgeRec> ahead(*f, buf, offset);
      EdgeRec a, b;
      // Alternate single records and batches on the prefetch side; the
      // union must still be the plain reader's stream.
      std::vector<EdgeRec> expect, got;
      while (plain.next(a)) expect.push_back(a);
      for (;;) {
        bool advanced = false;
        for (int i = 0; i < 3 && ahead.next(b); ++i) {
          got.push_back(b);
          advanced = true;
        }
        const auto batch = ahead.next_batch();
        got.insert(got.end(), batch.begin(), batch.end());
        if (!advanced && batch.empty()) break;
      }
      ASSERT_EQ(got, expect) << "buf=" << buf << " offset=" << offset;
    }
  }
}

TEST(PrefetchRecordDeath, TruncatedTrailingRecordIsAnError) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TempDir dir("prefetch");
  Device dev(dir.str(), DeviceModel::unthrottled());
  auto f = dev.open("broken", true);
  std::vector<EdgeRec> edges = {{1, 2}, {3, 4}};
  f->append(edges.data(), edges.size() * sizeof(EdgeRec));
  const std::byte junk[3] = {};
  f->append(junk, sizeof(junk));  // stray tail: 3 bytes of a third record
  EXPECT_DEATH(
      {
        PrefetchRecordReader<EdgeRec> reader(*f, 1024);
        EdgeRec rec;
        while (reader.next(rec)) {
        }
      },
      "ends mid-record");
}

}  // namespace
}  // namespace fbfs::io
