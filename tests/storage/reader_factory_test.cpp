// ReaderFactory: the type-erased handles must deliver exactly what the
// concrete readers deliver, for both modes, byte- and record-level,
// owning and borrowing, from any record-aligned offset.
#include "storage/reader_factory.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "common/temp_dir.hpp"

namespace fbfs::io {
namespace {

struct Rec {
  std::uint64_t a;
  std::uint64_t b;
};

std::vector<Rec> write_fixture(Device& dev, const std::string& name,
                               std::size_t count) {
  std::vector<Rec> recs(count);
  for (std::size_t i = 0; i < count; ++i) {
    recs[i] = {i, i * i + 1};
  }
  auto file = dev.open(name, /*truncate=*/true);
  RecordWriter<Rec> writer(*file, 1 << 12);
  writer.append_batch(recs);
  writer.flush();
  return recs;
}

TEST(ReaderFactory, ModeNamesRoundTrip) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_EQ(parse_reader_mode("plain"), ReaderMode::kPlain);
  EXPECT_EQ(parse_reader_mode("prefetch"), ReaderMode::kPrefetch);
  EXPECT_STREQ(to_string(ReaderMode::kPlain), "plain");
  EXPECT_STREQ(to_string(ReaderMode::kPrefetch), "prefetch");
  EXPECT_DEATH(parse_reader_mode("mmap"), "valid values: plain, prefetch");
}

TEST(ReaderFactory, OptionsFromConfig) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Config cfg = Config::parse_string(
      "io.reader = prefetch\n"
      "io.reader_buffer = 64K\n");
  const ReaderOptions opts = reader_options_from_config(cfg);
  EXPECT_EQ(opts.mode, ReaderMode::kPrefetch);
  EXPECT_EQ(opts.buffer_bytes, 64u * 1024);

  const ReaderOptions defaults = reader_options_from_config(Config());
  EXPECT_EQ(defaults.mode, ReaderMode::kPlain);
  EXPECT_EQ(defaults.buffer_bytes, 1u << 20);

  EXPECT_DEATH(
      reader_options_from_config(Config::parse_string("io.reader = turbo\n")),
      "valid values: plain, prefetch");
}

TEST(ReaderFactory, BothModesDeliverIdenticalRecords) {
  TempDir dir("reader_factory");
  Device dev(dir.str(), DeviceModel::unthrottled());
  const std::vector<Rec> recs = write_fixture(dev, "recs", 10'000);

  for (const ReaderMode mode : {ReaderMode::kPlain, ReaderMode::kPrefetch}) {
    // Buffer deliberately not a multiple of the record size's natural
    // batch: exercises refills mid-stream.
    auto reader =
        open_record_reader<Rec>(dev, "recs", {mode, 3000 * sizeof(Rec), 0});
    std::vector<Rec> got;
    for (auto batch = reader->next_batch(); !batch.empty();
         batch = reader->next_batch()) {
      got.insert(got.end(), batch.begin(), batch.end());
    }
    ASSERT_EQ(got.size(), recs.size()) << to_string(mode);
    ASSERT_EQ(std::memcmp(got.data(), recs.data(), recs.size() * sizeof(Rec)),
              0)
        << to_string(mode);
  }
}

TEST(ReaderFactory, NextAndOffsetAgreeAcrossModes) {
  TempDir dir("reader_factory");
  Device dev(dir.str(), DeviceModel::unthrottled());
  const std::vector<Rec> recs = write_fixture(dev, "recs", 257);

  for (const ReaderMode mode : {ReaderMode::kPlain, ReaderMode::kPrefetch}) {
    // Start mid-file, record-aligned.
    const std::uint64_t skip = 100;
    auto reader = open_record_reader<Rec>(dev, "recs",
                                          {mode, 1 << 10, skip * sizeof(Rec)});
    Rec r;
    std::size_t i = skip;
    while (reader->next(r)) {
      ASSERT_EQ(r.a, recs[i].a);
      ASSERT_EQ(r.b, recs[i].b);
      ++i;
    }
    EXPECT_EQ(i, recs.size()) << to_string(mode);
  }
}

TEST(ReaderFactory, ByteSourceMatchesFileContents) {
  TempDir dir("reader_factory");
  Device dev(dir.str(), DeviceModel::unthrottled());
  std::vector<std::byte> payload(10'000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i * 31);
  }
  auto file = dev.open("bytes", /*truncate=*/true);
  file->append(payload.data(), payload.size());

  for (const ReaderMode mode : {ReaderMode::kPlain, ReaderMode::kPrefetch}) {
    auto reader = open_stream_reader(dev, "bytes", {mode, 777, 0});
    std::vector<std::byte> got(payload.size());
    std::size_t total = 0;
    while (total < got.size()) {
      const std::size_t n = reader->read(got.data() + total, 1000);
      if (n == 0) break;
      total += n;
      EXPECT_EQ(reader->position(), total);
    }
    ASSERT_EQ(total, payload.size()) << to_string(mode);
    ASSERT_EQ(std::memcmp(got.data(), payload.data(), payload.size()), 0);
  }
}

TEST(ReaderFactory, BorrowingHandlesShareOneOpenFile) {
  TempDir dir("reader_factory");
  Device dev(dir.str(), DeviceModel::unthrottled());
  const std::vector<Rec> recs = write_fixture(dev, "recs", 1'000);

  auto file = dev.open("recs");
  auto plain = open_record_reader<Rec>(*file, ReaderOptions::plain(1 << 10));
  auto ahead =
      open_record_reader<Rec>(*file, ReaderOptions::prefetch(1 << 10));
  Rec a, b;
  std::size_t count = 0;
  while (plain->next(a)) {
    ASSERT_TRUE(ahead->next(b));
    ASSERT_EQ(a.a, b.a);
    ASSERT_EQ(a.b, b.b);
    ++count;
  }
  EXPECT_FALSE(ahead->next(b));
  EXPECT_EQ(count, recs.size());
}

}  // namespace
}  // namespace fbfs::io
