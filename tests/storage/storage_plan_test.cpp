// StoragePlan: role -> device mapping for the paper's disk placements.
#include "storage/storage_plan.hpp"

#include <gtest/gtest.h>

#include "common/temp_dir.hpp"

namespace fbfs::io {
namespace {

TEST(StoragePlan, SinglePutsEveryRoleOnOneDevice) {
  TempDir dir("plan");
  Device dev(dir.str(), DeviceModel::unthrottled());
  const StoragePlan plan = StoragePlan::single(dev);
  EXPECT_EQ(&plan.edges(), &dev);
  EXPECT_EQ(&plan.state(), &dev);
  EXPECT_EQ(&plan.updates(), &dev);
  EXPECT_EQ(&plan.stay(), &dev);
  for (std::size_t r = 0; r < kNumRoles; ++r) {
    EXPECT_FALSE(plan.dedicated(static_cast<Role>(r)));
  }
}

TEST(StoragePlan, DualSplitsReadAndWriteStreams) {
  TempDir dir("plan");
  Device main(dir.str() + "/main", DeviceModel::unthrottled());
  Device aux(dir.str() + "/aux", DeviceModel::unthrottled());
  const StoragePlan plan = StoragePlan::dual(main, aux);
  EXPECT_EQ(&plan.edges(), &main);
  EXPECT_EQ(&plan.state(), &main);
  EXPECT_EQ(&plan.updates(), &aux);
  EXPECT_EQ(&plan.stay(), &aux);
  // Shared within each disk, but no role shares across the split.
  EXPECT_FALSE(plan.dedicated(Role::kEdges));
  EXPECT_FALSE(plan.dedicated(Role::kUpdates));
}

TEST(StoragePlan, AssignRepointsOneRole) {
  TempDir dir("plan");
  Device main(dir.str() + "/main", DeviceModel::unthrottled());
  Device ssd(dir.str() + "/ssd", DeviceModel::unthrottled());
  StoragePlan plan = StoragePlan::single(main);
  plan.assign(Role::kState, ssd);
  EXPECT_EQ(&plan.state(), &ssd);
  EXPECT_EQ(&plan.edges(), &main);
  EXPECT_TRUE(plan.dedicated(Role::kState));
  EXPECT_FALSE(plan.dedicated(Role::kUpdates));
}

TEST(StoragePlan, StatsSnapshotAttributesTrafficPerRole) {
  // Two snapshots bracket a phase; the deltas are the phase's traffic,
  // exact for dedicated roles.
  TempDir dir("plan");
  Device main(dir.str() + "/main", DeviceModel::unthrottled());
  Device aux(dir.str() + "/aux", DeviceModel::unthrottled());
  StoragePlan plan = StoragePlan::dual(main, aux);
  plan.assign(Role::kStay, aux);

  const auto before = plan.stats_snapshot();
  const char payload[64] = {};
  plan.stay().open("stay0", /*truncate=*/true)->append(payload, sizeof(payload));
  auto file = plan.edges().open("edges0", /*truncate=*/true);
  file->append(payload, sizeof(payload));
  char buf[64];
  file->read_at(0, buf, sizeof(buf));
  const auto after = plan.stats_snapshot();

  const auto delta = [&](Role role, auto member) {
    const std::size_t r = static_cast<std::size_t>(role);
    return after[r].*member - before[r].*member;
  };
  // edges and state share `main`: both see the edge write + read.
  EXPECT_EQ(delta(Role::kEdges, &IoStatsSnapshot::bytes_written), 64u);
  EXPECT_EQ(delta(Role::kEdges, &IoStatsSnapshot::bytes_read), 64u);
  EXPECT_EQ(delta(Role::kState, &IoStatsSnapshot::bytes_written), 64u);
  // updates and stay share `aux`: both see the stay write, no reads.
  EXPECT_EQ(delta(Role::kStay, &IoStatsSnapshot::bytes_written), 64u);
  EXPECT_EQ(delta(Role::kUpdates, &IoStatsSnapshot::bytes_written), 64u);
  EXPECT_EQ(delta(Role::kStay, &IoStatsSnapshot::bytes_read), 0u);
}

TEST(StoragePlan, RoleNames) {
  EXPECT_STREQ(to_string(Role::kEdges), "edges");
  EXPECT_STREQ(to_string(Role::kState), "state");
  EXPECT_STREQ(to_string(Role::kUpdates), "updates");
  EXPECT_STREQ(to_string(Role::kStay), "stay");
}

}  // namespace
}  // namespace fbfs::io
