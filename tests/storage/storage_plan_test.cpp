// StoragePlan: role -> device mapping for the paper's disk placements.
#include "storage/storage_plan.hpp"

#include <gtest/gtest.h>

#include "common/temp_dir.hpp"

namespace fbfs::io {
namespace {

TEST(StoragePlan, SinglePutsEveryRoleOnOneDevice) {
  TempDir dir("plan");
  Device dev(dir.str(), DeviceModel::unthrottled());
  const StoragePlan plan = StoragePlan::single(dev);
  EXPECT_EQ(&plan.edges(), &dev);
  EXPECT_EQ(&plan.state(), &dev);
  EXPECT_EQ(&plan.updates(), &dev);
  EXPECT_EQ(&plan.stay(), &dev);
  for (std::size_t r = 0; r < kNumRoles; ++r) {
    EXPECT_FALSE(plan.dedicated(static_cast<Role>(r)));
  }
}

TEST(StoragePlan, DualSplitsReadAndWriteStreams) {
  TempDir dir("plan");
  Device main(dir.str() + "/main", DeviceModel::unthrottled());
  Device aux(dir.str() + "/aux", DeviceModel::unthrottled());
  const StoragePlan plan = StoragePlan::dual(main, aux);
  EXPECT_EQ(&plan.edges(), &main);
  EXPECT_EQ(&plan.state(), &main);
  EXPECT_EQ(&plan.updates(), &aux);
  EXPECT_EQ(&plan.stay(), &aux);
  // Shared within each disk, but no role shares across the split.
  EXPECT_FALSE(plan.dedicated(Role::kEdges));
  EXPECT_FALSE(plan.dedicated(Role::kUpdates));
}

TEST(StoragePlan, AssignRepointsOneRole) {
  TempDir dir("plan");
  Device main(dir.str() + "/main", DeviceModel::unthrottled());
  Device ssd(dir.str() + "/ssd", DeviceModel::unthrottled());
  StoragePlan plan = StoragePlan::single(main);
  plan.assign(Role::kState, ssd);
  EXPECT_EQ(&plan.state(), &ssd);
  EXPECT_EQ(&plan.edges(), &main);
  EXPECT_TRUE(plan.dedicated(Role::kState));
  EXPECT_FALSE(plan.dedicated(Role::kUpdates));
}

TEST(StoragePlan, RoleNames) {
  EXPECT_STREQ(to_string(Role::kEdges), "edges");
  EXPECT_STREQ(to_string(Role::kState), "state");
  EXPECT_STREQ(to_string(Role::kUpdates), "updates");
  EXPECT_STREQ(to_string(Role::kStay), "stay");
}

}  // namespace
}  // namespace fbfs::io
