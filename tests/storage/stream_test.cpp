// Stream and record-stream roundtrips across block boundaries and
// buffer sizes (the storage half of DESIGN invariant 7's "any edge
// sequence, across block boundaries and reader buffer sizes").
#include "storage/stream.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "common/temp_dir.hpp"

namespace fbfs::io {
namespace {

struct EdgeRec {
  std::uint32_t src;
  std::uint32_t dst;
  bool operator==(const EdgeRec&) const = default;
};

Device make_device(const TempDir& dir) {
  return Device(dir.str(), DeviceModel::unthrottled());
}

TEST(Stream, RawBytesRoundTripAcrossMismatchedBuffers) {
  TempDir dir("stream");
  Device dev = make_device(dir);
  fbfs::Rng rng(1);

  std::vector<std::byte> payload(100'003);  // prime-ish, never aligned
  for (auto& b : payload) {
    b = static_cast<std::byte>(rng.next_below(256));
  }

  for (const std::size_t write_buf : {1ul, 7ul, 4096ul, 1ul << 17}) {
    for (const std::size_t read_buf : {3ul, 1024ul, 1ul << 17}) {
      auto f = dev.open("blob", true);
      StreamWriter writer(*f, write_buf);
      // Append in ragged chunks to cross every buffer boundary.
      std::size_t off = 0;
      while (off < payload.size()) {
        const std::size_t n =
            std::min<std::size_t>(1 + rng.next_below(9973),
                                  payload.size() - off);
        writer.append_raw(payload.data() + off, n);
        off += n;
      }
      writer.flush();
      ASSERT_EQ(f->size(), payload.size());

      StreamReader reader(*f, read_buf);
      std::vector<std::byte> back(payload.size());
      std::size_t got = 0;
      while (got < back.size()) {
        const std::size_t n = reader.read(
            back.data() + got,
            std::min<std::size_t>(1 + rng.next_below(8191),
                                  back.size() - got));
        ASSERT_GT(n, 0u);
        got += n;
      }
      ASSERT_EQ(back, payload)
          << "write_buf=" << write_buf << " read_buf=" << read_buf;
    }
  }
}

TEST(Stream, LargeAppendsBypassTheStagingBuffer) {
  TempDir dir("stream");
  Device dev = make_device(dir);
  auto f = dev.open("blob", true);
  StreamWriter writer(*f, 1024);

  const auto payload = [] {
    fbfs::Rng rng(3);
    std::vector<std::byte> out(100 + 5000 + 500);
    for (auto& b : out) b = static_cast<std::byte>(rng.next_below(256));
    return out;
  }();

  writer.append_raw(payload.data(), 100);  // staged, no device op yet
  EXPECT_EQ(dev.stats().write_ops(), 0u);
  // One buffer-sized-or-larger write: staged prefix flushes, then the
  // payload goes to the device whole — two ops, not ceil(5100/1024).
  writer.append_raw(payload.data() + 100, 5000);
  EXPECT_EQ(dev.stats().write_ops(), 2u);
  EXPECT_EQ(dev.stats().bytes_written(), 5100u);
  writer.append_raw(payload.data() + 5100, 500);  // staged again
  EXPECT_EQ(dev.stats().write_ops(), 2u);
  EXPECT_EQ(writer.bytes_appended(), payload.size());
  writer.flush();
  EXPECT_EQ(dev.stats().write_ops(), 3u);
  EXPECT_EQ(dev.stats().bytes_written(), payload.size());

  // The byte stream itself is unchanged by the bypass.
  StreamReader reader(*f, 4096);
  std::vector<std::byte> back(payload.size());
  ASSERT_EQ(reader.read(back.data(), back.size()), back.size());
  EXPECT_EQ(back, payload);
}

TEST(Stream, ReaderPositionTracksDeliveredBytes) {
  TempDir dir("stream");
  Device dev = make_device(dir);
  auto f = dev.open("blob", true);
  std::vector<std::byte> data(1000, std::byte{7});
  f->append(data.data(), data.size());

  StreamReader reader(*f, 64);
  EXPECT_EQ(reader.position(), 0u);
  std::byte buf[10];
  reader.read(buf, 10);
  EXPECT_EQ(reader.position(), 10u);
  reader.read(buf, 7);
  EXPECT_EQ(reader.position(), 17u);
}

TEST(RecordStream, RoundTripSingleAndBatch) {
  TempDir dir("stream");
  Device dev = make_device(dir);
  fbfs::Rng rng(2);

  std::vector<EdgeRec> edges(10'000);
  for (std::uint32_t i = 0; i < edges.size(); ++i) {
    edges[i] = {i, static_cast<std::uint32_t>(rng.next_below(1 << 20))};
  }

  auto f = dev.open("edges", true);
  {
    RecordWriter<EdgeRec> writer(*f, 1 << 12);
    // Mix single appends and batches.
    for (std::size_t i = 0; i < 100; ++i) writer.append(edges[i]);
    writer.append_batch(
        std::span<const EdgeRec>(edges.data() + 100, edges.size() - 100));
    writer.flush();
    EXPECT_EQ(writer.records_appended(), edges.size());
  }
  ASSERT_EQ(f->size(), edges.size() * sizeof(EdgeRec));

  // next() one by one.
  {
    RecordReader<EdgeRec> reader(*f, 1 << 10);
    EdgeRec rec;
    for (const EdgeRec& expected : edges) {
      ASSERT_TRUE(reader.next(rec));
      ASSERT_EQ(rec, expected);
    }
    EXPECT_FALSE(reader.next(rec));
  }

  // next_batch() across several buffer sizes, including ones that do
  // not divide the record count.
  for (const std::size_t buf : {sizeof(EdgeRec), 24ul, 1000ul, 1ul << 16,
                                1ul << 22}) {
    RecordReader<EdgeRec> reader(*f, buf);
    std::vector<EdgeRec> back;
    for (auto batch = reader.next_batch(); !batch.empty();
         batch = reader.next_batch()) {
      back.insert(back.end(), batch.begin(), batch.end());
    }
    ASSERT_EQ(back, edges) << "buf=" << buf;
  }
}

TEST(RecordStream, MixedNextAndBatchDeliverEveryRecordOnce) {
  TempDir dir("stream");
  Device dev = make_device(dir);
  auto f = dev.open("edges", true);
  std::vector<EdgeRec> edges;
  for (std::uint32_t i = 0; i < 1000; ++i) edges.push_back({i, i * 2});
  RecordWriter<EdgeRec> writer(*f, 512);
  writer.append_batch(edges);
  writer.flush();

  // Interleave single reads with batch reads: next_batch() after a
  // partially consumed buffer must yield the remainder, not reload over
  // it (regression: records 5..N of each buffer used to vanish).
  fbfs::Rng rng(4);
  RecordReader<EdgeRec> reader(*f, 16 * sizeof(EdgeRec));
  std::vector<EdgeRec> back;
  EdgeRec rec;
  for (;;) {
    bool advanced = false;
    const std::size_t singles = rng.next_below(20);
    for (std::size_t i = 0; i < singles && reader.next(rec); ++i) {
      back.push_back(rec);
      advanced = true;
    }
    const auto batch = reader.next_batch();
    back.insert(back.end(), batch.begin(), batch.end());
    if (!advanced && batch.empty()) break;
  }
  ASSERT_EQ(back, edges);
}

TEST(RecordStream, ReaderCanStartAtAnAlignedOffset) {
  TempDir dir("stream");
  Device dev = make_device(dir);
  auto f = dev.open("edges", true);
  std::vector<EdgeRec> edges;
  for (std::uint32_t i = 0; i < 100; ++i) edges.push_back({i, i + 1});
  RecordWriter<EdgeRec> writer(*f, 256);
  writer.append_batch(edges);
  writer.flush();

  RecordReader<EdgeRec> reader(*f, 64, 40 * sizeof(EdgeRec));
  EdgeRec rec;
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec, (EdgeRec{40, 41}));
}

TEST(RecordStream, TwoReadersShareOneFileIndependently) {
  TempDir dir("stream");
  Device dev = make_device(dir);
  auto f = dev.open("edges", true);
  std::vector<EdgeRec> edges;
  for (std::uint32_t i = 0; i < 1000; ++i) edges.push_back({i, i});
  RecordWriter<EdgeRec> writer(*f, 512);
  writer.append_batch(edges);
  writer.flush();

  RecordReader<EdgeRec> a(*f, 128);
  RecordReader<EdgeRec> b(*f, 4096);
  EdgeRec ra, rb;
  for (std::uint32_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(a.next(ra));
    EXPECT_EQ(ra.src, i);
  }
  for (std::uint32_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(b.next(rb));
    EXPECT_EQ(rb.src, i);
  }
  ASSERT_TRUE(a.next(ra));
  EXPECT_EQ(ra.src, 500u);
}

TEST(RecordStreamDeath, MidRecordEofIsAnError) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TempDir dir("stream");
  Device dev = make_device(dir);
  auto f = dev.open("broken", true);
  const std::byte junk[5] = {};
  f->append(junk, sizeof(junk));  // 5 bytes: not a whole EdgeRec
  RecordReader<EdgeRec> reader(*f, 1024);
  EdgeRec rec;
  EXPECT_DEATH((void)reader.next(rec), "ends mid-record");
}

}  // namespace
}  // namespace fbfs::io
