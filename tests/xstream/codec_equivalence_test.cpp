// The codec/sieve acceptance matrix for the streaming engine: every
// program, on a small R-MAT, must stay BIT-IDENTICAL to the in-memory
// reference under every update-codec policy x sieve on/off x serial and
// parallel scatter. The codec and sieve are pure write-traffic
// optimisations; if either changes a bit of state or output, it is a
// bug. Update-file determinism across thread counts (the PR 5
// invariant) must also survive the encoded formats.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/temp_dir.hpp"
#include "graph/generators.hpp"
#include "inmem/engine.hpp"
#include "storage/codec.hpp"
#include "storage/stream.hpp"
#include "xstream/engine.hpp"

namespace fbfs {
namespace {

using graph::BfsProgram;
using graph::GraphMeta;
using graph::PageRankProgram;
using graph::SsspProgram;
using graph::VertexId;
using graph::WccProgram;
using io::codec::Policy;

GraphMeta rmat_meta(io::Device& dev) {
  const graph::RmatSource source({.scale = 9, .edge_factor = 8, .seed = 7});
  return graph::write_generated(
      dev, "rmat", source.num_vertices(), source.seed(), source.undirected(),
      [&](const graph::EdgeSink& sink) { source.generate(sink); });
}

constexpr Policy kPolicies[] = {Policy::kRaw, Policy::kBitmap,
                                Policy::kVarint, Policy::kAuto};

/// One program through the full codec x sieve x threads matrix against
/// the in-memory reference.
template <graph::GraphProgram P>
void expect_codec_equivalent(io::Device& dev, const GraphMeta& meta,
                             const P& program,
                             std::uint32_t max_iterations = 1'000'000) {
  const auto reference =
      inmem::run_graph(dev, meta, program, {.max_iterations = max_iterations});
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const graph::PartitionedGraph pg = graph::partition_edge_list(plan, meta, 3);
  for (const Policy policy : kPolicies) {
    for (const bool sieve : {false, true}) {
      for (const std::uint32_t threads : {1u, 4u}) {
        SCOPED_TRACE(std::string(P::kName) + ", codec=" +
                     io::codec::to_string(policy) +
                     (sieve ? ", sieve" : ", no-sieve") + ", T=" +
                     std::to_string(threads));
        xstream::EngineOptions options;
        options.max_iterations = max_iterations;
        options.update_codec = policy;
        options.sieve_updates = sieve;
        options.num_threads = threads;
        const auto streamed = xstream::run(pg, plan, program, options);

        ASSERT_EQ(streamed.iterations, reference.iterations);
        ASSERT_EQ(streamed.states.size(), reference.states.size());
        ASSERT_EQ(
            std::memcmp(streamed.states.data(), reference.states.data(),
                        streamed.states.size() * sizeof(typename P::State)),
            0);
        for (VertexId v = 0; v < streamed.states.size(); ++v) {
          const auto want = program.output(v, reference.states[v]);
          const auto got = program.output(v, streamed.states[v]);
          ASSERT_EQ(std::memcmp(&want, &got, sizeof(want)), 0)
              << "vertex " << v;
        }
      }
    }
  }
}

TEST(CodecEquivalence, BfsUnderEveryCodecAndSieve) {
  TempDir dir("codec_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  expect_codec_equivalent(dev, rmat_meta(dev), BfsProgram{.root = 0});
}

TEST(CodecEquivalence, WccUnderEveryCodecAndSieve) {
  TempDir dir("codec_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta sym =
      graph::symmetrize_edge_list(dev, rmat_meta(dev), "rmat_sym");
  expect_codec_equivalent(dev, sym, WccProgram{});
}

TEST(CodecEquivalence, SsspUnderEveryCodecAndSieve) {
  TempDir dir("codec_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  expect_codec_equivalent(dev, rmat_meta(dev), SsspProgram{.root = 0});
}

TEST(CodecEquivalence, PageRankUnderEveryCodecAndSieve) {
  // PageRank's additive gather makes it bitmap-ineligible and
  // sieve-incapable; both knobs must degrade to no-ops, not corrupt.
  TempDir dir("codec_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta meta = rmat_meta(dev);
  expect_codec_equivalent(dev, meta,
                          PageRankProgram{.num_vertices = meta.num_vertices},
                          /*max_iterations=*/5);
}

TEST(CodecEquivalence, SieveReallyDropsUpdatesOnBfs) {
  // The sieve is not allowed to be a silent no-op for a SieveCapable
  // program on a duplicate-heavy graph: updates_sieved must move, and
  // the per-partition pending counts (= staged updates) must shrink.
  TempDir dir("codec_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta meta = rmat_meta(dev);
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const graph::PartitionedGraph pg = graph::partition_edge_list(plan, meta, 3);

  xstream::EngineOptions off;
  const auto plain = xstream::run(pg, plan, BfsProgram{}, off);
  xstream::EngineOptions on;
  on.sieve_updates = true;
  const auto sieved = xstream::run(pg, plan, BfsProgram{}, on);

  ASSERT_EQ(plain.iterations, sieved.iterations);
  std::uint64_t plain_sieved = 0, on_sieved = 0;
  for (const auto& it : plain.per_iteration) plain_sieved += it.updates_sieved;
  for (const auto& it : sieved.per_iteration) on_sieved += it.updates_sieved;
  EXPECT_EQ(plain_sieved, 0u);
  EXPECT_GT(on_sieved, 0u);
  // Both engines count scatter-produced updates identically; the sieve
  // only thins what reaches the writers.
  EXPECT_EQ(plain.updates_emitted, sieved.updates_emitted + on_sieved);
  EXPECT_EQ(std::memcmp(plain.states.data(), sieved.states.data(),
                        plain.states.size() * sizeof(BfsProgram::State)),
            0);
}

TEST(CodecEquivalence, CodecShrinksBfsUpdateBytes) {
  // The point of the PR: auto + sieve must write measurably fewer
  // update bytes than raw on a duplicate-heavy R-MAT BFS.
  TempDir dir("codec_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta meta = rmat_meta(dev);
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const graph::PartitionedGraph pg = graph::partition_edge_list(plan, meta, 3);

  const auto update_bytes = [](const auto& result) {
    std::uint64_t total = 0;
    for (const auto& it : result.per_iteration) {
      for (const std::uint64_t b : it.update_codec_bytes) total += b;
    }
    return total;
  };

  xstream::EngineOptions raw;
  const auto raw_run = xstream::run(pg, plan, BfsProgram{}, raw);
  xstream::EngineOptions compressed;
  compressed.update_codec = Policy::kAuto;
  compressed.sieve_updates = true;
  const auto auto_run = xstream::run(pg, plan, BfsProgram{}, compressed);

  ASSERT_EQ(raw_run.iterations, auto_run.iterations);
  ASSERT_EQ(std::memcmp(raw_run.states.data(), auto_run.states.data(),
                        raw_run.states.size() * sizeof(BfsProgram::State)),
            0);
  EXPECT_LT(update_bytes(auto_run), update_bytes(raw_run));
  // Raw runs attribute every byte to the raw bucket, and vice versa.
  for (const auto& it : raw_run.per_iteration) {
    EXPECT_EQ(it.update_codec_bytes[1], 0u);
    EXPECT_EQ(it.update_codec_bytes[2], 0u);
  }
}

TEST(CodecEquivalence, EncodedUpdateFilesAreByteIdenticalAcrossThreads) {
  // PR 5 pinned update files byte-identical at every thread count; the
  // staged codecs (sort + encode at close) and the windowed sieve must
  // preserve that — the sieve windows align with the parallel chunk
  // boundaries by construction.
  TempDir dir("codec_equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta meta = rmat_meta(dev);
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const graph::PartitionedGraph pg = graph::partition_edge_list(plan, meta, 3);

  const auto final_update_files =
      [&](std::uint32_t threads, std::vector<std::vector<std::byte>>& files) {
        xstream::EngineOptions options;
        options.max_iterations = 3;  // stop with update files still on disk
        options.update_codec = Policy::kVarint;
        options.sieve_updates = true;
        options.num_threads = threads;
        options.keep_files = true;
        xstream::run(pg, plan, BfsProgram{}, options);
        for (std::uint32_t q = 0; q < pg.layout.num_partitions(); ++q) {
          auto f = dev.open(xstream::update_file_name(pg, q),
                            /*truncate=*/false);
          std::vector<std::byte> bytes(f->size());
          io::StreamReader reader(*f, 1 << 16);
          std::size_t got = 0;
          while (got < bytes.size()) {
            got += reader.read(bytes.data() + got, bytes.size() - got);
          }
          files.push_back(std::move(bytes));
        }
      };

  std::vector<std::vector<std::byte>> serial, parallel;
  final_update_files(1, serial);
  final_update_files(4, parallel);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t q = 0; q < serial.size(); ++q) {
    ASSERT_GT(serial[q].size(), 0u);
    EXPECT_EQ(serial[q], parallel[q]) << "update file " << q;
  }
}

}  // namespace
}  // namespace fbfs
