// The acceptance suite for the GraphProgram API: every program, on
// every generator family, must produce BIT-IDENTICAL results from the
// streaming engine and the in-memory reference — at multiple partition
// counts, with either reader mode, at T∈{1,2,4} worker threads, and
// regardless of device placement.
// This is what licenses PR 4's I/O optimisations to validate against
// inmem instead of re-deriving ground truth per algorithm.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/temp_dir.hpp"
#include "graph/generators.hpp"
#include "inmem/engine.hpp"
#include "xstream/engine.hpp"

namespace fbfs {
namespace {

using graph::BfsProgram;
using graph::GraphMeta;
using graph::PageRankProgram;
using graph::SsspProgram;
using graph::VertexId;
using graph::WccProgram;

GraphMeta materialize(io::Device& dev, const std::string& name,
                      const graph::ChunkedEdgeSource& source) {
  return graph::write_generated(
      dev, name, source.num_vertices(), source.seed(), source.undirected(),
      [&](const graph::EdgeSink& sink) { source.generate(sink); });
}

GraphMeta rmat_meta(io::Device& dev) {
  return materialize(dev, "rmat",
                     graph::RmatSource({.scale = 9, .edge_factor = 8,
                                        .seed = 7}));
}

GraphMeta er_meta(io::Device& dev) {
  return materialize(dev, "er",
                     graph::ErdosRenyiSource({.num_vertices = 1000,
                                              .num_edges = 8000, .seed = 11}));
}

GraphMeta grid_meta(io::Device& dev) {
  return materialize(dev, "grid",
                     graph::Grid2dSource({.width = 24, .height = 24}));
}

/// Runs `program` through the in-memory reference once, then through
/// the streaming engine at two partition counts x both reader modes x
/// T∈{1,2,4} worker threads, demanding identical iteration counts,
/// identical update totals, and byte-identical states and outputs.
template <graph::GraphProgram P>
void expect_equivalent(io::Device& dev, const GraphMeta& meta,
                       const P& program,
                       std::uint32_t max_iterations = 1'000'000) {
  const auto reference =
      inmem::run_graph(dev, meta, program, {.max_iterations = max_iterations});
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  for (const std::uint32_t parts : {2u, 5u}) {
    const graph::PartitionedGraph pg =
        graph::partition_edge_list(plan, meta, parts);
    for (const io::ReaderMode mode :
         {io::ReaderMode::kPlain, io::ReaderMode::kPrefetch}) {
      for (const std::uint32_t threads : {1u, 2u, 4u}) {
        SCOPED_TRACE(std::string(P::kName) + " on " + meta.name + ", P=" +
                     std::to_string(parts) + ", reader=" + to_string(mode) +
                     ", T=" + std::to_string(threads));
        xstream::EngineOptions options;
        options.reader.mode = mode;
        options.max_iterations = max_iterations;
        options.num_threads = threads;
        const auto streamed = xstream::run(pg, plan, program, options);

        ASSERT_EQ(streamed.iterations, reference.iterations);
        ASSERT_EQ(streamed.updates_emitted, reference.updates_emitted);
        ASSERT_EQ(streamed.states.size(), reference.states.size());
        ASSERT_EQ(
            std::memcmp(streamed.states.data(), reference.states.data(),
                        streamed.states.size() * sizeof(typename P::State)),
            0);
        // The user-visible outputs, compared bit-wise (memcmp, so float
        // outputs must match to the last bit, inf included).
        for (VertexId v = 0; v < streamed.states.size(); ++v) {
          const auto want = program.output(v, reference.states[v]);
          const auto got = program.output(v, streamed.states[v]);
          ASSERT_EQ(std::memcmp(&want, &got, sizeof(want)), 0)
              << "vertex " << v;
        }
      }
    }
  }
}

// ---------------------------------------------------------------- BFS

TEST(Equivalence, BfsOnRmat) {
  TempDir dir("equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  expect_equivalent(dev, rmat_meta(dev), BfsProgram{.root = 0});
}

TEST(Equivalence, BfsOnErdosRenyi) {
  TempDir dir("equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  expect_equivalent(dev, er_meta(dev), BfsProgram{.root = 3});
}

TEST(Equivalence, BfsOnGrid) {
  TempDir dir("equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  expect_equivalent(dev, grid_meta(dev), BfsProgram{.root = 0});
}

// ---------------------------------------------------------------- WCC

TEST(Equivalence, WccOnRmatSymmetrized) {
  TempDir dir("equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta sym =
      graph::symmetrize_edge_list(dev, rmat_meta(dev), "rmat_sym");
  expect_equivalent(dev, sym, WccProgram{});
}

TEST(Equivalence, WccOnErdosRenyiSymmetrized) {
  TempDir dir("equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta sym =
      graph::symmetrize_edge_list(dev, er_meta(dev), "er_sym");
  expect_equivalent(dev, sym, WccProgram{});
}

TEST(Equivalence, WccOnGrid) {
  // The lattice generator already emits both directions.
  TempDir dir("equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  expect_equivalent(dev, grid_meta(dev), WccProgram{});
}

// --------------------------------------------------------------- SSSP

TEST(Equivalence, SsspOnRmat) {
  TempDir dir("equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  expect_equivalent(dev, rmat_meta(dev), SsspProgram{.root = 0});
}

TEST(Equivalence, SsspOnErdosRenyi) {
  TempDir dir("equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  expect_equivalent(dev, er_meta(dev), SsspProgram{.root = 3});
}

TEST(Equivalence, SsspOnGrid) {
  TempDir dir("equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  expect_equivalent(dev, grid_meta(dev), SsspProgram{.root = 0});
}

// ----------------------------------------------------------- PageRank

TEST(Equivalence, PageRankOnRmat) {
  TempDir dir("equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta meta = rmat_meta(dev);
  expect_equivalent(dev, meta,
                    PageRankProgram{.num_vertices = meta.num_vertices},
                    /*max_iterations=*/5);
}

TEST(Equivalence, PageRankOnErdosRenyi) {
  TempDir dir("equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta meta = er_meta(dev);
  expect_equivalent(dev, meta,
                    PageRankProgram{.num_vertices = meta.num_vertices},
                    /*max_iterations=*/5);
}

TEST(Equivalence, PageRankOnGrid) {
  TempDir dir("equiv");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta meta = grid_meta(dev);
  expect_equivalent(dev, meta,
                    PageRankProgram{.num_vertices = meta.num_vertices},
                    /*max_iterations=*/5);
}

// --------------------------------------------------- device placement

TEST(Equivalence, DualPlanMatchesSinglePlan) {
  // Splitting update/stay streams onto a second device must not change
  // a single byte of the result — placement is pure I/O routing.
  TempDir dir("equiv");
  io::Device main_dev(dir.str() + "/main", io::DeviceModel::unthrottled());
  io::Device aux_dev(dir.str() + "/aux", io::DeviceModel::unthrottled());
  const GraphMeta meta = rmat_meta(main_dev);
  const auto reference = inmem::run_graph(main_dev, meta, BfsProgram{});

  const io::StoragePlan plan = io::StoragePlan::dual(main_dev, aux_dev);
  const graph::PartitionedGraph pg =
      graph::partition_edge_list(plan, meta, 4);
  const auto streamed = xstream::run(pg, plan, BfsProgram{});
  ASSERT_EQ(streamed.states.size(), reference.states.size());
  EXPECT_EQ(std::memcmp(streamed.states.data(), reference.states.data(),
                        streamed.states.size() *
                            sizeof(BfsProgram::State)),
            0);
  EXPECT_EQ(streamed.iterations, reference.iterations);
  EXPECT_GT(aux_dev.stats().bytes_written(), 0u);  // updates really moved
}

}  // namespace
}  // namespace fbfs
