// Streaming-engine mechanics: state/update files land on the roles the
// StoragePlan names, partitions with no active source are skipped,
// files are cleaned up (or kept on request), and the config plumbing
// resolves engine options.
#include "xstream/engine.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/temp_dir.hpp"
#include "graph/generators.hpp"

namespace fbfs::xstream {
namespace {

using graph::BfsProgram;
using graph::Edge;
using graph::GraphMeta;
using graph::kUnreachedLevel;
using graph::PartitionedGraph;

GraphMeta chain_graph(io::Device& dev, std::uint64_t n) {
  // 0 -> 1 -> ... -> n-1.
  return graph::write_generated(
      dev, "chain", n, 1, /*undirected=*/false,
      [&](const graph::EdgeSink& sink) {
        for (graph::VertexId v = 0; v + 1 < n; ++v) {
          sink({v, v + 1});
        }
      });
}

TEST(XStream, BfsOnAChainAcrossPartitions) {
  TempDir dir("xstream");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta meta = chain_graph(dev, 20);
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const PartitionedGraph pg = partition_edge_list(plan, meta, 4);

  const auto result = run(pg, plan, BfsProgram{.root = 0});
  ASSERT_EQ(result.states.size(), 20u);
  for (std::uint32_t v = 0; v < 20; ++v) {
    EXPECT_EQ(result.states[v].level, v);
  }
  EXPECT_EQ(result.iterations, 19u);
  EXPECT_EQ(result.updates_emitted, 19u);  // each edge fires exactly once
  EXPECT_EQ(result.per_iteration.size(), result.iterations);
}

TEST(XStream, InactivePartitionsAreNotScattered) {
  TempDir dir("xstream");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta meta = chain_graph(dev, 20);
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const PartitionedGraph pg = partition_edge_list(plan, meta, 4);

  const auto result = run(pg, plan, BfsProgram{.root = 0});
  // A chain BFS has a one-vertex frontier: every round touches exactly
  // the one partition owning it — the skip logic the paper's selective
  // scheduling (PR 4) builds on.
  for (const IterationStats& stats : result.per_iteration) {
    EXPECT_EQ(stats.partitions_scattered, 1u) << stats.iteration;
    EXPECT_LE(stats.updates_emitted, 1u);
  }
}

TEST(XStream, StoragePlanRoutesStreamsToTheirDevices) {
  TempDir dir("xstream");
  io::Device edges_dev(dir.str() + "/edges", io::DeviceModel::unthrottled());
  io::Device state_dev(dir.str() + "/state", io::DeviceModel::unthrottled());
  io::Device upd_dev(dir.str() + "/upd", io::DeviceModel::unthrottled());
  const GraphMeta meta = chain_graph(edges_dev, 32);
  io::StoragePlan plan = io::StoragePlan::single(edges_dev);
  plan.assign(io::Role::kState, state_dev);
  plan.assign(io::Role::kUpdates, upd_dev);
  const PartitionedGraph pg = partition_edge_list(plan, meta, 3);

  EngineOptions options;
  options.keep_files = true;
  const auto result = run(pg, plan, BfsProgram{.root = 0}, options);
  EXPECT_EQ(result.states.back().level, 31u);

  // Each stream only touched its own device.
  for (std::uint32_t p = 0; p < 3; ++p) {
    EXPECT_TRUE(state_dev.exists(state_file_name(pg, p)));
    EXPECT_TRUE(upd_dev.exists(update_file_name(pg, p)));
    EXPECT_FALSE(edges_dev.exists(state_file_name(pg, p)));
    EXPECT_FALSE(edges_dev.exists(update_file_name(pg, p)));
  }
  EXPECT_GT(state_dev.stats().bytes_written(), 0u);
  EXPECT_GT(upd_dev.stats().bytes_written(), 0u);
  // The dominant edge stream stayed off the auxiliary devices: they
  // never read or wrote an edge record.
  EXPECT_EQ(state_dev.stats().bytes_read() % sizeof(BfsProgram::State), 0u);
}

TEST(XStream, FilesAreRemovedByDefault) {
  TempDir dir("xstream");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta meta = chain_graph(dev, 12);
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const PartitionedGraph pg = partition_edge_list(plan, meta, 2);
  (void)run(pg, plan, BfsProgram{.root = 0});
  for (std::uint32_t p = 0; p < 2; ++p) {
    EXPECT_FALSE(dev.exists(state_file_name(pg, p)));
    EXPECT_FALSE(dev.exists(update_file_name(pg, p)));
  }
  // The inputs survive.
  EXPECT_TRUE(dev.exists(meta.edge_file()));
  EXPECT_TRUE(dev.exists(pg.partition_file(0)));
}

TEST(XStream, SinglePartitionAndUnreachableVertices) {
  TempDir dir("xstream");
  io::Device dev(dir.str(), io::DeviceModel::unthrottled());
  const GraphMeta meta = graph::write_generated(
      dev, "two_islands", 6, 1, /*undirected=*/false,
      [](const graph::EdgeSink& sink) {
        sink({0, 1});
        sink({4, 5});
      });
  const io::StoragePlan plan = io::StoragePlan::single(dev);
  const PartitionedGraph pg = partition_edge_list(plan, meta, 1);
  const auto result = run(pg, plan, BfsProgram{.root = 0});
  EXPECT_EQ(result.states[1].level, 1u);
  EXPECT_EQ(result.states[4].level, kUnreachedLevel);
  EXPECT_EQ(result.states[5].level, kUnreachedLevel);
}

TEST(XStream, EngineOptionsComeFromConfigKeys) {
  const Config cfg = Config::parse_string(
      "io.reader = prefetch\n"
      "io.reader_buffer = 256K\n"
      "xstream.write_buffer = 2M\n"
      "xstream.max_iterations = 42\n"
      "xstream.partition_count = 12\n"
      "engine.num_threads = 3\n"
      "updates.codec = auto\n"
      "updates.sieve = true\n");
  const EngineOptions options = engine_options_from_config(cfg);
  EXPECT_EQ(options.reader.mode, io::ReaderMode::kPrefetch);
  EXPECT_EQ(options.reader.buffer_bytes, 256u * 1024);
  EXPECT_EQ(options.write_buffer_bytes, 2u * 1024 * 1024);
  EXPECT_EQ(options.max_iterations, 42u);
  EXPECT_EQ(options.num_threads, 3u);
  EXPECT_EQ(options.update_codec, io::codec::Policy::kAuto);
  EXPECT_TRUE(options.sieve_updates);
  EXPECT_EQ(partition_count_from_config(cfg, 4), 12u);
  EXPECT_EQ(partition_count_from_config(Config(), 4), 4u);
  // Absent keys -> the serial engine writing raw, sieve off.
  EXPECT_EQ(engine_options_from_config(Config()).num_threads, 1u);
  EXPECT_EQ(engine_options_from_config(Config()).update_codec,
            io::codec::Policy::kRaw);
  EXPECT_FALSE(engine_options_from_config(Config()).sieve_updates);
}

std::vector<std::byte> file_bytes(io::Device& dev, const std::string& name) {
  const std::uint64_t size = dev.file_size(name);
  std::vector<std::byte> out(size);
  auto file = dev.open(name, /*truncate=*/false);
  EXPECT_EQ(file->read_at(0, out.data(), out.size()), out.size());
  return out;
}

TEST(XStream, UpdateShuffleIsByteIdenticalAcrossThreadCounts) {
  // The deterministic-shuffle contract, checked on the files themselves
  // rather than the folded states: the update files a scatter phase
  // leaves behind (PageRank scatters every round, so the LAST round's
  // files are non-trivial) and the final state files must be
  // byte-identical at T=1 and T=4 — the chunk-ordered hand-off makes
  // per-file append order independent of scheduling.
  TempDir dir("xstream");
  io::Device t1_dev(dir.str() + "/t1", io::DeviceModel::unthrottled());
  io::Device t4_dev(dir.str() + "/t4", io::DeviceModel::unthrottled());
  const graph::RmatSource source({.scale = 8, .edge_factor = 8, .seed = 5});
  std::vector<PartitionedGraph> pgs;
  for (io::Device* dev : {&t1_dev, &t4_dev}) {
    const GraphMeta meta = graph::write_generated(
        *dev, "rmat", source.num_vertices(), source.seed(),
        source.undirected(),
        [&](const graph::EdgeSink& sink) { source.generate(sink); });
    pgs.push_back(
        partition_edge_list(io::StoragePlan::single(*dev), meta, 3));
  }

  const graph::PageRankProgram program{.num_vertices =
                                           source.num_vertices()};
  EngineOptions options;
  options.keep_files = true;
  options.max_iterations = 3;
  options.num_threads = 1;
  const auto serial = run(pgs[0], io::StoragePlan::single(t1_dev), program,
                          options);
  options.num_threads = 4;
  const auto threaded = run(pgs[1], io::StoragePlan::single(t4_dev), program,
                            options);

  ASSERT_EQ(serial.iterations, threaded.iterations);
  ASSERT_EQ(serial.updates_emitted, threaded.updates_emitted);
  for (std::uint32_t p = 0; p < 3; ++p) {
    EXPECT_EQ(file_bytes(t1_dev, update_file_name(pgs[0], p)),
              file_bytes(t4_dev, update_file_name(pgs[1], p)))
        << "update file " << p;
    EXPECT_EQ(file_bytes(t1_dev, state_file_name(pgs[0], p)),
              file_bytes(t4_dev, state_file_name(pgs[1], p)))
        << "state file " << p;
  }
}

}  // namespace
}  // namespace fbfs::xstream
